//! Progress detection (§3.3): ZeroSum as a deadlock sentinel.
//!
//! A worker team where one member never reaches the barrier stalls the
//! whole team. The paper proposes using the periodic LWP state and time
//! counters to detect this and stop wasting allocation; this example
//! shows the detector firing.
//!
//! ```text
//! cargo run --example deadlock_sentinel
//! ```

use zerosum::prelude::*;

fn main() {
    let topo = presets::laptop_i7_1165g7();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let mask = CpuSet::range(0, 3);
    // Three workers that barrier every block — and one thread that grabs
    // a "lock" and sleeps forever (it never arrives at the barrier).
    let worker = || {
        Behavior::worker(WorkerSpec {
            barrier: Some(1),
            ..WorkerSpec::cpu_bound(1_000, 5_000)
        })
    };
    let pid = sim.spawn_process("stuck-app", mask, 4096, worker());
    sim.spawn_task(pid, "OpenMP", None, worker(), false);
    sim.spawn_task(pid, "OpenMP", None, worker(), false);
    // The stuck thread holds a "lock" forever and is counted into the
    // barrier team — the other three will wait for it eternally.
    sim.spawn_task(pid, "stuck", None, Behavior::Sleeper, false);
    sim.register_barrier_member(pid, 1);

    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 250_000,
        deadlock_windows: 4,
        heartbeat: true,
        ..Default::default()
    });
    monitor.watch_process(ProcessInfo {
        pid,
        rank: None,
        hostname: sim.hostname().to_string(),
        gpus: vec![],
        cpus_allowed: Default::default(),
    });
    attach_monitor_threads(&mut sim, &monitor);
    // Cap the run: the app would never finish on its own.
    let out = run_monitored(&mut sim, &mut monitor, None, 20_000_000);
    for hb in &out.heartbeats {
        println!("{hb}");
    }
    println!();
    for (i, l) in out.liveness.iter().enumerate() {
        println!("sample {i}: {l:?}");
    }
    let verdict = out.liveness.last().unwrap();
    match verdict {
        Liveness::PossibleDeadlock {
            windows,
            blocked_threads,
        } => println!(
            "\nZeroSum verdict: possible deadlock — no progress for {windows} windows, \
             {blocked_threads} thread(s) blocked. Terminate the job and keep your \
             allocation hours."
        ),
        other => println!("\nZeroSum verdict: {other:?}"),
    }
}
