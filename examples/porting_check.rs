//! The paper's headline use case: a "use once when porting an
//! application to a new system" check.
//!
//! Before burning allocation hours, dry-run your launch configuration on
//! the target node model: see the topology the way `lstopo` would show
//! it, the CPU mask and GPU every rank would receive, and what ZeroSum's
//! configuration evaluator thinks of a *simulated* execution under that
//! configuration. Try:
//!
//! ```text
//! cargo run --example porting_check -- frontier 8 7
//! cargo run --example porting_check -- frontier 8      # the Table 1 trap
//! ```

use zerosum::prelude::*;
use zerosum_sched::plan_launch;
use zerosum_topology::{render, RenderOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let system = args.get(1).map(String::as_str).unwrap_or("frontier");
    let ntasks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let cpus_per_task: Option<usize> = args.get(3).and_then(|s| s.parse().ok());

    let topo = presets::by_name(system).unwrap_or_else(|| {
        eprintln!("unknown system {system:?}; use frontier|summit|perlmutter|aurora|laptop");
        std::process::exit(2);
    });
    println!("=== Node topology: {} ===", topo.name);
    print!("{}", render(&topo, &RenderOptions::default()));

    let srun = SrunConfig {
        ntasks,
        cpus_per_task,
        threads_per_core: 1,
        reserve_first_core_per_l3: true,
        gpu_bind_closest: true,
    };
    println!(
        "\n=== Launch plan: srun -n{ntasks}{} --gpu-bind=closest ===",
        cpus_per_task.map(|c| format!(" -c{c}")).unwrap_or_default()
    );
    match plan_launch(&topo, &srun) {
        Ok(plan) => {
            for p in &plan {
                println!(
                    "rank {:>3}: CPUs [{}]{}",
                    p.rank,
                    p.cpus_allowed.to_list_string(),
                    p.gpu.map(|g| format!(", GPU {g}")).unwrap_or_default()
                );
            }
            // Dry-run a short CPU-bound team under this placement and let
            // the evaluator judge it.
            let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
            let mut monitor = Monitor::new(ZeroSumConfig::scaled(50));
            for p in &plan {
                let threads = p.cpus_allowed.count().max(1);
                let pid = sim.spawn_process(
                    "dryrun",
                    p.cpus_allowed.clone(),
                    64 * 1024,
                    Behavior::worker(WorkerSpec::cpu_bound(4, 20_000)),
                );
                for _ in 1..threads {
                    sim.spawn_task(
                        pid,
                        "OpenMP",
                        None,
                        Behavior::worker(WorkerSpec::cpu_bound(4, 20_000)),
                        false,
                    );
                }
                monitor.watch_process(ProcessInfo {
                    pid,
                    rank: Some(p.rank),
                    hostname: sim.hostname().to_string(),
                    gpus: p.gpu.iter().copied().collect(),
                    cpus_allowed: p.cpus_allowed.clone(),
                });
            }
            attach_monitor_threads(&mut sim, &monitor);
            let out = run_monitored(&mut sim, &mut monitor, None, 120_000_000);
            println!("\n=== Dry run: {:.2}s (virtual) ===", out.duration_s);
            print!("{}", render_findings(&evaluate(&monitor, &topo)));
        }
        Err(e) => println!("launch plan failed: {e}"),
    }
}
