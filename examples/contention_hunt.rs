//! Hunt down a contention problem the way §2 of the paper motivates:
//! run the same application twice — once misconfigured (every thread
//! fighting over one core) and once properly spread — and compare
//! ZeroSum's contention reports and warning lights.
//!
//! ```text
//! cargo run --example contention_hunt
//! ```

use zerosum::prelude::*;

fn run_case(label: &str, masks: &[&str]) -> f64 {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
    let process_mask = CpuSet::parse_list("1-7").unwrap();
    let pid = sim.spawn_process(
        "solver",
        process_mask.clone(),
        512 * 1024,
        Behavior::worker(WorkerSpec::cpu_bound(6, 25_000)),
    );
    sim.set_task_affinity(pid, CpuSet::parse_list(masks[0]).unwrap());
    for m in &masks[1..] {
        sim.spawn_task(
            pid,
            "OpenMP",
            Some(CpuSet::parse_list(m).unwrap()),
            Behavior::worker(WorkerSpec::cpu_bound(6, 25_000)),
            false,
        );
    }
    let mut monitor = Monitor::new(ZeroSumConfig::scaled(25));
    monitor.watch_process(ProcessInfo {
        pid,
        rank: Some(0),
        hostname: sim.hostname().to_string(),
        gpus: vec![],
        cpus_allowed: process_mask,
    });
    attach_monitor_threads(&mut sim, &monitor);
    let out = run_monitored(&mut sim, &mut monitor, None, 600_000_000);
    println!("==================== {label} ====================");
    println!("runtime: {:.3}s (virtual)\n", out.duration_s);
    if let Some(rep) = analyze(&monitor, pid) {
        print!("{}", rep.render());
    }
    print!("{}", render_findings(&evaluate(&monitor, &topo)));
    println!();
    out.duration_s
}

fn main() {
    // Misconfiguration: all seven threads pinned to core 1.
    let bad = run_case(
        "misconfigured: 7 threads on core 1",
        &["1", "1", "1", "1", "1", "1", "1"],
    );
    // Fix: one thread per core.
    let good = run_case(
        "fixed: one thread per core",
        &["1", "2", "3", "4", "5", "6", "7"],
    );
    println!(
        "Speedup from fixing the configuration: {:.2}x (no code changes — \
         exactly the 'configuration optimization' class of §1)",
        bad / good
    );
}
