//! Build the Figure 5 communication heatmap and use it the way §3.1.3
//! suggests: compare logical-to-physical rank mappings by the fraction
//! of traffic they keep on-node.
//!
//! ```text
//! cargo run --release --example mpi_heatmap -- 128
//! ```

use zerosum::prelude::*;
use zerosum_apps::PicConfig;
use zerosum_mpi::{heatmap, MapStrategy, RankMap};

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let mut cfg = PicConfig::figure5();
    cfg.ranks = ranks;
    cfg.steps = 100;
    let matrix = zerosum_apps::run_pic(&cfg);
    println!(
        "PIC proxy, {ranks} ranks, {} steps: total {:.3e} bytes, \
         diagonal fraction {:.4}",
        cfg.steps,
        matrix.total_bytes() as f64,
        matrix.diagonal_fraction(cfg.halo_width)
    );
    println!("{}", heatmap::render_ascii(&matrix, 40.min(ranks)));

    // Placement guidance: ranks-per-node from the Frontier preset (8).
    let nodes = ranks.div_ceil(8);
    if nodes > 1 {
        let block = RankMap::new(ranks, nodes, MapStrategy::Block);
        let cyclic = RankMap::new(ranks, nodes, MapStrategy::Cyclic);
        let optimized = zerosum_mpi::optimize_order(&matrix, 8);
        println!(
            "On {nodes} Frontier nodes (8 ranks each): intra-node traffic \
             block={:.1}%, cyclic={:.1}%, traffic-optimized={:.1}%",
            100.0 * block.intra_node_fraction(&matrix),
            100.0 * cyclic.intra_node_fraction(&matrix),
            100.0 * optimized.intra_node_fraction(&matrix)
        );
    }
    let _ = presets::frontier(); // the node model the guidance refers to
}
