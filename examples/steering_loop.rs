//! Adaptation / computational steering (§2 "Adaptation" and §3.6):
//! consume ZeroSum's live snapshot feed and make a decision from it.
//!
//! Here the "steering controller" watches per-thread utilization and
//! detects, mid-run, that the team lost half of its parallelism (threads
//! finished early while stragglers keep running) — the kind of signal a
//! real controller would use to rebalance walkers.
//!
//! ```text
//! cargo run --release --example steering_loop
//! ```

use zerosum::prelude::*;
use zerosum_core::LwpKind;

fn main() {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let mask = CpuSet::parse_list("1-7").unwrap();
    // An imbalanced team: three threads carry 3× the work of the others.
    let pid = sim.spawn_process(
        "imbalanced",
        mask.clone(),
        1 << 20,
        Behavior::worker(WorkerSpec::cpu_bound(40, 30_000)),
    );
    for i in 0..6 {
        let work = if i < 2 { 30_000 } else { 10_000 };
        sim.spawn_task(
            pid,
            "OpenMP",
            Some(CpuSet::single(2 + i)),
            Behavior::worker(WorkerSpec::cpu_bound(40, work)),
            false,
        );
    }
    sim.set_task_affinity(pid, CpuSet::single(1));

    let mut monitor = Monitor::new(ZeroSumConfig {
        period_us: 100_000,
        ..Default::default()
    });
    monitor.watch_process(ProcessInfo {
        pid,
        rank: Some(0),
        hostname: sim.hostname().to_string(),
        gpus: vec![],
        cpus_allowed: mask,
    });
    let feed = monitor.feed.subscribe(256);
    attach_monitor_threads(&mut sim, &monitor);
    let out = run_monitored(&mut sim, &mut monitor, None, 120_000_000);
    let snapshots: Vec<_> = feed.try_iter().collect();
    println!(
        "run finished in {:.2}s (virtual), {} snapshots streamed\n",
        out.duration_s,
        snapshots.len()
    );

    // The steering consumer: per snapshot, how many team threads are
    // still burning CPU?
    let mut prev: Option<Vec<(u32, u64)>> = None;
    let mut team_size = 0usize;
    for snap in snapshots {
        let team: Vec<(u32, u64)> = snap.processes[0]
            .lwps
            .iter()
            .filter(|l| matches!(l.kind, LwpKind::Main | LwpKind::OpenMp))
            .map(|l| (l.tid, l.utime + l.stime))
            .collect();
        team_size = team_size.max(team.len());
        if let Some(prev) = &prev {
            // A thread is active if it is still present and burned CPU
            // since the previous snapshot; exited threads left the task
            // list entirely.
            let active = team
                .iter()
                .filter(|(tid, cpu)| {
                    prev.iter()
                        .find(|(ptid, _)| ptid == tid)
                        .map(|(_, pcpu)| cpu > pcpu)
                        .unwrap_or(true)
                })
                .count();
            println!(
                "t={:>5.1}s  team threads still active: {}/{}{}",
                snap.t_s,
                active,
                team_size,
                if active * 2 <= team_size && active > 0 {
                    "   <-- steering signal: rebalance walkers"
                } else {
                    ""
                }
            );
        }
        prev = Some(team);
    }
}
