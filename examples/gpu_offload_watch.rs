//! Monitor a GPU-offload job end to end: the Listing 2 scenario as an
//! API walkthrough — launch miniQMC-sim with `--gpu-bind=closest` on the
//! simulated Frontier node, sample the GCDs through the simulated ROCm
//! SMI, and print the utilization report with the GPU metric block.
//!
//! ```text
//! cargo run --release --example gpu_offload_watch
//! ```

use zerosum::prelude::*;
use zerosum_apps::{launch_miniqmc, MiniQmcConfig};
use zerosum_core::{GpuReportContext, GpuStack, SimGpuLink};
use zerosum_gpu::GpuMetricKind;
use zerosum_omp::OmptRegistry;

fn main() {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
    let qmc = MiniQmcConfig::frontier_offload().scaled_down(30);
    let mut ompt = OmptRegistry::new();
    let job = launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
    println!(
        "launched {} ranks; rank→GCD map: {:?}  (note Figure 2's ordering!)",
        job.teams.len(),
        job.gpus
    );

    let mut monitor = Monitor::new(ZeroSumConfig::scaled(30));
    for (team, gpu) in job.teams.iter().zip(&job.gpus) {
        monitor.watch_process(ProcessInfo {
            pid: team.pid,
            rank: sim.process(team.pid).and_then(|p| p.rank),
            hostname: sim.hostname().to_string(),
            gpus: gpu.iter().copied().collect(),
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
    }
    attach_monitor_threads(&mut sim, &monitor);
    let mut gpus = SimGpuLink::new(GpuStack::RocmMi250x, (0..8).collect());
    let out = run_monitored(&mut sim, &mut monitor, Some(&mut gpus), 3_600_000_000);

    // Rank 0's report with its GCD (physical index 4, visible index 0).
    let rank0 = job.teams[0].pid;
    let phys = job.gpus[0].unwrap();
    let slot = gpus.devices().iter().position(|&d| d == phys).unwrap() as u32;
    let ctx = GpuReportContext {
        monitor: &gpus.monitor,
        devices: vec![(slot, phys, 0)],
    };
    print!(
        "{}",
        render_process_report(&monitor, rank0, out.duration_s, Some(&ctx))
    );
    // A compact cross-device busy summary.
    println!("\nPer-GCD busy (min/avg/max %):");
    for (slot, &phys) in gpus.devices().to_vec().iter().enumerate() {
        let (min, avg, max) = gpus
            .monitor
            .summary(slot as u32, GpuMetricKind::DeviceBusyPct);
        println!("  GCD {phys}: {min:6.2} {avg:6.2} {max:6.2}");
    }
}
