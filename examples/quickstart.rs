//! Quickstart: monitor *this* process live through the real `/proc`.
//!
//! This is the "always-on monitoring library" usage mode of the paper:
//! start the asynchronous ZeroSum thread, do some work, and print the
//! utilization report. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::{Duration, Instant};
use zerosum::prelude::*;

fn busy_work(ms: u64) {
    let mut acc = 0u64;
    let until = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < until {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    std::hint::black_box(acc);
}

fn main() {
    // Sample at 10 Hz so a short demo still collects a history.
    let config = ZeroSumConfig {
        period_us: 100_000,
        ..Default::default()
    };
    let session = SelfMonitor::start(config, None).expect("start ZeroSum");
    println!("ZeroSum attached; doing some work...");

    // Phase 1: single-threaded compute.
    busy_work(600);
    // Phase 2: a few worker threads.
    let workers: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(|| busy_work(600)))
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // Phase 3: mostly idle (blocking).
    std::thread::sleep(Duration::from_millis(400));

    let (monitor, duration) = session.stop();
    let pid = monitor.processes()[0].info.pid;
    println!("{}", render_process_report(&monitor, pid, duration, None));
    if let Some(contention) = analyze(&monitor, pid) {
        println!("{}", contention.render());
    }
}
