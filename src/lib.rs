//! # ZeroSum-rs
//!
//! A from-scratch Rust reproduction of **ZeroSum: User Space Monitoring
//! of Resource Utilization and Contention on Heterogeneous HPC Systems**
//! (Kevin A. Huck and Allen D. Malony, HUST-23 / SC'23 workshops).
//!
//! ZeroSum monitors application processes, lightweight processes
//! (threads), and hardware resources — CPU hardware threads, memory, and
//! GPUs — entirely from user space through `/proc`-style interfaces, at
//! a sampling cost below 0.5% of runtime. This workspace provides:
//!
//! * the monitor itself ([`core`]: sampling, reports, contention
//!   analysis, configuration evaluation, progress detection, CSV export,
//!   live self-monitoring on real Linux);
//! * every substrate the paper's evaluation depends on, built from
//!   scratch: an hwloc-like topology model ([`topology`]), `/proc`
//!   parsers and sources ([`procfs`]), a CFS-like node scheduler
//!   simulation ([`sched`]), an OpenMP affinity runtime ([`omp`]), a
//!   simulated MPI with point-to-point byte accounting ([`mpi`]),
//!   simulated ROCm-SMI/NVML GPU backends ([`gpu`]), and statistics
//!   ([`stats`]);
//! * workload proxies ([`apps`]) and experiment harnesses regenerating
//!   every table and figure of the paper (the `zerosum-experiments`
//!   binaries).
//!
//! ## Quickstart (live, on Linux)
//!
//! ```no_run
//! use zerosum::prelude::*;
//!
//! let session = SelfMonitor::start(ZeroSumConfig::default(), None).unwrap();
//! // ... your application work ...
//! let (monitor, duration) = session.stop();
//! let pid = monitor.processes()[0].info.pid;
//! println!("{}", render_process_report(&monitor, pid, duration, None));
//! ```
//!
//! ## Quickstart (simulated Frontier node)
//!
//! See `examples/quickstart.rs` and the `zerosum-experiments` crate.

pub use zerosum_apps as apps;
pub use zerosum_core as core;
pub use zerosum_gpu as gpu;
pub use zerosum_mpi as mpi;
pub use zerosum_omp as omp;
pub use zerosum_proc as procfs;
pub use zerosum_sched as sched;
pub use zerosum_stats as stats;
pub use zerosum_topology as topology;

/// The most common imports for ZeroSum users.
pub mod prelude {
    pub use zerosum_core::{
        analyze, attach_monitor_threads, evaluate, evaluate_gpu_memory, render_findings,
        render_process_report, render_summary, run_baseline, run_monitored, ClusterMonitor,
        Finding, GpuStack, Liveness, Monitor, MonitorPlacement, ProcessInfo, ProgressTracker,
        SampleFeed, SelfMonitor, Severity, SimGpuLink, ZeroSumConfig,
    };
    pub use zerosum_proc::{LinuxProc, ProcSource};
    pub use zerosum_sched::{
        Behavior, NodeSim, SchedParams, SimProcSource, SrunConfig, WorkerSpec,
    };
    pub use zerosum_topology::{presets, CpuSet, Topology};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let topo = presets::frontier();
        assert_eq!(topo.complete_cpuset().count(), 128);
        let cfg = ZeroSumConfig::default();
        assert_eq!(cfg.period_us, 1_000_000);
    }
}
