#!/usr/bin/env bash
# The repo's CI gate. Fully offline: every step resolves from the
# workspace only. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "== zslint"
cargo run -q -p zerosum-analyze --bin zslint

echo "== zsaudit (lock-order + panic-reach + effect passes vs AUDIT_baseline.json, sanitizer drill)"
# --baseline diffs findings against the committed baseline (lock-order
# cycles fail regardless); the hot-path-alloc / nondeterminism /
# blocking effect passes ship with zero unbaselined findings; --drill
# asserts every dynamically observed lock-order edge appears in the
# static graph. Debug build on purpose: the runtime sanitizer only
# records under debug_assertions.
cargo run -q -p zerosum-cli --bin zerosum -- \
    audit --baseline AUDIT_baseline.json --drill > /tmp/zsaudit.out \
    || { cat /tmp/zsaudit.out; exit 1; }
tail -n 3 /tmp/zsaudit.out

echo "== zsaudit --explain smoke (witness traces)"
scripts/audit_explain.sh

echo "== trace checker (Table 2 scenario)"
cargo run -q -p zerosum-cli --bin zerosum -- analyze --scenario table2 --scale 100

echo "== chaos soak (21 seeded fault schedules + abnormal-exit drill)"
cargo run -q -p zerosum-cli --bin zerosum -- chaos --scale 150 --schedules 21 --seed 50336

echo "== cluster chaos soak (20 seeded node-fault plans, bounded-memory + abnormal-exit drills)"
cargo run -q --release -p zerosum-cli --bin zerosum -- \
    cluster-chaos --nodes 4 --rounds 24 --schedules 20 --seed 41248 --drill-rounds 1000000

echo "== loopback-TCP smoke (zerosum collect / zerosum stream over real sockets)"
# The in-process transport backend is covered by the cluster-chaos soak
# above; this stage exercises the same wire protocol over real loopback
# TCP. Sandboxes that forbid sockets are detected with `collect
# --probe` (exit 3) and the stage is skipped LOUDLY, never silently.
tcp_smoke() {
    local port_file out code
    port_file=$(mktemp)
    out=$(mktemp)
    rm -f "$port_file"
    cargo run -q --release -p zerosum-cli --bin zerosum -- \
        collect --nodes 2 --rounds 6 --period-ms 40 --port-file "$port_file" \
        > "$out" 2>&1 &
    local collect_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$port_file" ] && break
        sleep 0.1
    done
    if [ ! -s "$port_file" ]; then
        echo "tcp smoke: collector never published its port"
        kill "$collect_pid" 2>/dev/null || true
        cat "$out"
        return 1
    fi
    local addr
    addr=$(cat "$port_file")
    cargo run -q --release -p zerosum-cli --bin zerosum -- \
        stream --connect "$addr" --node ci-a --rank 0 --rounds 6 --period-ms 40 --seed 7 &
    local a_pid=$!
    cargo run -q --release -p zerosum-cli --bin zerosum -- \
        stream --connect "$addr" --node ci-b --rank 1 --rounds 6 --period-ms 40 --seed 8
    wait "$a_pid"
    wait "$collect_pid"
    code=$?
    cat "$out"
    rm -f "$port_file" "$out"
    return "$code"
}
set +e
cargo run -q --release -p zerosum-cli --bin zerosum -- collect --probe >/dev/null 2>&1
probe=$?
set -e
if [ "$probe" -eq 3 ]; then
    echo "tcp smoke: SKIPPED (sandbox forbids sockets; collect --probe exit 3)"
elif [ "$probe" -ne 0 ]; then
    echo "tcp smoke: probe failed with unexpected exit $probe"
    exit 1
else
    tcp_smoke
fi

echo "== bench regression gate (quick suite, release, ±15% of BENCH_baseline.json)"
# The gate runs last, right after minutes of full-tilt soak stages; a
# small shared CI host throttles under sustained load and only recovers
# after idling (measured: same binary swings 160k→232k samples/s
# across a 60 s settle). Settle before the first attempt and allow two
# increasingly-settled retries: a real regression fails all three runs.
bench_gate() {
    cargo run -q --release -p zerosum-cli --bin zerosum -- \
        bench --quick --check BENCH_baseline.json --max-regress 15
}
sleep 20
bench_gate \
    || { echo "bench gate failed once; settling 40s and retrying"; sleep 40; bench_gate; } \
    || { echo "bench gate failed twice; settling 90s and retrying"; sleep 90; bench_gate; }

echo "CI OK"
