#!/usr/bin/env bash
# The repo's CI gate. Fully offline: every step resolves from the
# workspace only. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "== zslint"
cargo run -q -p zerosum-analyze --bin zslint

echo "== trace checker (Table 2 scenario)"
cargo run -q -p zerosum-cli --bin zerosum -- analyze --scenario table2 --scale 100

echo "== chaos soak (21 seeded fault schedules + abnormal-exit drill)"
cargo run -q -p zerosum-cli --bin zerosum -- chaos --scale 150 --schedules 21 --seed 50336

echo "== bench regression gate (quick suite, release, ±15% of BENCH_baseline.json)"
cargo run -q --release -p zerosum-cli --bin zerosum -- \
    bench --quick --check BENCH_baseline.json --max-regress 15

echo "CI OK"
