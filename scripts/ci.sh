#!/usr/bin/env bash
# The repo's CI gate. Fully offline: every step resolves from the
# workspace only. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "== zslint"
cargo run -q -p zerosum-analyze --bin zslint

echo "== zsaudit (lock-order + panic-reach + effect passes vs AUDIT_baseline.json, sanitizer drill)"
# --baseline diffs findings against the committed baseline (lock-order
# cycles fail regardless); the hot-path-alloc / nondeterminism /
# blocking effect passes ship with zero unbaselined findings; --drill
# asserts every dynamically observed lock-order edge appears in the
# static graph. Debug build on purpose: the runtime sanitizer only
# records under debug_assertions.
cargo run -q -p zerosum-cli --bin zerosum -- \
    audit --baseline AUDIT_baseline.json --drill > /tmp/zsaudit.out \
    || { cat /tmp/zsaudit.out; exit 1; }
tail -n 3 /tmp/zsaudit.out

echo "== zsaudit --explain smoke (witness traces)"
scripts/audit_explain.sh

echo "== trace checker (Table 2 scenario)"
cargo run -q -p zerosum-cli --bin zerosum -- analyze --scenario table2 --scale 100

echo "== chaos soak (21 seeded fault schedules + abnormal-exit drill)"
cargo run -q -p zerosum-cli --bin zerosum -- chaos --scale 150 --schedules 21 --seed 50336

echo "== cluster chaos soak (20 seeded node-fault plans, bounded-memory + abnormal-exit drills)"
cargo run -q --release -p zerosum-cli --bin zerosum -- \
    cluster-chaos --nodes 4 --rounds 24 --schedules 20 --seed 41248 --drill-rounds 1000000

echo "== bench regression gate (quick suite, release, ±15% of BENCH_baseline.json)"
# One retry after a settle: the gate runs last, when a shared CI host may
# still be digesting the soak stages. A real regression fails both runs.
bench_gate() {
    cargo run -q --release -p zerosum-cli --bin zerosum -- \
        bench --quick --check BENCH_baseline.json --max-regress 15
}
bench_gate || { echo "bench gate failed once; settling and retrying"; sleep 5; bench_gate; }

echo "CI OK"
