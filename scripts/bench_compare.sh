#!/usr/bin/env bash
# Diff two saved `zerosum bench --json` files metric-by-metric, e.g.
#
#   scripts/bench_compare.sh BENCH_baseline.json BENCH_pr3.json
#
# Prints a delta table (positive = B larger); exits non-zero only on
# usage or parse errors — this is a reporting tool, the regression gate
# lives in `zerosum bench --check` (run by scripts/ci.sh).
set -euo pipefail

cd "$(dirname "$0")/.."

if [ $# -ne 2 ]; then
    echo "usage: $0 A.json B.json" >&2
    exit 2
fi

exec cargo run -q --release -p zerosum-cli --bin zerosum -- bench --compare "$1" "$2"
