#!/usr/bin/env bash
# Smoke test for `zerosum audit --explain`: the report must carry the
# effect-pass header counts and at least one witness trace, and stay
# clean against the committed baseline. Run from anywhere in the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

out=$(cargo run -q -p zerosum-cli --bin zerosum -- \
    audit --explain --baseline AUDIT_baseline.json)
echo "$out" | grep -q "effect sites" \
    || { echo "audit_explain: missing effect-pass header"; echo "$out"; exit 1; }
echo "$out" | grep -q "    trace: " \
    || { echo "audit_explain: no witness traces rendered"; echo "$out"; exit 1; }
echo "audit_explain: OK ($(echo "$out" | grep -c 'trace:') witness traces)"
