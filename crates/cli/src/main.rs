//! The `zerosum` launcher wrapper binary. See the library crate for the
//! logic; this shim only handles argv/exit-code plumbing.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Subcommands are dispatched before wrapper parsing, which treats
    // the first non-flag token as the command to launch.
    match args.first().map(String::as_str) {
        Some("analyze") => std::process::exit(run_analyze(&args[1..])),
        Some("bench") => std::process::exit(run_bench(&args[1..])),
        Some("chaos") => std::process::exit(run_chaos(&args[1..])),
        Some("cluster-chaos") => std::process::exit(run_cluster_chaos(&args[1..])),
        Some("collect") => std::process::exit(run_collect(&args[1..])),
        Some("stream") => std::process::exit(run_stream(&args[1..])),
        Some("lint") => std::process::exit(run_lint()),
        Some("audit") => std::process::exit(run_audit(&args[1..])),
        _ => {}
    }
    let opts = match zerosum_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("zerosum: {e}");
            std::process::exit(2);
        }
    };
    match zerosum_cli::run(&opts) {
        Ok(out) => {
            let rank = opts
                .rank
                .or_else(|| zerosum_cli::rank_from_env(|k| std::env::var(k).ok()));
            if zerosum_cli::should_print(&opts, rank) {
                print!("{}", out.report);
            }
            for p in &out.logs {
                eprintln!("zerosum: wrote {}", p.display());
            }
            std::process::exit(out.exit_code);
        }
        Err(e) => {
            eprintln!("zerosum: {e}");
            std::process::exit(1);
        }
    }
}

/// `zerosum analyze [--scale N] [--seed N] [--scenario NAME]` — run the
/// paper scenarios under the trace checker. Exit 0 iff every scenario
/// is clean.
fn run_analyze(args: &[String]) -> i32 {
    let mut scale: u32 = 100;
    let mut seed: u64 = 1;
    let mut scenario: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--scale" => value(&mut it, "--scale").and_then(|v| {
                v.parse()
                    .map(|s| scale = s)
                    .map_err(|e| format!("--scale: {e}"))
            }),
            "--seed" => value(&mut it, "--seed").and_then(|v| {
                v.parse()
                    .map(|s| seed = s)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--scenario" => value(&mut it, "--scenario").map(|v| scenario = Some(v)),
            "--help" | "-h" => {
                println!("usage: zerosum analyze [--scale N] [--seed N] [--scenario NAME]");
                println!("scenarios: table1 table2 table3 fig67 fig8-smt1 fig8-smt2 fig5");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum analyze: {e}");
            return 2;
        }
    }
    let reports = match scenario.as_deref() {
        None => zerosum_analyze::run_all(scale, seed),
        Some(name) => match run_one_scenario(name, scale, seed) {
            Some(r) => vec![r],
            None => {
                eprintln!("zerosum analyze: unknown scenario {name:?}");
                return 2;
            }
        },
    };
    let mut clean = true;
    for r in &reports {
        print!("{}", r.render());
        clean &= r.clean();
    }
    if clean {
        println!("analyze: all scenarios clean");
        0
    } else {
        println!("analyze: FAILED");
        1
    }
}

fn run_one_scenario(name: &str, scale: u32, seed: u64) -> Option<zerosum_analyze::ScenarioReport> {
    use zerosum_experiments::figures::{fig5, fig67_traced, fig8_traced_run};
    use zerosum_experiments::tables::{run_table_traced, TableConfig};
    let config = match name {
        "table1" => Some(TableConfig::Table1),
        "table2" => Some(TableConfig::Table2),
        "table3" => Some(TableConfig::Table3),
        _ => None,
    };
    if let Some(config) = config {
        let (_, trace, audit) = run_table_traced(config, scale, seed);
        return Some(zerosum_analyze::check_trace(name, &trace, &audit));
    }
    match name {
        "fig67" => {
            let (_, trace, audit) = fig67_traced(scale.max(150), seed);
            Some(zerosum_analyze::check_trace(name, &trace, &audit))
        }
        "fig8-smt1" | "fig8-smt2" => {
            let (_, trace, audit) = fig8_traced_run(name.ends_with("smt2"), scale, seed);
            Some(zerosum_analyze::check_trace(name, &trace, &audit))
        }
        "fig5" => {
            let run = fig5(&zerosum_apps::PicConfig::small());
            Some(zerosum_analyze::check_comm_matrix(name, &run.matrix))
        }
        _ => None,
    }
}

/// `zerosum bench [--quick] [--json] [--out FILE] [--check BASELINE]
/// [--max-regress PCT]` — run the performance suite and optionally gate
/// it against a committed baseline. `--compare A B` diffs two saved
/// bench files without measuring anything. Exit 0 on success, 1 when a
/// gated metric regresses past the limit, 2 on usage/IO errors.
fn run_bench(args: &[String]) -> i32 {
    let mut quick = false;
    let mut json = false;
    let mut out_file: Option<String> = None;
    let mut check_file: Option<String> = None;
    let mut max_regress = 15.0f64;
    let mut compare_files: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--quick" => {
                quick = true;
                Ok(())
            }
            "--json" => {
                json = true;
                Ok(())
            }
            "--out" => value(&mut it, "--out").map(|v| out_file = Some(v)),
            "--check" => value(&mut it, "--check").map(|v| check_file = Some(v)),
            "--max-regress" => value(&mut it, "--max-regress").and_then(|v| {
                v.parse()
                    .map(|p| max_regress = p)
                    .map_err(|e| format!("--max-regress: {e}"))
            }),
            "--compare" => value(&mut it, "--compare A").and_then(|a| {
                value(&mut it, "--compare A B").map(|b| compare_files = Some((a, b)))
            }),
            "--help" | "-h" => {
                println!(
                    "usage: zerosum bench [--quick] [--json] [--out FILE] \
                     [--check BASELINE [--max-regress PCT]]"
                );
                println!("       zerosum bench --compare A.json B.json");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum bench: {e}");
            return 2;
        }
    }
    let load = |path: &str| -> Result<zerosum_analyze::BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        zerosum_analyze::BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    if let Some((a, b)) = compare_files {
        return match (load(&a), load(&b)) {
            (Ok(ra), Ok(rb)) => {
                print!("{}", zerosum_analyze::bench_compare(&ra, &rb));
                0
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("zerosum bench: {e}");
                2
            }
        };
    }
    let report = zerosum_analyze::run_bench(quick);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("zerosum bench: {path}: {e}");
            return 2;
        }
        eprintln!("zerosum bench: wrote {path}");
    }
    if let Some(path) = check_file {
        let baseline = match load(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("zerosum bench: {e}");
                return 2;
            }
        };
        let failures = zerosum_analyze::bench_check(&report, &baseline, max_regress);
        if failures.is_empty() {
            println!("bench: within {max_regress:.0}% of {path}");
        } else {
            for f in &failures {
                println!("bench regression: {f}");
            }
            println!("bench: FAILED ({} regression(s))", failures.len());
            return 1;
        }
    }
    0
}

/// `zerosum chaos [--scale N] [--schedules N] [--seed N]` — run the
/// chaos soak (Tables 1–3 under seeded procfs fault schedules) and the
/// abnormal-exit drill. Exit 0 iff every schedule passes and the drill
/// leaves no torn files.
fn run_chaos(args: &[String]) -> i32 {
    let mut scale: u32 = 150;
    let mut schedules: usize = 21;
    let mut seed: u64 = 0xC4A0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--scale" => value(&mut it, "--scale").and_then(|v| {
                v.parse()
                    .map(|s| scale = s)
                    .map_err(|e| format!("--scale: {e}"))
            }),
            "--schedules" => value(&mut it, "--schedules").and_then(|v| {
                v.parse()
                    .map(|s| schedules = s)
                    .map_err(|e| format!("--schedules: {e}"))
            }),
            "--seed" => value(&mut it, "--seed").and_then(|v| {
                v.parse()
                    .map(|s| seed = s)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--help" | "-h" => {
                println!("usage: zerosum chaos [--scale N] [--schedules N] [--seed N]");
                println!("runs Tables 1-3 under seeded procfs fault schedules plus");
                println!("an abnormal-exit drill of the crash-safe export path");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum chaos: {e}");
            return 2;
        }
    }
    let reports = zerosum_analyze::run_suite(scale, schedules, seed);
    let mut clean = true;
    for r in &reports {
        print!("{}", r.render());
        clean &= r.passed();
    }
    let drill_dir =
        std::env::temp_dir().join(format!("zerosum-chaos-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&drill_dir);
    let drill_problems = zerosum_analyze::abnormal_exit_drill(&drill_dir);
    let _ = std::fs::remove_dir_all(&drill_dir);
    if drill_problems.is_empty() {
        println!("abnormal-exit drill: ok (partial logs intact, no torn files)");
    } else {
        clean = false;
        for p in &drill_problems {
            println!("abnormal-exit drill problem: {p}");
        }
    }
    if clean {
        println!("chaos: all {} schedule(s) clean", reports.len());
        0
    } else {
        println!("chaos: FAILED");
        1
    }
}

/// `zerosum cluster-chaos [--nodes N] [--rounds N] [--schedules N]
/// [--seed N] [--drill-rounds N]` — run the allocation-scale chaos
/// soak (seeded node-fault plans against the cluster supervision
/// layer) plus the bounded-memory drill. Exit 0 iff every plan passes
/// and the drill holds every series within its ring capacity.
fn run_cluster_chaos(args: &[String]) -> i32 {
    let mut nodes: usize = 4;
    let mut rounds: u32 = 24;
    let mut schedules: usize = 20;
    let mut seed: u64 = 0xA110;
    let mut drill_rounds: u64 = 1_000_000;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--nodes" => value(&mut it, "--nodes").and_then(|v| {
                v.parse()
                    .map(|s| nodes = s)
                    .map_err(|e| format!("--nodes: {e}"))
            }),
            "--rounds" => value(&mut it, "--rounds").and_then(|v| {
                v.parse()
                    .map(|s| rounds = s)
                    .map_err(|e| format!("--rounds: {e}"))
            }),
            "--schedules" => value(&mut it, "--schedules").and_then(|v| {
                v.parse()
                    .map(|s| schedules = s)
                    .map_err(|e| format!("--schedules: {e}"))
            }),
            "--seed" => value(&mut it, "--seed").and_then(|v| {
                v.parse()
                    .map(|s| seed = s)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--drill-rounds" => value(&mut it, "--drill-rounds").and_then(|v| {
                v.parse()
                    .map(|s| drill_rounds = s)
                    .map_err(|e| format!("--drill-rounds: {e}"))
            }),
            "--help" | "-h" => {
                println!(
                    "usage: zerosum cluster-chaos [--nodes N] [--rounds N] \
                     [--schedules N] [--seed N] [--drill-rounds N]"
                );
                println!("runs seeded node-fault plans (kills, stragglers, rejoins,");
                println!("clock skew) against the cluster supervision layer, the same");
                println!("plans again over lossy transports (frame drops, corruption,");
                println!("partitions), a loopback-TCP smoke, plus the bounded-memory");
                println!("drill over the monitor's ring series");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum cluster-chaos: {e}");
            return 2;
        }
    }
    let reports = zerosum_analyze::run_cluster_suite(nodes, rounds, schedules, seed);
    let mut clean = true;
    for r in &reports {
        print!("{}", r.render());
        clean &= r.passed();
    }
    // The same allocation judged through the wire: seeded transport
    // fault plans (drops, bit flips, truncation, delay, reorder,
    // disconnects, partitions, kills) over the in-process backend.
    let wire_reports =
        zerosum_analyze::run_transport_suite(nodes, rounds, schedules, seed.wrapping_add(0x51DE));
    for r in &wire_reports {
        print!("{}", r.render());
        clean &= r.passed();
    }
    match zerosum_analyze::tcp_loopback_smoke(3, 5) {
        None => println!("tcp-loopback smoke: SKIPPED (sandbox forbids sockets)"),
        Some(problems) if problems.is_empty() => {
            println!("tcp-loopback smoke: ok (3 nodes, aggregates bit-identical over TCP)")
        }
        Some(problems) => {
            clean = false;
            for p in &problems {
                println!("tcp-loopback smoke problem: {p}");
            }
        }
    }
    let drill_capacity = 4_096;
    let drill_problems = zerosum_analyze::bounded_memory_drill(drill_rounds, drill_capacity);
    if drill_problems.is_empty() {
        println!(
            "bounded-memory drill: ok ({drill_rounds} rounds held every series \
             within {drill_capacity} points)"
        );
    } else {
        clean = false;
        for p in &drill_problems {
            println!("bounded-memory drill problem: {p}");
        }
    }
    // A node dying mid-allocation is this suite's whole subject; the
    // crash-flush path must keep emitting PARTIAL/END-marked logs.
    let exit_dir = std::env::temp_dir().join(format!(
        "zerosum-cluster-chaos-drill-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&exit_dir);
    let exit_problems = zerosum_analyze::abnormal_exit_drill(&exit_dir);
    let _ = std::fs::remove_dir_all(&exit_dir);
    if exit_problems.is_empty() {
        println!("abnormal-exit drill: ok (PARTIAL/END markers present, no torn files)");
    } else {
        clean = false;
        for p in &exit_problems {
            println!("abnormal-exit drill problem: {p}");
        }
    }
    if clean {
        println!(
            "cluster-chaos: all {} plan(s) clean",
            reports.len() + wire_reports.len()
        );
        0
    } else {
        println!("cluster-chaos: FAILED");
        1
    }
}

/// `zerosum collect --listen ADDR [--probe] [--port-file F] [--nodes N]
/// [--rounds N] [--period-ms N]` — run the collector daemon over real
/// TCP: accept `--nodes` agent connections, drive `--rounds`
/// supervision rounds off received frames, and print the wire-side
/// allocation summary. `--probe` only binds and exits (0 = sockets
/// work, 3 = sandbox forbids them) so CI can decide to skip loudly.
/// Exit 0 iff every node's aggregate was delivered.
fn run_collect(args: &[String]) -> i32 {
    let mut listen = String::from("127.0.0.1:0");
    let mut probe = false;
    let mut port_file: Option<String> = None;
    let mut nodes: usize = 1;
    let mut rounds: u32 = 10;
    let mut period_ms: u64 = 100;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--listen" => value(&mut it, "--listen").map(|v| listen = v),
            "--probe" => {
                probe = true;
                Ok(())
            }
            "--port-file" => value(&mut it, "--port-file").map(|v| port_file = Some(v)),
            "--nodes" => value(&mut it, "--nodes").and_then(|v| {
                v.parse()
                    .map(|s| nodes = s)
                    .map_err(|e| format!("--nodes: {e}"))
            }),
            "--rounds" => value(&mut it, "--rounds").and_then(|v| {
                v.parse()
                    .map(|s| rounds = s)
                    .map_err(|e| format!("--rounds: {e}"))
            }),
            "--period-ms" => value(&mut it, "--period-ms").and_then(|v| {
                v.parse()
                    .map(|s| period_ms = s)
                    .map_err(|e| format!("--period-ms: {e}"))
            }),
            "--help" | "-h" => {
                println!(
                    "usage: zerosum collect [--listen ADDR] [--probe] [--port-file F] \
                     [--nodes N] [--rounds N] [--period-ms N]"
                );
                println!("collector daemon: accepts `zerosum stream` agents over TCP and");
                println!("drives supervision rounds off their frames (DESIGN.md §12)");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum collect: {e}");
            return 2;
        }
    }
    let acceptor = match zerosum_net::Acceptor::bind(&listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("zerosum collect: bind {listen}: {e}");
            // Distinct exit for "no sockets here" — CI skips loudly.
            return 3;
        }
    };
    let addr = match acceptor.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => {
            eprintln!("zerosum collect: local_addr: {e}");
            return 3;
        }
    };
    eprintln!("zerosum collect: listening on {addr}");
    if let Some(pf) = &port_file {
        if let Err(e) = std::fs::write(pf, &addr) {
            eprintln!("zerosum collect: {pf}: {e}");
            return 2;
        }
    }
    if probe {
        return 0;
    }
    let period = std::time::Duration::from_millis(period_ms.max(1));
    let mut collector = zerosum_net::Collector::with_config(zerosum_net::CollectorConfig {
        period_s: period.as_secs_f64(),
        ..Default::default()
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut accepted = 0;
    while accepted < nodes {
        match acceptor.poll_accept(zerosum_net::DEFAULT_WINDOW) {
            Ok(Some(link)) => {
                collector.add_link(Box::new(link));
                accepted += 1;
                eprintln!("zerosum collect: {accepted}/{nodes} node(s) connected");
            }
            Ok(None) => {
                if std::time::Instant::now() > deadline {
                    eprintln!("zerosum collect: timed out waiting for {nodes} node(s)");
                    return 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("zerosum collect: accept: {e}");
                return 1;
            }
        }
    }
    for _ in 0..rounds {
        // Pump a few times within the period so acks flow promptly.
        for _ in 0..4 {
            std::thread::sleep(period / 4);
            collector.pump_frames();
        }
        collector.run_round();
    }
    // Drain: final aggregates retransmit until acked.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while collector.wire_aggregates().len() < nodes && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
        collector.pump_frames();
    }
    print!("{}", collector.render_summary());
    if collector.wire_aggregates().len() == nodes {
        0
    } else {
        eprintln!(
            "zerosum collect: only {}/{} aggregate(s) delivered",
            collector.wire_aggregates().len(),
            nodes
        );
        1
    }
}

/// `zerosum stream --connect ADDR [--node NAME] [--rank N] [--rounds N]
/// [--period-ms N] [--seed N]` — run one node agent over real TCP: a
/// simulated node samples every period and streams
/// Hello/heartbeat/detail frames, then ships its final aggregate until
/// acked. Exit 0 iff the aggregate was acknowledged.
fn run_stream(args: &[String]) -> i32 {
    let mut connect: Option<String> = None;
    let mut node = String::from("stream0000");
    let mut rank: u32 = 0;
    let mut rounds: u32 = 10;
    let mut period_ms: u64 = 100;
    let mut seed: u64 = 42;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--connect" => value(&mut it, "--connect").map(|v| connect = Some(v)),
            "--node" => value(&mut it, "--node").map(|v| node = v),
            "--rank" => value(&mut it, "--rank").and_then(|v| {
                v.parse()
                    .map(|s| rank = s)
                    .map_err(|e| format!("--rank: {e}"))
            }),
            "--rounds" => value(&mut it, "--rounds").and_then(|v| {
                v.parse()
                    .map(|s| rounds = s)
                    .map_err(|e| format!("--rounds: {e}"))
            }),
            "--period-ms" => value(&mut it, "--period-ms").and_then(|v| {
                v.parse()
                    .map(|s| period_ms = s)
                    .map_err(|e| format!("--period-ms: {e}"))
            }),
            "--seed" => value(&mut it, "--seed").and_then(|v| {
                v.parse()
                    .map(|s| seed = s)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--help" | "-h" => {
                println!(
                    "usage: zerosum stream --connect ADDR [--node NAME] [--rank N] \
                     [--rounds N] [--period-ms N] [--seed N]"
                );
                println!("node agent: streams monitoring frames to `zerosum collect`");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum stream: {e}");
            return 2;
        }
    }
    let Some(addr) = connect else {
        eprintln!("zerosum stream: --connect ADDR is required");
        return 2;
    };
    let link = match zerosum_net::TcpLink::dial(&addr, zerosum_net::DEFAULT_WINDOW) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("zerosum stream: dial {addr}: {e}");
            return 3;
        }
    };
    let mut agent = zerosum_net::NodeAgent::new(link, node.clone());
    // The streamed node is the cluster-chaos simulated node: a pinned
    // rank with an OpenMP worker, sampled once per period.
    let period = std::time::Duration::from_millis(period_ms.max(1));
    let period_us = period.as_micros() as u64;
    let mut sim = zerosum_sched::NodeSim::new(
        zerosum_topology::presets::laptop_i7_1165g7(),
        zerosum_sched::SchedParams {
            seed: seed | 1,
            ..Default::default()
        },
    );
    sim.set_hostname(&node);
    let mask = zerosum_topology::CpuSet::from_indices([0u32, 1]);
    let work = zerosum_sched::Behavior::FiniteCompute {
        remaining_us: u64::from(rounds) * period_us,
        chunk_us: 10_000,
    };
    let pid = sim.spawn_process("rank", mask.clone(), 1_024, work.clone());
    sim.spawn_task(pid, "OpenMP", None, work, false);
    let mut mon = zerosum_core::Monitor::new(zerosum_core::ZeroSumConfig::scaled(10));
    mon.watch_process(zerosum_core::ProcessInfo {
        pid,
        rank: Some(rank),
        hostname: node.clone(),
        gpus: vec![],
        cpus_allowed: mask,
    });
    for r in 0..rounds {
        sim.run_for(period_us);
        let t_s = sim.now_us() as f64 / 1e6;
        {
            let src = zerosum_sched::SimProcSource::new(&sim);
            mon.sample(t_s, &src);
        }
        let round = u64::from(r) + 1;
        agent.begin_round(round, t_s);
        if let Some(w) = mon.process(pid) {
            for t in w.lwps.tracks() {
                agent.send_detail(round, t.tid, t.cpu_fraction() * 100.0);
            }
        }
        for _ in 0..4 {
            std::thread::sleep(period / 4);
            agent.tick();
        }
    }
    let agg = zerosum_core::NodeAggregate::from_monitor(&node, &mon);
    agent.finish(u64::from(rounds), agg);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !agent.done() {
        if std::time::Instant::now() > deadline {
            eprintln!("zerosum stream: aggregate never acknowledged");
            return 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        agent.tick();
    }
    println!(
        "stream: {node} delivered its aggregate after {rounds} round(s) \
         ({} frame(s) sent, {} detail(s) shed)",
        agent.stats.frames_tx, agent.stats.details_shed
    );
    0
}

/// `zerosum audit [--json] [--explain] [--root DIR] [--baseline FILE]
/// [--write-baseline FILE] [--drill]` — run the interprocedural
/// concurrency and effect audit (lock-order cycles, locks held across
/// blocking ops, panic-reachability, hot-path allocation,
/// nondeterminism, blocking-in-scope). With `--baseline`, only
/// findings beyond the committed baseline fail (lock cycles always
/// fail). `--explain` prints the witness trace (shortest root→site
/// call chain) under each finding. `--drill` additionally runs
/// monitored workloads under the runtime lock-order sanitizer and
/// checks every observed edge against the static graph. Exit 0 clean,
/// 1 findings/drill failure, 2 usage/IO errors.
fn run_audit(args: &[String]) -> i32 {
    let mut json = false;
    let mut explain = false;
    let mut drill = false;
    let mut root_arg: Option<String> = None;
    let mut baseline_file: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>, flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("{flag} requires a value")),
        };
        let parsed = match arg.as_str() {
            "--json" => {
                json = true;
                Ok(())
            }
            "--explain" => {
                explain = true;
                Ok(())
            }
            "--drill" => {
                drill = true;
                Ok(())
            }
            "--root" => value(&mut it, "--root").map(|v| root_arg = Some(v)),
            "--baseline" => value(&mut it, "--baseline").map(|v| baseline_file = Some(v)),
            "--write-baseline" => {
                value(&mut it, "--write-baseline").map(|v| write_baseline = Some(v))
            }
            "--help" | "-h" => {
                println!(
                    "usage: zerosum audit [--json] [--explain] [--root DIR] [--baseline FILE] \
                     [--write-baseline FILE] [--drill]"
                );
                println!(
                    "static lock-order + panic-reachability + effect audit; \
                     see DESIGN.md §10-§11"
                );
                println!("  --explain   print the witness call chain under each finding");
                return 0;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("zerosum audit: {e}");
            return 2;
        }
    }
    let root = match root_arg {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("zerosum audit: {e}");
                    return 2;
                }
            };
            match zerosum_analyze::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "zerosum audit: no workspace root found above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    let report = match zerosum_analyze::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("zerosum audit: {e}");
            return 2;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_with(explain));
    }
    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, report.baseline_json()) {
            eprintln!("zerosum audit: {path}: {e}");
            return 2;
        }
        eprintln!("zerosum audit: wrote {path}");
        // Recording a baseline succeeds unless the unbaselineable pass
        // (lock cycles) fails.
        return if report.cycles().is_empty() { 0 } else { 1 };
    }
    let mut failed = false;
    match baseline_file {
        Some(path) => {
            let base = match std::fs::read_to_string(&path)
                .map_err(|e| format!("{path}: {e}"))
                .and_then(|t| zerosum_analyze::baseline_from_json(&t))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("zerosum audit: {e}");
                    return 2;
                }
            };
            let beyond = report.beyond_baseline(&base);
            if beyond.is_empty() {
                println!("audit: clean against baseline {path}");
            } else {
                for f in &beyond {
                    println!("audit: NEW {}: {}:{}: {}", f.pass, f.file, f.line, f.detail);
                    if explain && !f.witness.is_empty() {
                        println!("    trace: {}", f.witness.join(" -> "));
                    }
                }
                println!("audit: {} finding(s) beyond baseline", beyond.len());
                failed = true;
            }
        }
        None => {
            if !report.findings.is_empty() {
                failed = true;
            }
        }
    }
    // Lock cycles fail regardless of any baseline.
    if !report.cycles().is_empty() {
        println!(
            "audit: {} lock-order cycle(s) — never baselineable",
            report.cycles().len()
        );
        failed = true;
    }
    if drill {
        let d = zerosum_analyze::audit::drill::run_drill(&report);
        print!("{}", d.render());
        if !d.ok() {
            failed = true;
        }
    }
    if failed {
        1
    } else {
        0
    }
}

/// `zerosum lint` — run the repo lint pass from the workspace root.
fn run_lint() -> i32 {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("zerosum lint: {e}");
            return 2;
        }
    };
    let Some(root) = zerosum_analyze::find_workspace_root(&cwd) else {
        eprintln!(
            "zerosum lint: no workspace root found above {}",
            cwd.display()
        );
        return 2;
    };
    let stale = match zerosum_analyze::lint::stale_growth_entries(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("zerosum lint: {e}");
            return 2;
        }
    };
    for entry in &stale {
        println!("lint: [stale-allowlist] ALLOWED_GROWTH_FIELDS entry `{entry}` matches no `.push(` site");
    }
    match zerosum_analyze::lint_repo(&root) {
        Ok(v) => {
            for x in &v {
                println!("{x}");
            }
            let errors = v.iter().filter(|x| !x.rule.is_note()).count() + stale.len();
            let notes = v.len() + stale.len() - errors;
            if errors == 0 {
                println!("lint: clean ({}), {notes} note(s)", root.display());
                0
            } else {
                println!("lint: {errors} violation(s), {notes} note(s)");
                1
            }
        }
        Err(e) => {
            eprintln!("zerosum lint: {e}");
            2
        }
    }
}
