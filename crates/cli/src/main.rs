//! The `zerosum` launcher wrapper binary. See the library crate for the
//! logic; this shim only handles argv/exit-code plumbing.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match zerosum_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("zerosum: {e}");
            std::process::exit(2);
        }
    };
    match zerosum_cli::run(&opts) {
        Ok(out) => {
            let rank = opts
                .rank
                .or_else(|| zerosum_cli::rank_from_env(|k| std::env::var(k).ok()));
            if zerosum_cli::should_print(&opts, rank) {
                print!("{}", out.report);
            }
            for p in &out.logs {
                eprintln!("zerosum: wrote {}", p.display());
            }
            std::process::exit(out.exit_code);
        }
        Err(e) => {
            eprintln!("zerosum: {e}");
            std::process::exit(1);
        }
    }
}
