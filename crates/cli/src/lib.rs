//! # zerosum-cli
//!
//! The `zerosum` launcher wrapper — the reproduction of the paper's
//! `zerosum-mpi` wrapper script (`srun -n8 zerosum-mpi miniqmc`): spawn
//! the application as a child process and monitor it *from outside*
//! through `/proc/<pid>`, then print the utilization report, contention
//! summary, and configuration-evaluation findings at exit.
//!
//! All the logic lives here in the library (unit-testable); `main.rs` is
//! a thin shim.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::Command;
use zerosum_core::{
    analyze, evaluate, export, render_findings, render_process_report, SelfMonitor, ZeroSumConfig,
};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Sampling period, ms (`--period-ms`, default 1000 like the paper).
    pub period_ms: u64,
    /// Where to write the per-process log (`--log-dir`).
    pub log_dir: Option<PathBuf>,
    /// MPI rank (`--rank`, else auto-detected from the launcher
    /// environment).
    pub rank: Option<u32>,
    /// Pin the monitor thread to a hardware thread (`--monitor-hwt N`) —
    /// the paper's runtime-configurable monitor placement.
    pub monitor_hwt: Option<u32>,
    /// Suppress the stdout report on non-zero ranks (`--quiet-ranks`,
    /// default true; rank 0 always prints).
    pub quiet_ranks: bool,
    /// Print a live heartbeat line each period (`--heartbeat`) — the
    /// §3.3 "the application is viable" signal.
    pub heartbeat: bool,
    /// The command to launch.
    pub command: Vec<String>,
}

/// Errors from CLI parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No command given after the options / `--`.
    MissingCommand,
    /// Unknown or malformed flag.
    BadFlag(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no command to launch; usage: {USAGE}"),
            CliError::BadFlag(fl) => write!(f, "bad flag {fl:?}; usage: {USAGE}"),
        }
    }
}

/// One-line usage string.
pub const USAGE: &str =
    "zerosum [--period-ms N] [--log-dir DIR] [--rank N] [--monitor-hwt N] [--verbose-ranks] [--heartbeat] -- <command> [args…]";

/// Detects the MPI rank from common launcher environment variables
/// (Slurm, Open MPI, MPICH/PMI, Flux).
pub fn rank_from_env(get: impl Fn(&str) -> Option<String>) -> Option<u32> {
    for var in [
        "SLURM_PROCID",
        "OMPI_COMM_WORLD_RANK",
        "PMI_RANK",
        "PMIX_RANK",
        "FLUX_TASK_RANK",
    ] {
        if let Some(v) = get(var) {
            if let Ok(r) = v.trim().parse() {
                return Some(r);
            }
        }
    }
    None
}

/// Parses argv (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let mut opts = CliOptions {
        period_ms: 1_000,
        log_dir: None,
        rank: None,
        monitor_hwt: None,
        quiet_ranks: true,
        heartbeat: false,
        command: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--" => {
                opts.command = it.cloned().collect();
                break;
            }
            "--period-ms" => {
                opts.period_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or_else(|| CliError::BadFlag(a.clone()))?;
            }
            "--log-dir" => {
                opts.log_dir = Some(PathBuf::from(
                    it.next().ok_or_else(|| CliError::BadFlag(a.clone()))?,
                ));
            }
            "--rank" => {
                opts.rank = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| CliError::BadFlag(a.clone()))?,
                );
            }
            "--monitor-hwt" => {
                opts.monitor_hwt = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| CliError::BadFlag(a.clone()))?,
                );
            }
            "--verbose-ranks" => opts.quiet_ranks = false,
            "--heartbeat" => opts.heartbeat = true,
            flag if flag.starts_with("--") => return Err(CliError::BadFlag(flag.to_string())),
            _ => {
                // First non-flag token starts the command.
                opts.command.push(a.clone());
                opts.command.extend(it.cloned());
                break;
            }
        }
    }
    if opts.command.is_empty() {
        return Err(CliError::MissingCommand);
    }
    Ok(opts)
}

/// The wrapper's exit report.
#[derive(Debug)]
pub struct WrapOutcome {
    /// Child exit code (255 when terminated by a signal).
    pub exit_code: i32,
    /// The rendered report (printed on rank 0 / single-process runs).
    pub report: String,
    /// Paths of log files written, if a log dir was given.
    pub logs: Vec<PathBuf>,
}

/// Launches and monitors the command; blocks until it exits.
pub fn run(opts: &CliOptions) -> Result<WrapOutcome, String> {
    let rank = opts
        .rank
        .or_else(|| rank_from_env(|k| std::env::var(k).ok()));
    let mut config = ZeroSumConfig {
        period_us: opts.period_ms * 1_000,
        signal_handler: false, // the child owns its signal disposition
        ..Default::default()
    };
    if let Some(h) = opts.monitor_hwt {
        config.placement = zerosum_core::MonitorPlacement::Hwt(h);
    }
    let mut child = Command::new(&opts.command[0])
        .args(&opts.command[1..])
        .spawn()
        .map_err(|e| format!("failed to launch {:?}: {e}", opts.command[0]))?;
    let session = SelfMonitor::start_for_pid(config, child.id(), rank)
        .map_err(|e| format!("failed to attach monitor: {e}"))?;
    let status = if opts.heartbeat {
        // Poll so a heartbeat can be emitted every period while the
        // child runs.
        let period = std::time::Duration::from_millis(opts.period_ms);
        loop {
            match child.try_wait().map_err(|e| format!("wait failed: {e}"))? {
                Some(st) => break st,
                None => {
                    std::thread::sleep(period);
                    let line = session.with_monitor(|m| {
                        let threads: usize = m
                            .processes()
                            .iter()
                            .map(|w| w.lwps.tracks().filter(|t| !t.exited).count())
                            .sum();
                        format!(
                            "ZeroSum: t={:.0}s, {} live thread(s), sample {}",
                            session.elapsed_s(),
                            threads,
                            m.stats.rounds
                        )
                    });
                    // Direct write: a closed stderr must not kill the
                    // wrapper (`eprintln!` would panic).
                    use std::io::Write as _;
                    let _ = writeln!(std::io::stderr(), "{line}");
                }
            }
        }
    } else {
        child.wait().map_err(|e| format!("wait failed: {e}"))?
    };
    let (monitor, duration) = session.stop();
    let pid = monitor.processes()[0].info.pid;
    let mut report = render_process_report(&monitor, pid, duration, None);
    if let Some(c) = analyze(&monitor, pid) {
        report.push('\n');
        report.push_str(&c.render());
    }
    // Evaluate against the *discovered* topology of this machine.
    let topo = zerosum_topology::discover();
    report.push('\n');
    report.push_str(&render_findings(&evaluate(&monitor, &topo)));
    let logs = match &opts.log_dir {
        Some(dir) => export::write_logs(&monitor, dir, duration, |p| {
            render_process_report(&monitor, p, duration, None)
        })
        .map_err(|e| format!("failed to write logs: {e}"))?,
        None => Vec::new(),
    };
    Ok(WrapOutcome {
        exit_code: status.code().unwrap_or(255),
        report,
        logs,
    })
}

/// Whether this rank should print the stdout report.
pub fn should_print(opts: &CliOptions, rank: Option<u32>) -> bool {
    !opts.quiet_ranks || rank.unwrap_or(0) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_full_flags() {
        let o = parse_args(&s(&[
            "--period-ms",
            "250",
            "--log-dir",
            "/tmp/zs",
            "--rank",
            "3",
            "--monitor-hwt",
            "71",
            "--",
            "miniqmc",
            "-g",
            "2 2 2",
        ]))
        .unwrap();
        assert_eq!(o.period_ms, 250);
        assert_eq!(o.log_dir, Some(PathBuf::from("/tmp/zs")));
        assert_eq!(o.rank, Some(3));
        assert_eq!(o.monitor_hwt, Some(71));
        assert_eq!(o.command, s(&["miniqmc", "-g", "2 2 2"]));
    }

    #[test]
    fn parse_bare_command_without_separator() {
        let o = parse_args(&s(&["sleep", "1"])).unwrap();
        assert_eq!(o.command, s(&["sleep", "1"]));
        assert_eq!(o.period_ms, 1_000); // the paper's default
    }

    #[test]
    fn command_flags_are_not_eaten() {
        // Flags after the command belong to the command.
        let o = parse_args(&s(&["stress", "--cpu", "4"])).unwrap();
        assert_eq!(o.command, s(&["stress", "--cpu", "4"]));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse_args(&s(&[])), Err(CliError::MissingCommand));
        assert_eq!(parse_args(&s(&["--"])), Err(CliError::MissingCommand));
        assert_eq!(
            parse_args(&s(&["--period-ms", "x", "--", "a"])),
            Err(CliError::BadFlag("--period-ms".into()))
        );
        assert_eq!(
            parse_args(&s(&["--period-ms", "0", "--", "a"])),
            Err(CliError::BadFlag("--period-ms".into()))
        );
        assert_eq!(
            parse_args(&s(&["--bogus", "--", "a"])),
            Err(CliError::BadFlag("--bogus".into()))
        );
    }

    #[test]
    fn rank_detection_priority() {
        let r = rank_from_env(|k| match k {
            "SLURM_PROCID" => Some("5".into()),
            "PMI_RANK" => Some("9".into()),
            _ => None,
        });
        assert_eq!(r, Some(5));
        assert_eq!(rank_from_env(|_| None), None);
        let r = rank_from_env(|k| (k == "FLUX_TASK_RANK").then(|| "2".into()));
        assert_eq!(r, Some(2));
    }

    #[test]
    fn print_policy() {
        let mut o = parse_args(&s(&["true"])).unwrap();
        assert!(should_print(&o, None));
        assert!(should_print(&o, Some(0)));
        assert!(!should_print(&o, Some(3)));
        o.quiet_ranks = false;
        assert!(should_print(&o, Some(3)));
    }

    #[test]
    fn heartbeat_flag_parses_and_wraps() {
        let opts = parse_args(&s(&[
            "--heartbeat",
            "--period-ms",
            "60",
            "--",
            "/bin/sh",
            "-c",
            "i=0; while [ $i -lt 100000 ]; do i=$((i+1)); done",
        ]))
        .unwrap();
        assert!(opts.heartbeat);
        let out = run(&opts).expect("wrap run");
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn wraps_a_real_child_process() {
        // Launch a real short-lived child and monitor it from outside.
        let opts = parse_args(&s(&[
            "--period-ms",
            "50",
            "--",
            "/bin/sh",
            "-c",
            "i=0; while [ $i -lt 200000 ]; do i=$((i+1)); done",
        ]))
        .unwrap();
        let out = run(&opts).expect("wrap run");
        assert_eq!(out.exit_code, 0);
        assert!(out.report.contains("Duration of execution:"));
        assert!(out.report.contains("LWP (thread) Summary:"));
        assert!(out.report.contains("Contention Summary:"));
        assert!(out.report.contains("Configuration Evaluation:"));
    }

    #[test]
    fn missing_binary_is_an_error() {
        let opts = parse_args(&s(&["/definitely/not/here"])).unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("failed to launch"));
    }

    #[test]
    fn child_exit_code_propagates() {
        let opts = parse_args(&s(&["/bin/sh", "-c", "exit 7"])).unwrap();
        let out = run(&opts).expect("wrap run");
        assert_eq!(out.exit_code, 7);
    }

    #[test]
    fn logs_written_when_requested() {
        let dir = std::env::temp_dir().join(format!("zs-cli-{}", std::process::id()));
        let opts = parse_args(&s(&[
            "--period-ms",
            "50",
            "--log-dir",
            dir.to_str().unwrap(),
            "--rank",
            "2",
            "--",
            "/bin/sh",
            "-c",
            "exit 0",
        ]))
        .unwrap();
        let out = run(&opts).expect("wrap run");
        assert_eq!(out.logs.len(), 1);
        assert!(out.logs[0].ends_with("zerosum.00002.log"));
        let content = std::fs::read_to_string(&out.logs[0]).unwrap();
        assert!(content.contains("=== LWP time series (CSV) ==="));
        std::fs::remove_dir_all(&dir).ok();
    }
}
