//! One bench target per paper artifact: regenerating each listing,
//! table, and figure at a reduced scale. The timings measure the cost of
//! the *whole harness* (simulate + monitor + render), documenting what a
//! full `run_all` sweep costs and guarding against regressions in the
//! simulation engine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zerosum_apps::PicConfig;
use zerosum_bench::{BENCH_SCALE, BENCH_SEED};
use zerosum_experiments::figures::{fig5, fig67, fig8};
use zerosum_experiments::listings::{listing1, listing2};
use zerosum_experiments::tables::{run_table, TableConfig};

fn bench_listing1(c: &mut Criterion) {
    c.bench_function("listing1_render", |b| b.iter(|| black_box(listing1())));
}

fn bench_listing2(c: &mut Criterion) {
    let mut g = c.benchmark_group("listing2");
    g.sample_size(10);
    g.bench_function("listing2_report", |b| {
        b.iter(|| black_box(listing2(BENCH_SCALE, BENCH_SEED)))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_default", |b| {
        b.iter(|| black_box(run_table(TableConfig::Table1, BENCH_SCALE, BENCH_SEED)))
    });
    g.bench_function("table2_c7", |b| {
        b.iter(|| black_box(run_table(TableConfig::Table2, BENCH_SCALE, BENCH_SEED)))
    });
    g.bench_function("table3_bound", |b| {
        b.iter(|| black_box(run_table(TableConfig::Table3, BENCH_SCALE, BENCH_SEED)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    let cfg = PicConfig {
        ranks: 256,
        steps: 50,
        ..PicConfig::figure5()
    };
    g.bench_function("fig5_heatmap", |b| b.iter(|| black_box(fig5(&cfg))));
    g.finish();
}

fn bench_fig67(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig67");
    g.sample_size(10);
    g.bench_function("fig6_fig7_series", |b| {
        b.iter(|| black_box(fig67(BENCH_SCALE, BENCH_SEED)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("fig8_overhead_pair", |b| {
        b.iter(|| black_box(fig8(true, 2, BENCH_SCALE, BENCH_SEED)))
    });
    g.finish();
}

criterion_group!(
    artifacts,
    bench_listing1,
    bench_listing2,
    bench_tables,
    bench_fig5,
    bench_fig67,
    bench_fig8
);
criterion_main!(artifacts);
