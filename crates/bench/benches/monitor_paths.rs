//! Micro-benchmarks of the monitoring hot paths: the per-sample work the
//! paper budgets at <0.5% of runtime. These are the operations the
//! ZeroSum thread performs every period — procfs parsing, cpuset
//! handling, report generation — plus the analysis-side statistics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use zerosum_proc::{format, parse, CpuTimes, SystemStat, TaskStat, TaskState};
use zerosum_stats::{welch_t_test, Summary};
use zerosum_topology::CpuSet;

fn frontier_system_stat_text() -> String {
    // A realistic 128-CPU /proc/stat like the monitor reads on Frontier.
    let cpus: Vec<(u32, CpuTimes)> = (0..128)
        .map(|i| {
            (
                i,
                CpuTimes {
                    user: 123_456 + i as u64 * 13,
                    nice: 3,
                    system: 23_456 + i as u64 * 7,
                    idle: 999_999 - i as u64 * 11,
                    iowait: 42,
                    irq: 5,
                    softirq: 17,
                    steal: 0,
                },
            )
        })
        .collect();
    let total = cpus
        .iter()
        .fold(CpuTimes::default(), |acc, (_, t)| acc.add(t));
    format::format_system_stat(&SystemStat {
        total,
        cpus,
        ctxt: 123_456_789,
        processes: 54_321,
    })
}

fn bench_parsers(c: &mut Criterion) {
    let stat_text = frontier_system_stat_text();
    c.bench_function("parse_system_stat_128cpu", |b| {
        b.iter(|| black_box(parse::parse_system_stat(&stat_text).unwrap()))
    });
    let task_line = format::format_task_stat(&TaskStat {
        tid: 51_384,
        comm: "miniqmc".into(),
        state: TaskState::Running,
        minflt: 123_456,
        majflt: 3,
        utime: 640_000,
        stime: 12_600,
        nice: 0,
        num_threads: 9,
        processor: 3,
        nswap: 0,
        starttime: 0,
    });
    c.bench_function("parse_task_stat", |b| {
        b.iter(|| black_box(parse::parse_task_stat(&task_line).unwrap()))
    });
    let status_text = "Name:\tminiqmc\nState:\tR (running)\nTgid:\t51334\nPid:\t51384\n\
                       VmSize:\t 900000 kB\nVmHWM:\t 123456 kB\nVmRSS:\t 120000 kB\n\
                       Cpus_allowed_list:\t1-7,9-15,17-23,25-31\n\
                       voluntary_ctxt_switches:\t365742\nnonvoluntary_ctxt_switches:\t3\n";
    c.bench_function("parse_task_status", |b| {
        b.iter(|| black_box(parse::parse_task_status(status_text).unwrap()))
    });
}

fn bench_cpuset(c: &mut Criterion) {
    let list = "1-7,9-15,17-23,25-31,33-39,41-47,49-55,57-63,65-71,73-79,81-87,89-95,\
                97-103,105-111,113-119,121-127";
    c.bench_function("cpuset_parse_list_wide", |b| {
        b.iter(|| black_box(CpuSet::parse_list(list).unwrap()))
    });
    let set = CpuSet::parse_list(list).unwrap();
    c.bench_function("cpuset_to_list_string", |b| {
        b.iter(|| black_box(set.to_list_string()))
    });
    let other = CpuSet::range(60, 90);
    c.bench_function("cpuset_intersection", |b| {
        b.iter(|| black_box(set.intersection(&other)))
    });
}

fn bench_stats(c: &mut Criterion) {
    let a: Vec<f64> = (0..10).map(|i| 27.30 + i as f64 * 0.01).collect();
    let b2: Vec<f64> = (0..10).map(|i| 27.35 + i as f64 * 0.012).collect();
    c.bench_function("welch_t_test_10x10", |b| {
        b.iter(|| black_box(welch_t_test(&a, &b2).unwrap()))
    });
    c.bench_function("summary_fold_1000", |b| {
        b.iter_batched(
            || (0..1000).map(|i| (i as f64).sin()).collect::<Vec<f64>>(),
            |xs| black_box(Summary::from_slice(&xs)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_heatmap(c: &mut Criterion) {
    use zerosum_mpi::{heatmap, patterns, CommWorld};
    let world = CommWorld::new(512);
    patterns::halo_1d(&world, 2, 17_500_000);
    let m = world.matrix();
    c.bench_function("heatmap_intensity_512_to_64", |b| {
        b.iter(|| black_box(heatmap::intensity_grid(&m, 64)))
    });
    c.bench_function("halo_1d_512ranks_step", |b| {
        b.iter(|| patterns::halo_1d(black_box(&world), 2, 17_500_000))
    });
}

criterion_group!(
    monitor_paths,
    bench_parsers,
    bench_cpuset,
    bench_stats,
    bench_heatmap
);
criterion_main!(monitor_paths);
