//! Ablations of the design choices called out in DESIGN.md §4:
//!
//! 1. **Sampling period** — the paper fixes 1 Hz; sweep the period and
//!    measure how the end-to-end harness cost and the monitor's simulated
//!    footprint change.
//! 2. **Monitor placement** — last HWT (paper default) vs first HWT vs
//!    unbound.
//! 3. **Barrier spin budget** — the KMP_BLOCKTIME-style knob behind the
//!    Table 1 vs Table 2 context-switch contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zerosum_core::{
    attach_monitor_threads, run_monitored, Monitor, MonitorPlacement, ProcessInfo, ZeroSumConfig,
};
use zerosum_sched::{Behavior, NodeSim, SchedParams, WorkerSpec};
use zerosum_topology::{presets, CpuSet};

fn workload(sim: &mut NodeSim) -> u32 {
    let mask = CpuSet::range(1, 7);
    let pid = sim.spawn_process(
        "app",
        mask,
        4_096,
        Behavior::worker(WorkerSpec {
            barrier: Some(1),
            ..WorkerSpec::cpu_bound(10, 20_000)
        }),
    );
    for _ in 1..7 {
        sim.spawn_task(
            pid,
            "OpenMP",
            None,
            Behavior::worker(WorkerSpec {
                barrier: Some(1),
                ..WorkerSpec::cpu_bound(10, 20_000)
            }),
            false,
        );
    }
    pid
}

fn monitored_run(config: ZeroSumConfig, spin_us: u64) -> f64 {
    let mut sim = NodeSim::new(
        presets::frontier(),
        SchedParams {
            barrier_spin_us: spin_us,
            ..Default::default()
        },
    );
    let pid = workload(&mut sim);
    let mut mon = Monitor::new(config);
    mon.watch_process(ProcessInfo {
        pid,
        rank: Some(0),
        hostname: "n".into(),
        gpus: vec![],
        cpus_allowed: CpuSet::range(1, 7),
    });
    attach_monitor_threads(&mut sim, &mon);
    run_monitored(&mut sim, &mut mon, None, 60_000_000).duration_s
}

fn ablate_period(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_period");
    g.sample_size(10);
    for period_ms in [50u64, 100, 250, 1000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{period_ms}ms")),
            &period_ms,
            |b, &p| {
                b.iter(|| {
                    black_box(monitored_run(
                        ZeroSumConfig::default().with_period_ms(p),
                        200_000,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn ablate_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_monitor_placement");
    g.sample_size(10);
    for (name, placement) in [
        ("last_hwt", MonitorPlacement::LastHwt),
        ("first_hwt", MonitorPlacement::FirstHwt),
        ("unbound", MonitorPlacement::Unbound),
    ] {
        let p = placement.clone();
        g.bench_function(name, move |b| {
            let p = p.clone();
            b.iter(|| {
                black_box(monitored_run(
                    ZeroSumConfig::default()
                        .with_period_ms(100)
                        .with_placement(p.clone()),
                    200_000,
                ))
            })
        });
    }
    g.finish();
}

fn ablate_spin(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_barrier_spin");
    g.sample_size(10);
    for spin_us in [0u64, 2_000, 200_000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{spin_us}us")),
            &spin_us,
            |b, &s| {
                b.iter(|| {
                    black_box(monitored_run(
                        ZeroSumConfig::default().with_period_ms(100),
                        s.max(50),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(ablations, ablate_period, ablate_placement, ablate_spin);
criterion_main!(ablations);
