//! Scheduler-simulation engine benchmarks: the substrate's throughput
//! determines how much virtual time the experiment harnesses can afford.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource, WorkerSpec};
use zerosum_topology::{presets, CpuSet};

fn busy_frontier() -> NodeSim {
    let mut sim = NodeSim::new(presets::frontier(), SchedParams::default());
    for rank in 0..8u32 {
        let base = 1 + rank * 8 + if rank >= 7 { 1 } else { 0 };
        let mask = CpuSet::range(base, base + 6);
        let pid = sim.spawn_process(
            "bench",
            mask,
            1_024,
            Behavior::worker(WorkerSpec {
                barrier: Some(1),
                ..WorkerSpec::cpu_bound(1_000_000, 10_000)
            }),
        );
        for _ in 1..7 {
            sim.spawn_task(
                pid,
                "OpenMP",
                None,
                Behavior::worker(WorkerSpec {
                    barrier: Some(1),
                    ..WorkerSpec::cpu_bound(1_000_000, 10_000)
                }),
                false,
            );
        }
    }
    sim
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    // One virtual second of a fully-busy 8-rank node.
    g.throughput(Throughput::Elements(1_000_000 / 50)); // ticks per virtual second
    g.bench_function("run_for_1s_virtual_56busy", |b| {
        b.iter_batched(
            busy_frontier,
            |mut sim| {
                sim.run_for(1_000_000);
                black_box(sim.now_us())
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("run_for_1s_virtual_idle_node", |b| {
        b.iter_batched(
            || NodeSim::new(presets::frontier(), SchedParams::default()),
            |mut sim| {
                sim.run_for(1_000_000);
                black_box(sim.now_us())
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_proc_source(c: &mut Criterion) {
    // (sampled at default size; each iteration is microseconds)
    // The monitor's per-sample cost against the simulated /proc: this is
    // the "5 ms per sample" the Figure 8 cost model encodes.
    let mut sim = busy_frontier();
    sim.run_for(200_000);
    let pids = sim.pids();
    c.bench_function("sim_procfs_full_sample_8ranks", |b| {
        b.iter(|| {
            use zerosum_proc::ProcSource;
            let src = SimProcSource::new(&sim);
            let stat = src.system_stat().unwrap();
            black_box(stat.cpus.len());
            for &pid in &pids {
                for tid in src.list_tasks(pid).unwrap() {
                    black_box(src.task_stat(pid, tid).unwrap().utime);
                    black_box(
                        src.task_status(pid, tid)
                            .unwrap()
                            .nonvoluntary_ctxt_switches,
                    );
                }
            }
            black_box(src.meminfo().unwrap().mem_available_kib)
        })
    });
}

fn bench_spawn(c: &mut Criterion) {
    c.bench_function("spawn_72_tasks", |b| {
        b.iter_batched(
            || NodeSim::new(presets::frontier(), SchedParams::default()),
            |mut sim| {
                for rank in 0..8u32 {
                    let mask = CpuSet::range(1 + rank * 8, 7 + rank * 8);
                    let pid = sim.spawn_process(
                        "s",
                        mask,
                        64,
                        Behavior::FiniteCompute {
                            remaining_us: 1,
                            chunk_us: 1,
                        },
                    );
                    for _ in 0..8 {
                        sim.spawn_task(pid, "w", None, Behavior::Sleeper, true);
                    }
                }
                black_box(sim.pids().len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(engine, bench_engine, bench_proc_source, bench_spawn);
criterion_main!(engine);
