//! # zerosum-bench
//!
//! Criterion benchmark harnesses for ZeroSum-rs. The benchmark targets
//! live in `benches/`; one per paper artifact (tables, figures,
//! listings) plus micro-benchmarks of the monitoring hot paths and
//! ablations of the design choices called out in DESIGN.md.
//!
//! This library crate only hosts shared helpers for those benches.

#![warn(missing_docs)]

/// Standard small scale factor used by bench harnesses so a full
/// `cargo bench` stays tractable: divides the paper workload's block
/// counts.
pub const BENCH_SCALE: u32 = 200;

/// Standard bench seed.
pub const BENCH_SEED: u64 = 0xBE7C;
