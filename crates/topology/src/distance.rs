//! Locality distances: NUMA↔NUMA latency factors and GPU↔CPU affinity.
//!
//! Used by the configuration evaluator to flag processes whose GPU is not
//! attached to their NUMA domain (the Frontier `--gpu-bind=closest`
//! concern from §2 of the paper).

use crate::cpuset::CpuSet;
use crate::object::{ObjectKind, Topology};

/// Relative NUMA distance matrix (diagonal = 10, like Linux's SLIT).
#[derive(Debug, Clone)]
pub struct NumaDistances {
    n: usize,
    matrix: Vec<u32>,
}

impl NumaDistances {
    /// Builds the default distance model for a topology: 10 on the
    /// diagonal, 12 between domains sharing a package, 32 across packages.
    pub fn for_topology(topo: &Topology) -> Self {
        let numas = topo.objects_of_kind(ObjectKind::NumaDomain);
        let n = numas.len();
        let pkg_of: Vec<_> = numas
            .iter()
            .map(|&id| topo.ancestor_of_kind(id, ObjectKind::Package))
            .collect();
        let mut matrix = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                matrix[i * n + j] = if i == j {
                    10
                } else if pkg_of[i] == pkg_of[j] {
                    12
                } else {
                    32
                };
            }
        }
        NumaDistances { n, matrix }
    }

    /// Number of NUMA domains.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no NUMA domains.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between two NUMA logical indices.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.matrix[a * self.n + b]
    }
}

/// The NUMA logical index that contains the given PU OS index, if any.
pub fn numa_of_pu(topo: &Topology, pu_os: u32) -> Option<u32> {
    for numa in topo.objects_of_kind(ObjectKind::NumaDomain) {
        if topo.object(numa).cpuset.contains(pu_os) {
            return Some(topo.object(numa).logical_index);
        }
    }
    None
}

/// The set of NUMA logical indices covered by a cpuset.
pub fn numas_of_cpuset(topo: &Topology, cpuset: &CpuSet) -> Vec<u32> {
    let mut out = Vec::new();
    for numa in topo.objects_of_kind(ObjectKind::NumaDomain) {
        let o = topo.object(numa);
        if o.cpuset.intersects(cpuset) {
            out.push(o.logical_index);
        }
    }
    out
}

/// GPUs (logical ids into the topology) local to any NUMA domain covered by
/// `cpuset`, i.e. the devices `--gpu-bind=closest` would hand a process
/// bound to that cpuset.
pub fn closest_gpus(topo: &Topology, cpuset: &CpuSet) -> Vec<u32> {
    let numas = numas_of_cpuset(topo, cpuset);
    let mut out = Vec::new();
    for gpu in topo.gpus() {
        let a = topo.object(gpu).attrs.gpu.as_ref().expect("gpu attrs");
        if numas.contains(&a.local_numa) {
            out.push(a.physical_index);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn frontier_distances() {
        let t = presets::frontier();
        let d = NumaDistances::for_topology(&t);
        assert_eq!(d.len(), 4);
        assert_eq!(d.distance(0, 0), 10);
        // single package: all off-diagonal are near
        assert_eq!(d.distance(0, 3), 12);
    }

    #[test]
    fn summit_cross_socket_distance() {
        let t = presets::summit();
        let d = NumaDistances::for_topology(&t);
        assert_eq!(d.len(), 2);
        assert_eq!(d.distance(0, 1), 32);
    }

    #[test]
    fn numa_of_pu_frontier() {
        let t = presets::frontier();
        assert_eq!(numa_of_pu(&t, 0), Some(0));
        assert_eq!(numa_of_pu(&t, 17), Some(1));
        assert_eq!(numa_of_pu(&t, 48), Some(3));
        // second hardware thread of core 48 lives in the same domain
        assert_eq!(numa_of_pu(&t, 48 + 64), Some(3));
        assert_eq!(numa_of_pu(&t, 500), None);
    }

    #[test]
    fn closest_gpus_matches_figure2() {
        let t = presets::frontier();
        // A process bound to cores 49-55 (NUMA 3) is closest to GCDs 0,1.
        let cs = CpuSet::range(49, 55);
        assert_eq!(closest_gpus(&t, &cs), vec![0, 1]);
        // NUMA 0 (cores 1-7) gets GCDs 4,5 — the paper's example.
        let cs = CpuSet::range(1, 7);
        assert_eq!(closest_gpus(&t, &cs), vec![4, 5]);
    }

    #[test]
    fn numas_of_wide_cpuset() {
        let t = presets::frontier();
        let cs = CpuSet::range(0, 127);
        assert_eq!(numas_of_cpuset(&t, &cs), vec![0, 1, 2, 3]);
    }
}
