//! # zerosum-topology
//!
//! Hardware-locality substrate for ZeroSum-rs — an hwloc substitute.
//!
//! The paper's ZeroSum uses the Portable Hardware Locality (hwloc) library
//! to query and print node topology and to reason about thread placement.
//! This crate provides the equivalent, self-contained model:
//!
//! * [`cpuset::CpuSet`] — kernel-style bitmask sets of hardware-thread OS
//!   indices, with the `/proc` list-format text representation.
//! * [`object::Topology`] — the machine/package/NUMA/cache/core/PU/GPU
//!   object tree with hwloc's logical-vs-OS index distinction.
//! * [`builder::TopologyBuilder`] — construction API.
//! * [`presets`] — the node models of the paper's platforms (Frontier,
//!   Summit, Perlmutter, Aurora, and the Listing 1 laptop).
//! * [`mod@render`] — `lstopo`-style text output (Listing 1).
//! * [`distance`], [`query`] — locality queries used by binding policies
//!   and the configuration evaluator.

#![warn(missing_docs)]

pub mod builder;
pub mod cpuset;
pub mod diagram;
pub mod discover;
pub mod distance;
pub mod object;
pub mod presets;
pub mod query;
pub mod render;

pub use builder::TopologyBuilder;
pub use cpuset::CpuSet;
pub use diagram::render_node_diagram;
pub use discover::discover;
pub use object::{GpuAttrs, GpuVendor, ObjId, Object, ObjectKind, Topology};
pub use render::{render, RenderOptions};

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::cpuset::CpuSet;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn list_roundtrip(indices in proptest::collection::btree_set(0u32..512, 0..64)) {
            let set = CpuSet::from_indices(indices.iter().copied());
            let text = set.to_list_string();
            let parsed = CpuSet::parse_list(&text).unwrap();
            prop_assert_eq!(parsed, set);
        }

        #[test]
        fn count_matches_iter(indices in proptest::collection::btree_set(0u32..512, 0..64)) {
            let set = CpuSet::from_indices(indices.iter().copied());
            prop_assert_eq!(set.count(), indices.len());
            let collected: Vec<u32> = set.iter().collect();
            let expected: Vec<u32> = indices.into_iter().collect();
            prop_assert_eq!(collected, expected);
        }

        #[test]
        fn union_is_commutative_and_contains_both(
            a in proptest::collection::btree_set(0u32..256, 0..32),
            b in proptest::collection::btree_set(0u32..256, 0..32),
        ) {
            let sa = CpuSet::from_indices(a.iter().copied());
            let sb = CpuSet::from_indices(b.iter().copied());
            let u1 = sa.union(&sb);
            let u2 = sb.union(&sa);
            prop_assert_eq!(u1.to_list_string(), u2.to_list_string());
            prop_assert!(sa.is_subset_of(&u1));
            prop_assert!(sb.is_subset_of(&u1));
        }

        #[test]
        fn difference_disjoint_from_subtrahend(
            a in proptest::collection::btree_set(0u32..256, 0..32),
            b in proptest::collection::btree_set(0u32..256, 0..32),
        ) {
            let sa = CpuSet::from_indices(a.iter().copied());
            let sb = CpuSet::from_indices(b.iter().copied());
            let d = sa.difference(&sb);
            prop_assert!(!d.intersects(&sb));
            prop_assert!(d.is_subset_of(&sa));
            prop_assert_eq!(d.count() + sa.intersection(&sb).count(), sa.count());
        }

        #[test]
        fn intersection_subset_of_both(
            a in proptest::collection::btree_set(0u32..256, 0..32),
            b in proptest::collection::btree_set(0u32..256, 0..32),
        ) {
            let sa = CpuSet::from_indices(a.iter().copied());
            let sb = CpuSet::from_indices(b.iter().copied());
            let i = sa.intersection(&sb);
            prop_assert!(i.is_subset_of(&sa));
            prop_assert!(i.is_subset_of(&sb));
        }
    }
}
