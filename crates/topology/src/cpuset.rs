//! Bitmask sets of hardware-thread (PU) OS indices.
//!
//! `CpuSet` plays the role of hwloc's `hwloc_bitmap_t` and of the kernel's
//! `Cpus_allowed_list`: it records which OS-indexed processing units a task
//! or object may run on. The textual form is the kernel "list format"
//! (`1-7,9-15,…`) used throughout `/proc/<pid>/status` and in the paper's
//! report listings.

use std::fmt;

/// A set of CPU (hardware thread) OS indices, stored as a bitmask.
///
/// Indices are arbitrary-width; storage grows on demand in 64-bit words.
/// All operations are O(words).
#[derive(Default, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: Vec<u64>,
}

impl Clone for CpuSet {
    fn clone(&self) -> Self {
        CpuSet {
            words: self.words.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Vec::clone_from reuses the existing allocation when it fits —
        // this is the sampling hot path's way to refresh a mask.
        self.words.clone_from(&source.words);
    }
}

impl CpuSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing exactly `idx`.
    pub fn single(idx: u32) -> Self {
        let mut s = Self::new();
        s.set(idx);
        s
    }

    /// Creates a set containing the inclusive range `lo..=hi`.
    pub fn range(lo: u32, hi: u32) -> Self {
        let mut s = Self::new();
        for i in lo..=hi {
            s.set(i);
        }
        s
    }

    /// Creates a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.set(i);
        }
        s
    }

    fn word_bit(idx: u32) -> (usize, u64) {
        ((idx / 64) as usize, 1u64 << (idx % 64))
    }

    /// Inserts `idx` into the set.
    pub fn set(&mut self, idx: u32) {
        let (w, b) = Self::word_bit(idx);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= b;
    }

    /// Removes `idx` from the set.
    pub fn clear(&mut self, idx: u32) {
        let (w, b) = Self::word_bit(idx);
        if w < self.words.len() {
            self.words[w] &= !b;
        }
    }

    /// Empties the set in place, keeping the word allocation.
    pub fn clear_all(&mut self) {
        self.words.clear();
    }

    /// Replaces this set's contents with `other`'s, reusing the existing
    /// allocation (alias for [`Clone::clone_from`], named for call sites
    /// where the reuse is the point).
    pub fn copy_from(&mut self, other: &CpuSet) {
        self.clone_from(other);
    }

    /// Returns true if `idx` is in the set.
    pub fn contains(&self, idx: u32) -> bool {
        let (w, b) = Self::word_bit(idx);
        w < self.words.len() && self.words[w] & b != 0
    }

    /// Number of indices in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set contains no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Smallest index in the set, if any.
    pub fn first(&self) -> Option<u32> {
        self.iter().next()
    }

    /// Largest index in the set, if any.
    pub fn last(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi as u32 * 64 + 63 - w.leading_zeros());
            }
        }
        None
    }

    /// The `n`-th smallest index (0-based), if the set has that many.
    pub fn nth(&self, n: usize) -> Option<u32> {
        self.iter().nth(n)
    }

    /// Iterates over indices in ascending order.
    pub fn iter(&self) -> CpuSetIter<'_> {
        CpuSetIter {
            set: self,
            word: 0,
            mask: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &CpuSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &CpuSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &CpuSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// Returns the union of two sets.
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection of two sets.
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        let mut s = self.clone();
        s.subtract(other);
        s
    }

    /// True if the two sets share at least one index.
    pub fn intersects(&self, other: &CpuSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// True if every index of `self` is in `other`.
    pub fn is_subset_of(&self, other: &CpuSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Parses the kernel list format, e.g. `"1-7,9-15,64"`.
    ///
    /// An empty or whitespace-only string parses to the empty set.
    pub fn parse_list(s: &str) -> Result<CpuSet, CpuSetParseError> {
        let mut set = CpuSet::new();
        set.parse_list_into(s)?;
        Ok(set)
    }

    /// Parses the kernel list format into this set, replacing its
    /// contents while reusing the allocation. On error the set's
    /// contents are unspecified.
    pub fn parse_list_into(&mut self, s: &str) -> Result<(), CpuSetParseError> {
        // Clearing (not zeroing) keeps the allocation while matching a
        // freshly built set word-for-word — equality is
        // representation-based, so no trailing zero words may remain.
        self.words.clear();
        let set = self;
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        for part in trimmed.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(CpuSetParseError::Empty);
            }
            match part.split_once('-') {
                Some((lo, hi)) => {
                    let lo: u32 = lo
                        .trim()
                        .parse()
                        .map_err(|_| CpuSetParseError::Int(part.into()))?;
                    let hi: u32 = hi
                        .trim()
                        .parse()
                        .map_err(|_| CpuSetParseError::Int(part.into()))?;
                    if lo > hi {
                        return Err(CpuSetParseError::Range(lo, hi));
                    }
                    for i in lo..=hi {
                        set.set(i);
                    }
                }
                None => {
                    let v: u32 = part
                        .parse()
                        .map_err(|_| CpuSetParseError::Int(part.into()))?;
                    set.set(v);
                }
            }
        }
        while set.words.last() == Some(&0) {
            set.words.pop();
        }
        Ok(())
    }

    /// Parses the kernel hex mask format used by `Cpus_allowed`,
    /// e.g. `"ff"` or `"ffffffff,ffffffff"` (most significant word first).
    pub fn parse_mask(s: &str) -> Result<CpuSet, CpuSetParseError> {
        let mut set = CpuSet::new();
        let groups: Vec<&str> = s.trim().split(',').collect();
        // Kernel prints 32-bit groups, most significant first.
        let n = groups.len();
        for (gi, g) in groups.iter().enumerate() {
            let v = u32::from_str_radix(g.trim(), 16)
                .map_err(|_| CpuSetParseError::Int((*g).into()))?;
            let base = ((n - 1 - gi) as u32) * 32;
            for bit in 0..32 {
                if v & (1 << bit) != 0 {
                    set.set(base + bit);
                }
            }
        }
        Ok(set)
    }

    /// Formats the set in kernel list format (`1-7,9-15`), the format used
    /// in the paper's LWP report `CPUs:` column.
    pub fn to_list_string(&self) -> String {
        self.to_string()
    }

    /// Streams the kernel list format into a writer without allocating —
    /// the zero-copy sibling of [`CpuSet::to_list_string`], used by the
    /// sampling hot path when rendering `Cpus_allowed_list:`.
    pub fn write_list<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        let mut iter = self.iter().peekable();
        let mut first = true;
        while let Some(start) = iter.next() {
            let mut end = start;
            while let Some(&next) = iter.peek() {
                if next == end + 1 {
                    end = next;
                    iter.next();
                } else {
                    break;
                }
            }
            if !first {
                out.write_char(',')?;
            }
            first = false;
            if start == end {
                write!(out, "{start}")?;
            } else {
                write!(out, "{start}-{end}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_list(f)
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet[{}]", self.to_list_string())
    }
}

impl FromIterator<u32> for CpuSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::from_indices(iter)
    }
}

/// Iterator over the indices of a [`CpuSet`] in ascending order.
pub struct CpuSetIter<'a> {
    set: &'a CpuSet,
    word: usize,
    mask: u64,
}

impl Iterator for CpuSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.mask != 0 {
                let bit = self.mask.trailing_zeros();
                self.mask &= self.mask - 1;
                return Some(self.word as u32 * 64 + bit);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.mask = self.set.words[self.word];
        }
    }
}

/// Errors produced by [`CpuSet::parse_list`] / [`CpuSet::parse_mask`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuSetParseError {
    /// An empty element between commas.
    Empty,
    /// A non-integer token.
    Int(String),
    /// A descending range like `7-3`.
    Range(u32, u32),
}

impl fmt::Display for CpuSetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuSetParseError::Empty => write!(f, "empty element in cpu list"),
            CpuSetParseError::Int(tok) => write!(f, "invalid integer token {tok:?} in cpu list"),
            CpuSetParseError::Range(lo, hi) => write!(f, "descending cpu range {lo}-{hi}"),
        }
    }
}

impl std::error::Error for CpuSetParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_basics() {
        let s = CpuSet::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
        assert_eq!(s.to_list_string(), "");
    }

    #[test]
    fn set_and_contains() {
        let mut s = CpuSet::new();
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(127);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(127));
        assert!(!s.contains(1) && !s.contains(65) && !s.contains(128));
        assert_eq!(s.count(), 4);
        assert_eq!(s.first(), Some(0));
        assert_eq!(s.last(), Some(127));
    }

    #[test]
    fn clear_removes() {
        let mut s = CpuSet::range(0, 7);
        s.clear(3);
        assert!(!s.contains(3));
        assert_eq!(s.count(), 7);
        // clearing an out-of-range index is a no-op
        s.clear(1000);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn list_format_roundtrip() {
        let s = CpuSet::parse_list("1-7,9-15,17-23").unwrap();
        assert_eq!(s.to_list_string(), "1-7,9-15,17-23");
        assert_eq!(s.count(), 21);
    }

    #[test]
    fn list_format_singletons() {
        let s = CpuSet::parse_list("0,2,4,6").unwrap();
        assert_eq!(s.to_list_string(), "0,2,4,6");
    }

    #[test]
    fn list_format_frontier_other_thread() {
        // The "Other" thread mask from Listing 2 of the paper.
        let text = "1-7,9-15,17-23,25-31,33-39,41-47,49-55,57-63,65-71,73-79,81-87,89-95,97-103,105-111,113-119,121-127";
        let s = CpuSet::parse_list(text).unwrap();
        assert_eq!(s.to_list_string(), text);
        assert_eq!(s.count(), 112);
        assert!(!s.contains(0) && !s.contains(8) && !s.contains(120));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            CpuSet::parse_list("3-1"),
            Err(CpuSetParseError::Range(3, 1))
        ));
        assert!(matches!(
            CpuSet::parse_list("a"),
            Err(CpuSetParseError::Int(_))
        ));
        assert!(matches!(
            CpuSet::parse_list("1,,2"),
            Err(CpuSetParseError::Empty)
        ));
        assert_eq!(CpuSet::parse_list("").unwrap(), CpuSet::new());
    }

    #[test]
    fn parse_mask_single_group() {
        let s = CpuSet::parse_mask("ff").unwrap();
        assert_eq!(s, CpuSet::range(0, 7));
    }

    #[test]
    fn parse_mask_multi_group_msb_first() {
        // "1,00000000" = bit 32 set.
        let s = CpuSet::parse_mask("1,00000000").unwrap();
        assert_eq!(s, CpuSet::single(32));
    }

    #[test]
    fn set_ops() {
        let a = CpuSet::range(0, 7);
        let b = CpuSet::range(4, 11);
        assert_eq!(a.union(&b), CpuSet::range(0, 11));
        assert_eq!(a.intersection(&b), CpuSet::range(4, 7));
        assert_eq!(a.difference(&b), CpuSet::range(0, 3));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&CpuSet::range(100, 110)));
        assert!(CpuSet::range(2, 3).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn parse_list_into_reuses_and_compares_equal() {
        let mut s = CpuSet::range(0, 200);
        s.parse_list_into("1-7").unwrap();
        // Must compare equal to a freshly built set despite having held a
        // wider mask before (trailing zero words dropped).
        assert_eq!(s, CpuSet::parse_list("1-7").unwrap());
        s.parse_list_into("").unwrap();
        assert!(s.is_empty());
        assert_eq!(s, CpuSet::new());
        assert!(s.parse_list_into("7-3").is_err());
    }

    #[test]
    fn clear_all_and_copy_from() {
        let mut s = CpuSet::range(0, 127);
        s.clear_all();
        assert!(s.is_empty());
        assert_eq!(s, CpuSet::new());
        let src = CpuSet::from_indices([3u32, 65]);
        s.copy_from(&src);
        assert_eq!(s, src);
    }

    #[test]
    fn write_list_matches_to_list_string() {
        for text in ["", "0", "0,2,4", "1-7,9-15,64", "0-127"] {
            let s = CpuSet::parse_list(text).unwrap();
            let mut streamed = String::new();
            s.write_list(&mut streamed).unwrap();
            assert_eq!(streamed, s.to_list_string());
            assert_eq!(streamed, text);
        }
    }

    #[test]
    fn nth_and_iter_order() {
        let s = CpuSet::from_indices([5u32, 1, 200, 64]);
        let v: Vec<u32> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 64, 200]);
        assert_eq!(s.nth(2), Some(64));
        assert_eq!(s.nth(4), None);
    }
}
