//! `lstopo`-style textual rendering of a [`Topology`].
//!
//! Reproduces the format of Listing 1 in the paper: one line per object,
//! two-space indentation per depth, logical indices (`L#`) everywhere and
//! OS indices (`P#`) on PUs, cache sizes in `MB`/`KB`.

use crate::object::{ObjId, ObjectKind, Topology};
use std::fmt::Write;

/// Controls which objects appear in the rendering.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Show NUMA domain lines. Listing 1's single-NUMA laptop omits them.
    pub show_numa: bool,
    /// Append GPU lines after the CPU tree.
    pub show_gpus: bool,
    /// Prefix the output with the `HWLOC Node topology:` header line used
    /// by ZeroSum's log output.
    pub header: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            show_numa: true,
            show_gpus: true,
            header: true,
        }
    }
}

impl RenderOptions {
    /// The exact configuration that reproduces Listing 1 (no NUMA line,
    /// no GPUs, with header).
    pub fn listing1() -> Self {
        RenderOptions {
            show_numa: false,
            show_gpus: false,
            header: true,
        }
    }
}

fn cache_size_str(kib: u64) -> String {
    if kib.is_multiple_of(1024) {
        format!("{}MB", kib / 1024)
    } else {
        format!("{kib}KB")
    }
}

/// Renders the topology as indented text.
pub fn render(topo: &Topology, opts: &RenderOptions) -> String {
    let mut out = String::new();
    if opts.header {
        out.push_str("HWLOC Node topology:\n");
    }
    render_obj(topo, topo.root(), 0, opts, &mut out);
    if opts.show_gpus {
        for gpu in topo.gpus() {
            let o = topo.object(gpu);
            let a = o.attrs.gpu.as_ref().expect("gpu attrs");
            writeln!(
                out,
                "  GPU L#{} P#{} ({} {}, {}MB, NUMA {})",
                o.logical_index, a.physical_index, a.vendor, a.model, a.memory_mib, a.local_numa
            )
            .unwrap();
        }
    }
    out
}

fn render_obj(topo: &Topology, id: ObjId, depth: usize, opts: &RenderOptions, out: &mut String) {
    let o = topo.object(id);
    if o.kind == ObjectKind::Gpu {
        return; // rendered separately
    }
    let mut next_depth = depth;
    let skip = o.kind == ObjectKind::NumaDomain && !opts.show_numa;
    if !skip {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match o.kind {
            ObjectKind::L3Cache | ObjectKind::L2Cache | ObjectKind::L1Cache => {
                writeln!(
                    out,
                    "{} L#{} {}",
                    o.kind.render_name(),
                    o.logical_index,
                    cache_size_str(o.attrs.cache_kib.unwrap_or(0))
                )
                .unwrap();
            }
            ObjectKind::Pu => {
                writeln!(
                    out,
                    "PU L#{} P#{}",
                    o.logical_index,
                    o.os_index.unwrap_or(0)
                )
                .unwrap();
            }
            ObjectKind::NumaDomain => {
                writeln!(
                    out,
                    "NUMANode L#{} P#{} ({}MB)",
                    o.logical_index,
                    o.os_index.unwrap_or(0),
                    o.attrs.memory_mib.unwrap_or(0)
                )
                .unwrap();
            }
            _ => {
                writeln!(out, "{} L#{}", o.kind.render_name(), o.logical_index).unwrap();
            }
        }
        next_depth = depth + 1;
    }
    for &c in &o.children {
        render_obj(topo, c, next_depth, opts, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn listing1_format_exact() {
        let topo = presets::laptop_i7_1165g7();
        let text = render(&topo, &RenderOptions::listing1());
        let expected = "\
HWLOC Node topology:
Machine L#0
  Package L#0
    L3Cache L#0 12MB
      L2Cache L#0 1280KB
        L1Cache L#0 48KB
          Core L#0
            PU L#0 P#0
            PU L#1 P#4
      L2Cache L#1 1280KB
        L1Cache L#1 48KB
          Core L#1
            PU L#2 P#1
            PU L#3 P#5
      L2Cache L#2 1280KB
        L1Cache L#2 48KB
          Core L#2
            PU L#4 P#2
            PU L#5 P#6
      L2Cache L#3 1280KB
        L1Cache L#3 48KB
          Core L#3
            PU L#6 P#3
            PU L#7 P#7
";
        assert_eq!(text, expected);
    }

    #[test]
    fn cache_sizes_render_mb_or_kb() {
        assert_eq!(cache_size_str(12 * 1024), "12MB");
        assert_eq!(cache_size_str(1280), "1280KB");
        assert_eq!(cache_size_str(48), "48KB");
    }

    #[test]
    fn frontier_renders_with_numa_and_gpus() {
        let topo = presets::frontier();
        let text = render(&topo, &RenderOptions::default());
        assert!(text.contains("NUMANode L#0 P#0 (131072MB)"));
        assert!(text.contains("GPU L#0 P#4"));
        assert!(text.contains("MI250X"));
        // 128 PU lines (GPU lines also contain the substring "PU L#")
        let pu_lines = text
            .lines()
            .filter(|l| l.trim_start().starts_with("PU L#"))
            .count();
        assert_eq!(pu_lines, 128);
    }

    #[test]
    fn render_without_header() {
        let topo = presets::laptop_i7_1165g7();
        let text = render(
            &topo,
            &RenderOptions {
                header: false,
                ..RenderOptions::listing1()
            },
        );
        assert!(text.starts_with("Machine L#0"));
    }
}
