//! Built-in node topologies for the systems discussed in the paper.
//!
//! These encode the published node diagrams (Figures 1–3) and the test
//! laptop of Listing 1: OLCF Frontier and Summit, NERSC Perlmutter, ANL
//! Aurora, and an Intel i7-1165G7 test box. Each preset also documents the
//! platform quirks the paper calls out — Frontier's non-intuitive GPU↔NUMA
//! map and reserved first core per L3 region, Summit's core-index skip for
//! the OS-reserved core.

use crate::builder::TopologyBuilder;
use crate::cpuset::CpuSet;
use crate::object::{GpuAttrs, GpuVendor, Topology};

/// OLCF Frontier compute node (Figure 2).
///
/// One 64-core AMD "Optimized 3rd Gen EPYC" (2 HWT/core, second thread at
/// OS index `core+64`), 4 NUMA domains of 2 CCDs × 8 cores, 512 GiB DDR4,
/// and four MI250X GPUs exposing 8 GCDs. The GCD physical indices are
/// associated with NUMA domains `[0,1,2,3]` in the non-intuitive order
/// `[[4,5],[2,3],[6,7],[0,1]]` — exactly the trap described in §2.
pub fn frontier() -> Topology {
    let mut b = TopologyBuilder::new("OLCF Frontier (HPE Cray EX, AMD EPYC + MI250X)")
        .memory_mib(512 * 1024);
    const GCD_BY_NUMA: [[u32; 2]; 4] = [[4, 5], [2, 3], [6, 7], [0, 1]];
    b = b.package(|mut p| {
        for numa in 0..4u32 {
            p = p.numa(128 * 1024, |mut n| {
                for ccd in 0..2u32 {
                    n = n.l3(32 * 1024, |mut l3| {
                        for k in 0..8u32 {
                            let core = numa * 16 + ccd * 8 + k;
                            l3 = l3.core_cached(512, 32, &[core, core + 64]);
                        }
                        l3
                    });
                }
                n
            });
        }
        p
    });
    for numa in 0..4u32 {
        for &gcd in &GCD_BY_NUMA[numa as usize] {
            b = b.gpu(GpuAttrs {
                vendor: GpuVendor::Amd,
                model: "AMD MI250X GCD".into(),
                physical_index: gcd,
                visible_index: gcd,
                local_numa: numa,
                memory_mib: 64 * 1024,
            });
        }
    }
    b.build()
}

/// The Slurm reservation used throughout the paper's Frontier runs: the
/// first core of each L3 (CCD) region is set aside for system processes.
/// Returns the cpuset of *usable* hardware threads.
pub fn frontier_usable_cpuset(topo: &Topology) -> CpuSet {
    let mut usable = topo.complete_cpuset().clone();
    for l3 in topo.objects_of_kind(crate::object::ObjectKind::L3Cache) {
        let cs = &topo.object(l3).cpuset;
        // Reserve both hardware threads of the region's first core.
        if let Some(first) = cs.first() {
            usable.clear(first);
            usable.clear(first + 64);
        }
    }
    usable
}

/// OLCF Summit compute node (Figure 1).
///
/// Two IBM POWER9 sockets of 22 SMT4 cores (HWT OS index `4*core + t`);
/// the last core of each socket is reserved for the operating system,
/// which is why the node diagram's core ordering skips from 83 to 88.
/// Six NVIDIA V100 GPUs, three per socket.
pub fn summit() -> Topology {
    let mut b = TopologyBuilder::new("OLCF Summit (IBM POWER9 + V100)").memory_mib(512 * 1024);
    for socket in 0..2u32 {
        b = b.package(|p| {
            p.numa(256 * 1024, |mut n| {
                for c in 0..22u32 {
                    let core = socket * 22 + c;
                    let base = core * 4;
                    n = n.core_with_pus(&[base, base + 1, base + 2, base + 3]);
                }
                n
            })
        });
    }
    for g in 0..6u32 {
        b = b.gpu(GpuAttrs {
            vendor: GpuVendor::Nvidia,
            model: "NVIDIA V100".into(),
            physical_index: g,
            visible_index: g,
            local_numa: g / 3,
            memory_mib: 16 * 1024,
        });
    }
    b.build()
}

/// The usable cpuset on Summit: HWTs of the OS-reserved core (last core of
/// each socket, HWTs 84–87 and 172–175) removed.
pub fn summit_usable_cpuset(topo: &Topology) -> CpuSet {
    let mut usable = topo.complete_cpuset().clone();
    for reserved_core in [21u32, 43] {
        let base = reserved_core * 4;
        for t in 0..4 {
            usable.clear(base + t);
        }
    }
    usable
}

/// NERSC Perlmutter GPU node (Figure 3, left).
///
/// One AMD EPYC 7763 (64 cores, 2 HWT/core, 4 NUMA domains) and four
/// NVIDIA A100 GPUs. The paper notes the public diagram gives no
/// GPU-ordering information; we attach GPU `i` to NUMA domain `i`.
pub fn perlmutter() -> Topology {
    let mut b =
        TopologyBuilder::new("NERSC Perlmutter (AMD EPYC 7763 + A100)").memory_mib(256 * 1024);
    b = b.package(|mut p| {
        for numa in 0..4u32 {
            p = p.numa(64 * 1024, |mut n| {
                for ccd in 0..2u32 {
                    n = n.l3(32 * 1024, |mut l3| {
                        for k in 0..8u32 {
                            let core = numa * 16 + ccd * 8 + k;
                            l3 = l3.core_cached(512, 32, &[core, core + 64]);
                        }
                        l3
                    });
                }
                n
            });
        }
        p
    });
    for g in 0..4u32 {
        b = b.gpu(GpuAttrs {
            vendor: GpuVendor::Nvidia,
            model: "NVIDIA A100-SXM4-40GB".into(),
            physical_index: g,
            visible_index: g,
            local_numa: g,
            memory_mib: 40 * 1024,
        });
    }
    b.build()
}

/// ANL Aurora compute node (Figure 3, right).
///
/// Two Intel Xeon Max sockets (52 cores each, 2 HWT/core) and six Intel
/// Data Center GPU Max (PVC) devices, three per socket.
pub fn aurora() -> Topology {
    let mut b = TopologyBuilder::new("ANL Aurora (Intel Xeon Max + PVC)").memory_mib(512 * 1024);
    for socket in 0..2u32 {
        b = b.package(|p| {
            p.numa(256 * 1024, |mut n| {
                for c in 0..52u32 {
                    let core = socket * 52 + c;
                    n = n.core_with_pus(&[core, core + 104]);
                }
                n
            })
        });
    }
    for g in 0..6u32 {
        b = b.gpu(GpuAttrs {
            vendor: GpuVendor::Intel,
            model: "Intel Data Center GPU Max 1550".into(),
            physical_index: g,
            visible_index: g,
            local_numa: g / 3,
            memory_mib: 128 * 1024,
        });
    }
    b.build()
}

/// The Listing 1 test system: a single Intel® Core™ i7-1165G7 with four
/// cores, two PUs per core, a shared 12 MiB L3, and per-core 1280 KiB L2 /
/// 48 KiB L1 caches. The PU logical/OS index skew of the listing (core 0
/// holds `P#0` and `P#4`) is reproduced.
pub fn laptop_i7_1165g7() -> Topology {
    TopologyBuilder::new("Intel Core i7-1165G7 test node")
        .memory_mib(16 * 1024)
        .package(|p| {
            p.numa(16 * 1024, |n| {
                n.l3(12 * 1024, |mut l3| {
                    for core in 0..4u32 {
                        l3 = l3.core_cached(1280, 48, &[core, core + 4]);
                    }
                    l3
                })
            })
        })
        .build()
}

/// Looks a preset up by name (case-insensitive): `frontier`, `summit`,
/// `perlmutter`, `aurora`, or `laptop`.
pub fn by_name(name: &str) -> Option<Topology> {
    match name.to_ascii_lowercase().as_str() {
        "frontier" => Some(frontier()),
        "summit" => Some(summit()),
        "perlmutter" => Some(perlmutter()),
        "aurora" => Some(aurora()),
        "laptop" | "i7-1165g7" => Some(laptop_i7_1165g7()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;

    #[test]
    fn frontier_shape() {
        let t = frontier();
        assert_eq!(t.count_of_kind(ObjectKind::Package), 1);
        assert_eq!(t.count_of_kind(ObjectKind::NumaDomain), 4);
        assert_eq!(t.count_of_kind(ObjectKind::L3Cache), 8);
        assert_eq!(t.count_of_kind(ObjectKind::Core), 64);
        assert_eq!(t.count_of_kind(ObjectKind::Pu), 128);
        assert_eq!(t.count_of_kind(ObjectKind::Gpu), 8);
        assert_eq!(t.complete_cpuset().to_list_string(), "0-127");
    }

    #[test]
    fn frontier_gpu_numa_map_is_nonintuitive() {
        let t = frontier();
        // GCD 0 and 1 attach to NUMA 3; GCD 4 and 5 to NUMA 0 — the trap
        // described in the caption of Figure 2.
        let mut numa_of = [0u32; 8];
        for g in t.gpus() {
            let a = t.object(g).attrs.gpu.as_ref().unwrap();
            numa_of[a.physical_index as usize] = a.local_numa;
        }
        assert_eq!(numa_of, [3, 3, 1, 1, 0, 0, 2, 2]);
    }

    #[test]
    fn frontier_reservation_removes_first_core_per_l3() {
        let t = frontier();
        let usable = frontier_usable_cpuset(&t);
        assert_eq!(usable.count(), 112); // 128 - 8 cores * 2 HWT
        for reserved in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            assert!(!usable.contains(reserved), "core {reserved} HWT0");
            assert!(!usable.contains(reserved + 64), "core {reserved} HWT1");
        }
        // The first rank's mask under `srun -c7` becomes 1-7, as in Table 1.
        let first_l3: Vec<u32> = usable.iter().take(7).collect();
        assert_eq!(first_l3, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn summit_shape_and_skip() {
        let t = summit();
        assert_eq!(t.count_of_kind(ObjectKind::Package), 2);
        assert_eq!(t.count_of_kind(ObjectKind::Core), 44);
        assert_eq!(t.count_of_kind(ObjectKind::Pu), 176);
        assert_eq!(t.count_of_kind(ObjectKind::Gpu), 6);
        let usable = summit_usable_cpuset(&t);
        // Figure 1: ordering skips 83 → 88 (core 21's HWTs 84-87 reserved).
        assert!(usable.contains(83));
        assert!(!usable.contains(84) && !usable.contains(87));
        assert!(usable.contains(88));
    }

    #[test]
    fn perlmutter_and_aurora_shapes() {
        let p = perlmutter();
        assert_eq!(p.count_of_kind(ObjectKind::Core), 64);
        assert_eq!(p.count_of_kind(ObjectKind::Gpu), 4);
        let a = aurora();
        assert_eq!(a.count_of_kind(ObjectKind::Core), 104);
        assert_eq!(a.count_of_kind(ObjectKind::Gpu), 6);
        assert_eq!(a.count_of_kind(ObjectKind::Pu), 208);
    }

    #[test]
    fn laptop_matches_listing1_numbering() {
        let t = laptop_i7_1165g7();
        assert_eq!(t.count_of_kind(ObjectKind::Core), 4);
        assert_eq!(t.count_of_kind(ObjectKind::Pu), 8);
        // PU logical 1 (second PU of core 0) has OS index 4.
        let pus = t.objects_of_kind(ObjectKind::Pu);
        assert_eq!(t.object(pus[0]).os_index, Some(0));
        assert_eq!(t.object(pus[1]).os_index, Some(4));
        assert_eq!(t.object(pus[2]).os_index, Some(1));
        assert_eq!(t.object(pus[3]).os_index, Some(5));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("Frontier").is_some());
        assert!(by_name("laptop").is_some());
        assert!(by_name("nonesuch").is_none());
    }
}
