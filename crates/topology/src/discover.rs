//! Live topology discovery from Linux sysfs — the hwloc-lite path.
//!
//! The paper's ZeroSum uses hwloc when available to show the user how
//! cores, caches, and NUMA domains are laid out. On a live Linux system
//! the same facts are exposed under `/sys/devices/system/cpu` and
//! `/sys/devices/system/node`; this module assembles them into a
//! [`Topology`] without any native dependency. Machines where sysfs is
//! absent or partial degrade gracefully to a flat single-package model.

use crate::builder::TopologyBuilder;
use crate::cpuset::CpuSet;
use crate::object::Topology;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Raw per-CPU facts from sysfs.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CpuInfo {
    cpu: u32,
    package: u32,
    core: u32,
    numa: u32,
    /// L3 cache sharing group (first CPU of the shared list), if exposed.
    l3_group: Option<u32>,
}

/// Discovers the topology of the running machine from `/sys`.
///
/// Never fails: missing information degrades to a flat model (one
/// package, one NUMA domain, one core per CPU).
pub fn discover() -> Topology {
    discover_from(Path::new("/sys/devices/system"), total_memory_mib())
}

/// Discovery against an alternate sysfs root (for tests / containers).
pub fn discover_from(sys: &Path, memory_mib: u64) -> Topology {
    let cpus = read_cpus(sys);
    build(&cpus, memory_mib)
}

fn total_memory_mib() -> u64 {
    std::fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|l| {
                l.strip_prefix("MemTotal:")
                    .and_then(|r| r.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
            })
        })
        .map(|kib| kib / 1024)
        .unwrap_or(1024)
}

fn read_u32(path: PathBuf) -> Option<u32> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

fn online_cpus(sys: &Path) -> Vec<u32> {
    // Prefer the "online" list; fall back to enumerating cpuN dirs.
    if let Ok(text) = std::fs::read_to_string(sys.join("cpu/online")) {
        if let Ok(set) = CpuSet::parse_list(text.trim()) {
            let v: Vec<u32> = set.iter().collect();
            if !v.is_empty() {
                return v;
            }
        }
    }
    let mut v = Vec::new();
    if let Ok(entries) = std::fs::read_dir(sys.join("cpu")) {
        for e in entries.flatten() {
            if let Some(n) = e
                .file_name()
                .to_str()
                .and_then(|s| s.strip_prefix("cpu"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                v.push(n);
            }
        }
    }
    v.sort_unstable();
    if v.is_empty() {
        v.push(0);
    }
    v
}

fn numa_of_cpus(sys: &Path) -> BTreeMap<u32, u32> {
    let mut map = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(sys.join("node")) {
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(node) = name
                .to_str()
                .and_then(|s| s.strip_prefix("node"))
                .and_then(|s| s.parse::<u32>().ok())
            else {
                continue;
            };
            if let Ok(list) = std::fs::read_to_string(e.path().join("cpulist")) {
                if let Ok(set) = CpuSet::parse_list(list.trim()) {
                    for cpu in set.iter() {
                        map.insert(cpu, node);
                    }
                }
            }
        }
    }
    map
}

fn read_cpus(sys: &Path) -> Vec<CpuInfo> {
    let numa = numa_of_cpus(sys);
    online_cpus(sys)
        .into_iter()
        .map(|cpu| {
            let topo = sys.join(format!("cpu/cpu{cpu}/topology"));
            let package = read_u32(topo.join("physical_package_id")).unwrap_or(0);
            let core = read_u32(topo.join("core_id")).unwrap_or(cpu);
            // L3 sharing group: first CPU of index3's shared list.
            let l3_group = std::fs::read_to_string(
                sys.join(format!("cpu/cpu{cpu}/cache/index3/shared_cpu_list")),
            )
            .ok()
            .and_then(|s| CpuSet::parse_list(s.trim()).ok())
            .and_then(|set| set.first());
            CpuInfo {
                cpu,
                package,
                core,
                numa: numa.get(&cpu).copied().unwrap_or(0),
                l3_group,
            }
        })
        .collect()
}

/// node -> package -> l3 -> core -> hardware threads.
type NumaTree = BTreeMap<u32, BTreeMap<u32, BTreeMap<u32, BTreeMap<u32, Vec<u32>>>>>;

fn build(cpus: &[CpuInfo], memory_mib: u64) -> Topology {
    // Group: package → numa → l3 group → core → PUs.
    let mut tree: NumaTree = BTreeMap::new();
    for c in cpus {
        tree.entry(c.package)
            .or_default()
            .entry(c.numa)
            .or_default()
            .entry(c.l3_group.unwrap_or(0))
            .or_default()
            .entry(c.core)
            .or_default()
            .push(c.cpu);
    }
    let n_numa = tree
        .values()
        .flat_map(|n| n.keys())
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        .max(1);
    let numa_mem = memory_mib / n_numa as u64;
    let mut b = TopologyBuilder::new("discovered Linux node").memory_mib(memory_mib);
    let has_l3 = cpus.iter().any(|c| c.l3_group.is_some());
    for numas in tree.values() {
        b = b.package(|mut p| {
            for l3s in numas.values() {
                p = p.numa(numa_mem.max(1), |mut n| {
                    if has_l3 {
                        for cores in l3s.values() {
                            n = n.l3(32 * 1024, |mut l3| {
                                for pus in cores.values() {
                                    l3 = l3.core_with_pus(pus);
                                }
                                l3
                            });
                        }
                    } else {
                        for cores in l3s.values() {
                            for pus in cores.values() {
                                n = n.core_with_pus(pus);
                            }
                        }
                    }
                    n
                });
            }
            p
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;

    #[test]
    fn discovers_the_build_machine() {
        let topo = discover();
        let n = topo.count_of_kind(ObjectKind::Pu);
        assert!(n >= 1, "at least one PU");
        assert!(topo.count_of_kind(ObjectKind::Core) >= 1);
        assert!(topo.count_of_kind(ObjectKind::Package) >= 1);
        // Every online CPU appears exactly once in the complete cpuset.
        assert_eq!(topo.complete_cpuset().count(), n);
        // Memory recorded.
        assert!(topo.object(topo.root()).attrs.memory_mib.unwrap_or(0) > 0);
    }

    #[test]
    fn fixture_sysfs_two_packages_smt() {
        let dir = std::env::temp_dir().join(format!("zs-sysfs-{}", std::process::id()));
        let mk = |p: &str, content: &str| {
            let path = dir.join(p);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
        };
        mk("cpu/online", "0-3\n");
        for (cpu, pkg, core) in [(0u32, 0, 0), (1, 0, 1), (2, 1, 0), (3, 1, 1)] {
            mk(
                &format!("cpu/cpu{cpu}/topology/physical_package_id"),
                &format!("{pkg}\n"),
            );
            mk(
                &format!("cpu/cpu{cpu}/topology/core_id"),
                &format!("{core}\n"),
            );
        }
        mk("node/node0/cpulist", "0-1\n");
        mk("node/node1/cpulist", "2-3\n");
        let topo = discover_from(&dir, 2048);
        assert_eq!(topo.count_of_kind(ObjectKind::Package), 2);
        assert_eq!(topo.count_of_kind(ObjectKind::NumaDomain), 2);
        assert_eq!(topo.count_of_kind(ObjectKind::Core), 4);
        assert_eq!(topo.complete_cpuset().to_list_string(), "0-3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_sysfs_degrades_to_flat_model() {
        let dir = std::env::temp_dir().join(format!("zs-sysfs-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let topo = discover_from(&dir, 512);
        assert_eq!(topo.count_of_kind(ObjectKind::Pu), 1);
        assert_eq!(topo.count_of_kind(ObjectKind::Package), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smt_siblings_grouped_into_one_core() {
        let dir = std::env::temp_dir().join(format!("zs-sysfs-smt-{}", std::process::id()));
        let mk = |p: &str, content: &str| {
            let path = dir.join(p);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
        };
        mk("cpu/online", "0-3\n");
        // CPUs 0,2 share core 0; 1,3 share core 1 (interleaved SMT).
        for (cpu, core) in [(0u32, 0u32), (1, 1), (2, 0), (3, 1)] {
            mk(&format!("cpu/cpu{cpu}/topology/physical_package_id"), "0\n");
            mk(
                &format!("cpu/cpu{cpu}/topology/core_id"),
                &format!("{core}\n"),
            );
        }
        let topo = discover_from(&dir, 1024);
        assert_eq!(topo.count_of_kind(ObjectKind::Core), 2);
        assert_eq!(topo.count_of_kind(ObjectKind::Pu), 4);
        let cores = topo.objects_of_kind(ObjectKind::Core);
        assert_eq!(topo.object(cores[0]).cpuset.to_list_string(), "0,2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
