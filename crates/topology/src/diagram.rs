//! ASCII node diagrams in the spirit of the paper's Figures 1–3.
//!
//! §2 argues that users are forced to become "intimately familiar with
//! the network topologies and node diagrams for each system they use",
//! and that published diagrams often omit exactly the information that
//! matters (GPU ordering, reserved cores, NUMA association). This
//! renderer produces the diagram the user actually needs: one box per
//! NUMA domain listing its cores, hardware-thread numbering, cache
//! regions, and — crucially — which GPUs are attached, by *physical*
//! index.

use crate::cpuset::CpuSet;
use crate::object::{ObjectKind, Topology};
use std::fmt::Write as _;

/// Summarizes the core OS indices of a cpuset as first-HWT ranges.
fn core_list(topo: &Topology, numa_cpuset: &CpuSet) -> (String, String) {
    let mut first_hwts = CpuSet::new();
    let mut all = CpuSet::new();
    for core in topo.objects_of_kind(ObjectKind::Core) {
        let cs = &topo.object(core).cpuset;
        if cs.intersects(numa_cpuset) {
            if let Some(f) = cs.first() {
                first_hwts.set(f);
            }
            all.union_with(cs);
        }
    }
    (first_hwts.to_list_string(), all.to_list_string())
}

/// Renders the node diagram.
pub fn render_node_diagram(topo: &Topology) -> String {
    let mut out = String::new();
    writeln!(out, "{}", topo.name).unwrap();
    let mem = topo.object(topo.root()).attrs.memory_mib.unwrap_or(0);
    writeln!(
        out,
        "  {} package(s), {} cores / {} hardware threads, {} GiB memory",
        topo.count_of_kind(ObjectKind::Package),
        topo.count_of_kind(ObjectKind::Core),
        topo.count_of_kind(ObjectKind::Pu),
        mem / 1024
    )
    .unwrap();
    for numa in topo.objects_of_kind(ObjectKind::NumaDomain) {
        let o = topo.object(numa);
        let (cores, hwts) = core_list(topo, &o.cpuset);
        writeln!(
            out,
            "  +-- NUMA {} ({} GiB): cores [{}], HWTs [{}]",
            o.logical_index,
            o.attrs.memory_mib.unwrap_or(0) / 1024,
            cores,
            hwts
        )
        .unwrap();
        // L3 regions inside this domain.
        for l3 in topo.objects_of_kind(ObjectKind::L3Cache) {
            let l3o = topo.object(l3);
            if l3o.cpuset.is_subset_of(&o.cpuset) && !l3o.cpuset.is_empty() {
                let (c, _) = core_list(topo, &l3o.cpuset);
                writeln!(
                    out,
                    "  |     L3 #{} ({} MiB): cores [{}]",
                    l3o.logical_index,
                    l3o.attrs.cache_kib.unwrap_or(0) / 1024,
                    c
                )
                .unwrap();
            }
        }
        // GPUs attached here — by physical index, the Figure 2 trap.
        let gpus: Vec<String> = topo
            .gpus()
            .iter()
            .filter_map(|&g| {
                let a = topo.object(g).attrs.gpu.as_ref()?;
                (a.local_numa == o.logical_index)
                    .then(|| format!("{} #{}", a.model, a.physical_index))
            })
            .collect();
        if !gpus.is_empty() {
            writeln!(out, "  |     GPUs: {}", gpus.join(", ")).unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn frontier_diagram_shows_the_gpu_numa_trap() {
        let d = render_node_diagram(&presets::frontier());
        assert!(d.contains("OLCF Frontier"));
        assert!(d.contains("1 package(s), 64 cores / 128 hardware threads, 512 GiB"));
        // NUMA 0 carries GCDs 4 and 5 — the non-intuitive ordering.
        let numa0 = d
            .lines()
            .skip_while(|l| !l.contains("NUMA 0"))
            .take_while(|l| !l.contains("NUMA 1"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            numa0.contains("GCD #4, AMD MI250X GCD #5")
                || numa0.contains("#4") && numa0.contains("#5"),
            "numa0 block: {numa0}"
        );
        // NUMA 3 carries GCDs 0 and 1.
        let numa3 = d
            .lines()
            .skip_while(|l| !l.contains("NUMA 3"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(numa3.contains("#0") && numa3.contains("#1"), "{numa3}");
    }

    #[test]
    fn summit_diagram_has_two_sockets_three_gpus_each() {
        let d = render_node_diagram(&presets::summit());
        assert!(d.contains("2 package(s), 44 cores / 176 hardware threads"));
        let per_numa: Vec<&str> = d.lines().filter(|l| l.contains("GPUs:")).collect();
        assert_eq!(per_numa.len(), 2);
        assert!(per_numa[0].matches("V100").count() == 3);
    }

    #[test]
    fn laptop_diagram_has_no_gpus() {
        let d = render_node_diagram(&presets::laptop_i7_1165g7());
        assert!(!d.contains("GPUs:"));
        assert!(d.contains("L3 #0 (12 MiB)"));
    }
}
