//! Fluent construction of [`Topology`] trees.
//!
//! The builder assigns logical indices per kind in construction order and
//! propagates cpusets from PUs up to the machine root, so presets only need
//! to describe structure and OS numbering.

use crate::cpuset::CpuSet;
use crate::object::{GpuAttrs, ObjId, Object, ObjectAttrs, ObjectKind, Topology};

/// Builds a [`Topology`] node by node.
pub struct TopologyBuilder {
    objects: Vec<Object>,
    root: ObjId,
    counters: [u32; 9],
    name: String,
}

fn kind_slot(kind: ObjectKind) -> usize {
    match kind {
        ObjectKind::Machine => 0,
        ObjectKind::Package => 1,
        ObjectKind::NumaDomain => 2,
        ObjectKind::L3Cache => 3,
        ObjectKind::L2Cache => 4,
        ObjectKind::L1Cache => 5,
        ObjectKind::Core => 6,
        ObjectKind::Pu => 7,
        ObjectKind::Gpu => 8,
    }
}

impl TopologyBuilder {
    /// Starts a new topology whose root machine object is created
    /// immediately.
    pub fn new(name: &str) -> Self {
        let machine = Object {
            kind: ObjectKind::Machine,
            logical_index: 0,
            os_index: None,
            cpuset: CpuSet::new(),
            children: Vec::new(),
            parent: None,
            attrs: ObjectAttrs::default(),
        };
        TopologyBuilder {
            objects: vec![machine],
            root: ObjId(0),
            counters: {
                let mut c = [0u32; 9];
                c[kind_slot(ObjectKind::Machine)] = 1;
                c
            },
            name: name.to_string(),
        }
    }

    /// Sets the machine's total memory in MiB.
    pub fn memory_mib(mut self, mib: u64) -> Self {
        self.objects[0].attrs.memory_mib = Some(mib);
        self
    }

    fn add(&mut self, parent: ObjId, kind: ObjectKind, os_index: Option<u32>) -> ObjId {
        let slot = kind_slot(kind);
        let logical = self.counters[slot];
        self.counters[slot] += 1;
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            kind,
            logical_index: logical,
            os_index,
            cpuset: CpuSet::new(),
            children: Vec::new(),
            parent: Some(parent),
            attrs: ObjectAttrs::default(),
        });
        self.objects[parent.index()].children.push(id);
        id
    }

    /// Adds a package and descends into it.
    pub fn package(mut self, f: impl FnOnce(PackageBuilder<'_>) -> PackageBuilder<'_>) -> Self {
        let pkg = self.add(self.root, ObjectKind::Package, None);
        let pb = PackageBuilder {
            b: &mut self,
            id: pkg,
        };
        f(pb);
        self
    }

    /// Adds a GPU attached to the machine.
    pub fn gpu(mut self, attrs: GpuAttrs) -> Self {
        let id = self.add(self.root, ObjectKind::Gpu, Some(attrs.physical_index));
        self.objects[id.index()].attrs.gpu = Some(attrs);
        self
    }

    /// Finalizes the topology: propagates cpusets bottom-up and returns the
    /// immutable tree.
    pub fn build(mut self) -> Topology {
        // Propagate cpusets: iterate objects in reverse creation order;
        // children always have larger ids than parents.
        for i in (1..self.objects.len()).rev() {
            let cs = self.objects[i].cpuset.clone();
            if let Some(p) = self.objects[i].parent {
                self.objects[p.index()].cpuset.union_with(&cs);
            }
        }
        Topology {
            objects: self.objects,
            root: self.root,
            name: self.name,
        }
    }
}

/// Scoped builder for the contents of a package.
pub struct PackageBuilder<'a> {
    b: &'a mut TopologyBuilder,
    id: ObjId,
}

impl<'a> PackageBuilder<'a> {
    /// Adds a NUMA domain (with `memory_mib` of local memory) and descends.
    pub fn numa(self, memory_mib: u64, f: impl FnOnce(NumaBuilder<'_>) -> NumaBuilder<'_>) -> Self {
        let n = self.b.add(self.id, ObjectKind::NumaDomain, None);
        let next_os = self.b.counters[kind_slot(ObjectKind::NumaDomain)] - 1;
        self.b.objects[n.index()].os_index = Some(next_os);
        self.b.objects[n.index()].attrs.memory_mib = Some(memory_mib);
        {
            let nb = NumaBuilder { b: self.b, id: n };
            f(nb);
        }
        self
    }
}

/// Scoped builder for the contents of a NUMA domain.
pub struct NumaBuilder<'a> {
    b: &'a mut TopologyBuilder,
    id: ObjId,
}

impl<'a> NumaBuilder<'a> {
    /// Adds an L3 cache region (size in KiB) and descends.
    pub fn l3(self, kib: u64, f: impl FnOnce(L3Builder<'_>) -> L3Builder<'_>) -> Self {
        let c = self.b.add(self.id, ObjectKind::L3Cache, None);
        self.b.objects[c.index()].attrs.cache_kib = Some(kib);
        {
            let lb = L3Builder { b: self.b, id: c };
            f(lb);
        }
        self
    }

    /// Adds a bare core (no cache levels modelled) with the given PU OS
    /// indices, directly under the NUMA domain.
    pub fn core_with_pus(self, pu_os: &[u32]) -> Self {
        let core = self.b.add(self.id, ObjectKind::Core, None);
        add_pus(self.b, core, pu_os);
        self
    }
}

/// Scoped builder for the contents of an L3 region.
pub struct L3Builder<'a> {
    b: &'a mut TopologyBuilder,
    id: ObjId,
}

impl<'a> L3Builder<'a> {
    /// Adds a core with private L2/L1 caches of the given sizes (KiB) and
    /// the given PU OS indices.
    pub fn core_cached(self, l2_kib: u64, l1_kib: u64, pu_os: &[u32]) -> Self {
        let l2 = self.b.add(self.id, ObjectKind::L2Cache, None);
        self.b.objects[l2.index()].attrs.cache_kib = Some(l2_kib);
        let l1 = self.b.add(l2, ObjectKind::L1Cache, None);
        self.b.objects[l1.index()].attrs.cache_kib = Some(l1_kib);
        let core = self.b.add(l1, ObjectKind::Core, None);
        add_pus(self.b, core, pu_os);
        self
    }

    /// Adds a core with the given PU OS indices directly under the L3.
    pub fn core_with_pus(self, pu_os: &[u32]) -> Self {
        let core = self.b.add(self.id, ObjectKind::Core, None);
        add_pus(self.b, core, pu_os);
        self
    }
}

fn add_pus(b: &mut TopologyBuilder, core: ObjId, pu_os: &[u32]) {
    for &os in pu_os {
        let pu = b.add(core, ObjectKind::Pu, Some(os));
        b.objects[pu.index()].cpuset = CpuSet::single(os);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::GpuVendor;

    #[test]
    fn build_with_caches_and_gpu() {
        let t = TopologyBuilder::new("test")
            .memory_mib(512 * 1024)
            .package(|p| {
                p.numa(128 * 1024, |n| {
                    n.l3(32 * 1024, |l3| {
                        l3.core_cached(512, 32, &[0, 64])
                            .core_cached(512, 32, &[1, 65])
                    })
                })
            })
            .gpu(GpuAttrs {
                vendor: GpuVendor::Amd,
                model: "MI250X GCD".into(),
                physical_index: 4,
                visible_index: 0,
                local_numa: 0,
                memory_mib: 64 * 1024,
            })
            .build();
        assert_eq!(t.count_of_kind(ObjectKind::Core), 2);
        assert_eq!(t.count_of_kind(ObjectKind::L2Cache), 2);
        assert_eq!(t.count_of_kind(ObjectKind::L1Cache), 2);
        assert_eq!(t.count_of_kind(ObjectKind::Gpu), 1);
        assert_eq!(t.complete_cpuset().to_list_string(), "0-1,64-65");
        let gpu = t.gpus()[0];
        let attrs = t.object(gpu).attrs.gpu.as_ref().unwrap();
        assert_eq!(attrs.physical_index, 4);
        assert_eq!(attrs.visible_index, 0);
        // machine memory recorded
        assert_eq!(t.object(t.root()).attrs.memory_mib, Some(512 * 1024));
    }

    #[test]
    fn numa_os_indices_sequential() {
        let t = TopologyBuilder::new("two-numa")
            .package(|p| {
                p.numa(1, |n| n.core_with_pus(&[0]))
                    .numa(1, |n| n.core_with_pus(&[1]))
            })
            .build();
        let numas = t.objects_of_kind(ObjectKind::NumaDomain);
        assert_eq!(t.object(numas[0]).os_index, Some(0));
        assert_eq!(t.object(numas[1]).os_index, Some(1));
    }

    #[test]
    fn cpuset_propagates_through_all_levels() {
        let t = TopologyBuilder::new("prop")
            .package(|p| p.numa(1, |n| n.l3(1, |l| l.core_cached(1, 1, &[3, 7]))))
            .build();
        for kind in [
            ObjectKind::Package,
            ObjectKind::NumaDomain,
            ObjectKind::L3Cache,
            ObjectKind::L2Cache,
            ObjectKind::L1Cache,
            ObjectKind::Core,
        ] {
            let id = t.objects_of_kind(kind)[0];
            assert_eq!(t.object(id).cpuset.to_list_string(), "3,7", "kind {kind:?}");
        }
    }
}
