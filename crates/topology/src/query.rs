//! Convenience queries over a [`Topology`].
//!
//! These answer the questions ZeroSum's reports and evaluator need:
//! which core owns a hardware thread, which threads share a cache,
//! what a "place" (core/socket/thread) expands to for OpenMP binding.

use crate::cpuset::CpuSet;
use crate::object::{ObjId, ObjectKind, Topology};

/// The core (topology object id) that owns PU OS index `pu_os`.
pub fn core_of_pu(topo: &Topology, pu_os: u32) -> Option<ObjId> {
    let pu = topo.pu_by_os_index(pu_os)?;
    topo.ancestor_of_kind(pu, ObjectKind::Core)
}

/// All PU OS indices that share a core with `pu_os` (including itself).
pub fn siblings_of_pu(topo: &Topology, pu_os: u32) -> CpuSet {
    match core_of_pu(topo, pu_os) {
        Some(core) => topo.object(core).cpuset.clone(),
        None => CpuSet::new(),
    }
}

/// True if the two PUs share the same physical core (SMT siblings).
pub fn same_core(topo: &Topology, a: u32, b: u32) -> bool {
    match (core_of_pu(topo, a), core_of_pu(topo, b)) {
        (Some(ca), Some(cb)) => ca == cb,
        _ => false,
    }
}

/// True if the two PUs share an L3 cache region.
pub fn share_l3(topo: &Topology, a: u32, b: u32) -> bool {
    let la = topo
        .pu_by_os_index(a)
        .and_then(|p| topo.ancestor_of_kind(p, ObjectKind::L3Cache));
    let lb = topo
        .pu_by_os_index(b)
        .and_then(|p| topo.ancestor_of_kind(p, ObjectKind::L3Cache));
    match (la, lb) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// The granularities at which OpenMP places can be formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceGrain {
    /// One place per hardware thread.
    Threads,
    /// One place per physical core (all its HWTs).
    Cores,
    /// One place per package.
    Sockets,
    /// One place per NUMA domain.
    NumaDomains,
    /// One place per shared L3 region.
    L3Caches,
}

/// Expands the topology into an ordered list of places at the requested
/// granularity, each restricted to `allowed` (empty places are dropped).
///
/// This is the primitive under `OMP_PLACES=threads|cores|sockets` and
/// under ZeroSum's "choose an efficient thread placement" guidance.
pub fn places(topo: &Topology, grain: PlaceGrain, allowed: &CpuSet) -> Vec<CpuSet> {
    let kind = match grain {
        PlaceGrain::Threads => ObjectKind::Pu,
        PlaceGrain::Cores => ObjectKind::Core,
        PlaceGrain::Sockets => ObjectKind::Package,
        PlaceGrain::NumaDomains => ObjectKind::NumaDomain,
        PlaceGrain::L3Caches => ObjectKind::L3Cache,
    };
    let mut out = Vec::new();
    for id in topo.objects_of_kind(kind) {
        let cs = topo.object(id).cpuset.intersection(allowed);
        if !cs.is_empty() {
            out.push(cs);
        }
    }
    out
}

/// Per-core "first hardware thread" cpuset: one PU per core, the lowest OS
/// index of each, restricted to `allowed`. This is what
/// `--threads-per-core=1` leaves schedulable.
pub fn one_thread_per_core(topo: &Topology, allowed: &CpuSet) -> CpuSet {
    let mut out = CpuSet::new();
    for core in topo.objects_of_kind(ObjectKind::Core) {
        let cs = topo.object(core).cpuset.intersection(allowed);
        if let Some(first) = cs.first() {
            out.set(first);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn core_and_siblings_on_frontier() {
        let t = presets::frontier();
        assert!(same_core(&t, 5, 69)); // core 5's two HWTs
        assert!(!same_core(&t, 5, 6));
        assert_eq!(siblings_of_pu(&t, 5).to_list_string(), "5,69");
        assert!(core_of_pu(&t, 999).is_none());
    }

    #[test]
    fn l3_sharing_on_frontier() {
        let t = presets::frontier();
        assert!(share_l3(&t, 1, 7)); // both in CCD 0
        assert!(!share_l3(&t, 7, 8)); // CCD boundary
        assert!(share_l3(&t, 1, 65)); // HWT sibling in same CCD
    }

    #[test]
    fn places_cores_respects_allowed() {
        let t = presets::frontier();
        let allowed = CpuSet::range(1, 7);
        let p = places(&t, PlaceGrain::Cores, &allowed);
        assert_eq!(p.len(), 7);
        assert_eq!(p[0].to_list_string(), "1");
        assert_eq!(p[6].to_list_string(), "7");
    }

    #[test]
    fn places_threads_and_sockets() {
        let t = presets::laptop_i7_1165g7();
        let all = t.complete_cpuset().clone();
        assert_eq!(places(&t, PlaceGrain::Threads, &all).len(), 8);
        assert_eq!(places(&t, PlaceGrain::Sockets, &all).len(), 1);
        assert_eq!(places(&t, PlaceGrain::Cores, &all).len(), 4);
    }

    #[test]
    fn one_thread_per_core_drops_smt() {
        let t = presets::frontier();
        let usable = presets::frontier_usable_cpuset(&t);
        let single = one_thread_per_core(&t, &usable);
        assert_eq!(single.count(), 56); // 64 cores - 8 reserved
        assert!(single.contains(1) && !single.contains(65));
    }

    #[test]
    fn places_numa_grain() {
        let t = presets::frontier();
        let all = t.complete_cpuset().clone();
        let p = places(&t, PlaceGrain::NumaDomains, &all);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].count(), 32);
    }
}
