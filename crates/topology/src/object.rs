//! The hardware object tree.
//!
//! This is the crate's hwloc substitute: a compute node is described as a
//! tree of typed objects (machine → package → NUMA domain → caches → cores
//! → processing units), each carrying a *logical* index (depth-first order
//! within its type, hwloc `L#`) and, where meaningful, an *OS* index
//! (hwloc `P#` — the number the kernel uses in `/proc` and in affinity
//! masks). GPUs hang off the machine with a locality link to their NUMA
//! domain, mirroring the node diagrams in Figures 1–3 of the paper.

use crate::cpuset::CpuSet;
use std::fmt;

/// Identifier of an object within its [`Topology`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub(crate) u32);

impl ObjId {
    /// Index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The type of a topology object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectKind {
    /// The whole compute node.
    Machine,
    /// A physical CPU package (socket).
    Package,
    /// A NUMA domain.
    NumaDomain,
    /// Level-3 cache region.
    L3Cache,
    /// Level-2 cache.
    L2Cache,
    /// Level-1 (data) cache.
    L1Cache,
    /// A physical core.
    Core,
    /// A processing unit (hardware thread); the leaf the OS schedules on.
    Pu,
    /// An accelerator device (GPU or GPU compute die).
    Gpu,
}

impl ObjectKind {
    /// The name used in `lstopo`-style rendering (Listing 1 of the paper).
    pub fn render_name(self) -> &'static str {
        match self {
            ObjectKind::Machine => "Machine",
            ObjectKind::Package => "Package",
            ObjectKind::NumaDomain => "NUMANode",
            ObjectKind::L3Cache => "L3Cache",
            ObjectKind::L2Cache => "L2Cache",
            ObjectKind::L1Cache => "L1Cache",
            ObjectKind::Core => "Core",
            ObjectKind::Pu => "PU",
            ObjectKind::Gpu => "GPU",
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_name())
    }
}

/// Attributes that only some object kinds carry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectAttrs {
    /// Cache size in KiB (cache kinds only).
    pub cache_kib: Option<u64>,
    /// Local memory in MiB (machine / NUMA kinds).
    pub memory_mib: Option<u64>,
    /// GPU attributes (GPU kind only).
    pub gpu: Option<GpuAttrs>,
}

/// Description of an accelerator device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuAttrs {
    /// Vendor of the device.
    pub vendor: GpuVendor,
    /// Marketing / model name (e.g. "AMD MI250X GCD").
    pub model: String,
    /// Physical device index as the vendor driver enumerates it.
    pub physical_index: u32,
    /// Index as visible to the application after `*_VISIBLE_DEVICES`
    /// remapping (the "visible HIP index" of §3.4 of the paper).
    pub visible_index: u32,
    /// Logical index of the NUMA domain this device is attached to.
    pub local_numa: u32,
    /// Device memory in MiB.
    pub memory_mib: u64,
}

/// GPU vendor, selecting which SMI-style library ZeroSum queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuVendor {
    /// AMD — queried via (simulated) ROCm SMI.
    Amd,
    /// NVIDIA — queried via (simulated) NVML.
    Nvidia,
    /// Intel — queried via (simulated) Level Zero / SYCL API.
    Intel,
}

impl fmt::Display for GpuVendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuVendor::Amd => write!(f, "AMD"),
            GpuVendor::Nvidia => write!(f, "NVIDIA"),
            GpuVendor::Intel => write!(f, "Intel"),
        }
    }
}

/// One node of the topology tree.
#[derive(Debug, Clone)]
pub struct Object {
    /// What this object is.
    pub kind: ObjectKind,
    /// Logical index among objects of the same kind (hwloc `L#`).
    pub logical_index: u32,
    /// OS index (hwloc `P#`); `None` for objects the OS does not number.
    pub os_index: Option<u32>,
    /// The set of PU OS indices contained in this subtree.
    pub cpuset: CpuSet,
    /// Child object ids, in construction order.
    pub children: Vec<ObjId>,
    /// Parent object id (`None` for the machine root).
    pub parent: Option<ObjId>,
    /// Kind-specific attributes.
    pub attrs: ObjectAttrs,
}

/// An immutable hardware topology for one compute node.
///
/// Built with [`crate::builder::TopologyBuilder`] or one of the presets in
/// [`crate::presets`].
#[derive(Debug, Clone)]
pub struct Topology {
    pub(crate) objects: Vec<Object>,
    pub(crate) root: ObjId,
    /// Human-readable name of the node model (e.g. "OLCF Frontier").
    pub name: String,
}

impl Topology {
    /// The root (machine) object id.
    pub fn root(&self) -> ObjId {
        self.root
    }

    /// Access an object by id.
    pub fn object(&self, id: ObjId) -> &Object {
        &self.objects[id.index()]
    }

    /// Total number of objects of all kinds.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True only for a degenerate topology with no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// All objects of a given kind, in logical-index order.
    pub fn objects_of_kind(&self, kind: ObjectKind) -> Vec<ObjId> {
        let mut v: Vec<ObjId> = (0..self.objects.len() as u32)
            .map(ObjId)
            .filter(|id| self.object(*id).kind == kind)
            .collect();
        v.sort_by_key(|id| self.object(*id).logical_index);
        v
    }

    /// Number of objects of a given kind.
    pub fn count_of_kind(&self, kind: ObjectKind) -> usize {
        self.objects.iter().filter(|o| o.kind == kind).count()
    }

    /// The complete cpuset of the machine (all PU OS indices).
    pub fn complete_cpuset(&self) -> &CpuSet {
        &self.object(self.root).cpuset
    }

    /// Finds the PU object with the given OS index.
    pub fn pu_by_os_index(&self, os: u32) -> Option<ObjId> {
        (0..self.objects.len() as u32).map(ObjId).find(|id| {
            let o = self.object(*id);
            o.kind == ObjectKind::Pu && o.os_index == Some(os)
        })
    }

    /// Walks up from `id` to the nearest ancestor of `kind`.
    pub fn ancestor_of_kind(&self, id: ObjId, kind: ObjectKind) -> Option<ObjId> {
        let mut cur = self.object(id).parent;
        while let Some(p) = cur {
            if self.object(p).kind == kind {
                return Some(p);
            }
            cur = self.object(p).parent;
        }
        None
    }

    /// Depth-first pre-order traversal of the CPU tree (GPUs excluded).
    pub fn dfs(&self) -> Vec<ObjId> {
        let mut out = Vec::with_capacity(self.objects.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if self.object(id).kind == ObjectKind::Gpu {
                continue;
            }
            out.push(id);
            for &c in self.object(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All GPU objects in logical order.
    pub fn gpus(&self) -> Vec<ObjId> {
        self.objects_of_kind(ObjectKind::Gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn tiny() -> Topology {
        TopologyBuilder::new("tiny")
            .package(|p| {
                p.numa(1024, |n| {
                    n.l3(4096, |l3| l3.core_with_pus(&[0, 2]).core_with_pus(&[1, 3]))
                })
            })
            .build()
    }

    #[test]
    fn counts() {
        let t = tiny();
        assert_eq!(t.count_of_kind(ObjectKind::Machine), 1);
        assert_eq!(t.count_of_kind(ObjectKind::Package), 1);
        assert_eq!(t.count_of_kind(ObjectKind::NumaDomain), 1);
        assert_eq!(t.count_of_kind(ObjectKind::Core), 2);
        assert_eq!(t.count_of_kind(ObjectKind::Pu), 4);
    }

    #[test]
    fn complete_cpuset_covers_all_pus() {
        let t = tiny();
        assert_eq!(t.complete_cpuset().to_list_string(), "0-3");
    }

    #[test]
    fn pu_lookup_and_ancestor() {
        let t = tiny();
        let pu = t.pu_by_os_index(2).expect("pu 2 exists");
        assert_eq!(t.object(pu).os_index, Some(2));
        let core = t.ancestor_of_kind(pu, ObjectKind::Core).unwrap();
        assert_eq!(t.object(core).logical_index, 0);
        let numa = t.ancestor_of_kind(pu, ObjectKind::NumaDomain).unwrap();
        assert_eq!(t.object(numa).kind, ObjectKind::NumaDomain);
        assert!(t.ancestor_of_kind(t.root(), ObjectKind::Package).is_none());
    }

    #[test]
    fn logical_indices_are_sequential_per_kind() {
        let t = tiny();
        let cores = t.objects_of_kind(ObjectKind::Core);
        let idx: Vec<u32> = cores.iter().map(|c| t.object(*c).logical_index).collect();
        assert_eq!(idx, vec![0, 1]);
        let pus = t.objects_of_kind(ObjectKind::Pu);
        let idx: Vec<u32> = pus.iter().map(|c| t.object(*c).logical_index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dfs_visits_everything_once() {
        let t = tiny();
        let order = t.dfs();
        assert_eq!(order.len(), t.len()); // no GPUs in tiny
        assert_eq!(order[0], t.root());
    }
}
