//! Collective operations modeled as point-to-point message flows.
//!
//! ZeroSum wraps only the point-to-point API, so collectives show up in
//! its heatmap as the underlying algorithm's message pattern. These
//! helpers inject the canonical algorithms: recursive-doubling
//! allreduce, binomial-tree broadcast/reduce, and a linear-time barrier.

use crate::comm::CommWorld;

/// Recursive-doubling allreduce: log₂(n) rounds of pairwise exchanges of
/// the full payload. Requires (and asserts) a power-of-two world.
pub fn allreduce_recursive_doubling(world: &CommWorld, bytes: u64) {
    let n = world.size();
    assert!(n.is_power_of_two(), "recursive doubling needs 2^k ranks");
    let mut dist = 1;
    while dist < n {
        for r in 0..n {
            let partner = r ^ dist;
            world.communicator(r).send(partner, bytes);
        }
        dist <<= 1;
    }
}

/// Binomial-tree broadcast from `root`: each round, ranks that already
/// hold the data forward it to a rank `2^k` away.
pub fn broadcast_binomial(world: &CommWorld, root: usize, bytes: u64) {
    let n = world.size();
    let rel = |r: usize| (r + n - root) % n;
    let abs = |r: usize| (r + root) % n;
    let mut have = 1usize; // relative ranks [0, have) hold the data
    while have < n {
        let senders = have.min(n - have);
        for s in 0..senders {
            let dst = s + have;
            if dst < n {
                world.communicator(abs(rel(abs(s)))).send(abs(dst), bytes);
            }
        }
        have *= 2;
    }
}

/// Binomial-tree reduce to `root` (mirror of broadcast).
pub fn reduce_binomial(world: &CommWorld, root: usize, bytes: u64) {
    let n = world.size();
    let abs = |r: usize| (r + root) % n;
    let mut stride = 1usize;
    while stride < n {
        let mut r = 0;
        while r + stride < n {
            // relative rank r+stride sends to relative rank r
            world.communicator(abs(r + stride)).send(abs(r), bytes);
            r += stride * 2;
        }
        stride *= 2;
    }
}

/// Linear barrier: everyone pings rank 0, rank 0 answers (2(n−1) small
/// messages).
pub fn barrier_linear(world: &CommWorld, token_bytes: u64) {
    let n = world.size();
    for r in 1..n {
        world.communicator(r).send(0, token_bytes);
    }
    let c0 = world.communicator(0);
    for r in 1..n {
        c0.send(r, token_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_message_count() {
        let w = CommWorld::new(8);
        allreduce_recursive_doubling(&w, 1024);
        let m = w.matrix();
        // log2(8)=3 rounds × 8 ranks, one send each.
        let msgs: u64 = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .map(|(s, d)| m.messages(s, d))
            .sum();
        assert_eq!(msgs, 24);
        // Symmetric: every rank sends exactly 3 messages.
        for r in 0..8 {
            let sent: u64 = (0..8).map(|d| m.messages(r, d)).sum();
            assert_eq!(sent, 3, "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "2^k ranks")]
    fn allreduce_requires_power_of_two() {
        allreduce_recursive_doubling(&CommWorld::new(6), 1);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let w = CommWorld::new(16);
        broadcast_binomial(&w, 3, 100);
        let m = w.matrix();
        // n−1 receives of the payload in total.
        let msgs: u64 = (0..16)
            .flat_map(|s| (0..16).map(move |d| (s, d)))
            .map(|(s, d)| m.messages(s, d))
            .sum();
        assert_eq!(msgs, 15);
        // Every rank except the root receives exactly once.
        for d in 0..16 {
            let recv: u64 = (0..16).map(|s| m.messages(s, d)).sum();
            assert_eq!(recv, u64::from(d != 3), "rank {d}");
        }
    }

    #[test]
    fn reduce_collects_to_root() {
        let w = CommWorld::new(8);
        reduce_binomial(&w, 0, 64);
        let m = w.matrix();
        let msgs: u64 = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .map(|(s, d)| m.messages(s, d))
            .sum();
        assert_eq!(msgs, 7);
        // Root sends nothing.
        let root_sent: u64 = (0..8).map(|d| m.messages(0, d)).sum();
        assert_eq!(root_sent, 0);
    }

    #[test]
    fn barrier_centers_on_rank_zero() {
        let w = CommWorld::new(5);
        barrier_linear(&w, 4);
        let m = w.matrix();
        for r in 1..5 {
            assert_eq!(m.messages(r, 0), 1);
            assert_eq!(m.messages(0, r), 1);
        }
        assert_eq!(m.total_bytes(), 8 * 4);
    }
}
