//! The simulated MPI world and point-to-point byte accounting.
//!
//! §3.1.3 of the paper: ZeroSum wraps the MPI point-to-point API to
//! capture total bytes transferred and the sender/receiver ranks, which
//! post-processes into communication heatmaps (Figure 5). This module
//! provides the substrate being wrapped: a process-local "MPI world"
//! whose communicators record every `send` into a shared traffic matrix —
//! exactly the data the real tool's PMPI wrappers accumulate.

use std::sync::{Arc, Mutex, PoisonError};

/// The world: rank count plus the shared traffic matrix.
#[derive(Debug, Clone)]
pub struct CommWorld {
    size: usize,
    matrix: Arc<Mutex<CommMatrix>>,
}

impl CommWorld {
    /// Creates a world of `size` ranks.
    ///
    /// # Panics
    /// If `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "MPI world needs at least one rank");
        CommWorld {
            size,
            matrix: Arc::new(Mutex::new(CommMatrix::new(size))),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// A communicator handle for `rank`.
    ///
    /// # Panics
    /// If `rank >= size`.
    pub fn communicator(&self, rank: usize) -> Communicator {
        assert!(rank < self.size, "rank {rank} out of range");
        Communicator {
            rank,
            size: self.size,
            matrix: Arc::clone(&self.matrix),
        }
    }

    /// A snapshot of the accumulated traffic matrix.
    pub fn matrix(&self) -> CommMatrix {
        self.matrix
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A per-rank communicator, analogous to `MPI_COMM_WORLD` seen from one
/// rank, with ZeroSum's byte-accounting wrappers installed.
#[derive(Debug, Clone)]
pub struct Communicator {
    rank: usize,
    size: usize,
    matrix: Arc<Mutex<CommMatrix>>,
}

impl Communicator {
    /// This rank (like `MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (like `MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `bytes` to `dest` (the wrapped `MPI_Send`/`MPI_Isend` path).
    ///
    /// # Panics
    /// If `dest >= size`.
    pub fn send(&self, dest: usize, bytes: u64) {
        assert!(dest < self.size, "send to invalid rank {dest}");
        self.matrix
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(self.rank, dest, bytes);
    }

    /// Receives from `src`. The wrapped receive records nothing (bytes
    /// are accounted at the sender) but is provided for API fidelity.
    pub fn recv(&self, src: usize, _bytes: u64) {
        debug_assert!(src < self.size, "recv from invalid rank {src}");
    }

    /// A sendrecv convenience (halo-exchange building block).
    pub fn sendrecv(&self, dest: usize, send_bytes: u64, src: usize, recv_bytes: u64) {
        self.send(dest, send_bytes);
        self.recv(src, recv_bytes);
    }
}

/// The rank-by-rank traffic matrix: `bytes[src][dst]` plus message counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    size: usize,
    bytes: Vec<u64>,
    messages: Vec<u64>,
}

impl CommMatrix {
    /// An empty `size × size` matrix.
    pub fn new(size: usize) -> Self {
        CommMatrix {
            size,
            bytes: vec![0; size * size],
            messages: vec![0; size * size],
        }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Records one message. Out-of-range ranks are dropped, matching
    /// the read accessors: the matrix is bookkeeping, and bookkeeping
    /// must never panic under the sampling supervisor.
    pub fn record(&mut self, src: usize, dst: usize, bytes: u64) {
        let idx = src * self.size + dst;
        if let Some(b) = self.bytes.get_mut(idx) {
            *b += bytes;
        }
        if let Some(m) = self.messages.get_mut(idx) {
            *m += 1;
        }
    }

    /// Bytes sent from `src` to `dst`. Out-of-range ranks read as 0 —
    /// these accessors run on the crash-flush path (CSV export) and
    /// must not panic on a malformed rank.
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes.get(src * self.size + dst).copied().unwrap_or(0)
    }

    /// Messages sent from `src` to `dst`.
    pub fn messages(&self, src: usize, dst: usize) -> u64 {
        self.messages
            .get(src * self.size + dst)
            .copied()
            .unwrap_or(0)
    }

    /// Total bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// The largest single-pair byte count (the heatmap color-scale top).
    pub fn max_bytes(&self) -> u64 {
        self.bytes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of traffic within `band` ranks of the diagonal — the
    /// "strong nearest-neighbor pattern along the central diagonal" the
    /// paper reads off Figure 5.
    pub fn diagonal_fraction(&self, band: usize) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let mut near = 0u64;
        for s in 0..self.size {
            for d in 0..self.size {
                let dist = s.abs_diff(d);
                // Account for periodic wrap (rank 0 ↔ rank n−1 are
                // neighbours in a periodic halo).
                let dist = dist.min(self.size - dist);
                if dist <= band {
                    near += self.bytes(s, d);
                }
            }
        }
        near as f64 / total as f64
    }

    /// Merges another matrix (e.g. per-node partials).
    ///
    /// # Panics
    /// If sizes differ.
    pub fn merge(&mut self, other: &CommMatrix) {
        assert_eq!(self.size, other.size, "matrix size mismatch");
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
        for (a, b) in self.messages.iter_mut().zip(&other.messages) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_sizes() {
        let w = CommWorld::new(4);
        assert_eq!(w.size(), 4);
        let c2 = w.communicator(2);
        assert_eq!(c2.rank(), 2);
        assert_eq!(c2.size(), 4);
    }

    #[test]
    #[should_panic(expected = "rank 4 out of range")]
    fn invalid_rank_panics() {
        CommWorld::new(4).communicator(4);
    }

    #[test]
    fn send_accumulates_bytes_and_messages() {
        let w = CommWorld::new(3);
        let c0 = w.communicator(0);
        c0.send(1, 100);
        c0.send(1, 150);
        c0.send(2, 7);
        let m = w.matrix();
        assert_eq!(m.bytes(0, 1), 250);
        assert_eq!(m.messages(0, 1), 2);
        assert_eq!(m.bytes(0, 2), 7);
        assert_eq!(m.bytes(1, 0), 0);
        assert_eq!(m.total_bytes(), 257);
        assert_eq!(m.max_bytes(), 250);
    }

    #[test]
    fn communicators_share_the_matrix() {
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        c0.send(1, 10);
        c1.send(0, 20);
        let m = w.matrix();
        assert_eq!(m.bytes(0, 1), 10);
        assert_eq!(m.bytes(1, 0), 20);
    }

    #[test]
    fn sends_are_thread_safe() {
        let w = CommWorld::new(8);
        let mut handles = Vec::new();
        for r in 0..8 {
            let c = w.communicator(r);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.send((r + 1) % 8, i % 17);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let m = w.matrix();
        let msgs: u64 = (0..8).map(|r| m.messages(r, (r + 1) % 8)).sum();
        assert_eq!(msgs, 8_000);
    }

    #[test]
    fn diagonal_fraction_detects_neighbor_pattern() {
        let mut m = CommMatrix::new(8);
        for r in 0..8 {
            m.record(r, (r + 1) % 8, 1000);
            m.record(r, (r + 7) % 8, 1000);
        }
        assert!((m.diagonal_fraction(1) - 1.0).abs() < 1e-12);
        // Uniform background lowers it.
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    m.record(s, d, 100);
                }
            }
        }
        let f = m.diagonal_fraction(1);
        assert!(f > 0.5 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn merge_sums() {
        let mut a = CommMatrix::new(2);
        a.record(0, 1, 5);
        let mut b = CommMatrix::new(2);
        b.record(0, 1, 7);
        b.record(1, 0, 1);
        a.merge(&b);
        assert_eq!(a.bytes(0, 1), 12);
        assert_eq!(a.messages(0, 1), 2);
        assert_eq!(a.bytes(1, 0), 1);
    }

    #[test]
    fn empty_matrix_diagonal_fraction_is_zero() {
        assert_eq!(CommMatrix::new(4).diagonal_fraction(1), 0.0);
    }
}
