//! Logical-to-physical rank mapping.
//!
//! §3.1.3 of the paper: the point-to-point data "could also be used to
//! guide the logical MPI process ordering on the nodes to exploit lower
//! latency communication between ranks executing on the same node." This
//! module provides the mapping strategies and the metric such guidance
//! optimizes — the fraction of traffic that stays node-local.

use crate::comm::CommMatrix;

/// How ranks are distributed across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapStrategy {
    /// Consecutive ranks fill a node before moving on (Slurm `block`).
    Block,
    /// Ranks deal out round-robin across nodes (Slurm `cyclic`).
    Cyclic,
}

/// A rank→node assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankMap {
    node_of: Vec<usize>,
    nodes: usize,
}

impl RankMap {
    /// Maps `ranks` ranks onto `nodes` nodes with the given strategy.
    ///
    /// # Panics
    /// If `nodes` is zero.
    pub fn new(ranks: usize, nodes: usize, strategy: MapStrategy) -> Self {
        assert!(nodes > 0, "need at least one node");
        let per_node = ranks.div_ceil(nodes);
        let node_of = (0..ranks)
            .map(|r| match strategy {
                MapStrategy::Block => r / per_node,
                MapStrategy::Cyclic => r % nodes,
            })
            .collect();
        RankMap { node_of, nodes }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ranks hosted on `node`, ascending.
    pub fn ranks_on(&self, node: usize) -> Vec<usize> {
        (0..self.node_of.len())
            .filter(|&r| self.node_of[r] == node)
            .collect()
    }

    /// The fraction of the matrix's traffic exchanged between ranks on
    /// the same node — higher is better for a given app pattern.
    pub fn intra_node_fraction(&self, m: &CommMatrix) -> f64 {
        let total = m.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let mut local = 0u64;
        for s in 0..m.size() {
            for d in 0..m.size() {
                if self.node_of[s] == self.node_of[d] {
                    local += m.bytes(s, d);
                }
            }
        }
        local as f64 / total as f64
    }
}

/// A logical→physical rank permutation: `placement[logical] = slot`,
/// where slots are filled node-major (`slot / per_node` = node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankOrder {
    slot_of: Vec<usize>,
    per_node: usize,
}

impl RankOrder {
    /// The identity order for `ranks` ranks at `per_node` per node.
    pub fn identity(ranks: usize, per_node: usize) -> Self {
        RankOrder {
            slot_of: (0..ranks).collect(),
            per_node: per_node.max(1),
        }
    }

    /// The node hosting `rank` under this order.
    pub fn node_of(&self, rank: usize) -> usize {
        self.slot_of[rank] / self.per_node
    }

    /// Fraction of matrix traffic that stays node-local under this order.
    pub fn intra_node_fraction(&self, m: &CommMatrix) -> f64 {
        let total = m.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let mut local = 0u64;
        for s in 0..m.size() {
            for d in 0..m.size() {
                if self.node_of(s) == self.node_of(d) {
                    local += m.bytes(s, d);
                }
            }
        }
        local as f64 / total as f64
    }
}

/// Greedy traffic-aware rank ordering — the §3.1.3 use of ZeroSum's
/// point-to-point data: "guide the logical MPI process ordering on the
/// nodes to exploit lower latency communication between ranks executing
/// on the same node."
///
/// Nodes are filled one at a time: seed each node with the unplaced rank
/// having the most total traffic, then repeatedly add the unplaced rank
/// with the highest traffic to the ranks already on the node.
pub fn optimize_order(m: &CommMatrix, per_node: usize) -> RankOrder {
    let n = m.size();
    let per_node = per_node.max(1);
    let pair = |a: usize, b: usize| m.bytes(a, b) + m.bytes(b, a);
    let mut placed = vec![false; n];
    let mut slot_of = vec![0usize; n];
    let mut next_slot = 0usize;
    while next_slot < n {
        // Seed: heaviest unplaced rank by total traffic.
        let seed = (0..n)
            .filter(|&r| !placed[r])
            .max_by_key(|&r| (0..n).map(|o| pair(r, o)).sum::<u64>())
            .expect("unplaced rank exists");
        let mut node_members = vec![seed];
        placed[seed] = true;
        slot_of[seed] = next_slot;
        next_slot += 1;
        while node_members.len() < per_node && next_slot < n {
            let best = (0..n)
                .filter(|&r| !placed[r])
                .max_by_key(|&r| node_members.iter().map(|&mbr| pair(r, mbr)).sum::<u64>());
            let Some(best) = best else { break };
            placed[best] = true;
            slot_of[best] = next_slot;
            next_slot += 1;
            node_members.push(best);
        }
    }
    RankOrder { slot_of, per_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommWorld;
    use crate::patterns::halo_1d;

    #[test]
    fn block_and_cyclic_assignments() {
        let block = RankMap::new(8, 2, MapStrategy::Block);
        assert_eq!(block.node_of(0), 0);
        assert_eq!(block.node_of(3), 0);
        assert_eq!(block.node_of(4), 1);
        assert_eq!(block.ranks_on(1), vec![4, 5, 6, 7]);
        let cyc = RankMap::new(8, 2, MapStrategy::Cyclic);
        assert_eq!(cyc.node_of(0), 0);
        assert_eq!(cyc.node_of(1), 1);
        assert_eq!(cyc.ranks_on(0), vec![0, 2, 4, 6]);
    }

    #[test]
    fn block_beats_cyclic_for_halo_traffic() {
        // The paper's guidance use case: nearest-neighbour traffic favours
        // block placement (neighbours co-located).
        let w = CommWorld::new(64);
        halo_1d(&w, 1, 1 << 16);
        let m = w.matrix();
        let block = RankMap::new(64, 8, MapStrategy::Block).intra_node_fraction(&m);
        let cyclic = RankMap::new(64, 8, MapStrategy::Cyclic).intra_node_fraction(&m);
        assert!(
            block > 0.8 && cyclic < 0.1,
            "block {block}, cyclic {cyclic}"
        );
    }

    #[test]
    fn uneven_division() {
        let map = RankMap::new(10, 3, MapStrategy::Block);
        // ceil(10/3)=4 per node: 4,4,2.
        assert_eq!(map.ranks_on(0).len(), 4);
        assert_eq!(map.ranks_on(2).len(), 2);
    }

    #[test]
    fn optimizer_recovers_block_locality_for_halo() {
        let w = CommWorld::new(32);
        halo_1d(&w, 1, 1 << 16);
        let m = w.matrix();
        let order = optimize_order(&m, 8);
        let frac = order.intra_node_fraction(&m);
        // Greedy chains neighbours onto nodes: most traffic stays local.
        assert!(frac > 0.8, "optimized fraction {frac}");
        assert!(frac >= RankOrder::identity(32, 8).intra_node_fraction(&m) - 1e-12);
    }

    #[test]
    fn optimizer_beats_identity_on_strided_traffic() {
        // Ranks communicate with rank+8 (stride = per_node): identity
        // placement makes ALL traffic cross-node; the optimizer pairs
        // partners onto one node.
        let mut m = CommMatrix::new(16);
        for r in 0..8 {
            m.record(r, r + 8, 1_000_000);
            m.record(r + 8, r, 1_000_000);
        }
        let identity = RankOrder::identity(16, 4).intra_node_fraction(&m);
        assert_eq!(identity, 0.0);
        let frac = optimize_order(&m, 4).intra_node_fraction(&m);
        assert!(frac > 0.9, "optimized fraction {frac}");
    }

    #[test]
    fn optimizer_handles_uneven_last_node() {
        let w = CommWorld::new(10);
        halo_1d(&w, 1, 100);
        let order = optimize_order(&w.matrix(), 4);
        // Every rank gets a slot; nodes are 0,1,2.
        let mut nodes: Vec<usize> = (0..10).map(|r| order.node_of(r)).collect();
        nodes.sort_unstable();
        assert_eq!(nodes.iter().filter(|&&x| x == 0).count(), 4);
        assert_eq!(nodes.iter().filter(|&&x| x == 2).count(), 2);
    }

    #[test]
    fn empty_matrix_fraction_zero() {
        let map = RankMap::new(4, 2, MapStrategy::Block);
        assert_eq!(map.intra_node_fraction(&CommMatrix::new(4)), 0.0);
    }
}
