//! # zerosum-mpi
//!
//! The MPI substrate for ZeroSum-rs.
//!
//! The paper's ZeroSum queries the hostname, communicator rank and size at
//! startup and wraps the MPI point-to-point API to accumulate per-pair
//! byte counts (§3.1.3), later post-processed into the Figure 5 heatmap
//! (§3.6). With no MPI available here, this crate *is* the substrate
//! being wrapped:
//!
//! * [`comm`] — the simulated world, per-rank communicators, and the
//!   shared [`comm::CommMatrix`] traffic matrix.
//! * [`patterns`] — workload traffic generators (1-D/2-D halo exchange,
//!   all-to-all, random background).
//! * [`collective`] — collectives expressed as their point-to-point
//!   message flows.
//! * [`heatmap`] — CSV export, downsampled intensity grids, and ASCII
//!   rendering of the matrix.
//! * [`mapping`] — rank→node placement strategies and the intra-node
//!   traffic fraction they optimize.

#![warn(missing_docs)]

pub mod collective;
pub mod comm;
pub mod heatmap;
pub mod mapping;
pub mod patterns;

pub use comm::{CommMatrix, CommWorld, Communicator};
pub use mapping::{optimize_order, MapStrategy, RankMap, RankOrder};

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::comm::{CommMatrix, CommWorld};
    use crate::patterns;
    use proptest::prelude::*;

    proptest! {
        /// Total bytes equal the sum of what each communicator sent.
        #[test]
        fn totals_add_up(
            size in 2usize..32,
            sends in proptest::collection::vec((0usize..32, 0usize..32, 1u64..10_000), 0..200),
        ) {
            let w = CommWorld::new(size);
            let mut expect = 0u64;
            for (s, d, b) in sends {
                let (s, d) = (s % size, d % size);
                if s != d {
                    w.communicator(s).send(d, b);
                    expect += b;
                }
            }
            prop_assert_eq!(w.matrix().total_bytes(), expect);
        }

        /// Halo traffic is always fully within the band of its width.
        #[test]
        fn halo_band_containment(size in 4usize..128, width in 1usize..3) {
            let w = CommWorld::new(size);
            patterns::halo_1d(&w, width, 10_000);
            let m = w.matrix();
            prop_assert!((m.diagonal_fraction(width) - 1.0).abs() < 1e-12);
        }

        /// optimize_order always yields a valid permutation, and on halo
        /// traffic it never does worse than identity.
        #[test]
        fn optimizer_is_a_permutation(
            size in 2usize..40,
            per_node in 1usize..9,
            sends in proptest::collection::vec((0usize..40, 0usize..40, 1u64..10_000), 0..120),
        ) {
            let mut m = CommMatrix::new(size);
            for (s, d, b) in sends {
                let (s, d) = (s % size, d % size);
                if s != d {
                    m.record(s, d, b);
                }
            }
            let order = crate::mapping::optimize_order(&m, per_node);
            // Every node index is within bounds and slots form a
            // permutation (each node holds at most per_node ranks and
            // they partition the rank set).
            let mut per_node_counts = std::collections::BTreeMap::new();
            for r in 0..size {
                *per_node_counts.entry(order.node_of(r)).or_insert(0usize) += 1;
            }
            for (_, c) in per_node_counts {
                prop_assert!(c <= per_node);
            }
            let f = order.intra_node_fraction(&m);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        /// Merging partial matrices equals recording everything in one.
        #[test]
        fn merge_equals_union(
            size in 2usize..16,
            a in proptest::collection::vec((0usize..16, 0usize..16, 1u64..100), 0..50),
            b in proptest::collection::vec((0usize..16, 0usize..16, 1u64..100), 0..50),
        ) {
            let mut m1 = CommMatrix::new(size);
            let mut m2 = CommMatrix::new(size);
            let mut whole = CommMatrix::new(size);
            for (s, d, bytes) in &a {
                m1.record(s % size, d % size, *bytes);
                whole.record(s % size, d % size, *bytes);
            }
            for (s, d, bytes) in &b {
                m2.record(s % size, d % size, *bytes);
                whole.record(s % size, d % size, *bytes);
            }
            m1.merge(&m2);
            prop_assert_eq!(m1, whole);
        }
    }
}
