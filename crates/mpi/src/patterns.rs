//! Communication-pattern generators.
//!
//! Figure 5 of the paper shows the point-to-point heatmap of a
//! gyrokinetic particle-in-cell code (512 ranks on Frontier) with a
//! strong nearest-neighbour diagonal. These generators drive the
//! simulated communicators with the traffic classes HPC codes produce:
//! 1-D/2-D halo exchange (the PIC pattern), all-to-all transposes, and a
//! random-pairs background.

use crate::comm::CommWorld;

/// One step of 1-D halo exchange: every rank sends `bytes` to its ±1…±width
/// neighbours, periodic at the ends (a field-line-following PIC mesh).
pub fn halo_1d(world: &CommWorld, width: usize, bytes: u64) {
    let n = world.size();
    for r in 0..n {
        let c = world.communicator(r);
        for d in 1..=width {
            // Traffic decays with neighbour distance, as halo widths do.
            let b = bytes / d as u64;
            c.send((r + d) % n, b);
            c.send((r + n - d % n) % n, b);
        }
    }
}

/// One step of 2-D halo exchange on a `rows × cols` process grid
/// (row-major rank order), non-periodic.
pub fn halo_2d(world: &CommWorld, rows: usize, cols: usize, bytes: u64) {
    assert_eq!(rows * cols, world.size(), "grid must cover the world");
    for r in 0..rows {
        for c in 0..cols {
            let rank = r * cols + c;
            let comm = world.communicator(rank);
            if c + 1 < cols {
                comm.send(rank + 1, bytes);
            }
            if c > 0 {
                comm.send(rank - 1, bytes);
            }
            if r + 1 < rows {
                comm.send(rank + cols, bytes);
            }
            if r > 0 {
                comm.send(rank - cols, bytes);
            }
        }
    }
}

/// One all-to-all step: every rank sends `bytes` to every other rank
/// (spectral transpose / FFT shuffle traffic).
pub fn all_to_all(world: &CommWorld, bytes: u64) {
    let n = world.size();
    for r in 0..n {
        let c = world.communicator(r);
        for d in 0..n {
            if d != r {
                c.send(d, bytes);
            }
        }
    }
}

/// `count` random sender/receiver pairs of `bytes` each, from a seeded
/// LCG (deterministic background noise for heatmap contrast tests).
pub fn random_pairs(world: &CommWorld, count: usize, bytes: u64, seed: u64) {
    let n = world.size() as u64;
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493)
        | 1;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..count {
        let s = (next() % n) as usize;
        let d = (next() % n) as usize;
        if s != d {
            world.communicator(s).send(d, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_1d_is_diagonal_and_periodic() {
        let w = CommWorld::new(16);
        halo_1d(&w, 1, 4096);
        let m = w.matrix();
        assert_eq!(m.bytes(0, 1), 4096);
        assert_eq!(m.bytes(0, 15), 4096); // periodic wrap
        assert_eq!(m.bytes(0, 2), 0);
        assert!((m.diagonal_fraction(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn halo_1d_width_two_decays() {
        let w = CommWorld::new(16);
        halo_1d(&w, 2, 4096);
        let m = w.matrix();
        assert_eq!(m.bytes(3, 4), 4096);
        assert_eq!(m.bytes(3, 5), 2048); // second-neighbour traffic halved
    }

    #[test]
    fn halo_2d_edges_have_fewer_neighbors() {
        let w = CommWorld::new(12);
        halo_2d(&w, 3, 4, 100);
        let m = w.matrix();
        // Corner rank 0: right + down only.
        assert_eq!(m.bytes(0, 1), 100);
        assert_eq!(m.bytes(0, 4), 100);
        assert_eq!(m.bytes(0, 3), 0);
        // Interior rank 5: four neighbours.
        let sent: u64 = (0..12).map(|d| m.bytes(5, d)).sum();
        assert_eq!(sent, 400);
    }

    #[test]
    #[should_panic(expected = "grid must cover")]
    fn halo_2d_bad_grid_panics() {
        let w = CommWorld::new(10);
        halo_2d(&w, 3, 4, 1);
    }

    #[test]
    fn all_to_all_fills_off_diagonal() {
        let w = CommWorld::new(5);
        all_to_all(&w, 10);
        let m = w.matrix();
        assert_eq!(m.total_bytes(), 5 * 4 * 10);
        for r in 0..5 {
            assert_eq!(m.bytes(r, r), 0);
        }
    }

    #[test]
    fn random_pairs_deterministic() {
        let w1 = CommWorld::new(32);
        random_pairs(&w1, 500, 64, 42);
        let w2 = CommWorld::new(32);
        random_pairs(&w2, 500, 64, 42);
        assert_eq!(w1.matrix(), w2.matrix());
        assert!(w1.matrix().total_bytes() > 0);
        // Different seed differs.
        let w3 = CommWorld::new(32);
        random_pairs(&w3, 500, 64, 43);
        assert_ne!(w1.matrix(), w3.matrix());
    }
}
