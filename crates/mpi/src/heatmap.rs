//! Heatmap rendering and export of the communication matrix.
//!
//! §3.6: ZeroSum's log contains the MPI point-to-point data "which can be
//! post-processed to produce a heatmap like the one shown in Figure 5."
//! This module is that post-processing: CSV export of the matrix and an
//! ASCII intensity rendering with optional downsampling for large rank
//! counts.

use crate::comm::CommMatrix;
use std::fmt::Write as _;

/// CSV export: header `src,dst,bytes,messages`, one row per nonzero pair.
pub fn to_csv(m: &CommMatrix) -> String {
    let mut out = String::from("src,dst,bytes,messages\n");
    for s in 0..m.size() {
        for d in 0..m.size() {
            let b = m.bytes(s, d);
            if b > 0 {
                writeln!(out, "{s},{d},{b},{}", m.messages(s, d)).unwrap();
            }
        }
    }
    out
}

/// A dense downsampled intensity grid in `[0,1]`, `cells × cells`,
/// averaging byte counts within each cell — what a plotting script would
/// feed to `imshow` for Figure 5.
pub fn intensity_grid(m: &CommMatrix, cells: usize) -> Vec<Vec<f64>> {
    let cells = cells.min(m.size()).max(1);
    let mut sums = vec![vec![0u64; cells]; cells];
    let mut counts = vec![vec![0u64; cells]; cells];
    for s in 0..m.size() {
        for d in 0..m.size() {
            let ci = s * cells / m.size();
            let cj = d * cells / m.size();
            sums[ci][cj] += m.bytes(s, d);
            counts[ci][cj] += 1;
        }
    }
    let mut maxavg = 0.0f64;
    let mut grid = vec![vec![0.0f64; cells]; cells];
    for i in 0..cells {
        for j in 0..cells {
            if counts[i][j] > 0 {
                grid[i][j] = sums[i][j] as f64 / counts[i][j] as f64;
                maxavg = maxavg.max(grid[i][j]);
            }
        }
    }
    if maxavg > 0.0 {
        for row in &mut grid {
            for v in row.iter_mut() {
                *v /= maxavg;
            }
        }
    }
    grid
}

/// ASCII heatmap: darkness ramp ` .:-=+*#%@` over the downsampled grid.
pub fn render_ascii(m: &CommMatrix, cells: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let grid = intensity_grid(m, cells);
    let mut out = String::new();
    for row in &grid {
        for &v in row {
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommWorld;
    use crate::patterns::halo_1d;

    #[test]
    fn csv_has_only_nonzero_pairs() {
        let w = CommWorld::new(4);
        w.communicator(0).send(1, 42);
        let csv = to_csv(&w.matrix());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "src,dst,bytes,messages");
        assert_eq!(lines[1], "0,1,42,1");
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn intensity_grid_normalized() {
        let w = CommWorld::new(64);
        halo_1d(&w, 1, 1_000_000);
        let grid = intensity_grid(&w.matrix(), 16);
        assert_eq!(grid.len(), 16);
        let max = grid.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        assert!((max - 1.0).abs() < 1e-12);
        // Diagonal cells are the hot ones.
        assert!(grid[5][5] > grid[5][12]);
    }

    #[test]
    fn ascii_render_shows_diagonal() {
        let w = CommWorld::new(128);
        halo_1d(&w, 1, 1 << 20);
        let art = render_ascii(&w.matrix(), 32);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 32);
        // Diagonal characters are dark, off-diagonal blank.
        let diag_char = rows[10].as_bytes()[10] as char;
        let off_char = rows[10].as_bytes()[25] as char;
        assert_ne!(diag_char, ' ');
        assert_eq!(off_char, ' ');
    }

    #[test]
    fn grid_smaller_than_cells() {
        let w = CommWorld::new(4);
        w.communicator(1).send(2, 5);
        let grid = intensity_grid(&w.matrix(), 100);
        assert_eq!(grid.len(), 4); // clamped to world size
    }

    #[test]
    fn empty_matrix_renders_blank() {
        let m = crate::comm::CommMatrix::new(8);
        let art = render_ascii(&m, 8);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }
}
