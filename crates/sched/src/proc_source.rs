//! The simulated `/proc` backend.
//!
//! [`SimProcSource`] implements [`zerosum_proc::ProcSource`] over a
//! [`NodeSim`]. To keep the simulation honest it does not hand structured
//! data to the monitor directly: every record is first *rendered to the
//! kernel's text format* and then re-parsed with the same parsers the
//! live-Linux backend uses. The monitor therefore exercises the identical
//! code path on both backends, and the jiffy quantization that makes
//! Figure 6 noisy happens exactly where it does on a real system.

use crate::node::NodeSim;
use crate::task::RunState;
use zerosum_proc::{
    format, parse, CpuTimes, MemInfo, Pid, SchedStat, SourceError, SourceResult, SystemStat,
    TaskStat, TaskStatus, Tid,
};

/// Microseconds per jiffy at `USER_HZ` = 100.
const US_PER_JIFFY: u64 = 1_000_000 / zerosum_proc::USER_HZ;

/// A borrowed `/proc` view of a [`NodeSim`].
pub struct SimProcSource<'a> {
    sim: &'a NodeSim,
}

impl<'a> SimProcSource<'a> {
    /// Creates the view.
    pub fn new(sim: &'a NodeSim) -> Self {
        SimProcSource { sim }
    }

    fn render_task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<String> {
        let task = self
            .sim
            .task_by_tid(tid)
            .filter(|t| t.pid == pid)
            .ok_or(SourceError::NotFound)?;
        let process = self.sim.process(pid).ok_or(SourceError::NotFound)?;
        let now = self.sim.now_us();
        // Kernel truncates comm to 15 bytes.
        let comm: String = task.name.chars().take(15).collect();
        // Minor faults: the main thread performs the first-touch faults of
        // the memory ramp; every thread adds an allocator trickle
        // proportional to its CPU time.
        let ramp_faults = if tid == pid {
            process.memory.minor_faults(now)
        } else {
            0
        };
        let trickle = task.cpu_us() / 20_000;
        let stat = TaskStat {
            tid,
            comm,
            state: task.state.proc_state(),
            minflt: ramp_faults + trickle,
            majflt: 0,
            utime: task.counters.utime_us / US_PER_JIFFY,
            stime: task.counters.stime_us / US_PER_JIFFY,
            nice: 0,
            num_threads: process.tasks.len() as u32,
            processor: task.last_cpu,
            nswap: 0,
        };
        Ok(format::format_task_stat(&stat))
    }

    fn render_task_status(&self, pid: Pid, tid: Tid) -> SourceResult<String> {
        let task = self
            .sim
            .task_by_tid(tid)
            .filter(|t| t.pid == pid)
            .ok_or(SourceError::NotFound)?;
        let process = self.sim.process(pid).ok_or(SourceError::NotFound)?;
        let now = self.sim.now_us();
        let status = TaskStatus {
            name: task.name.chars().take(15).collect(),
            tid,
            tgid: pid,
            state: task.state.proc_state(),
            vm_rss_kib: process.memory.rss_kib(now),
            vm_size_kib: process.memory.vm_size_kib,
            vm_hwm_kib: process.memory.hwm_kib(now),
            cpus_allowed: task.affinity.clone(),
            voluntary_ctxt_switches: task.counters.vcsw,
            nonvoluntary_ctxt_switches: task.counters.nvcsw,
        };
        Ok(format::format_task_status(&status))
    }
}

fn malformed(e: impl std::fmt::Display) -> SourceError {
    SourceError::Malformed(e.to_string())
}

impl zerosum_proc::ProcSource for SimProcSource<'_> {
    fn system_stat(&self) -> SourceResult<SystemStat> {
        let mut cpus = Vec::new();
        let mut total = CpuTimes::default();
        for (os, user_us, system_us, idle_us) in self.sim.cpu_times_us() {
            let t = CpuTimes {
                user: user_us / US_PER_JIFFY,
                system: system_us / US_PER_JIFFY,
                idle: idle_us / US_PER_JIFFY,
                ..Default::default()
            };
            total = total.add(&t);
            cpus.push((os, t));
        }
        let stat = SystemStat {
            total,
            cpus,
            ctxt: self.sim.ctxt_total(),
            processes: 0,
        };
        let text = format::format_system_stat(&stat);
        parse::parse_system_stat(&text).map_err(malformed)
    }

    fn meminfo(&self) -> SourceResult<MemInfo> {
        let mi = self.sim.memory.meminfo(self.sim.processes_rss_kib());
        let text = format::format_meminfo(&mi);
        parse::parse_meminfo(&text).map_err(malformed)
    }

    fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>> {
        let process = self.sim.process(pid).ok_or(SourceError::NotFound)?;
        let mut tids: Vec<Tid> = process
            .tasks
            .iter()
            .map(|&id| self.sim.task(id).tid)
            // Exited threads disappear from /proc/<pid>/task.
            .filter(|&tid| {
                self.sim
                    .task_by_tid(tid)
                    .map(|t| t.state != RunState::Exited)
                    .unwrap_or(false)
            })
            .collect();
        tids.sort_unstable();
        Ok(tids)
    }

    fn task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStat> {
        let text = self.render_task_stat(pid, tid)?;
        parse::parse_task_stat(&text).map_err(malformed)
    }

    fn task_status(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStatus> {
        let text = self.render_task_status(pid, tid)?;
        parse::parse_task_status(&text).map_err(malformed)
    }

    fn task_schedstat(&self, pid: Pid, tid: Tid) -> SourceResult<SchedStat> {
        let task = self
            .sim
            .task_by_tid(tid)
            .filter(|t| t.pid == pid)
            .ok_or(SourceError::NotFound)?;
        let ss = SchedStat {
            run_ns: task.cpu_us() * 1_000,
            wait_ns: task.counters.wait_us * 1_000,
            timeslices: task.counters.dispatches,
        };
        let text = format::format_schedstat(&ss);
        parse::parse_schedstat(&text).map_err(malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::params::SchedParams;
    use zerosum_proc::{ProcSource, TaskState};
    use zerosum_topology::{presets, CpuSet};

    fn sim_with_app() -> (NodeSim, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "testapp",
            CpuSet::from_indices([0u32, 1]),
            4096,
            Behavior::FiniteCompute {
                remaining_us: 500_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "worker",
            None,
            Behavior::FiniteCompute {
                remaining_us: 500_000,
                chunk_us: 10_000,
            },
            false,
        );
        sim.run_for(200_000);
        (sim, pid)
    }

    #[test]
    fn system_stat_jiffies_sum_to_elapsed() {
        let (sim, _) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let stat = src.system_stat().unwrap();
        assert_eq!(stat.cpus.len(), 8);
        // Each CPU accounts 200 ms = 20 jiffies.
        for (os, t) in &stat.cpus {
            assert_eq!(t.total(), 20, "cpu {os}");
        }
        // Two busy CPUs: user time present.
        assert!(stat.total.user >= 30);
    }

    #[test]
    fn list_tasks_excludes_exited() {
        let (mut sim, pid) = sim_with_app();
        let tids = SimProcSource::new(&sim).list_tasks(pid).unwrap();
        assert_eq!(tids.len(), 2);
        sim.run_until_apps_done(10_000, 10_000_000).unwrap();
        let tids = SimProcSource::new(&sim).list_tasks(pid).unwrap();
        assert!(tids.is_empty());
    }

    #[test]
    fn task_stat_reports_jiffies_and_processor() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let stat = src.task_stat(pid, pid).unwrap();
        assert_eq!(stat.tid, pid);
        assert_eq!(stat.comm, "testapp");
        assert_eq!(stat.state, TaskState::Running);
        // 200 ms of CPU-bound work ⇒ ~20 jiffies of utime.
        assert!((15..=21).contains(&stat.utime), "utime {}", stat.utime);
        assert!(stat.processor <= 1);
        assert_eq!(stat.num_threads, 2);
    }

    #[test]
    fn task_status_reports_affinity_and_rss() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let st = src.task_status(pid, pid).unwrap();
        assert_eq!(st.tgid, pid);
        assert_eq!(st.cpus_allowed.to_list_string(), "0-1");
        assert!(st.vm_rss_kib > 0);
    }

    #[test]
    fn schedstat_exposes_wait_time() {
        // Two busy tasks on one CPU: both accrue runqueue wait.
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "w",
            CpuSet::single(0),
            64,
            Behavior::FiniteCompute {
                remaining_us: 200_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "w2",
            None,
            Behavior::FiniteCompute {
                remaining_us: 200_000,
                chunk_us: 10_000,
            },
            false,
        );
        sim.run_for(200_000);
        let src = SimProcSource::new(&sim);
        let ss = src.task_schedstat(pid, pid).unwrap();
        assert!(ss.run_ns > 0);
        assert!(ss.wait_ns > 10_000_000, "wait {} ns", ss.wait_ns);
        assert!(ss.timeslices >= 2);
        assert!(matches!(
            src.task_schedstat(pid, 999_999),
            Err(SourceError::NotFound)
        ));
    }

    #[test]
    fn unknown_ids_are_not_found() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        assert!(matches!(src.list_tasks(99_999), Err(SourceError::NotFound)));
        assert!(matches!(
            src.task_stat(pid, 99_999),
            Err(SourceError::NotFound)
        ));
        // A valid tid under the wrong pid is also NotFound.
        assert!(matches!(
            src.task_stat(99_999, pid),
            Err(SourceError::NotFound)
        ));
    }

    #[test]
    fn meminfo_accounts_for_rss() {
        let (sim, _) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let mi = src.meminfo().unwrap();
        assert_eq!(mi.mem_total_kib, 16 * 1024 * 1024);
        assert!(mi.mem_available_kib < mi.mem_total_kib);
    }
}
