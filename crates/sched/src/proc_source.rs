//! The simulated `/proc` backend.
//!
//! [`SimProcSource`] implements [`zerosum_proc::ProcSource`] over a
//! [`NodeSim`]. To keep the simulation honest it does not hand structured
//! data to the monitor directly: every record is first *rendered to the
//! kernel's text format* and then re-parsed with the same parsers the
//! live-Linux backend uses. The monitor therefore exercises the identical
//! code path on both backends, and the jiffy quantization that makes
//! Figure 6 noisy happens exactly where it does on a real system.

use crate::node::NodeSim;
use crate::task::RunState;
use std::cell::RefCell;
use zerosum_proc::{
    format, parse, CpuTimes, MemInfo, Pid, SchedStat, SourceError, SourceResult, SystemStat,
    TaskStat, TaskStatus, Tid,
};

/// Microseconds per jiffy at `USER_HZ` = 100.
const US_PER_JIFFY: u64 = 1_000_000 / zerosum_proc::USER_HZ;

/// A borrowed `/proc` view of a [`NodeSim`].
///
/// The render scratch (one text buffer, one record per kind) is reused
/// across reads: the monitor samples hundreds of records per period, and
/// rendering each into a fresh `String` dominated the sampling cost.
pub struct SimProcSource<'a> {
    sim: &'a NodeSim,
    text: RefCell<String>,
    stat_scratch: RefCell<TaskStat>,
    status_scratch: RefCell<TaskStatus>,
}

impl<'a> SimProcSource<'a> {
    /// Creates the view.
    pub fn new(sim: &'a NodeSim) -> Self {
        SimProcSource {
            sim,
            text: RefCell::new(String::new()),
            stat_scratch: RefCell::new(TaskStat::default()),
            status_scratch: RefCell::new(TaskStatus::default()),
        }
    }

    /// Renders `/proc/<pid>/task/<tid>/stat` into `text` (cleared first).
    fn render_task_stat(&self, pid: Pid, tid: Tid, text: &mut String) -> SourceResult<()> {
        let task = self
            .sim
            .task_by_tid(tid)
            .filter(|t| t.pid == pid)
            .ok_or(SourceError::NotFound)?;
        let process = self.sim.process(pid).ok_or(SourceError::NotFound)?;
        let now = self.sim.now_us();
        // Minor faults: the main thread performs the first-touch faults of
        // the memory ramp; every thread adds an allocator trickle
        // proportional to its CPU time.
        let ramp_faults = if tid == pid {
            process.memory.minor_faults(now)
        } else {
            0
        };
        let trickle = task.cpu_us() / 20_000;
        let mut st = self.stat_scratch.borrow_mut();
        st.tid = tid;
        // Kernel truncates comm to 15 bytes.
        st.comm.clear();
        st.comm.extend(task.name.chars().take(15));
        st.state = task.state.proc_state();
        st.minflt = ramp_faults + trickle;
        st.majflt = 0;
        st.utime = task.counters.utime_us / US_PER_JIFFY;
        st.stime = task.counters.stime_us / US_PER_JIFFY;
        st.nice = 0;
        st.num_threads = process.tasks.len() as u32;
        st.processor = task.last_cpu;
        st.nswap = 0;
        st.starttime = task.spawned_at_us / US_PER_JIFFY;
        text.clear();
        format::write_task_stat(&st, text);
        Ok(())
    }

    /// Renders `/proc/<pid>/task/<tid>/status` into `text` (cleared
    /// first).
    fn render_task_status(&self, pid: Pid, tid: Tid, text: &mut String) -> SourceResult<()> {
        let task = self
            .sim
            .task_by_tid(tid)
            .filter(|t| t.pid == pid)
            .ok_or(SourceError::NotFound)?;
        let process = self.sim.process(pid).ok_or(SourceError::NotFound)?;
        let now = self.sim.now_us();
        let mut st = self.status_scratch.borrow_mut();
        st.name.clear();
        st.name.extend(task.name.chars().take(15));
        st.tid = tid;
        st.tgid = pid;
        st.state = task.state.proc_state();
        st.vm_rss_kib = process.memory.rss_kib(now);
        st.vm_size_kib = process.memory.vm_size_kib;
        st.vm_hwm_kib = process.memory.hwm_kib(now);
        st.cpus_allowed.copy_from(&task.affinity);
        st.voluntary_ctxt_switches = task.counters.vcsw;
        st.nonvoluntary_ctxt_switches = task.counters.nvcsw;
        text.clear();
        format::write_task_status(&st, text);
        Ok(())
    }
}

fn malformed(e: impl std::fmt::Display) -> SourceError {
    SourceError::Malformed(e.to_string())
}

impl zerosum_proc::ProcSource for SimProcSource<'_> {
    fn system_stat(&self) -> SourceResult<SystemStat> {
        let mut out = SystemStat::default();
        self.system_stat_into(&mut out)?;
        Ok(out)
    }

    fn system_stat_into(&self, out: &mut SystemStat) -> SourceResult<()> {
        use std::fmt::Write as _;
        let jiffies = |user_us: u64, system_us: u64, idle_us: u64| CpuTimes {
            user: user_us / US_PER_JIFFY,
            system: system_us / US_PER_JIFFY,
            idle: idle_us / US_PER_JIFFY,
            ..Default::default()
        };
        let mut text = self.text.borrow_mut();
        text.clear();
        // The aggregate row leads the file, so total first (one pass),
        // then the per-CPU rows (second pass) — both straight into the
        // render buffer. The text must match `format::write_system_stat`
        // byte for byte; `system_stat_text_matches_format` pins that.
        let mut total = CpuTimes::default();
        for (_, user_us, system_us, idle_us) in self.sim.cpu_times_iter() {
            total = total.add(&jiffies(user_us, system_us, idle_us));
        }
        format::write_cpu_row(&mut text, None, &total);
        for (os, user_us, system_us, idle_us) in self.sim.cpu_times_iter() {
            format::write_cpu_row(&mut text, Some(os), &jiffies(user_us, system_us, idle_us));
        }
        let _ = writeln!(text, "ctxt {}", self.sim.ctxt_total());
        let _ = writeln!(text, "btime 1700000000");
        let _ = writeln!(text, "processes 0");
        parse::parse_system_stat_into(&text, out).map_err(malformed)
    }

    fn meminfo(&self) -> SourceResult<MemInfo> {
        let mi = self.sim.memory.meminfo(self.sim.processes_rss_kib());
        let mut text = self.text.borrow_mut();
        text.clear();
        format::write_meminfo(&mi, &mut text);
        parse::parse_meminfo(&text).map_err(malformed)
    }

    fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>> {
        let mut tids = Vec::new();
        self.list_tasks_into(pid, &mut tids)?;
        Ok(tids)
    }

    fn list_tasks_into(&self, pid: Pid, out: &mut Vec<Tid>) -> SourceResult<()> {
        let process = self.sim.process(pid).ok_or(SourceError::NotFound)?;
        out.clear();
        out.extend(
            process
                .tasks
                .iter()
                .map(|&id| self.sim.task(id).tid)
                // Exited threads disappear from /proc/<pid>/task.
                .filter(|&tid| {
                    self.sim
                        .task_by_tid(tid)
                        .map(|t| t.state != RunState::Exited)
                        .unwrap_or(false)
                }),
        );
        out.sort_unstable();
        Ok(())
    }

    fn task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStat> {
        let mut out = TaskStat::default();
        self.task_stat_into(pid, tid, &mut out)?;
        Ok(out)
    }

    fn task_stat_into(&self, pid: Pid, tid: Tid, out: &mut TaskStat) -> SourceResult<()> {
        let mut text = self.text.borrow_mut();
        self.render_task_stat(pid, tid, &mut text)?;
        parse::parse_task_stat_into(&text, out).map_err(malformed)
    }

    fn task_status(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStatus> {
        let mut out = TaskStatus::default();
        self.task_status_into(pid, tid, &mut out)?;
        Ok(out)
    }

    fn task_status_into(&self, pid: Pid, tid: Tid, out: &mut TaskStatus) -> SourceResult<()> {
        let mut text = self.text.borrow_mut();
        self.render_task_status(pid, tid, &mut text)?;
        parse::parse_task_status_into(&text, out).map_err(malformed)
    }

    fn task_schedstat(&self, pid: Pid, tid: Tid) -> SourceResult<SchedStat> {
        let task = self
            .sim
            .task_by_tid(tid)
            .filter(|t| t.pid == pid)
            .ok_or(SourceError::NotFound)?;
        let ss = SchedStat {
            run_ns: task.cpu_us() * 1_000,
            wait_ns: task.counters.wait_us * 1_000,
            timeslices: task.counters.dispatches,
        };
        let mut text = self.text.borrow_mut();
        text.clear();
        format::write_schedstat(&ss, &mut text);
        parse::parse_schedstat(&text).map_err(malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::params::SchedParams;
    use zerosum_proc::{ProcSource, TaskState};
    use zerosum_topology::{presets, CpuSet};

    fn sim_with_app() -> (NodeSim, Pid) {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "testapp",
            CpuSet::from_indices([0u32, 1]),
            4096,
            Behavior::FiniteCompute {
                remaining_us: 500_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "worker",
            None,
            Behavior::FiniteCompute {
                remaining_us: 500_000,
                chunk_us: 10_000,
            },
            false,
        );
        sim.run_for(200_000);
        (sim, pid)
    }

    #[test]
    fn system_stat_jiffies_sum_to_elapsed() {
        let (sim, _) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let stat = src.system_stat().unwrap();
        assert_eq!(stat.cpus.len(), 8);
        // Each CPU accounts 200 ms = 20 jiffies.
        for (os, t) in &stat.cpus {
            assert_eq!(t.total(), 20, "cpu {os}");
        }
        // Two busy CPUs: user time present.
        assert!(stat.total.user >= 30);
    }

    #[test]
    fn list_tasks_excludes_exited() {
        let (mut sim, pid) = sim_with_app();
        let tids = SimProcSource::new(&sim).list_tasks(pid).unwrap();
        assert_eq!(tids.len(), 2);
        sim.run_until_apps_done(10_000, 10_000_000).unwrap();
        let tids = SimProcSource::new(&sim).list_tasks(pid).unwrap();
        assert!(tids.is_empty());
    }

    #[test]
    fn task_stat_reports_jiffies_and_processor() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let stat = src.task_stat(pid, pid).unwrap();
        assert_eq!(stat.tid, pid);
        assert_eq!(stat.comm, "testapp");
        assert_eq!(stat.state, TaskState::Running);
        // 200 ms of CPU-bound work ⇒ ~20 jiffies of utime.
        assert!((15..=21).contains(&stat.utime), "utime {}", stat.utime);
        assert!(stat.processor <= 1);
        assert_eq!(stat.num_threads, 2);
    }

    #[test]
    fn task_status_reports_affinity_and_rss() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let st = src.task_status(pid, pid).unwrap();
        assert_eq!(st.tgid, pid);
        assert_eq!(st.cpus_allowed.to_list_string(), "0-1");
        assert!(st.vm_rss_kib > 0);
    }

    #[test]
    fn schedstat_exposes_wait_time() {
        // Two busy tasks on one CPU: both accrue runqueue wait.
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "w",
            CpuSet::single(0),
            64,
            Behavior::FiniteCompute {
                remaining_us: 200_000,
                chunk_us: 10_000,
            },
        );
        sim.spawn_task(
            pid,
            "w2",
            None,
            Behavior::FiniteCompute {
                remaining_us: 200_000,
                chunk_us: 10_000,
            },
            false,
        );
        sim.run_for(200_000);
        let src = SimProcSource::new(&sim);
        let ss = src.task_schedstat(pid, pid).unwrap();
        assert!(ss.run_ns > 0);
        assert!(ss.wait_ns > 10_000_000, "wait {} ns", ss.wait_ns);
        assert!(ss.timeslices >= 2);
        assert!(matches!(
            src.task_schedstat(pid, 999_999),
            Err(SourceError::NotFound)
        ));
    }

    #[test]
    fn unknown_ids_are_not_found() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        assert!(matches!(src.list_tasks(99_999), Err(SourceError::NotFound)));
        assert!(matches!(
            src.task_stat(pid, 99_999),
            Err(SourceError::NotFound)
        ));
        // A valid tid under the wrong pid is also NotFound.
        assert!(matches!(
            src.task_stat(99_999, pid),
            Err(SourceError::NotFound)
        ));
    }

    #[test]
    fn system_stat_text_matches_format() {
        // The streamed render in `system_stat_into` must agree with the
        // canonical `format::write_system_stat` on the parsed record.
        let (sim, _) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let stat = src.system_stat().unwrap();
        let canonical = format::format_system_stat(&stat);
        let reparsed = parse::parse_system_stat(&canonical).unwrap();
        assert_eq!(reparsed, stat);
    }

    #[test]
    fn into_forms_match_owning_forms() {
        let (sim, pid) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let mut ss = SystemStat::default();
        src.system_stat_into(&mut ss).unwrap();
        assert_eq!(ss, src.system_stat().unwrap());
        let mut tids = vec![999];
        src.list_tasks_into(pid, &mut tids).unwrap();
        assert_eq!(tids, src.list_tasks(pid).unwrap());
        for &tid in &tids {
            // Pre-soiled records prove the reads fully overwrite them.
            let mut st = TaskStat {
                comm: "garbage".into(),
                utime: u64::MAX,
                ..Default::default()
            };
            src.task_stat_into(pid, tid, &mut st).unwrap();
            assert_eq!(st, src.task_stat(pid, tid).unwrap());
            let mut status = TaskStatus {
                name: "garbage".into(),
                cpus_allowed: CpuSet::range(0, 300),
                ..Default::default()
            };
            src.task_status_into(pid, tid, &mut status).unwrap();
            assert_eq!(status, src.task_status(pid, tid).unwrap());
        }
    }

    #[test]
    fn meminfo_accounts_for_rss() {
        let (sim, _) = sim_with_app();
        let src = SimProcSource::new(&sim);
        let mi = src.meminfo().unwrap();
        assert_eq!(mi.mem_total_kib, 16 * 1024 * 1024);
        assert!(mi.mem_available_kib < mi.mem_total_kib);
    }
}
