//! Simulated tasks (lightweight processes) and their accounting state.

use crate::behavior::Behavior;
use std::sync::Arc;
use zerosum_proc::{Pid, TaskState, Tid};
use zerosum_topology::CpuSet;

/// Index of a task in the node's task arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cumulative per-task counters, microsecond-accurate internally.
///
/// `/proc` exposes CPU time quantized to jiffies; the conversion (and the
/// resulting sampling noise the paper shows in Figure 6) happens in the
/// simulated proc source, not here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCounters {
    /// User-mode CPU time, µs.
    pub utime_us: u64,
    /// Kernel-mode CPU time, µs.
    pub stime_us: u64,
    /// Voluntary context switches (blocked / slept / yielded).
    pub vcsw: u64,
    /// Non-voluntary context switches (preempted while runnable).
    pub nvcsw: u64,
    /// Number of times the task started running on a different CPU than
    /// its previous one.
    pub migrations: u64,
    /// Total time spent runnable-but-waiting on a runqueue, µs — the
    /// scheduling delay that oversubscription inflicts.
    pub wait_us: u64,
    /// Number of dispatches onto a CPU.
    pub dispatches: u64,
    /// Minor page faults.
    pub minflt: u64,
    /// Major page faults.
    pub majflt: u64,
}

/// Scheduler-visible run state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// On a runqueue, waiting for CPU.
    Runnable,
    /// Currently executing on a CPU.
    Running,
    /// Blocked (sleeping / waiting on an event or barrier).
    Blocked,
    /// Finished; will never run again.
    Exited,
}

impl RunState {
    /// Maps to the `/proc` task state code.
    pub fn proc_state(self) -> TaskState {
        match self {
            // The kernel reports both on-CPU and runnable-waiting as `R`.
            RunState::Runnable | RunState::Running => TaskState::Running,
            RunState::Blocked => TaskState::Sleeping,
            RunState::Exited => TaskState::Dead,
        }
    }
}

/// What a task is currently doing on (or off) the CPU.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CurrentOp {
    /// Executing user-mode work; `remaining_us` of CPU work left.
    Compute { remaining_us: f64 },
    /// Executing kernel-mode work (syscalls, launch overhead).
    Syscall { remaining_us: f64 },
    /// Spinning (user mode) on a barrier, blocking after the deadline.
    BarrierSpin {
        barrier: u32,
        generation: u64,
        block_at_us: u64,
    },
    /// Blocked until an event wakes the task.
    Waiting,
    /// Needs the next op fetched from its behavior.
    Fetch,
    /// Terminal.
    Exited,
}

/// One simulated LWP.
#[derive(Debug)]
pub struct SimTask {
    /// Thread id (OS-style, unique per node).
    pub tid: Tid,
    /// Owning process.
    pub pid: Pid,
    /// Thread name (`comm`), e.g. `"miniqmc"`, `"ZeroSum"`, `"OpenMP"`.
    /// Interned: tasks spawned with the same name share one allocation.
    pub name: Arc<str>,
    /// Affinity mask (OS CPU indices the task may run on).
    pub affinity: CpuSet,
    /// Run state.
    pub state: RunState,
    /// Cumulative counters.
    pub counters: TaskCounters,
    /// Last CPU the task executed on (OS index).
    pub last_cpu: u32,
    /// True once the task has run at least once (enables migration
    /// counting).
    pub has_run: bool,
    /// Virtual time the task was spawned, µs — rendered as `starttime`
    /// (field 22) in `/proc` so a recycled tid is distinguishable from
    /// the task that previously owned the id.
    pub spawned_at_us: u64,
    /// True for infrastructure tasks (monitor, MPI helper) whose
    /// completion is not required for the application to be "done".
    pub service: bool,
    /// Behavior model that generates the task's operations.
    pub(crate) behavior: Behavior,
    /// Current operation.
    pub(crate) op: CurrentOp,
    /// Timeslice consumed since last dispatch, µs.
    pub(crate) slice_used_us: u64,
    /// Virtual time when the task last entered a runqueue, for wait-time
    /// accounting.
    pub(crate) enqueued_at_us: u64,
    /// Per-task RNG state (split from the node seed).
    pub(crate) rng_state: u64,
}

impl SimTask {
    /// CPU time total, µs.
    pub fn cpu_us(&self) -> u64 {
        self.counters.utime_us + self.counters.stime_us
    }

    /// True if this task can never run again.
    pub fn is_exited(&self) -> bool {
        self.state == RunState::Exited
    }

    /// Draws the next value from the task's xorshift RNG stream in `[0,1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        // xorshift64* — deterministic, cheap, good enough for workload
        // jitter (not statistics).
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_state_maps_to_proc_codes() {
        assert_eq!(RunState::Running.proc_state(), TaskState::Running);
        assert_eq!(RunState::Runnable.proc_state(), TaskState::Running);
        assert_eq!(RunState::Blocked.proc_state(), TaskState::Sleeping);
        assert_eq!(RunState::Exited.proc_state(), TaskState::Dead);
    }

    #[test]
    fn rng_stream_is_deterministic_and_in_range() {
        let mut t = SimTask {
            tid: 1,
            pid: 1,
            name: "t".into(),
            affinity: CpuSet::single(0),
            state: RunState::Runnable,
            counters: TaskCounters::default(),
            last_cpu: 0,
            has_run: false,
            spawned_at_us: 0,
            service: false,
            behavior: Behavior::Sleeper,
            op: CurrentOp::Fetch,
            slice_used_us: 0,
            enqueued_at_us: 0,
            rng_state: 42,
        };
        let a: Vec<f64> = (0..8).map(|_| t.next_f64()).collect();
        t.rng_state = 42;
        let b: Vec<f64> = (0..8).map(|_| t.next_f64()).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        // values differ from each other
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
