//! Workload behavior models.
//!
//! A behavior is a deterministic generator of scheduler *operations*
//! (compute, syscall, sleep, barrier, GPU offload) that models how a class
//! of HPC threads uses the machine: OpenMP compute workers, MPI progress
//! helpers, GPU-offloading walkers, and the ZeroSum monitor thread itself.
//! The scheduler executes these operations; utilization, contention, and
//! runtime all *emerge* from the interaction of behaviors with the
//! scheduling model.

/// One operation a task asks the scheduler to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Execute `us` of user-mode CPU work (walltime stretches if the CPU
    /// is shared).
    Compute {
        /// CPU work in µs.
        us: u64,
    },
    /// Execute `us` of kernel-mode CPU work (system calls, memory
    /// registration, kernel launches, MPI progress).
    Syscall {
        /// CPU work in µs.
        us: u64,
    },
    /// Block off-CPU for `us` of wall time (voluntary switch).
    Sleep {
        /// Wall time in µs.
        us: u64,
    },
    /// Synchronize with the other members of the barrier group.
    Barrier {
        /// Barrier id, unique within the owning process.
        id: u32,
    },
    /// Enqueue a kernel of `kernel_us` on GPU `device`, then block until
    /// it completes (this is the post-launch synchronization wait).
    OffloadWait {
        /// GPU physical device index.
        device: u32,
        /// Kernel duration on the device, µs.
        kernel_us: u64,
        /// Device memory touched by this offload region, bytes.
        bytes: u64,
    },
    /// Terminate the task.
    Exit,
}

/// Per-iteration GPU offload pattern for [`WorkerSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadSpec {
    /// Target GPU physical index.
    pub device: u32,
    /// Kernel-launch + transfer overhead executed as system time, µs.
    pub launch_us: u64,
    /// Kernel duration on the device, µs.
    pub kernel_us: u64,
    /// Synchronization/teardown system time after completion, µs.
    pub sync_us: u64,
    /// Device bytes touched per offload.
    pub bytes: u64,
}

/// A compute worker: the model for miniQMC's OpenMP walker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// Number of outer iterations (e.g. QMC blocks).
    pub iterations: u32,
    /// Mean user-mode CPU work per iteration, µs.
    pub work_per_iter_us: u64,
    /// Uniform relative jitter on per-iteration work (0.05 = ±5%) —
    /// models walker-population noise.
    pub noise_frac: f64,
    /// System-call time per iteration, µs (I/O, allocator, MPI calls).
    pub sys_per_iter_us: u64,
    /// Extra *serial* work done only by the team leader each iteration
    /// (models Amdahl serial sections; other members wait at the barrier).
    pub leader_extra_us: u64,
    /// Every `checkpoint_every` iterations (0 = never) the leader
    /// additionally performs `checkpoint_extra_us` of serial work —
    /// modelling periodic I/O/diagnostics whose long barrier waits
    /// exhaust the other members' spin budgets (the rare blocking events
    /// behind the paper's Table 2 thread migrations).
    pub checkpoint_every: u32,
    /// Serial checkpoint work, µs.
    pub checkpoint_extra_us: u64,
    /// Whether this worker is the team leader.
    pub is_leader: bool,
    /// Barrier id joined at the end of every iteration; `None` for
    /// unsynchronized workers.
    pub barrier: Option<u32>,
    /// GPU offload performed each iteration, if any.
    pub offload: Option<OffloadSpec>,
}

impl WorkerSpec {
    /// A CPU-bound worker with sensible defaults: `iterations` iterations
    /// of `work_us` each, 1.2% system time, ±4% noise, no barrier.
    pub fn cpu_bound(iterations: u32, work_us: u64) -> Self {
        WorkerSpec {
            iterations,
            work_per_iter_us: work_us,
            noise_frac: 0.04,
            sys_per_iter_us: work_us / 80,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: None,
            offload: None,
        }
    }
}

/// Phase of a [`WorkerSpec`] execution (internal state machine).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerPhase {
    /// Leader-only serial section.
    LeaderSerial,
    /// Per-iteration system-call work.
    Sys,
    /// Main user-mode work.
    Work,
    /// Offload launch (if configured).
    Offload,
    /// Offload wait follows a launch syscall.
    OffloadWaitPending,
    /// Post-offload synchronization syscall.
    OffloadSync,
    /// End-of-iteration barrier.
    Bar,
}

/// A behavior model attached to one task.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Iterative compute worker (OpenMP thread / main thread).
    Worker {
        /// The static description.
        spec: WorkerSpec,
        /// Current iteration (internal).
        iter: u32,
        /// Current phase within the iteration (internal).
        phase: WorkerPhase2,
    },
    /// Sleeps `period_us`, then performs `busy_us` of kernel-mode polling
    /// work; repeats forever. Models the MPI progress helper thread.
    HelperPoll {
        /// Sleep between polls, µs.
        period_us: u64,
        /// Kernel time per poll, µs.
        busy_us: u64,
    },
    /// Internal: a [`Behavior::HelperPoll`] that has finished sleeping and
    /// owes its poll syscall.
    #[doc(hidden)]
    HelperPollAwake {
        /// Sleep between polls, µs.
        period_us: u64,
        /// Kernel time per poll, µs.
        busy_us: u64,
    },
    /// Sleeps `period_us`, then performs sampling work split between
    /// kernel (`sys_us`, reading `/proc`) and user (`user_us`, parsing /
    /// bookkeeping) time; repeats forever. Models the ZeroSum async
    /// monitor thread — its CPU cost is what produces the Figure 8
    /// overhead.
    Periodic {
        /// Sleep between samples, µs.
        period_us: u64,
        /// Kernel time per sample, µs.
        sys_us: u64,
        /// User time per sample, µs.
        user_us: u64,
    },
    /// Internal: a [`Behavior::Periodic`] mid-sample.
    #[doc(hidden)]
    PeriodicAwake {
        /// Sleep between samples, µs.
        period_us: u64,
        /// Kernel time per sample, µs.
        sys_us: u64,
        /// User time per sample, µs.
        user_us: u64,
        /// Whether the kernel-time half has been emitted.
        did_sys: bool,
    },
    /// Blocked forever (e.g. a parked runtime thread).
    Sleeper,
    /// A plain finite chunk of CPU work with no structure; useful in
    /// tests and examples.
    FiniteCompute {
        /// Remaining user-mode work, µs.
        remaining_us: u64,
        /// Work chunk between scheduler interactions, µs.
        chunk_us: u64,
    },
}

#[doc(hidden)]
pub use WorkerPhase as WorkerPhase2;

impl Behavior {
    /// Creates a worker behavior from a spec.
    pub fn worker(spec: WorkerSpec) -> Behavior {
        Behavior::Worker {
            spec,
            iter: 0,
            phase: WorkerPhase::LeaderSerial,
        }
    }

    /// The next operation. `jitter` must be a uniform draw in `[0,1)` from
    /// the task's RNG stream.
    pub fn next_op(&mut self, jitter: f64) -> Op {
        match self {
            Behavior::Worker { spec, iter, phase } => {
                if *iter >= spec.iterations {
                    return Op::Exit;
                }
                loop {
                    match *phase {
                        WorkerPhase::LeaderSerial => {
                            *phase = WorkerPhase::Sys;
                            if spec.is_leader {
                                let mut us = spec.leader_extra_us;
                                if spec.checkpoint_every > 0
                                    && *iter % spec.checkpoint_every == 0
                                    && *iter > 0
                                {
                                    us += spec.checkpoint_extra_us;
                                }
                                if us > 0 {
                                    return Op::Compute { us };
                                }
                            }
                        }
                        WorkerPhase::Sys => {
                            *phase = WorkerPhase::Work;
                            if spec.sys_per_iter_us > 0 {
                                return Op::Syscall {
                                    us: spec.sys_per_iter_us,
                                };
                            }
                        }
                        WorkerPhase::Work => {
                            *phase = WorkerPhase::Offload;
                            let noise = 1.0 + spec.noise_frac * (2.0 * jitter - 1.0);
                            let us = (spec.work_per_iter_us as f64 * noise).max(1.0) as u64;
                            return Op::Compute { us };
                        }
                        WorkerPhase::Offload => {
                            if let Some(ofl) = &spec.offload {
                                if ofl.launch_us > 0 {
                                    // Launch overhead first (system time);
                                    // the device wait follows on the next
                                    // fetch.
                                    *phase = WorkerPhase::OffloadWaitPending;
                                    return Op::Syscall { us: ofl.launch_us };
                                }
                                *phase = WorkerPhase::OffloadSync;
                                return Op::OffloadWait {
                                    device: ofl.device,
                                    kernel_us: ofl.kernel_us,
                                    bytes: ofl.bytes,
                                };
                            }
                            *phase = WorkerPhase::Bar;
                        }
                        WorkerPhase::OffloadWaitPending => {
                            *phase = WorkerPhase::OffloadSync;
                            let ofl = spec.offload.as_ref().expect("offload spec");
                            return Op::OffloadWait {
                                device: ofl.device,
                                kernel_us: ofl.kernel_us,
                                bytes: ofl.bytes,
                            };
                        }
                        WorkerPhase::OffloadSync => {
                            *phase = WorkerPhase::Bar;
                            let sync = spec.offload.as_ref().map(|o| o.sync_us).unwrap_or(0);
                            if sync > 0 {
                                return Op::Syscall { us: sync };
                            }
                        }
                        WorkerPhase::Bar => {
                            *iter += 1;
                            *phase = WorkerPhase::LeaderSerial;
                            if let Some(id) = spec.barrier {
                                return Op::Barrier { id };
                            }
                            if *iter >= spec.iterations {
                                return Op::Exit;
                            }
                        }
                    }
                }
            }
            Behavior::HelperPoll { period_us, busy_us } => {
                let (p, b) = (*period_us, *busy_us);
                *self = Behavior::HelperPollAwake {
                    period_us: p,
                    busy_us: b,
                };
                Op::Sleep { us: p }
            }
            Behavior::HelperPollAwake { period_us, busy_us } => {
                let (p, b) = (*period_us, *busy_us);
                *self = Behavior::HelperPoll {
                    period_us: p,
                    busy_us: b,
                };
                Op::Syscall { us: b }
            }
            Behavior::Periodic {
                period_us,
                sys_us,
                user_us,
            } => {
                let (p, s, u) = (*period_us, *sys_us, *user_us);
                *self = Behavior::PeriodicAwake {
                    period_us: p,
                    sys_us: s,
                    user_us: u,
                    did_sys: false,
                };
                Op::Sleep { us: p }
            }
            Behavior::PeriodicAwake {
                period_us,
                sys_us,
                user_us,
                did_sys,
            } => {
                if !*did_sys {
                    *did_sys = true;
                    let s = *sys_us;
                    if s > 0 {
                        return Op::Syscall { us: s };
                    }
                }
                let (p, s, u) = (*period_us, *sys_us, *user_us);
                *self = Behavior::Periodic {
                    period_us: p,
                    sys_us: s,
                    user_us: u,
                };
                if u > 0 {
                    Op::Compute { us: u }
                } else {
                    Op::Sleep { us: p }
                }
            }
            Behavior::Sleeper => Op::Sleep { us: u64::MAX / 4 },
            Behavior::FiniteCompute {
                remaining_us,
                chunk_us,
            } => {
                if *remaining_us == 0 {
                    return Op::Exit;
                }
                let us = (*chunk_us).min(*remaining_us);
                *remaining_us -= us;
                Op::Compute { us }
            }
        }
    }
}

// Hidden auxiliary variants used by the state machine above. They are part
// of the enum but not intended for construction by users.
#[doc(hidden)]
#[allow(non_camel_case_types)]
impl Behavior {
    /// Internal.
    pub fn helper_poll(period_us: u64, busy_us: u64) -> Behavior {
        Behavior::HelperPoll { period_us, busy_us }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_compute_emits_chunks_then_exit() {
        let mut b = Behavior::FiniteCompute {
            remaining_us: 250,
            chunk_us: 100,
        };
        assert_eq!(b.next_op(0.5), Op::Compute { us: 100 });
        assert_eq!(b.next_op(0.5), Op::Compute { us: 100 });
        assert_eq!(b.next_op(0.5), Op::Compute { us: 50 });
        assert_eq!(b.next_op(0.5), Op::Exit);
        assert_eq!(b.next_op(0.5), Op::Exit);
    }

    #[test]
    fn worker_iterates_sys_work_barrier() {
        let spec = WorkerSpec {
            iterations: 2,
            work_per_iter_us: 1000,
            noise_frac: 0.0,
            sys_per_iter_us: 10,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: Some(7),
            offload: None,
        };
        let mut b = Behavior::worker(spec);
        let ops: Vec<Op> = (0..6).map(|_| b.next_op(0.5)).collect();
        assert_eq!(
            ops,
            vec![
                Op::Syscall { us: 10 },
                Op::Compute { us: 1000 },
                Op::Barrier { id: 7 },
                Op::Syscall { us: 10 },
                Op::Compute { us: 1000 },
                Op::Barrier { id: 7 },
            ]
        );
        assert_eq!(b.next_op(0.5), Op::Exit);
    }

    #[test]
    fn leader_gets_serial_section() {
        let spec = WorkerSpec {
            iterations: 1,
            work_per_iter_us: 100,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 500,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: true,
            barrier: None,
            offload: None,
        };
        let mut b = Behavior::worker(spec);
        assert_eq!(b.next_op(0.5), Op::Compute { us: 500 });
        assert_eq!(b.next_op(0.5), Op::Compute { us: 100 });
        assert_eq!(b.next_op(0.5), Op::Exit);
    }

    #[test]
    fn worker_noise_scales_work() {
        let spec = WorkerSpec {
            iterations: 1,
            work_per_iter_us: 1000,
            noise_frac: 0.10,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: None,
            offload: None,
        };
        let mut b = Behavior::worker(spec.clone());
        // jitter 0 → factor 0.9; jitter ~1 → factor ~1.1
        assert_eq!(b.next_op(0.0), Op::Compute { us: 900 });
        let mut b2 = Behavior::worker(spec);
        assert_eq!(b2.next_op(0.9999999), Op::Compute { us: 1099 });
    }

    #[test]
    fn offload_sequence() {
        let spec = WorkerSpec {
            iterations: 1,
            work_per_iter_us: 100,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: None,
            offload: Some(OffloadSpec {
                device: 4,
                launch_us: 20,
                kernel_us: 300,
                sync_us: 15,
                bytes: 1 << 20,
            }),
        };
        let mut b = Behavior::worker(spec);
        assert_eq!(b.next_op(0.5), Op::Compute { us: 100 });
        assert_eq!(b.next_op(0.5), Op::Syscall { us: 20 }); // launch
        assert_eq!(
            b.next_op(0.5),
            Op::OffloadWait {
                device: 4,
                kernel_us: 300,
                bytes: 1 << 20
            }
        );
        assert_eq!(b.next_op(0.5), Op::Syscall { us: 15 }); // sync
        assert_eq!(b.next_op(0.5), Op::Exit);
    }

    #[test]
    fn helper_poll_alternates() {
        let mut b = Behavior::helper_poll(500_000, 200);
        assert_eq!(b.next_op(0.5), Op::Sleep { us: 500_000 });
        assert_eq!(b.next_op(0.5), Op::Syscall { us: 200 });
        assert_eq!(b.next_op(0.5), Op::Sleep { us: 500_000 });
    }

    #[test]
    fn periodic_monitor_cycle() {
        let mut b = Behavior::Periodic {
            period_us: 1_000_000,
            sys_us: 3000,
            user_us: 2000,
        };
        assert_eq!(b.next_op(0.5), Op::Sleep { us: 1_000_000 });
        assert_eq!(b.next_op(0.5), Op::Syscall { us: 3000 });
        assert_eq!(b.next_op(0.5), Op::Compute { us: 2000 });
        assert_eq!(b.next_op(0.5), Op::Sleep { us: 1_000_000 });
    }

    #[test]
    fn sleeper_sleeps_long() {
        let mut b = Behavior::Sleeper;
        match b.next_op(0.5) {
            Op::Sleep { us } => assert!(us > 1u64 << 60),
            other => panic!("unexpected {other:?}"),
        }
    }
}
