//! Per-hardware-thread scheduler state.

use crate::task::TaskId;
use std::collections::VecDeque;

/// State of one schedulable hardware thread (PU).
#[derive(Debug, Default)]
pub struct CpuState {
    /// OS index of this hardware thread.
    pub os_index: u32,
    /// OS index of the sibling hardware thread on the same core, if SMT.
    pub smt_sibling: Option<u32>,
    /// Position of the sibling in the node's CPU vector, precomputed so
    /// the per-tick SMT speed check needs no map lookup.
    pub smt_sibling_pos: Option<usize>,
    /// FIFO runqueue of waiting tasks.
    pub runqueue: VecDeque<TaskId>,
    /// The task currently executing, if any.
    pub current: Option<TaskId>,
    /// Cumulative idle time, µs.
    pub idle_us: u64,
    /// Cumulative user-mode time, µs.
    pub user_us: u64,
    /// Cumulative kernel-mode time, µs.
    pub system_us: u64,
}

impl CpuState {
    /// Creates the state for hardware thread `os_index`.
    pub fn new(os_index: u32, smt_sibling: Option<u32>) -> Self {
        CpuState {
            os_index,
            smt_sibling,
            ..Default::default()
        }
    }

    /// Number of runnable tasks including the one on CPU.
    pub fn nr_running(&self) -> usize {
        self.runqueue.len() + usize::from(self.current.is_some())
    }

    /// True if nothing is running or waiting here.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.runqueue.is_empty()
    }

    /// Total accounted time, µs.
    pub fn total_us(&self) -> u64 {
        self.idle_us + self.user_us + self.system_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_accounting() {
        let mut c = CpuState::new(3, Some(67));
        assert!(c.is_idle());
        assert_eq!(c.nr_running(), 0);
        c.current = Some(TaskId(0));
        c.runqueue.push_back(TaskId(1));
        assert_eq!(c.nr_running(), 2);
        assert!(!c.is_idle());
        c.idle_us = 10;
        c.user_us = 20;
        c.system_us = 5;
        assert_eq!(c.total_us(), 35);
    }
}
