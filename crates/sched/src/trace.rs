//! Structured event tracing of the scheduler substrate.
//!
//! Every number the experiment harnesses derive from [`NodeSim`] —
//! context switches, migrations, per-HWT jiffies — is an aggregate of
//! discrete scheduler decisions. When tracing is enabled the simulator
//! emits one [`TraceRecord`] per decision, giving `zerosum-analyze` a
//! ground-truth log it can replay against the final counters: a
//! happens-before race detector and an invariant engine prove that the
//! aggregates are self-consistent (no lost update, no double-scheduled
//! task, no affinity-violating migration).
//!
//! Tracing is off by default and costs one branch per decision when off;
//! no event is constructed unless a buffer is installed.
//!
//! [`NodeSim`]: crate::node::NodeSim

use crate::task::TaskCounters;
use std::sync::Arc;
use zerosum_proc::{Pid, Tid};
use zerosum_topology::CpuSet;

/// Which CPU-time account a tick charge goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// User-mode time (`utime`).
    User,
    /// Kernel-mode time (`stime`).
    System,
}

/// One structured scheduler event.
///
/// CPU fields are OS hardware-thread indices. Events are recorded in
/// simulation order; records at equal `t_us` happened within one tick,
/// in the order the engine processed them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task was created in `pid` with the given affinity mask.
    Spawn {
        /// Thread id of the new task.
        tid: Tid,
        /// Owning process.
        pid: Pid,
        /// Initial affinity mask.
        affinity: CpuSet,
    },
    /// A queued task was removed from `cpu`'s runqueue for
    /// re-placement (affinity change while runnable).
    Dequeue {
        /// The task.
        tid: Tid,
        /// Runqueue it was removed from.
        cpu: u32,
    },
    /// A runnable task was placed on `cpu`'s runqueue.
    Enqueue {
        /// The task.
        tid: Tid,
        /// Runqueue it was pushed to.
        cpu: u32,
    },
    /// A task started executing on `cpu`.
    Dispatch {
        /// The task.
        tid: Tid,
        /// The CPU it now occupies.
        cpu: u32,
    },
    /// A dispatch landed on a different CPU than the task's previous one.
    Migrate {
        /// The task.
        tid: Tid,
        /// CPU it last ran on.
        from: u32,
        /// CPU it is starting on.
        to: u32,
    },
    /// A waiting task was pulled from one runqueue to another
    /// (new-idle / periodic balancing).
    Steal {
        /// The task.
        tid: Tid,
        /// Donor runqueue.
        from: u32,
        /// Receiving runqueue.
        to: u32,
    },
    /// The task was preempted (or spin-yielded) while runnable — a
    /// non-voluntary context switch.
    Preempt {
        /// The task.
        tid: Tid,
        /// CPU it was taken off.
        cpu: u32,
    },
    /// The task left the CPU voluntarily (sleep, barrier block, GPU
    /// wait) — a voluntary context switch.
    Block {
        /// The task.
        tid: Tid,
        /// CPU it was running on.
        cpu: u32,
    },
    /// The task was taken off its CPU because its affinity mask changed
    /// to exclude that CPU. Counts as neither a voluntary nor a
    /// non-voluntary switch (mirrors `sched_setaffinity`).
    Deschedule {
        /// The task.
        tid: Tid,
        /// CPU it was forced off.
        cpu: u32,
    },
    /// A blocked task became runnable. `waker_cpu` is the CPU whose
    /// current task released it (barrier release); `None` for timer and
    /// device-completion wakes delivered by the engine itself.
    Wake {
        /// The task.
        tid: Tid,
        /// Releasing CPU, if the wake came from another task.
        waker_cpu: Option<u32>,
    },
    /// One tick of CPU time was charged to a task.
    JiffyCharge {
        /// The task.
        tid: Tid,
        /// CPU that executed the tick.
        cpu: u32,
        /// User or system account.
        kind: ChargeKind,
        /// Amount charged, µs.
        us: u64,
    },
    /// A task's affinity mask changed at runtime.
    AffinityChange {
        /// The task.
        tid: Tid,
        /// The new mask.
        affinity: CpuSet,
    },
    /// A kernel was enqueued on a device; the issuing task blocks until
    /// `complete_at_us`.
    GpuEnqueue {
        /// The issuing task.
        tid: Tid,
        /// Device index.
        device: u32,
        /// Kernel execution time, µs.
        kernel_us: u64,
        /// Virtual completion time, µs.
        complete_at_us: u64,
    },
    /// A previously enqueued kernel completed and its issuing task is
    /// about to be woken.
    GpuComplete {
        /// The issuing task.
        tid: Tid,
        /// Device index.
        device: u32,
    },
    /// The task exited.
    Exit {
        /// The task.
        tid: Tid,
        /// CPU it exited on.
        cpu: u32,
    },
}

impl TraceEvent {
    /// The task the event concerns.
    pub fn tid(&self) -> Tid {
        match *self {
            TraceEvent::Spawn { tid, .. }
            | TraceEvent::Dequeue { tid, .. }
            | TraceEvent::Enqueue { tid, .. }
            | TraceEvent::Dispatch { tid, .. }
            | TraceEvent::Migrate { tid, .. }
            | TraceEvent::Steal { tid, .. }
            | TraceEvent::Preempt { tid, .. }
            | TraceEvent::Block { tid, .. }
            | TraceEvent::Deschedule { tid, .. }
            | TraceEvent::Wake { tid, .. }
            | TraceEvent::JiffyCharge { tid, .. }
            | TraceEvent::AffinityChange { tid, .. }
            | TraceEvent::GpuEnqueue { tid, .. }
            | TraceEvent::GpuComplete { tid, .. }
            | TraceEvent::Exit { tid, .. } => tid,
        }
    }
}

/// One timestamped scheduler event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event, µs.
    pub t_us: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// Final per-task state, snapshotted for the invariant engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAudit {
    /// Thread id.
    pub tid: Tid,
    /// Owning process.
    pub pid: Pid,
    /// Thread name (shared with the simulator's interned name).
    pub name: Arc<str>,
    /// Affinity mask at snapshot time.
    pub affinity: CpuSet,
    /// Cumulative counters.
    pub counters: TaskCounters,
    /// True if the task exited.
    pub exited: bool,
    /// True for infrastructure tasks.
    pub service: bool,
}

/// A snapshot of the simulator's aggregate accounting, taken after a
/// run. The invariant engine replays the event trace and reconciles it
/// against this.
#[derive(Debug, Clone, PartialEq)]
pub struct SimAudit {
    /// Virtual time of the snapshot, µs.
    pub now_us: u64,
    /// Tick granularity, µs.
    pub tick_us: u64,
    /// Total context switches (`/proc/stat` `ctxt`).
    pub ctxt_total: u64,
    /// Per-CPU `(os_index, user_us, system_us, idle_us)`.
    pub cpus: Vec<(u32, u64, u64, u64)>,
    /// Every task ever spawned.
    pub tasks: Vec<TaskAudit>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_accessor_covers_all_variants() {
        let evs = [
            TraceEvent::Enqueue { tid: 7, cpu: 0 },
            TraceEvent::Dispatch { tid: 7, cpu: 0 },
            TraceEvent::Preempt { tid: 7, cpu: 0 },
            TraceEvent::Block { tid: 7, cpu: 0 },
            TraceEvent::Wake {
                tid: 7,
                waker_cpu: None,
            },
            TraceEvent::JiffyCharge {
                tid: 7,
                cpu: 0,
                kind: ChargeKind::User,
                us: 50,
            },
            TraceEvent::Exit { tid: 7, cpu: 0 },
        ];
        assert!(evs.iter().all(|e| e.tid() == 7));
    }
}
