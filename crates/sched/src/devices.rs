//! Simulated accelerator devices (GPU / GCD queues) and their activity
//! accounting.
//!
//! The scheduler owns a serialized kernel queue per device: offloaded
//! kernels execute in FIFO order, and the issuing task blocks until its
//! kernel completes. Cumulative busy time, energy, and memory footprints
//! are tracked so a GPU-monitoring backend (in `zerosum-gpu`, adapted in
//! `zerosum-core`) can answer SMI-style queries about utilization — the
//! data behind the GPU block of Listing 2.

/// Activity counters for one device.
#[derive(Debug, Clone, Default)]
pub struct DeviceState {
    /// Virtual time until which the device's queue is busy, µs.
    pub busy_until_us: u64,
    /// Cumulative busy time, µs.
    pub busy_us: u64,
    /// Time of the last busy-accounting update, µs.
    pub(crate) last_update_us: u64,
    /// Bytes of device memory currently allocated.
    pub mem_used_bytes: u64,
    /// High-water mark of device memory.
    pub mem_peak_bytes: u64,
    /// Kernels launched on this device.
    pub kernels_launched: u64,
    /// Total µs of kernel time enqueued (≥ busy_us until drained).
    pub kernel_us_enqueued: u64,
}

impl DeviceState {
    /// Advances busy-time accounting to `now_us`.
    pub fn advance(&mut self, now_us: u64) {
        let from = self.last_update_us;
        if now_us > from {
            let busy_end = self.busy_until_us.min(now_us);
            if busy_end > from {
                self.busy_us += busy_end - from;
            }
            self.last_update_us = now_us;
        }
    }

    /// Enqueues a kernel of `kernel_us` at `now_us`; returns the
    /// completion time.
    pub fn enqueue(&mut self, now_us: u64, kernel_us: u64) -> u64 {
        self.advance(now_us);
        let start = self.busy_until_us.max(now_us);
        let done = start + kernel_us;
        self.busy_until_us = done;
        self.kernels_launched += 1;
        self.kernel_us_enqueued += kernel_us;
        done
    }

    /// Records a device-memory allocation (idempotent growth model: the
    /// footprint only grows while the app touches more bytes).
    pub fn touch_memory(&mut self, bytes: u64) {
        if bytes > self.mem_used_bytes {
            self.mem_used_bytes = bytes;
        }
        if self.mem_used_bytes > self.mem_peak_bytes {
            self.mem_peak_bytes = self.mem_used_bytes;
        }
    }

    /// Fraction of the window `[from_us, to_us]` the device was busy.
    /// Requires `advance(to_us)` to have been called.
    pub fn busy_fraction_since(&self, busy_us_at_from: u64, from_us: u64, to_us: u64) -> f64 {
        if to_us <= from_us {
            return 0.0;
        }
        let delta = self.busy_us.saturating_sub(busy_us_at_from);
        delta as f64 / (to_us - from_us) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_serializes_kernels() {
        let mut d = DeviceState::default();
        let done1 = d.enqueue(0, 100);
        assert_eq!(done1, 100);
        let done2 = d.enqueue(10, 50); // queued behind kernel 1
        assert_eq!(done2, 150);
        let done3 = d.enqueue(500, 25); // device idle since 150
        assert_eq!(done3, 525);
        assert_eq!(d.kernels_launched, 3);
        assert_eq!(d.kernel_us_enqueued, 175);
    }

    #[test]
    fn busy_accounting_caps_at_now() {
        let mut d = DeviceState::default();
        d.enqueue(0, 100);
        d.advance(50);
        assert_eq!(d.busy_us, 50);
        d.advance(200);
        assert_eq!(d.busy_us, 100); // kernel ended at 100
        let frac = d.busy_fraction_since(0, 0, 200);
        assert!((frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn memory_high_water() {
        let mut d = DeviceState::default();
        d.touch_memory(1000);
        d.touch_memory(500); // smaller touch does not shrink
        assert_eq!(d.mem_used_bytes, 1000);
        d.touch_memory(5000);
        assert_eq!(d.mem_peak_bytes, 5000);
    }
}
