//! Tunable parameters of the scheduler simulation.

/// Parameters of the CFS-like scheduling model.
///
/// Defaults approximate a stock Linux kernel on an HPC compute node. All
/// times are in microseconds of virtual time.
#[derive(Debug, Clone)]
pub struct SchedParams {
    /// Simulation tick. Accounting and preemption checks happen at this
    /// granularity.
    pub tick_us: u64,
    /// CFS `sched_latency`: the period within which every runnable task
    /// should run once. The timeslice is `target_latency / nr_running`.
    pub target_latency_us: u64,
    /// CFS `sched_min_granularity`: lower bound on the timeslice.
    pub min_granularity_us: u64,
    /// Interval of the periodic load balancer that pulls waiting tasks to
    /// idle CPUs within their affinity mask.
    pub balance_interval_us: u64,
    /// Combined throughput of a core when both of its hardware threads are
    /// busy, relative to one busy thread (1.0 = SMT adds nothing; Linux
    /// on EPYC sees ~1.2 for compute-bound code; the paper's 2-threads-
    /// per-core miniQMC run scaled by ~2.08×/2 ⇒ ≈ 1.0).
    pub smt_efficiency: f64,
    /// How long a task spins at an OpenMP-style barrier before blocking
    /// (cf. `KMP_BLOCKTIME`, default 200 ms). Spinning keeps the task
    /// runnable — the mechanism behind Table 1's huge nonvoluntary
    /// context-switch counts under oversubscription.
    pub barrier_spin_us: u64,
    /// Base RNG seed; per-task streams derive from it.
    pub seed: u64,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            tick_us: 50,
            target_latency_us: 6_000,
            min_granularity_us: 500,
            balance_interval_us: 20_000,
            smt_efficiency: 1.05,
            barrier_spin_us: 200_000,
            seed: 0x05ee_d0f2_e705,
        }
    }
}

impl SchedParams {
    /// The timeslice granted when `nr_running` tasks share one CPU.
    pub fn timeslice_us(&self, nr_running: usize) -> u64 {
        let n = nr_running.max(1) as u64;
        (self.target_latency_us / n).max(self.min_granularity_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeslice_shrinks_with_load_but_bounded() {
        let p = SchedParams::default();
        assert_eq!(p.timeslice_us(1), 6_000);
        assert_eq!(p.timeslice_us(2), 3_000);
        assert_eq!(p.timeslice_us(12), 500); // clamped at min granularity
        assert_eq!(p.timeslice_us(0), 6_000);
    }
}
