//! Seeded node-level fault plans for allocation-scale chaos testing.
//!
//! PR 2's `FaultInjector` (in `zerosum-proc`) perturbs individual procfs
//! reads on one node. This module is the same idea one level up: a
//! deterministic, seeded plan of *node* failures — kills, stalls
//! (stragglers), delayed rejoins, and clock skew — that a cluster-level
//! driver applies round by round. The `ClusterMonitor`'s supervision
//! layer must keep producing allocation reports (with explicit
//! `DEGRADED (k/n nodes)` markers) no matter what the plan does.
//!
//! Like everything in `zerosum-sched`, plans are pure functions of their
//! seed: the same `(seed, node_count, rounds)` triple always yields the
//! same schedule, so chaos failures replay exactly.

/// What happens to one node over a monitored run, in units of
/// *monitoring rounds* (one round = one sampling period).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeFaultPlan {
    /// Round at which the node dies (stops heartbeating entirely).
    pub kill_at: Option<u32>,
    /// Round at which a killed node rejoins (heartbeats resume). Only
    /// meaningful with `kill_at`; `None` means the node stays dead.
    pub rejoin_at: Option<u32>,
    /// Straggler window `[start, end)`: the node is alive but answers no
    /// heartbeats during these rounds (e.g. an OS jitter storm or a
    /// paging stall), then resumes on its own.
    pub stall: Option<(u32, u32)>,
    /// Constant clock skew the node applies to its reported sample
    /// timestamps, µs. Supervision counts rounds, not wall time, so skew
    /// must distort reports' time axes without killing the node.
    pub skew_us: i64,
}

impl NodeFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        NodeFaultPlan::default()
    }

    /// True if this plan injects any fault at all.
    pub fn is_faulty(&self) -> bool {
        *self != NodeFaultPlan::none()
    }

    /// True if the node fails to heartbeat in `round` (killed and not
    /// yet rejoined, or inside a stall window).
    pub fn is_down(&self, round: u32) -> bool {
        if let Some(k) = self.kill_at {
            if round >= k && self.rejoin_at.is_none_or(|r| round < r) {
                return true;
            }
        }
        if let Some((s, e)) = self.stall {
            if (s..e).contains(&round) {
                return true;
            }
        }
        false
    }

    /// True if the node is down at some round but heartbeats again
    /// later — the delayed-rejoin case supervision must handle without
    /// double-counting the node.
    pub fn rejoins(&self) -> bool {
        (self.kill_at.is_some() && self.rejoin_at.is_some()) || self.stall.is_some()
    }

    /// One-line human description for chaos reports.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(k) = self.kill_at {
            match self.rejoin_at {
                Some(r) => parts.push(format!("kill@{k} rejoin@{r}")),
                None => parts.push(format!("kill@{k}")),
            }
        }
        if let Some((s, e)) = self.stall {
            parts.push(format!("stall@{s}..{e}"));
        }
        if self.skew_us != 0 {
            parts.push(format!("skew {}us", self.skew_us));
        }
        if parts.is_empty() {
            parts.push("clean".to_string());
        }
        parts.join(" ")
    }
}

/// A fault plan for every node of an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationFaultPlan {
    /// Per-node plans, indexed like the allocation's node list.
    pub nodes: Vec<NodeFaultPlan>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl AllocationFaultPlan {
    /// A plan with no faults on any node.
    pub fn clean(node_count: usize) -> Self {
        AllocationFaultPlan {
            nodes: vec![NodeFaultPlan::none(); node_count],
        }
    }

    /// Generates a seeded plan over `node_count` nodes and `rounds`
    /// monitoring rounds. Node 0 is always fault-free (the rank-0 /
    /// aggregator node must survive for the differential baseline), and
    /// at least one other node is faulted whenever `node_count > 1`.
    pub fn generate(seed: u64, node_count: usize, rounds: u32) -> Self {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        // Warm the stream so nearby seeds diverge.
        for _ in 0..3 {
            xorshift(&mut rng);
        }
        let mut nodes = vec![NodeFaultPlan::none(); node_count];
        let mut any_fault = false;
        for (i, plan) in nodes.iter_mut().enumerate().skip(1) {
            let force = !any_fault && i == node_count - 1;
            let draw = xorshift(&mut rng) % 100;
            // ~60% of nodes get a fault; the last node is forced when
            // nothing else was drawn so every generated plan is chaotic.
            if draw >= 60 && !force {
                continue;
            }
            any_fault = true;
            let kind = xorshift(&mut rng) % 4;
            let span = rounds.max(4);
            let at = 1 + (xorshift(&mut rng) % (span / 2).max(1) as u64) as u32;
            match kind {
                0 => {
                    // Permanent kill.
                    plan.kill_at = Some(at);
                }
                1 => {
                    // Kill with delayed rejoin.
                    let gap = 2 + (xorshift(&mut rng) % (span / 3).max(1) as u64) as u32;
                    plan.kill_at = Some(at);
                    plan.rejoin_at = Some(at + gap);
                }
                2 => {
                    // Straggler stall.
                    let len = 1 + (xorshift(&mut rng) % (span / 4).max(1) as u64) as u32;
                    plan.stall = Some((at, at + len));
                }
                _ => {
                    // Clock skew only: node stays up, its clock lies.
                    let mag = (xorshift(&mut rng) % 5_000_000) as i64 + 250_000;
                    plan.skew_us = if xorshift(&mut rng).is_multiple_of(2) {
                        mag
                    } else {
                        -mag
                    };
                }
            }
        }
        AllocationFaultPlan { nodes }
    }

    /// Node indices that never miss a heartbeat over `rounds` rounds —
    /// the survivor set a degraded run's aggregates must match exactly.
    pub fn survivors(&self, rounds: u32) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, p)| (0..rounds).all(|r| !p.is_down(r)))
            .map(|(i, _)| i)
            .collect()
    }

    /// One-line description of every node's plan.
    pub fn describe(&self) -> String {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, p)| format!("node{i}: {}", p.describe()))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = AllocationFaultPlan::generate(42, 4, 30);
        let b = AllocationFaultPlan::generate(42, 4, 30);
        assert_eq!(a, b);
        let c = AllocationFaultPlan::generate(43, 4, 30);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn node_zero_is_always_clean_and_some_node_is_faulted() {
        for seed in 0..40u64 {
            let plan = AllocationFaultPlan::generate(seed, 4, 30);
            assert!(!plan.nodes[0].is_faulty(), "seed {seed}: node 0 faulted");
            assert!(
                plan.nodes.iter().any(|p| p.is_faulty()),
                "seed {seed}: no faults generated"
            );
        }
    }

    #[test]
    fn kill_without_rejoin_is_down_forever() {
        let p = NodeFaultPlan {
            kill_at: Some(5),
            ..Default::default()
        };
        assert!(!p.is_down(4));
        assert!(p.is_down(5));
        assert!(p.is_down(500));
        assert!(!p.rejoins());
    }

    #[test]
    fn rejoin_and_stall_windows_end() {
        let p = NodeFaultPlan {
            kill_at: Some(3),
            rejoin_at: Some(7),
            ..Default::default()
        };
        assert!(p.is_down(3) && p.is_down(6));
        assert!(!p.is_down(7), "rejoined node heartbeats again");
        assert!(p.rejoins());
        let s = NodeFaultPlan {
            stall: Some((2, 4)),
            ..Default::default()
        };
        assert!(!s.is_down(1) && s.is_down(2) && s.is_down(3) && !s.is_down(4));
    }

    #[test]
    fn skew_only_nodes_stay_up() {
        let p = NodeFaultPlan {
            skew_us: -1_500_000,
            ..Default::default()
        };
        assert!((0..100).all(|r| !p.is_down(r)));
        assert!(p.is_faulty());
    }

    #[test]
    fn survivors_match_is_down() {
        let plan = AllocationFaultPlan::generate(7, 6, 24);
        let survivors = plan.survivors(24);
        assert!(survivors.contains(&0));
        for i in survivors {
            assert!((0..24).all(|r| !plan.nodes[i].is_down(r)));
        }
    }

    #[test]
    fn describe_mentions_each_fault() {
        let p = NodeFaultPlan {
            kill_at: Some(2),
            rejoin_at: Some(9),
            skew_us: 100,
            ..Default::default()
        };
        let d = p.describe();
        assert!(
            d.contains("kill@2 rejoin@9") && d.contains("skew 100us"),
            "{d}"
        );
        assert_eq!(NodeFaultPlan::none().describe(), "clean");
    }
}
