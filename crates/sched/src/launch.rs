//! Slurm-style job launch: computing per-rank CPU masks and GPU
//! assignments.
//!
//! The paper's three Frontier experiments differ *only* in the `srun`
//! arguments (`-n8` vs `-n8 -c7`) and OpenMP binding environment. This
//! module reproduces the resource-assignment half: given a topology and a
//! launch configuration it computes each rank's `Cpus_allowed` mask and —
//! with `--gpu-bind=closest` — its GPU, honouring the reserved
//! first-core-per-L3 policy that Frontier applies by default.

use zerosum_topology::distance::closest_gpus;
use zerosum_topology::query;
use zerosum_topology::{CpuSet, ObjectKind, Topology};

/// A simplified `srun` launch configuration.
#[derive(Debug, Clone)]
pub struct SrunConfig {
    /// `-n` — number of tasks (MPI ranks) on this node.
    pub ntasks: usize,
    /// `-c` — cores per task; `None` reproduces the Slurm default of one
    /// core per task (the Table 1 misconfiguration).
    pub cpus_per_task: Option<usize>,
    /// `--threads-per-core` — how many hardware threads per core are
    /// schedulable (1 or 2).
    pub threads_per_core: u32,
    /// Reserve the first core of each L3 region for system processes
    /// (Frontier's default, noted under every table of the paper).
    pub reserve_first_core_per_l3: bool,
    /// `--gpu-bind=closest` — assign each rank a GPU from its NUMA domain.
    pub gpu_bind_closest: bool,
}

impl Default for SrunConfig {
    fn default() -> Self {
        SrunConfig {
            ntasks: 1,
            cpus_per_task: None,
            threads_per_core: 1,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        }
    }
}

/// Errors from launch-plan computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Requested more cores than the node offers.
    NotEnoughCores {
        /// Cores needed.
        needed: usize,
        /// Cores available after reservations.
        available: usize,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::NotEnoughCores { needed, available } => write!(
                f,
                "launch needs {needed} cores but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// The computed placement for one rank.
#[derive(Debug, Clone)]
pub struct RankPlacement {
    /// Rank index on this node.
    pub rank: u32,
    /// Hardware threads the rank's process may use.
    pub cpus_allowed: CpuSet,
    /// GPU physical index assigned (with `gpu_bind_closest`), if any.
    pub gpu: Option<u32>,
}

/// Computes per-rank placements for a launch on `topo`.
pub fn plan_launch(topo: &Topology, cfg: &SrunConfig) -> Result<Vec<RankPlacement>, LaunchError> {
    // Ordered list of usable cores (object ids), skipping reservations.
    let mut usable_cores = Vec::new();
    for l3 in topo.objects_of_kind(ObjectKind::L3Cache) {
        let cores: Vec<_> = topo
            .object(l3)
            .children
            .iter()
            .filter_map(|&c| find_core(topo, c))
            .collect();
        let skip = usize::from(cfg.reserve_first_core_per_l3);
        usable_cores.extend(cores.into_iter().skip(skip));
    }
    if usable_cores.is_empty() {
        // Topology without L3 objects (e.g. Summit preset): fall back to
        // all cores, applying per-package reservation of the last core
        // (the Summit convention).
        for pkg in topo.objects_of_kind(ObjectKind::Package) {
            let mut cores = collect_cores(topo, pkg);
            if cfg.reserve_first_core_per_l3 && !cores.is_empty() {
                cores.pop(); // Summit reserves the last core per socket
            }
            usable_cores.extend(cores);
        }
    }
    let per_task = cfg.cpus_per_task.unwrap_or(1);
    let needed = per_task * cfg.ntasks;
    if usable_cores.len() < needed {
        return Err(LaunchError::NotEnoughCores {
            needed,
            available: usable_cores.len(),
        });
    }
    let mut placements = Vec::with_capacity(cfg.ntasks);
    for rank in 0..cfg.ntasks {
        let mut mask = CpuSet::new();
        for core in &usable_cores[rank * per_task..(rank + 1) * per_task] {
            let pus: Vec<u32> = topo.object(*core).cpuset.iter().collect();
            for &pu in pus.iter().take(cfg.threads_per_core as usize) {
                mask.set(pu);
            }
        }
        let gpu = if cfg.gpu_bind_closest {
            let close = closest_gpus(topo, &mask);
            if close.is_empty() {
                None
            } else {
                // Ranks sharing a NUMA domain round-robin over its GPUs.
                Some(close[rank % close.len()])
            }
        } else {
            None
        };
        placements.push(RankPlacement {
            rank: rank as u32,
            cpus_allowed: mask,
            gpu,
        });
    }
    Ok(placements)
}

fn find_core(topo: &Topology, id: zerosum_topology::ObjId) -> Option<zerosum_topology::ObjId> {
    let o = topo.object(id);
    if o.kind == ObjectKind::Core {
        return Some(id);
    }
    for &c in &o.children {
        if let Some(core) = find_core(topo, c) {
            return Some(core);
        }
    }
    None
}

fn collect_cores(topo: &Topology, id: zerosum_topology::ObjId) -> Vec<zerosum_topology::ObjId> {
    let mut out = Vec::new();
    let mut stack = vec![id];
    while let Some(n) = stack.pop() {
        let o = topo.object(n);
        if o.kind == ObjectKind::Core {
            out.push(n);
            continue;
        }
        for &c in o.children.iter().rev() {
            stack.push(c);
        }
    }
    out.sort_by_key(|&c| topo.object(c).logical_index);
    out
}

/// The "Other" (MPI progress helper) thread mask: every usable hardware
/// thread on the node — the wide affinity list shown for LWP 51374 in
/// Listing 2 of the paper.
pub fn helper_mask(topo: &Topology, cfg: &SrunConfig) -> CpuSet {
    let mut mask = CpuSet::new();
    for p in plan_launch(
        topo,
        &SrunConfig {
            ntasks: 1,
            cpus_per_task: Some(count_usable_cores(topo, cfg)),
            threads_per_core: cfg.threads_per_core,
            ..cfg.clone()
        },
    )
    .into_iter()
    .flatten()
    {
        mask.union_with(&p.cpus_allowed);
    }
    mask
}

fn count_usable_cores(topo: &Topology, cfg: &SrunConfig) -> usize {
    let l3s = topo.count_of_kind(ObjectKind::L3Cache);
    let cores = topo.count_of_kind(ObjectKind::Core);
    if cfg.reserve_first_core_per_l3 {
        if l3s > 0 {
            cores - l3s
        } else {
            cores - topo.count_of_kind(ObjectKind::Package)
        }
    } else {
        cores
    }
}

/// Expands a process mask to `threads_per_core = 2` (both SMT siblings of
/// every core present), used by the Figure 8 two-threads-per-core runs.
pub fn with_smt_siblings(topo: &Topology, mask: &CpuSet) -> CpuSet {
    let mut out = CpuSet::new();
    for pu in mask.iter() {
        out.union_with(&query::siblings_of_pu(topo, pu));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_topology::presets;

    #[test]
    fn table1_default_config_one_core_per_rank() {
        let topo = presets::frontier();
        let cfg = SrunConfig {
            ntasks: 8,
            cpus_per_task: None,
            threads_per_core: 1,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        };
        let plan = plan_launch(&topo, &cfg).unwrap();
        assert_eq!(plan.len(), 8);
        // Rank 0: first usable core is core 1 (core 0 reserved) — the
        // paper's "all of the threads were bound to core 1".
        assert_eq!(plan[0].cpus_allowed.to_list_string(), "1");
        assert_eq!(plan[1].cpus_allowed.to_list_string(), "2");
        assert_eq!(plan[7].cpus_allowed.to_list_string(), "9");
    }

    #[test]
    fn table2_c7_gives_each_rank_an_l3_region() {
        let topo = presets::frontier();
        let cfg = SrunConfig {
            ntasks: 8,
            cpus_per_task: Some(7),
            threads_per_core: 1,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        };
        let plan = plan_launch(&topo, &cfg).unwrap();
        assert_eq!(plan[0].cpus_allowed.to_list_string(), "1-7");
        assert_eq!(plan[1].cpus_allowed.to_list_string(), "9-15");
        assert_eq!(plan[7].cpus_allowed.to_list_string(), "57-63");
    }

    #[test]
    fn gpu_bind_closest_matches_figure2() {
        let topo = presets::frontier();
        let cfg = SrunConfig {
            ntasks: 8,
            cpus_per_task: Some(7),
            threads_per_core: 1,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: true,
        };
        let plan = plan_launch(&topo, &cfg).unwrap();
        // Ranks 0,1 live in NUMA 0 → GCDs 4,5; ranks 6,7 in NUMA 3 → 0,1.
        assert_eq!(plan[0].gpu, Some(4));
        assert_eq!(plan[1].gpu, Some(5));
        assert_eq!(plan[6].gpu, Some(0));
        assert_eq!(plan[7].gpu, Some(1));
    }

    #[test]
    fn threads_per_core_two_includes_smt() {
        let topo = presets::frontier();
        let cfg = SrunConfig {
            ntasks: 1,
            cpus_per_task: Some(7),
            threads_per_core: 2,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        };
        let plan = plan_launch(&topo, &cfg).unwrap();
        assert_eq!(plan[0].cpus_allowed.to_list_string(), "1-7,65-71");
    }

    #[test]
    fn oversubscribed_launch_errors() {
        let topo = presets::laptop_i7_1165g7();
        let cfg = SrunConfig {
            ntasks: 16,
            cpus_per_task: Some(2),
            threads_per_core: 1,
            reserve_first_core_per_l3: false,
            gpu_bind_closest: false,
        };
        match plan_launch(&topo, &cfg) {
            Err(LaunchError::NotEnoughCores {
                needed: 32,
                available: 4,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn helper_mask_is_wide() {
        let topo = presets::frontier();
        let cfg = SrunConfig {
            ntasks: 8,
            cpus_per_task: Some(7),
            threads_per_core: 1,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        };
        let mask = helper_mask(&topo, &cfg);
        // The Listing 2 wide mask: 56 usable cores, one HWT each.
        assert_eq!(mask.count(), 56);
        assert_eq!(
            mask.to_list_string(),
            "1-7,9-15,17-23,25-31,33-39,41-47,49-55,57-63"
        );
    }

    #[test]
    fn smt_sibling_expansion() {
        let topo = presets::frontier();
        let mask = CpuSet::parse_list("1-7").unwrap();
        let wide = with_smt_siblings(&topo, &mask);
        assert_eq!(wide.to_list_string(), "1-7,65-71");
    }

    #[test]
    fn summit_fallback_reserves_last_core_per_socket() {
        let topo = presets::summit();
        let cfg = SrunConfig {
            ntasks: 2,
            cpus_per_task: Some(21),
            threads_per_core: 4,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        };
        let plan = plan_launch(&topo, &cfg).unwrap();
        // Rank 0 gets socket 0's 21 usable cores, 4 HWTs each: 0-83.
        assert_eq!(plan[0].cpus_allowed.to_list_string(), "0-83");
        // Rank 1 starts at core 22 (HWT 88) — the Figure 1 index skip.
        assert_eq!(plan[1].cpus_allowed.first(), Some(88));
    }
}
