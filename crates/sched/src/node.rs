//! The node simulation engine.
//!
//! [`NodeSim`] advances a virtual clock in fixed ticks and schedules
//! simulated tasks onto the hardware threads of a
//! [`zerosum_topology::Topology`] with a CFS-like policy. The phenomena
//! the paper observes all *emerge* from four mechanisms:
//!
//! 1. **Timeslice preemption** — a task that exhausts its slice while
//!    others wait is preempted (`nvcsw`).
//! 2. **Spin-yield barriers** — a task spinning at a barrier yields the
//!    CPU whenever its runqueue is non-empty. Like Linux `sched_yield`,
//!    such a switch is counted as *non-voluntary* (the task never
//!    blocked), producing Table 1's enormous `nvctx` under
//!    oversubscription while staying near zero when each thread owns a
//!    core.
//! 3. **CPU-metered spin-before-block** — spinning converts to a blocking
//!    wait after the spinner has *executed* `barrier_spin_us` of CPU time
//!    (OpenMP's `KMP_BLOCKTIME` measures spin iterations, not wall time),
//!    producing voluntary switches only where the paper's tables show
//!    them.
//! 4. **New-idle stealing** — a hardware thread that goes idle pulls a
//!    waiting task from the busiest runqueue its affinity allows,
//!    producing the thread migrations of Table 2 and none in Table 3.

use crate::behavior::{Behavior, Op};
use crate::cpu::CpuState;
use crate::devices::DeviceState;
use crate::memory::{NodeMemory, ProcessMemory};
use crate::params::SchedParams;
use crate::task::{CurrentOp, RunState, SimTask, TaskCounters, TaskId};
use crate::trace::{ChargeKind, SimAudit, TaskAudit, TraceEvent, TraceRecord};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;
use zerosum_proc::{Pid, Tid};
use zerosum_topology::{CpuSet, ObjectKind, Topology};

/// Sets or clears bit `pos` in a `u64`-word bitmask.
#[inline]
fn mask_set(mask: &mut [u64], pos: usize, on: bool) {
    let bit = 1u64 << (pos % 64);
    if on {
        mask[pos / 64] |= bit;
    } else {
        mask[pos / 64] &= !bit;
    }
}

/// True if any bit is set.
#[inline]
fn mask_any(mask: &[u64]) -> bool {
    mask.iter().any(|&w| w != 0)
}

/// Iterates the set bits of a word snapshot in ascending position order.
/// Visiting from a snapshot is safe because every consumer re-checks the
/// underlying condition (`current` / `runqueue`) at the visit.
macro_rules! for_each_set_bit {
    ($mask:expr, $pos:ident, $body:block) => {
        for wi in 0..$mask.len() {
            let mut w = $mask[wi];
            while w != 0 {
                let $pos = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                $body
            }
        }
    };
}

/// A simulated process: a group of tasks sharing a pid, an affinity mask,
/// and a memory footprint.
#[derive(Debug)]
pub struct SimProcess {
    /// Process id.
    pub pid: Pid,
    /// Executable name.
    pub name: String,
    /// CPUs allowed for the process (inherited by tasks by default).
    pub cpus_allowed: CpuSet,
    /// Task ids belonging to this process (first is the main thread).
    pub tasks: Vec<TaskId>,
    /// Memory model.
    pub memory: ProcessMemory,
    /// MPI rank, when the process is part of a parallel job.
    pub rank: Option<u32>,
}

#[derive(Debug, Default)]
struct BarrierState {
    team_size: u32,
    arrived: u32,
    generation: u64,
    blocked: Vec<TaskId>,
}

/// A snapshot of one simulated GPU's activity, for SMI-style backends.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceSnapshot {
    /// Cumulative busy time, µs.
    pub busy_us: u64,
    /// Device memory currently in use, bytes.
    pub mem_used_bytes: u64,
    /// Peak device memory, bytes.
    pub mem_peak_bytes: u64,
    /// Kernels launched so far.
    pub kernels_launched: u64,
    /// Virtual time of the snapshot, µs.
    pub now_us: u64,
}

/// The discrete-time node simulator.
pub struct NodeSim {
    topology: Topology,
    params: SchedParams,
    hostname: String,
    now_us: u64,
    /// CPU states, ordered by OS index.
    cpus: Vec<CpuState>,
    /// OS index → position in `cpus`.
    cpu_pos: HashMap<u32, usize>,
    tasks: Vec<SimTask>,
    tid_map: HashMap<Tid, TaskId>,
    processes: BTreeMap<Pid, SimProcess>,
    barriers: HashMap<(Pid, u32), BarrierState>,
    devices: BTreeMap<u32, DeviceState>,
    /// Node memory model.
    pub memory: NodeMemory,
    events: BinaryHeap<Reverse<(u64, TaskId)>>,
    next_pid: Pid,
    next_tid: Tid,
    next_balance_us: u64,
    ctxt_total: u64,
    alive_app_tasks: usize,
    /// Bit `pos` set when `cpus[pos].current` is occupied. Lets the main
    /// loop visit only busy hardware threads instead of scanning all of
    /// them every tick (a 128-HWT Frontier node is mostly idle bits).
    busy_mask: Vec<u64>,
    /// Bit `pos` set when `cpus[pos].runqueue` is non-empty.
    queued_mask: Vec<u64>,
    /// When true (the default), `run_for` bulk-executes runs of ticks in
    /// which no scheduling decision can occur. Produces byte-identical
    /// results to naive stepping; disabled automatically while tracing so
    /// per-tick `JiffyCharge` events stay exact.
    skip_ahead: bool,
    /// Interned task names: spawning many "OpenMP" workers shares one
    /// allocation.
    name_cache: HashMap<String, Arc<str>>,
    /// Event trace buffer; `None` (the default) records nothing.
    trace: Option<Vec<TraceRecord>>,
    /// Pending GPU-kernel completions `(wake_t, task) -> device`, kept
    /// only while tracing so completion wakes can be attributed.
    gpu_pending: HashMap<(u64, TaskId), u32>,
}

impl NodeSim {
    /// Creates a node simulator for the given topology.
    pub fn new(topology: Topology, params: SchedParams) -> Self {
        let mut cpus = Vec::new();
        let mut cpu_pos = HashMap::new();
        // Build SMT sibling map from cores.
        for core in topology.objects_of_kind(ObjectKind::Core) {
            let pus: Vec<u32> = topology.object(core).cpuset.iter().collect();
            for &pu in &pus {
                let sibling = pus.iter().copied().find(|&p| p != pu);
                cpu_pos.insert(pu, cpus.len());
                cpus.push(CpuState::new(pu, sibling));
            }
        }
        cpus.sort_by_key(|c| c.os_index);
        let cpu_pos: HashMap<u32, usize> = cpus
            .iter()
            .enumerate()
            .map(|(i, c)| (c.os_index, i))
            .collect();
        for cpu in &mut cpus {
            cpu.smt_sibling_pos = cpu.smt_sibling.and_then(|os| cpu_pos.get(&os).copied());
        }
        let mask_words = cpus.len().div_ceil(64).max(1);
        let total_mem_kib = topology
            .object(topology.root())
            .attrs
            .memory_mib
            .unwrap_or(16 * 1024)
            * 1024;
        let balance = params.balance_interval_us;
        NodeSim {
            topology,
            params,
            hostname: "simnode0001".to_string(),
            now_us: 0,
            cpus,
            cpu_pos,
            tasks: Vec::new(),
            tid_map: HashMap::new(),
            processes: BTreeMap::new(),
            barriers: HashMap::new(),
            devices: BTreeMap::new(),
            memory: NodeMemory::new(total_mem_kib),
            events: BinaryHeap::new(),
            next_pid: 18_000,
            next_tid: 18_001,
            next_balance_us: balance,
            ctxt_total: 0,
            alive_app_tasks: 0,
            busy_mask: vec![0; mask_words],
            queued_mask: vec![0; mask_words],
            skip_ahead: true,
            name_cache: HashMap::new(),
            trace: None,
            gpu_pending: HashMap::new(),
        }
    }

    /// Enables or disables quiet-tick batching. Off means the engine steps
    /// every tick naively — useful only for differential testing; results
    /// are identical either way.
    pub fn set_skip_ahead(&mut self, on: bool) {
        self.skip_ahead = on;
    }

    /// True when quiet-tick batching is enabled (the default).
    pub fn skip_ahead(&self) -> bool {
        self.skip_ahead
    }

    /// Returns the interned copy of `name`.
    fn intern_name(&mut self, name: &str) -> Arc<str> {
        if let Some(n) = self.name_cache.get(name) {
            return n.clone();
        }
        let interned: Arc<str> = Arc::from(name);
        self.name_cache.insert(name.to_string(), interned.clone());
        interned
    }

    /// Re-derives the busy/queued bits for CPU `pos`. Must be called after
    /// any mutation of `cpus[pos].current` or `cpus[pos].runqueue`.
    #[inline]
    fn refresh_cpu_flags(&mut self, pos: usize) {
        mask_set(&mut self.busy_mask, pos, self.cpus[pos].current.is_some());
        mask_set(
            &mut self.queued_mask,
            pos,
            !self.cpus[pos].runqueue.is_empty(),
        );
    }

    /// Turns structured event tracing on or off. Enabling starts a fresh
    /// buffer; disabling discards any recorded events.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
        self.gpu_pending.clear();
    }

    /// True when an event buffer is installed.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes the recorded events, leaving tracing enabled with an empty
    /// buffer. Returns an empty vector when tracing is off.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        match self.trace.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Snapshots the aggregate accounting for the invariant engine.
    pub fn audit(&self) -> SimAudit {
        SimAudit {
            now_us: self.now_us,
            tick_us: self.params.tick_us,
            ctxt_total: self.ctxt_total,
            cpus: self.cpu_times_us(),
            tasks: self
                .tasks
                .iter()
                .map(|t| TaskAudit {
                    tid: t.tid,
                    pid: t.pid,
                    name: t.name.clone(),
                    affinity: t.affinity.clone(),
                    counters: t.counters,
                    exited: t.is_exited(),
                    service: t.service,
                })
                .collect(),
        }
    }

    /// Records an event if tracing is on. The closure runs only when a
    /// buffer is installed, so the off path costs one branch.
    #[inline]
    fn emit<F: FnOnce() -> TraceEvent>(&mut self, ev: F) {
        if let Some(buf) = &mut self.trace {
            buf.push(TraceRecord {
                t_us: self.now_us,
                ev: ev(),
            });
        }
    }

    /// Sets the reported hostname.
    pub fn set_hostname(&mut self, name: &str) {
        self.hostname = name.to_string();
    }

    /// The reported hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Current virtual time, µs.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The scheduler parameters.
    pub fn params(&self) -> &SchedParams {
        &self.params
    }

    /// Pids of all processes, ascending.
    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().copied().collect()
    }

    /// Access a process.
    pub fn process(&self, pid: Pid) -> Option<&SimProcess> {
        self.processes.get(&pid)
    }

    /// Access a task by tid.
    pub fn task_by_tid(&self, tid: Tid) -> Option<&SimTask> {
        self.tid_map.get(&tid).map(|id| &self.tasks[id.index()])
    }

    /// Access a task by arena id.
    pub fn task(&self, id: TaskId) -> &SimTask {
        &self.tasks[id.index()]
    }

    /// Spawns a process with a main thread running `behavior`.
    pub fn spawn_process(
        &mut self,
        name: &str,
        cpus_allowed: CpuSet,
        rss_target_kib: u64,
        behavior: Behavior,
    ) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 100;
        self.next_tid = self.next_tid.max(pid) + 1;
        self.processes.insert(
            pid,
            SimProcess {
                pid,
                name: name.to_string(),
                cpus_allowed,
                tasks: Vec::new(),
                memory: ProcessMemory::new(self.now_us, rss_target_kib),
                rank: None,
            },
        );
        // Main thread: tid == pid, like Linux. It inherits the process
        // mask (no extra clone of the mask we just stored).
        self.spawn_task_with_tid(pid, pid, name, None, behavior, false);
        pid
    }

    /// Tags a process with its MPI rank.
    pub fn set_rank(&mut self, pid: Pid, rank: u32) {
        if let Some(p) = self.processes.get_mut(&pid) {
            p.rank = Some(rank);
        }
    }

    /// Spawns an additional task (thread) in `pid`. Returns its tid.
    ///
    /// `affinity` defaults to the process mask. `service` tasks do not
    /// count toward application completion.
    pub fn spawn_task(
        &mut self,
        pid: Pid,
        name: &str,
        affinity: Option<CpuSet>,
        behavior: Behavior,
        service: bool,
    ) -> Tid {
        let tid = self.next_tid;
        self.next_tid += 1;
        self.spawn_task_with_tid(pid, tid, name, affinity, behavior, service)
    }

    fn spawn_task_with_tid(
        &mut self,
        pid: Pid,
        tid: Tid,
        name: &str,
        affinity: Option<CpuSet>,
        behavior: Behavior,
        service: bool,
    ) -> Tid {
        let proc_mask = &self
            .processes
            .get(&pid)
            .expect("spawn_task: unknown pid")
            .cpus_allowed;
        // Clone the process mask only when the task has no explicit one.
        let affinity = affinity.unwrap_or_else(|| proc_mask.clone());
        assert!(
            !affinity.is_empty(),
            "task affinity must not be empty (pid {pid}, {name})"
        );
        // Register barrier membership before the task runs.
        if let Behavior::Worker { spec, .. } = &behavior {
            if let Some(bar) = spec.barrier {
                self.barriers.entry((pid, bar)).or_default().team_size += 1;
            }
        }
        let id = TaskId(self.tasks.len() as u32);
        let seed = self
            .params
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tid as u64)
            | 1;
        let name = self.intern_name(name);
        self.tasks.push(SimTask {
            tid,
            pid,
            name,
            affinity,
            state: RunState::Runnable,
            counters: TaskCounters::default(),
            last_cpu: 0,
            has_run: false,
            spawned_at_us: self.now_us,
            service,
            behavior,
            op: CurrentOp::Fetch,
            slice_used_us: 0,
            enqueued_at_us: 0,
            rng_state: seed,
        });
        self.tid_map.insert(tid, id);
        if let Some(p) = self.processes.get_mut(&pid) {
            p.tasks.push(id);
        }
        if !service {
            self.alive_app_tasks += 1;
        }
        if self.trace.is_some() {
            let affinity = self.tasks[id.index()].affinity.clone();
            self.emit(|| TraceEvent::Spawn { tid, pid, affinity });
        }
        self.enqueue(id);
        tid
    }

    /// Re-spawns a process under a previously used pid — the PID-reuse
    /// race. Linux recycles ids once the old process is reaped; a monitor
    /// that keys series by tid alone will splice the new task's counters
    /// onto the dead one's history. All tasks of the old process must
    /// already have exited. The new main thread gets a fresh `starttime`
    /// (the current virtual time), which is the discriminator `/proc`
    /// offers.
    pub fn respawn_process_with_pid(
        &mut self,
        pid: Pid,
        name: &str,
        cpus_allowed: CpuSet,
        rss_target_kib: u64,
        behavior: Behavior,
    ) -> Pid {
        let old = self
            .processes
            .get(&pid)
            .expect("respawn_process_with_pid: pid was never used");
        assert!(
            old.tasks
                .iter()
                .all(|&id| self.tasks[id.index()].is_exited()),
            "respawn_process_with_pid: old process still has live tasks"
        );
        self.processes.insert(
            pid,
            SimProcess {
                pid,
                name: name.to_string(),
                cpus_allowed,
                tasks: Vec::new(),
                memory: ProcessMemory::new(self.now_us, rss_target_kib),
                rank: None,
            },
        );
        // `tid_map` now points the recycled tid at the new task; the old
        // arena entry stays for post-mortem accounting but is no longer
        // reachable by tid — exactly like a reaped Linux process.
        self.spawn_task_with_tid(pid, pid, name, None, behavior, false);
        pid
    }

    /// Registers one additional member on barrier `(pid, id)` without
    /// spawning a worker for it — the "thread that grabbed the lock and
    /// never arrives" in deadlock-injection scenarios.
    pub fn register_barrier_member(&mut self, pid: Pid, id: u32) {
        self.barriers.entry((pid, id)).or_default().team_size += 1;
    }

    /// Changes a task's affinity mask at runtime (like
    /// `pthread_setaffinity_np`); takes effect at its next dispatch.
    pub fn set_task_affinity(&mut self, tid: Tid, affinity: CpuSet) {
        assert!(!affinity.is_empty(), "affinity must not be empty");
        let Some(&id) = self.tid_map.get(&tid) else {
            return;
        };
        // Clone the mask only when a trace buffer will consume the copy;
        // the task itself takes ownership of the argument.
        if self.trace.is_some() {
            let mask = affinity.clone();
            self.emit(|| TraceEvent::AffinityChange {
                tid,
                affinity: mask,
            });
        }
        self.tasks[id.index()].affinity = affinity;
        match self.tasks[id.index()].state {
            RunState::Running => {
                // Like sched_setaffinity: migrate off a disallowed CPU now.
                let pos = self
                    .cpu_pos
                    .get(&self.tasks[id.index()].last_cpu)
                    .copied()
                    .expect("running task on unknown cpu");
                let cpu = self.cpus[pos].os_index;
                if !self.tasks[id.index()].affinity.contains(cpu) {
                    self.cpus[pos].current = None;
                    self.refresh_cpu_flags(pos);
                    self.emit(|| TraceEvent::Deschedule { tid, cpu });
                    self.enqueue(id);
                }
            }
            RunState::Runnable => {
                // Re-place if queued on a now-disallowed CPU.
                let mut found = None;
                let allowed = &self.tasks[id.index()].affinity;
                for (pos, cpu) in self.cpus.iter().enumerate() {
                    if allowed.contains(cpu.os_index) {
                        continue;
                    }
                    if let Some(i) = cpu.runqueue.iter().position(|&t| t == id) {
                        found = Some((pos, i));
                        break;
                    }
                }
                if let Some((pos, i)) = found {
                    self.cpus[pos].runqueue.remove(i);
                    self.refresh_cpu_flags(pos);
                    let cpu = self.cpus[pos].os_index;
                    self.emit(|| TraceEvent::Dequeue { tid, cpu });
                    self.enqueue(id);
                }
            }
            RunState::Blocked | RunState::Exited => {}
        }
    }

    // ----- scheduling internals ------------------------------------------

    /// Places a runnable task on the least-loaded CPU its mask allows.
    fn enqueue(&mut self, id: TaskId) {
        let task = &self.tasks[id.index()];
        debug_assert_ne!(task.state, RunState::Exited);
        let mut best: Option<(usize, usize)> = None; // (load, pos)
        let last = task.last_cpu;
        for cpu_os in task.affinity.iter() {
            if let Some(&pos) = self.cpu_pos.get(&cpu_os) {
                let load = self.cpus[pos].nr_running();
                let better = match best {
                    None => true,
                    Some((bl, bpos)) => {
                        load < bl
                            || (load == bl && cpu_os == last && self.cpus[bpos].os_index != last)
                    }
                };
                if better {
                    best = Some((load, pos));
                }
            }
        }
        let (_, pos) = best.expect("affinity contains no known CPUs");
        let task = &mut self.tasks[id.index()];
        task.state = RunState::Runnable;
        task.enqueued_at_us = self.now_us;
        // A task entering the queue from a blocked state needs its next
        // operation fetched when it is dispatched.
        if matches!(task.op, CurrentOp::Waiting) {
            task.op = CurrentOp::Fetch;
        }
        let tid = task.tid;
        self.cpus[pos].runqueue.push_back(id);
        self.refresh_cpu_flags(pos);
        let cpu = self.cpus[pos].os_index;
        self.emit(|| TraceEvent::Enqueue { tid, cpu });
    }

    /// Dispatches the next task on CPU `pos`, if any.
    fn dispatch(&mut self, pos: usize) {
        if self.cpus[pos].current.is_some() {
            return;
        }
        let Some(id) = self.cpus[pos].runqueue.pop_front() else {
            return;
        };
        let os = self.cpus[pos].os_index;
        let now = self.now_us;
        let task = &mut self.tasks[id.index()];
        let tid = task.tid;
        let migrated_from = (task.has_run && task.last_cpu != os).then_some(task.last_cpu);
        if migrated_from.is_some() {
            task.counters.migrations += 1;
        }
        task.counters.wait_us += now.saturating_sub(task.enqueued_at_us);
        task.counters.dispatches += 1;
        task.last_cpu = os;
        task.has_run = true;
        task.state = RunState::Running;
        task.slice_used_us = 0;
        self.cpus[pos].current = Some(id);
        self.refresh_cpu_flags(pos);
        if let Some(from) = migrated_from {
            self.emit(|| TraceEvent::Migrate { tid, from, to: os });
        }
        self.emit(|| TraceEvent::Dispatch { tid, cpu: os });
    }

    /// Fetches ops from the task's behavior until one that occupies the
    /// CPU (or blocks/exits) is installed. Returns `true` if the task
    /// remains on CPU.
    fn fetch_op(&mut self, pos: usize, id: TaskId) -> bool {
        loop {
            let jitter = self.tasks[id.index()].next_f64();
            let op = self.tasks[id.index()].behavior.next_op(jitter);
            match op {
                Op::Compute { us } => {
                    self.tasks[id.index()].op = CurrentOp::Compute {
                        remaining_us: us as f64,
                    };
                    return true;
                }
                Op::Syscall { us } => {
                    self.tasks[id.index()].op = CurrentOp::Syscall {
                        remaining_us: us as f64,
                    };
                    return true;
                }
                Op::Sleep { us } => {
                    self.block(pos, id);
                    let wake = self.now_us.saturating_add(us);
                    self.events.push(Reverse((wake, id)));
                    return false;
                }
                Op::Barrier { id: bar } => {
                    let pid = self.tasks[id.index()].pid;
                    let state = self
                        .barriers
                        .get_mut(&(pid, bar))
                        .expect("barrier not registered");
                    state.arrived += 1;
                    if state.arrived >= state.team_size {
                        // Last arrival: release everyone and continue.
                        state.arrived = 0;
                        state.generation += 1;
                        let blocked = std::mem::take(&mut state.blocked);
                        let waker_cpu = self.cpus[pos].os_index;
                        for waiter in blocked {
                            let wtid = self.tasks[waiter.index()].tid;
                            self.emit(|| TraceEvent::Wake {
                                tid: wtid,
                                waker_cpu: Some(waker_cpu),
                            });
                            self.tasks[waiter.index()].state = RunState::Runnable;
                            self.enqueue(waiter);
                        }
                        continue;
                    }
                    let generation = state.generation;
                    // Spin first; block after barrier_spin_us of *CPU*.
                    let budget = self.params.barrier_spin_us;
                    self.tasks[id.index()].op = CurrentOp::BarrierSpin {
                        barrier: bar,
                        generation,
                        // Interpreted as remaining spin CPU budget, µs.
                        block_at_us: budget,
                    };
                    return true;
                }
                Op::OffloadWait {
                    device,
                    kernel_us,
                    bytes,
                } => {
                    let dev = self.devices.entry(device).or_default();
                    let done = dev.enqueue(self.now_us, kernel_us);
                    dev.touch_memory(bytes);
                    let tid = self.tasks[id.index()].tid;
                    self.emit(|| TraceEvent::GpuEnqueue {
                        tid,
                        device,
                        kernel_us,
                        complete_at_us: done,
                    });
                    if self.trace.is_some() {
                        self.gpu_pending.insert((done, id), device);
                    }
                    self.block(pos, id);
                    self.events.push(Reverse((done, id)));
                    return false;
                }
                Op::Exit => {
                    let task = &mut self.tasks[id.index()];
                    let tid = task.tid;
                    task.state = RunState::Exited;
                    task.op = CurrentOp::Exited;
                    if !task.service {
                        self.alive_app_tasks -= 1;
                    }
                    self.cpus[pos].current = None;
                    self.refresh_cpu_flags(pos);
                    let cpu = self.cpus[pos].os_index;
                    self.emit(|| TraceEvent::Exit { tid, cpu });
                    return false;
                }
            }
        }
    }

    /// Takes the task off CPU voluntarily.
    fn block(&mut self, pos: usize, id: TaskId) {
        let task = &mut self.tasks[id.index()];
        let tid = task.tid;
        task.state = RunState::Blocked;
        task.op = CurrentOp::Waiting;
        task.counters.vcsw += 1;
        self.ctxt_total += 1;
        self.cpus[pos].current = None;
        self.refresh_cpu_flags(pos);
        let cpu = self.cpus[pos].os_index;
        self.emit(|| TraceEvent::Block { tid, cpu });
    }

    /// Execution speed of the task on CPU `pos` under the SMT model: half
    /// throughput (scaled by `smt_efficiency`) when the sibling hardware
    /// thread runs non-service compute, full speed otherwise.
    #[inline]
    fn cpu_speed(&self, pos: usize) -> f64 {
        match self.cpus[pos].smt_sibling_pos {
            Some(sib) => {
                let sib_busy = self.cpus[sib]
                    .current
                    .map(|sid| !self.tasks[sid.index()].service)
                    .unwrap_or(false);
                if sib_busy {
                    self.params.smt_efficiency / 2.0
                } else {
                    1.0
                }
            }
            None => 1.0,
        }
    }

    /// Executes one tick on CPU `pos`. The CPU must have a current task.
    fn exec_tick(&mut self, pos: usize) {
        let tick = self.params.tick_us;
        let id = self.cpus[pos].current.expect("exec_tick: no current");
        // SMT: if the sibling hardware thread is also running *compute*
        // work, this task progresses at smt_efficiency/2 of full speed
        // (CPU *time* still accrues at wall rate — that is what /proc
        // reports). Service tasks (monitor threads, progress pollers)
        // perform memory-light bookkeeping that does not meaningfully
        // contend for core execution resources — this is why the paper's
        // default "last hardware thread" monitor placement is essentially
        // free when the SMT sibling is idle (Figure 8, left).
        let progress = tick as f64 * self.cpu_speed(pos);
        let mut finished = false;
        let mut spin_released = false;
        let mut spin_exhausted = false;
        // Snapshot the op kind to keep borrows short.
        enum Kind {
            Compute,
            Syscall,
            Spin { bar: u32, generation: u64 },
        }
        let kind = match &self.tasks[id.index()].op {
            CurrentOp::Compute { .. } => Kind::Compute,
            CurrentOp::Syscall { .. } => Kind::Syscall,
            CurrentOp::BarrierSpin {
                barrier,
                generation,
                ..
            } => Kind::Spin {
                bar: *barrier,
                generation: *generation,
            },
            other => unreachable!("exec_tick on op {other:?}"),
        };
        let charge_kind;
        match kind {
            Kind::Compute => {
                let task = &mut self.tasks[id.index()];
                task.counters.utime_us += tick;
                if let CurrentOp::Compute { remaining_us } = &mut task.op {
                    *remaining_us -= progress;
                    finished = *remaining_us <= 0.0;
                }
                self.cpus[pos].user_us += tick;
                charge_kind = ChargeKind::User;
            }
            Kind::Syscall => {
                let task = &mut self.tasks[id.index()];
                task.counters.stime_us += tick;
                if let CurrentOp::Syscall { remaining_us } = &mut task.op {
                    *remaining_us -= progress;
                    finished = *remaining_us <= 0.0;
                }
                self.cpus[pos].system_us += tick;
                charge_kind = ChargeKind::System;
            }
            Kind::Spin { bar, generation } => {
                // Spinning is user-mode CPU time.
                let pid = self.tasks[id.index()].pid;
                self.tasks[id.index()].counters.utime_us += tick;
                self.cpus[pos].user_us += tick;
                charge_kind = ChargeKind::User;
                let released = self
                    .barriers
                    .get(&(pid, bar))
                    .map(|b| b.generation != generation)
                    .unwrap_or(true);
                if released {
                    spin_released = true;
                } else {
                    // Burn spin budget (CPU-metered, like KMP_BLOCKTIME).
                    if let CurrentOp::BarrierSpin { block_at_us, .. } =
                        &mut self.tasks[id.index()].op
                    {
                        *block_at_us = block_at_us.saturating_sub(tick);
                        if *block_at_us == 0 {
                            spin_exhausted = true;
                        }
                    }
                }
            }
        }
        {
            let tid = self.tasks[id.index()].tid;
            let cpu = self.cpus[pos].os_index;
            self.emit(|| TraceEvent::JiffyCharge {
                tid,
                cpu,
                kind: charge_kind,
                us: tick,
            });
        }
        if spin_released {
            self.tasks[id.index()].op = CurrentOp::Fetch;
            self.fetch_op(pos, id);
            return;
        }
        if spin_exhausted {
            // Convert the spin into a blocking wait on the barrier.
            let (pid, bar, generation) = match &self.tasks[id.index()].op {
                CurrentOp::BarrierSpin {
                    barrier,
                    generation,
                    ..
                } => (self.tasks[id.index()].pid, *barrier, *generation),
                _ => unreachable!(),
            };
            let state = self.barriers.get_mut(&(pid, bar)).expect("barrier");
            if state.generation != generation {
                // Raced with release during this tick: continue instead.
                self.tasks[id.index()].op = CurrentOp::Fetch;
                self.fetch_op(pos, id);
            } else {
                state.blocked.push(id);
                self.block(pos, id);
                self.new_idle_steal(pos);
            }
            return;
        }
        if finished {
            self.tasks[id.index()].op = CurrentOp::Fetch;
            if !self.fetch_op(pos, id) {
                // Task left the CPU (blocked or exited).
                self.new_idle_steal(pos);
                return;
            }
        }
        // Spin-yield: a spinning task gives way whenever someone waits.
        let is_spinning = matches!(self.tasks[id.index()].op, CurrentOp::BarrierSpin { .. });
        self.tasks[id.index()].slice_used_us += tick;
        let nr = self.cpus[pos].nr_running();
        if !self.cpus[pos].runqueue.is_empty() {
            let slice = self.params.timeslice_us(nr);
            let yield_now = is_spinning || self.tasks[id.index()].slice_used_us >= slice;
            if yield_now {
                // Preemption / yield: non-voluntary switch.
                let now = self.now_us;
                let task = &mut self.tasks[id.index()];
                let tid = task.tid;
                task.counters.nvcsw += 1;
                task.state = RunState::Runnable;
                task.enqueued_at_us = now;
                self.ctxt_total += 1;
                self.cpus[pos].runqueue.push_back(id);
                self.cpus[pos].current = None;
                self.refresh_cpu_flags(pos);
                let cpu = self.cpus[pos].os_index;
                self.emit(|| TraceEvent::Preempt { tid, cpu });
            }
        }
    }

    /// When CPU `pos` goes idle, steal a waiting task from the busiest
    /// runqueue whose waiter may run here (CFS new-idle balancing) — the
    /// migration mechanism of Table 2.
    fn new_idle_steal(&mut self, pos: usize) {
        if !self.cpus[pos].is_idle() {
            return;
        }
        let my_os = self.cpus[pos].os_index;
        let mut best: Option<(usize, usize, usize)> = None; // (load, donor_pos, rq_idx)
                                                            // A donor needs nr_running ≥ 2, which implies a non-empty
                                                            // runqueue — scan only the queued bits, in ascending order.
        for_each_set_bit!(self.queued_mask, dpos, {
            let cpu = &self.cpus[dpos];
            if dpos != pos && cpu.nr_running() >= 2 {
                // Find the last (coldest) stealable waiter.
                for (rq_idx, &cand) in cpu.runqueue.iter().enumerate().rev() {
                    if self.tasks[cand.index()].affinity.contains(my_os) {
                        let load = cpu.nr_running();
                        if best.map(|(bl, _, _)| load > bl).unwrap_or(true) {
                            best = Some((load, dpos, rq_idx));
                        }
                        break;
                    }
                }
            }
        });
        if let Some((_, dpos, rq_idx)) = best {
            let id = self.cpus[dpos].runqueue.remove(rq_idx).expect("steal idx");
            let tid = self.tasks[id.index()].tid;
            let from = self.cpus[dpos].os_index;
            self.cpus[pos].runqueue.push_back(id);
            self.refresh_cpu_flags(dpos);
            self.refresh_cpu_flags(pos);
            self.emit(|| TraceEvent::Steal {
                tid,
                from,
                to: my_os,
            });
        }
    }

    /// Periodic balancing: move waiters from overloaded CPUs to idle ones.
    fn balance(&mut self) {
        let idle: Vec<usize> = (0..self.cpus.len())
            .filter(|&p| self.cpus[p].is_idle())
            .collect();
        for pos in idle {
            self.new_idle_steal(pos);
        }
    }

    // ----- main loop ------------------------------------------------------

    /// Advances virtual time by `duration_us`.
    ///
    /// With [`Self::set_skip_ahead`] on (the default) the loop
    /// bulk-executes *quiet* tick runs — stretches in which no wake
    /// event is due, no op can finish, no timeslice can expire, and no
    /// balance pass fires — so a steady simulation advances in O(events)
    /// instead of O(ticks). The batched path performs the same per-tick
    /// arithmetic (including the per-tick `f64` progress subtraction), so
    /// counters and outcomes are byte-identical to naive stepping.
    pub fn run_for(&mut self, duration_us: u64) {
        self.run_for_inner(duration_us, false);
    }

    /// The engine loop. With `stop_when_apps_done` the loop exits at the
    /// top of the first iteration after the last non-service task exited —
    /// exact-tick completion detection for [`Self::run_until_apps_done`].
    fn run_for_inner(&mut self, duration_us: u64, stop_when_apps_done: bool) {
        let target = self.now_us + duration_us;
        let tick = self.params.tick_us;
        while self.now_us < target {
            if stop_when_apps_done && self.alive_app_tasks == 0 {
                break;
            }
            // Deliver due wake events.
            while let Some(&Reverse((t, id))) = self.events.peek() {
                if t > self.now_us {
                    break;
                }
                self.events.pop();
                if self.tasks[id.index()].state == RunState::Blocked {
                    let tid = self.tasks[id.index()].tid;
                    if let Some(device) = self.gpu_pending.remove(&(t, id)) {
                        self.emit(|| TraceEvent::GpuComplete { tid, device });
                    }
                    self.emit(|| TraceEvent::Wake {
                        tid,
                        waker_cpu: None,
                    });
                    self.enqueue(id);
                } else {
                    self.gpu_pending.remove(&(t, id));
                }
            }
            // Dispatch idle CPUs that have queued work.
            for wi in 0..self.queued_mask.len() {
                let mut w = self.queued_mask[wi] & !self.busy_mask[wi];
                while w != 0 {
                    let pos = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    self.dispatch(pos);
                }
            }
            if !mask_any(&self.busy_mask) {
                // Fast-forward to the next event (or the target).
                let next = self
                    .events
                    .peek()
                    .map(|&Reverse((t, _))| t)
                    .unwrap_or(target)
                    .max(self.now_us + tick)
                    .min(target);
                self.now_us = next;
                continue;
            }
            // Skip ahead over ticks in which nothing can happen. Disabled
            // while tracing: traces record one JiffyCharge per tick.
            if self.skip_ahead && self.trace.is_none() {
                let q = self.quiet_ticks(target);
                if q > 0 {
                    self.exec_quiet(q);
                    self.now_us += q * tick;
                    continue;
                }
            }
            // Install ops on freshly-dispatched tasks, then execute a tick.
            for_each_set_bit!(self.busy_mask, pos, {
                if let Some(id) = self.cpus[pos].current {
                    if matches!(self.tasks[id.index()].op, CurrentOp::Fetch)
                        && !self.fetch_op(pos, id)
                    {
                        // Task left the CPU while fetching (blocked/exited).
                    } else {
                        self.exec_tick(pos);
                    }
                }
            });
            self.now_us += tick;
            if self.now_us >= self.next_balance_us {
                self.balance();
                self.next_balance_us = self.now_us + self.params.balance_interval_us;
            }
        }
    }

    /// Number of ticks, starting now, that are provably decision-free on
    /// every CPU and globally (no wake event, no balance pass, inside the
    /// run window). Conservative: returning less than the true quiet run
    /// only costs speed, never correctness.
    fn quiet_ticks(&self, target: u64) -> u64 {
        let tick = self.params.tick_us;
        let n0 = self.now_us;
        // Window bound: quiet ticks may fill the remainder of the run.
        let mut q = (target - n0).div_ceil(tick);
        // The next timer/device wake must stay outside the batch.
        if let Some(&Reverse((t, _))) = self.events.peek() {
            q = q.min((t - n0).div_ceil(tick));
        }
        // The periodic balance pass must stay outside the batch.
        q = q.min(if self.next_balance_us <= n0 {
            0
        } else {
            (self.next_balance_us - n0).div_ceil(tick) - 1
        });
        for_each_set_bit!(self.busy_mask, pos, {
            if q == 0 {
                return 0;
            }
            q = q.min(self.cpu_quiet_bound(pos));
        });
        q
    }

    /// Ticks CPU `pos` can execute with no scheduling decision: its op
    /// must not finish, its spin budget must not exhaust, its timeslice
    /// must not expire, and a spinning task must have no waiter (it would
    /// yield immediately).
    fn cpu_quiet_bound(&self, pos: usize) -> u64 {
        let tick = self.params.tick_us;
        let Some(id) = self.cpus[pos].current else {
            return u64::MAX;
        };
        let task = &self.tasks[id.index()];
        let queue_waiting = !self.cpus[pos].runqueue.is_empty();
        match &task.op {
            CurrentOp::Compute { remaining_us } | CurrentOp::Syscall { remaining_us } => {
                let progress = tick as f64 * self.cpu_speed(pos);
                // Conservative margin: stay two ticks short of the
                // predicted completion so f64 rounding can never make the
                // batch overshoot the naive finish tick.
                let k = (*remaining_us / progress).floor();
                let mut bound = if k.is_finite() && k >= 3.0 {
                    k as u64 - 2
                } else {
                    0
                };
                if queue_waiting {
                    let slice = self.params.timeslice_us(self.cpus[pos].nr_running());
                    let left = slice.saturating_sub(task.slice_used_us);
                    bound = bound.min(if left == 0 {
                        0
                    } else {
                        left.div_ceil(tick) - 1
                    });
                }
                bound
            }
            CurrentOp::BarrierSpin {
                barrier,
                generation,
                block_at_us,
            } => {
                if queue_waiting {
                    return 0; // spin-yields at the end of this tick
                }
                let released = self
                    .barriers
                    .get(&(task.pid, *barrier))
                    .map(|b| b.generation != *generation)
                    .unwrap_or(true);
                if released {
                    return 0; // leaves the spin on its next tick
                }
                if *block_at_us <= tick {
                    0
                } else {
                    block_at_us.div_ceil(tick) - 1
                }
            }
            // Fetch: the next op is unknown until the naive path installs
            // it. Anything else on-CPU is a bug the naive path will catch.
            _ => 0,
        }
    }

    /// Bulk-executes `q` quiet ticks on every busy CPU: the same charges
    /// and the same per-tick `f64` progress subtractions as `q` calls to
    /// `exec_tick`, minus the decision checks `quiet_ticks` proved dead.
    fn exec_quiet(&mut self, q: u64) {
        let tick = self.params.tick_us;
        let charge = q * tick;
        for_each_set_bit!(self.busy_mask, pos, {
            let Some(id) = self.cpus[pos].current else {
                unreachable!("exec_quiet: busy bit on idle cpu");
            };
            let progress = tick as f64 * self.cpu_speed(pos);
            enum Account {
                User,
                System,
            }
            let account;
            {
                let task = &mut self.tasks[id.index()];
                match &mut task.op {
                    CurrentOp::Compute { remaining_us } => {
                        // Per-tick subtraction, not `q × progress`: f64
                        // addition is not associative and equivalence with
                        // the naive stepper must be exact.
                        for _ in 0..q {
                            *remaining_us -= progress;
                        }
                        task.counters.utime_us += charge;
                        account = Account::User;
                    }
                    CurrentOp::Syscall { remaining_us } => {
                        for _ in 0..q {
                            *remaining_us -= progress;
                        }
                        task.counters.stime_us += charge;
                        account = Account::System;
                    }
                    CurrentOp::BarrierSpin { block_at_us, .. } => {
                        *block_at_us = block_at_us.saturating_sub(charge);
                        task.counters.utime_us += charge;
                        account = Account::User;
                    }
                    other => unreachable!("exec_quiet on op {other:?}"),
                }
                task.slice_used_us += charge;
            }
            match account {
                Account::User => self.cpus[pos].user_us += charge,
                Account::System => self.cpus[pos].system_us += charge,
            }
        });
    }

    /// True once every non-service task has exited.
    pub fn apps_done(&self) -> bool {
        self.alive_app_tasks == 0
    }

    /// Runs until all non-service tasks exit, up to `max_us`. Returns the
    /// completion time (µs) or `None` on timeout.
    ///
    /// Completion is detected exactly, at the tick the last application
    /// task exits — exits happen only on naively-executed ticks, never
    /// inside a skip-ahead batch, so detection is precise in both engine
    /// modes. `step_us` is retained for call-site compatibility; it no
    /// longer bounds detection granularity (historically the engine
    /// checked only between `step_us`-sized chunks).
    pub fn run_until_apps_done(&mut self, step_us: u64, max_us: u64) -> Option<u64> {
        let _ = step_us;
        let deadline = self.now_us + max_us;
        while !self.apps_done() {
            if self.now_us >= deadline {
                return None;
            }
            self.run_for_inner(deadline - self.now_us, true);
        }
        Some(self.now_us)
    }

    // ----- observation ----------------------------------------------------

    /// Total context switches (for `/proc/stat`'s `ctxt`).
    pub fn ctxt_total(&self) -> u64 {
        self.ctxt_total
    }

    /// Per-CPU `(os_index, user_us, system_us, idle_us)` accounting.
    /// Idle time is derived: a hardware thread is idle whenever it is not
    /// executing user or kernel work.
    pub fn cpu_times_us(&self) -> Vec<(u32, u64, u64, u64)> {
        self.cpu_times_iter().collect()
    }

    /// Iterator form of [`Self::cpu_times_us`] — the sampling hot path
    /// streams the rows into a render buffer without the intermediate
    /// vector.
    pub fn cpu_times_iter(&self) -> impl Iterator<Item = (u32, u64, u64, u64)> + '_ {
        self.cpus.iter().map(|c| {
            let busy = c.user_us + c.system_us;
            (
                c.os_index,
                c.user_us,
                c.system_us,
                self.now_us.saturating_sub(busy),
            )
        })
    }

    /// Sum of all process RSS at the current time, KiB.
    pub fn processes_rss_kib(&self) -> u64 {
        self.processes
            .values()
            .map(|p| p.memory.rss_kib(self.now_us))
            .sum()
    }

    /// Snapshot of a device's activity (advances its busy accounting).
    pub fn device_snapshot(&mut self, device: u32) -> DeviceSnapshot {
        let now = self.now_us;
        let dev = self.devices.entry(device).or_default();
        dev.advance(now);
        DeviceSnapshot {
            busy_us: dev.busy_us,
            mem_used_bytes: dev.mem_used_bytes,
            mem_peak_bytes: dev.mem_peak_bytes,
            kernels_launched: dev.kernels_launched,
            now_us: now,
        }
    }

    /// Device indices that have seen any activity.
    pub fn active_devices(&self) -> Vec<u32> {
        self.devices.keys().copied().collect()
    }

    /// Counters of every task of a process, as `(tid, name, counters)`.
    pub fn process_task_counters(&self, pid: Pid) -> Vec<(Tid, String, TaskCounters)> {
        self.processes
            .get(&pid)
            .map(|p| {
                p.tasks
                    .iter()
                    .map(|&id| {
                        let t = &self.tasks[id.index()];
                        (t.tid, t.name.to_string(), t.counters)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::WorkerSpec;
    use zerosum_topology::presets;

    fn small_node() -> NodeSim {
        NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default())
    }

    #[test]
    fn finite_compute_completes_and_accounts() {
        let mut sim = small_node();
        let pid = sim.spawn_process(
            "app",
            CpuSet::single(0),
            1024,
            Behavior::FiniteCompute {
                remaining_us: 10_000,
                chunk_us: 1_000,
            },
        );
        let done = sim.run_until_apps_done(1_000, 1_000_000).expect("finishes");
        assert!((10_000..20_000).contains(&done), "done at {done}");
        let t = sim.task_by_tid(pid).unwrap();
        assert!(t.is_exited());
        assert!(t.counters.utime_us >= 10_000);
        assert_eq!(t.counters.nvcsw, 0);
    }

    #[test]
    fn two_tasks_share_one_cpu_with_preemption() {
        let mut sim = small_node();
        let pid = sim.spawn_process(
            "app",
            CpuSet::single(0),
            1024,
            Behavior::FiniteCompute {
                remaining_us: 50_000,
                chunk_us: 50_000,
            },
        );
        sim.spawn_task(
            pid,
            "second",
            None,
            Behavior::FiniteCompute {
                remaining_us: 50_000,
                chunk_us: 50_000,
            },
            false,
        );
        let done = sim
            .run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        // Serialized on one CPU: ~100 ms.
        assert!((100_000..120_000).contains(&done), "done at {done}");
        // Both tasks were preempted at least once.
        let total_nvcsw: u64 = sim
            .process_task_counters(pid)
            .iter()
            .map(|(_, _, c)| c.nvcsw)
            .sum();
        assert!(total_nvcsw >= 2, "nvcsw {total_nvcsw}");
    }

    #[test]
    fn two_tasks_on_two_cpus_run_in_parallel() {
        let mut sim = small_node();
        let pid = sim.spawn_process(
            "app",
            CpuSet::from_indices([0u32, 1]),
            1024,
            Behavior::FiniteCompute {
                remaining_us: 50_000,
                chunk_us: 50_000,
            },
        );
        sim.spawn_task(
            pid,
            "second",
            None,
            Behavior::FiniteCompute {
                remaining_us: 50_000,
                chunk_us: 50_000,
            },
            false,
        );
        let done = sim
            .run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        assert!((50_000..70_000).contains(&done), "done at {done}");
    }

    #[test]
    fn sleeping_fast_forwards() {
        let mut sim = small_node();
        sim.spawn_process("poller", CpuSet::single(0), 64, Behavior::Sleeper);
        // Nothing runnable after the initial sleep op: time must still pass
        // quickly.
        sim.run_for(10_000_000);
        assert_eq!(sim.now_us(), 10_000_000);
        let (_, user, system, idle) = sim.cpu_times_us()[0];
        assert!(user + system < 1_000);
        assert!(idle > 9_900_000);
    }

    #[test]
    fn barrier_team_synchronizes() {
        let mut sim = small_node();
        let mask = CpuSet::from_indices([0u32, 1, 2, 3]);
        let mk = |iters: u32, work: u64| {
            Behavior::worker(WorkerSpec {
                iterations: iters,
                work_per_iter_us: work,
                noise_frac: 0.0,
                sys_per_iter_us: 0,
                leader_extra_us: 0,
                checkpoint_every: 0,
                checkpoint_extra_us: 0,
                is_leader: false,
                barrier: Some(1),
                offload: None,
            })
        };
        let pid = sim.spawn_process("app", mask, 1024, mk(5, 10_000));
        for _ in 0..3 {
            sim.spawn_task(pid, "worker", None, mk(5, 10_000), false);
        }
        let done = sim
            .run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        // 5 iterations × 10 ms, 4 workers on 4 cpus ⇒ ~50 ms.
        assert!((50_000..80_000).contains(&done), "done at {done}");
    }

    #[test]
    fn unbalanced_barrier_waiters_spin_then_block() {
        let mut sim = NodeSim::new(
            presets::laptop_i7_1165g7(),
            SchedParams {
                barrier_spin_us: 2_000,
                ..SchedParams::default()
            },
        );
        let mask = CpuSet::from_indices([0u32, 1]);
        // Leader does 40 ms of serial work per iteration; the other worker
        // waits far beyond its 2 ms spin budget and must block.
        let leader = Behavior::worker(WorkerSpec {
            iterations: 3,
            work_per_iter_us: 40_000,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: true,
            barrier: Some(9),
            offload: None,
        });
        let worker = Behavior::worker(WorkerSpec {
            iterations: 3,
            work_per_iter_us: 1_000,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: Some(9),
            offload: None,
        });
        let pid = sim.spawn_process("app", mask, 1024, leader);
        let wtid = sim.spawn_task(pid, "w", None, worker, false);
        sim.run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        let w = sim.task_by_tid(wtid).unwrap();
        // Blocked once per iteration (voluntary switches).
        assert!(w.counters.vcsw >= 3, "vcsw {}", w.counters.vcsw);
        // And spun ~2 ms per iteration (utime > pure work).
        assert!(w.counters.utime_us >= 3 * (1_000 + 2_000) - 1_000);
    }

    #[test]
    fn oversubscription_spin_yield_generates_nvcsw() {
        let mut sim = small_node();
        let mask = CpuSet::single(0);
        let mk = |lead: bool| {
            Behavior::worker(WorkerSpec {
                iterations: 10,
                work_per_iter_us: 5_000,
                noise_frac: 0.05,
                sys_per_iter_us: 0,
                leader_extra_us: if lead { 2_000 } else { 0 },
                checkpoint_every: 0,
                checkpoint_extra_us: 0,
                is_leader: lead,
                barrier: Some(1),
                offload: None,
            })
        };
        let pid = sim.spawn_process("app", mask, 1024, mk(true));
        for _ in 0..3 {
            sim.spawn_task(pid, "w", None, mk(false), false);
        }
        sim.run_until_apps_done(1_000, 60_000_000)
            .expect("finishes");
        let counters = sim.process_task_counters(pid);
        let total_nvcsw: u64 = counters.iter().map(|(_, _, c)| c.nvcsw).sum();
        let total_vcsw: u64 = counters.iter().map(|(_, _, c)| c.vcsw).sum();
        // Massive involuntary churn, little voluntary (Table 1's shape).
        assert!(total_nvcsw > 100, "nvcsw {total_nvcsw}");
        assert!(total_vcsw < total_nvcsw / 5, "vcsw {total_vcsw}");
    }

    #[test]
    fn idle_steal_migrates_unbound_tasks() {
        let mut sim = NodeSim::new(
            presets::laptop_i7_1165g7(),
            SchedParams {
                barrier_spin_us: 500,
                ..SchedParams::default()
            },
        );
        let mask = CpuSet::from_indices([0u32, 1]);
        // Two long workers plus one short-iteration worker that blocks at
        // its own pace; when a CPU idles it steals the queued worker.
        let long = Behavior::FiniteCompute {
            remaining_us: 100_000,
            chunk_us: 100_000,
        };
        let pid = sim.spawn_process("app", mask.clone(), 1024, long.clone());
        sim.spawn_task(pid, "b", Some(mask.clone()), long.clone(), false);
        sim.spawn_task(pid, "c", Some(mask), long, false);
        sim.run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        let migs: u64 = sim
            .process_task_counters(pid)
            .iter()
            .map(|(_, _, c)| c.migrations)
            .sum();
        assert!(migs >= 1, "migrations {migs}");
    }

    #[test]
    fn smt_sharing_slows_progress_but_not_cpu_time() {
        let mut sim = small_node();
        // PUs 0 and 4 are SMT siblings on the laptop preset.
        let pid = sim.spawn_process(
            "a",
            CpuSet::single(0),
            64,
            Behavior::FiniteCompute {
                remaining_us: 50_000,
                chunk_us: 50_000,
            },
        );
        let _ = pid;
        sim.spawn_process(
            "b",
            CpuSet::single(4),
            64,
            Behavior::FiniteCompute {
                remaining_us: 50_000,
                chunk_us: 50_000,
            },
        );
        let done = sim
            .run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        // Both PUs busy: each progresses at smt_efficiency/2 ≈ 0.525 ⇒
        // ~95 ms rather than 50 ms.
        assert!(done > 80_000, "done at {done}");
        assert!(done < 120_000, "done at {done}");
    }

    #[test]
    fn offload_blocks_and_devices_account() {
        let mut sim = small_node();
        let spec = WorkerSpec {
            iterations: 4,
            work_per_iter_us: 1_000,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: None,
            offload: Some(crate::behavior::OffloadSpec {
                device: 2,
                launch_us: 100,
                kernel_us: 5_000,
                sync_us: 50,
                bytes: 1 << 30,
            }),
        };
        let pid = sim.spawn_process("gpuapp", CpuSet::single(0), 1024, Behavior::worker(spec));
        let done = sim
            .run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        // Each iteration ≈ 1 ms compute + 5 ms kernel wait.
        assert!(done >= 4 * 6_000, "done at {done}");
        let snap = sim.device_snapshot(2);
        assert_eq!(snap.kernels_launched, 4);
        assert!(snap.busy_us >= 20_000);
        assert_eq!(snap.mem_used_bytes, 1 << 30);
        // The waiting task accrued idle (blocked) time: CPU time ≪ wall.
        let t = sim.task_by_tid(pid).unwrap();
        assert!(t.cpu_us() < done / 2);
        // Offload waits are voluntary switches.
        assert!(t.counters.vcsw >= 4);
    }

    #[test]
    fn helper_thread_wide_mask_low_usage() {
        let mut sim = small_node();
        let pid = sim.spawn_process(
            "app",
            CpuSet::single(0),
            64,
            Behavior::FiniteCompute {
                remaining_us: 2_000_000,
                chunk_us: 10_000,
            },
        );
        let all = sim.topology().complete_cpuset().clone();
        let helper = sim.spawn_task(
            pid,
            "helper",
            Some(all),
            Behavior::helper_poll(500_000, 200),
            true,
        );
        sim.run_until_apps_done(10_000, 60_000_000)
            .expect("finishes");
        let h = sim.task_by_tid(helper).unwrap();
        assert!(h.counters.stime_us < 5_000);
        assert!(h.counters.vcsw >= 3);
    }

    #[test]
    fn set_affinity_takes_effect() {
        let mut sim = small_node();
        let pid = sim.spawn_process(
            "app",
            CpuSet::from_indices([0u32, 1]),
            64,
            Behavior::FiniteCompute {
                remaining_us: 100_000,
                chunk_us: 1_000,
            },
        );
        sim.run_for(10_000);
        sim.set_task_affinity(pid, CpuSet::single(1));
        sim.run_until_apps_done(1_000, 10_000_000)
            .expect("finishes");
        let t = sim.task_by_tid(pid).unwrap();
        assert_eq!(t.last_cpu, 1);
        assert_eq!(t.affinity.to_list_string(), "1");
    }

    #[test]
    fn meminfo_reflects_process_rss() {
        let mut sim = small_node();
        sim.spawn_process(
            "fat",
            CpuSet::single(0),
            1_000_000, // ~1 GiB
            Behavior::FiniteCompute {
                remaining_us: 3_000_000,
                chunk_us: 10_000,
            },
        );
        sim.run_for(2_000_000);
        let rss = sim.processes_rss_kib();
        assert_eq!(rss, 1_000_000);
        let mi = sim.memory.meminfo(rss);
        assert!(mi.mem_available_kib < mi.mem_total_kib - 900_000);
    }
}

#[cfg(test)]
mod wait_accounting_tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::params::SchedParams;
    use zerosum_topology::presets;

    #[test]
    fn shared_core_accrues_wait_time() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "a",
            CpuSet::single(0),
            64,
            Behavior::FiniteCompute {
                remaining_us: 60_000,
                chunk_us: 60_000,
            },
        );
        sim.spawn_task(
            pid,
            "b",
            None,
            Behavior::FiniteCompute {
                remaining_us: 60_000,
                chunk_us: 60_000,
            },
            false,
        );
        sim.run_until_apps_done(5_000, 10_000_000)
            .expect("finishes");
        let total_wait: u64 = sim
            .process_task_counters(pid)
            .iter()
            .map(|(_, _, c)| c.wait_us)
            .sum();
        // Two 60 ms tasks time-slicing one CPU: combined waiting roughly
        // equals the serialized excess (~60 ms), certainly above 40 ms.
        assert!(total_wait > 40_000, "wait {total_wait}");
        let dispatches: u64 = sim
            .process_task_counters(pid)
            .iter()
            .map(|(_, _, c)| c.dispatches)
            .sum();
        assert!(dispatches >= 2);
    }

    #[test]
    fn dedicated_cores_wait_almost_nothing() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let pid = sim.spawn_process(
            "a",
            CpuSet::single(0),
            64,
            Behavior::FiniteCompute {
                remaining_us: 60_000,
                chunk_us: 60_000,
            },
        );
        sim.spawn_task(
            pid,
            "b",
            Some(CpuSet::single(1)),
            Behavior::FiniteCompute {
                remaining_us: 60_000,
                chunk_us: 60_000,
            },
            false,
        );
        sim.run_until_apps_done(5_000, 10_000_000)
            .expect("finishes");
        let total_wait: u64 = sim
            .process_task_counters(pid)
            .iter()
            .map(|(_, _, c)| c.wait_us)
            .sum();
        assert!(total_wait < 1_000, "wait {total_wait}");
    }
}
