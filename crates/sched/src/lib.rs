//! # zerosum-sched
//!
//! The operating-system scheduler substrate for ZeroSum-rs.
//!
//! The paper's evaluation observes Linux CFS behaviour — context switches,
//! thread migrations, per-CPU utilization, memory growth, GPU queueing —
//! through `/proc`. Reproducing those experiments without a Frontier
//! allocation requires a scheduler whose *mechanics* produce the same
//! phenomena. [`node::NodeSim`] is that substrate: a deterministic,
//! discrete-time, per-CPU-runqueue scheduler with timeslice preemption,
//! spin-yield barriers, CPU-metered spin-before-block, SMT throughput
//! sharing, new-idle stealing, a process memory model, and serialized GPU
//! kernel queues.
//!
//! The monitor observes the simulation exclusively through
//! [`proc_source::SimProcSource`], which renders kernel-format text and
//! re-parses it with the real `zerosum-proc` parsers.
//!
//! [`launch`] computes Slurm-style placements (`srun -n8 -c7 …`), and
//! [`behavior`] provides the workload models (compute workers, GPU
//! offload, MPI helper, the ZeroSum monitor thread itself).

#![warn(missing_docs)]

pub mod behavior;
pub mod cpu;
pub mod devices;
pub mod launch;
pub mod memory;
pub mod node;
pub mod nodefault;
pub mod params;
pub mod proc_source;
pub mod task;
pub mod trace;

pub use behavior::{Behavior, OffloadSpec, Op, WorkerSpec};
pub use launch::{plan_launch, RankPlacement, SrunConfig};
pub use node::{DeviceSnapshot, NodeSim, SimProcess};
pub use nodefault::{AllocationFaultPlan, NodeFaultPlan};
pub use params::SchedParams;
pub use proc_source::SimProcSource;
pub use task::{RunState, SimTask, TaskCounters, TaskId};
pub use trace::{ChargeKind, SimAudit, TaskAudit, TraceEvent, TraceRecord};

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::behavior::Behavior;
    use crate::node::NodeSim;
    use crate::params::SchedParams;
    use proptest::prelude::*;
    use zerosum_topology::{presets, CpuSet};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// CPU-time conservation: the sum of all tasks' CPU time equals
        /// the sum of all CPUs' busy time, and no CPU accounts more time
        /// than has elapsed.
        #[test]
        fn cpu_time_is_conserved(
            ntasks in 1usize..6,
            work_ms in 1u64..40,
            ncpus in 1u32..4,
        ) {
            let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
            let mask = CpuSet::range(0, ncpus - 1);
            let behavior = || Behavior::FiniteCompute {
                remaining_us: work_ms * 1000,
                chunk_us: 2_000,
            };
            let pid = sim.spawn_process("p", mask, 64, behavior());
            for _ in 1..ntasks {
                sim.spawn_task(pid, "w", None, behavior(), false);
            }
            sim.run_for(500_000);
            let task_cpu: u64 = sim
                .process_task_counters(pid)
                .iter()
                .map(|(_, _, c)| c.utime_us + c.stime_us)
                .sum();
            let cpu_busy: u64 = sim
                .cpu_times_us()
                .iter()
                .map(|(_, u, s, _)| u + s)
                .sum();
            prop_assert_eq!(task_cpu, cpu_busy);
            for (os, u, s, i) in sim.cpu_times_us() {
                prop_assert_eq!(u + s + i, sim.now_us(), "cpu {}", os);
            }
        }

        /// Tasks never run outside their affinity mask.
        #[test]
        fn affinity_is_respected(
            cpu_a in 0u32..8,
            cpu_b in 0u32..8,
            work_ms in 1u64..30,
        ) {
            let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
            let mask = CpuSet::from_indices([cpu_a, cpu_b]);
            let pid = sim.spawn_process("p", mask.clone(), 64, Behavior::FiniteCompute {
                remaining_us: work_ms * 1000,
                chunk_us: 1_000,
            });
            sim.spawn_task(pid, "w", None, Behavior::FiniteCompute {
                remaining_us: work_ms * 1000,
                chunk_us: 1_000,
            }, false);
            sim.run_until_apps_done(5_000, 10_000_000).expect("finishes");
            for (tid, _, _) in sim.process_task_counters(pid) {
                let t = sim.task_by_tid(tid).unwrap();
                prop_assert!(mask.contains(t.last_cpu),
                    "task {} ran on {} outside {:?}", tid, t.last_cpu, mask);
            }
        }

        /// Barrier liveness: any team of workers sharing a barrier on any
        /// CPU subset always finishes (no lost wakeups / stuck spins).
        #[test]
        fn barrier_teams_always_finish(
            team in 2usize..6,
            blocks in 1u32..5,
            work_ms in 1u64..8,
            ncpus in 1u32..8,
            spin_us in prop_oneof![Just(100u64), Just(2_000), Just(200_000)],
        ) {
            let mut sim = NodeSim::new(
                presets::laptop_i7_1165g7(),
                SchedParams { barrier_spin_us: spin_us, ..Default::default() },
            );
            let mask = CpuSet::range(0, ncpus - 1);
            let mk = || crate::behavior::Behavior::worker(crate::behavior::WorkerSpec {
                barrier: Some(1),
                ..crate::behavior::WorkerSpec::cpu_bound(blocks, work_ms * 1_000)
            });
            let pid = sim.spawn_process("team", mask, 64, mk());
            for _ in 1..team {
                sim.spawn_task(pid, "w", None, mk(), false);
            }
            let bound = 10 * team as u64 * blocks as u64 * work_ms * 1_000 + 10_000_000;
            prop_assert!(
                sim.run_until_apps_done(10_000, bound).is_some(),
                "team {team} blocks {blocks} work {work_ms}ms cpus {ncpus} spin {spin_us} did not finish"
            );
        }

        /// Work conservation: total runtime of n equal tasks on one CPU is
        /// at least n × the single-task runtime and the work completes.
        #[test]
        fn serialization_scales_runtime(n in 1u64..5) {
            let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
            let pid = sim.spawn_process("p", CpuSet::single(0), 64, Behavior::FiniteCompute {
                remaining_us: 20_000,
                chunk_us: 20_000,
            });
            for _ in 1..n {
                sim.spawn_task(pid, "w", None, Behavior::FiniteCompute {
                    remaining_us: 20_000,
                    chunk_us: 20_000,
                }, false);
            }
            let done = sim.run_until_apps_done(5_000, 60_000_000).expect("finishes");
            prop_assert!(done >= n * 20_000);
            prop_assert!(done <= n * 20_000 + 50_000);
        }
    }
}
