//! Node and per-process memory model.
//!
//! §3.5 of the paper: ZeroSum watches `/proc/meminfo` and per-process RSS
//! to attribute out-of-memory conditions either to the application's own
//! processes or to something else on the node. The model here gives each
//! process an RSS that ramps from a small initial footprint to a target
//! over a warm-up interval (first-touch behaviour), generating minor page
//! faults while it grows; node-level `MemInfo` is derived from the sum,
//! plus a configurable "other system usage" term that experiments can
//! raise to simulate a noisy neighbour exhausting memory.

use zerosum_proc::MemInfo;

/// Per-process memory state.
#[derive(Debug, Clone)]
pub struct ProcessMemory {
    /// Resident set size target after warm-up, KiB.
    pub rss_target_kib: u64,
    /// Warm-up duration over which RSS ramps linearly, µs.
    pub warmup_us: u64,
    /// Virtual size (constant, ≥ RSS target), KiB.
    pub vm_size_kib: u64,
    /// Process start time, µs.
    pub start_us: u64,
    /// Page size used for fault accounting, KiB.
    pub page_kib: u64,
}

impl ProcessMemory {
    /// A process that maps `rss_target_kib` over one virtual second.
    pub fn new(start_us: u64, rss_target_kib: u64) -> Self {
        ProcessMemory {
            rss_target_kib,
            warmup_us: 1_000_000,
            vm_size_kib: rss_target_kib * 3 / 2 + 65_536,
            start_us,
            page_kib: 4,
        }
    }

    /// RSS at virtual time `now_us`, KiB.
    pub fn rss_kib(&self, now_us: u64) -> u64 {
        let elapsed = now_us.saturating_sub(self.start_us);
        if elapsed >= self.warmup_us || self.warmup_us == 0 {
            self.rss_target_kib
        } else {
            // 1/8 of the footprint is resident immediately (text + libs).
            let base = self.rss_target_kib / 8;
            base + (self.rss_target_kib - base) * elapsed / self.warmup_us
        }
    }

    /// Peak RSS so far (monotone since the ramp is monotone), KiB.
    pub fn hwm_kib(&self, now_us: u64) -> u64 {
        self.rss_kib(now_us)
    }

    /// Cumulative minor faults implied by the first-touch ramp.
    pub fn minor_faults(&self, now_us: u64) -> u64 {
        self.rss_kib(now_us) / self.page_kib
    }
}

/// Node-level memory state.
#[derive(Debug, Clone)]
pub struct NodeMemory {
    /// Total physical memory, KiB.
    pub total_kib: u64,
    /// Memory consumed by the OS and system services, KiB.
    pub system_kib: u64,
    /// Extra usage injected by experiments (noisy neighbour / leak), KiB.
    pub external_kib: u64,
}

impl NodeMemory {
    /// A node with `total_kib` physical memory and a typical system
    /// footprint.
    pub fn new(total_kib: u64) -> Self {
        NodeMemory {
            total_kib,
            system_kib: (total_kib / 50).min(8 * 1024 * 1024),
            external_kib: 0,
        }
    }

    /// Builds the `/proc/meminfo` view given the sum of process RSS.
    pub fn meminfo(&self, processes_rss_kib: u64) -> MemInfo {
        let used = self
            .system_kib
            .saturating_add(self.external_kib)
            .saturating_add(processes_rss_kib);
        let free = self.total_kib.saturating_sub(used);
        // Model a modest page cache that shrinks under pressure.
        let cached = (free / 10).min(4 * 1024 * 1024);
        MemInfo {
            mem_total_kib: self.total_kib,
            mem_free_kib: free.saturating_sub(cached),
            mem_available_kib: free,
            buffers_kib: cached / 8,
            cached_kib: cached,
            swap_total_kib: 0,
            swap_free_kib: 0,
        }
    }

    /// True if the given additional demand cannot be satisfied — the OOM
    /// condition ZeroSum's contention report warns about.
    pub fn would_oom(&self, processes_rss_kib: u64) -> bool {
        self.system_kib + self.external_kib + processes_rss_kib > self.total_kib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_ramps_then_plateaus() {
        let m = ProcessMemory::new(0, 8_000_000);
        assert_eq!(m.rss_kib(0), 1_000_000); // 1/8 immediately
        let mid = m.rss_kib(500_000);
        assert!(mid > 1_000_000 && mid < 8_000_000);
        assert_eq!(m.rss_kib(1_000_000), 8_000_000);
        assert_eq!(m.rss_kib(10_000_000), 8_000_000);
    }

    #[test]
    fn minor_faults_track_pages() {
        let m = ProcessMemory::new(0, 4000);
        assert_eq!(m.minor_faults(2_000_000), 1000); // 4000 KiB / 4 KiB
    }

    #[test]
    fn meminfo_subtracts_usage() {
        let n = NodeMemory::new(512 * 1024 * 1024); // 512 GiB
        let mi = n.meminfo(100 * 1024 * 1024);
        assert_eq!(mi.mem_total_kib, 512 * 1024 * 1024);
        assert!(mi.mem_available_kib < 412 * 1024 * 1024);
        assert!(mi.mem_available_kib > 300 * 1024 * 1024);
    }

    #[test]
    fn oom_detection() {
        let mut n = NodeMemory::new(1000);
        n.system_kib = 100;
        assert!(!n.would_oom(800));
        assert!(n.would_oom(950));
        n.external_kib = 500; // noisy neighbour
        assert!(n.would_oom(500));
    }
}
