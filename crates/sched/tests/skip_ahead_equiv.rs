//! Differential equivalence: quiet-tick skip-ahead vs naive stepping.
//!
//! The skip-ahead engine (`NodeSim::set_skip_ahead`) claims byte-identical
//! results to executing every tick. This suite runs varied workloads —
//! oversubscribed barrier teams, SMT sharing, sleepers, GPU offloads,
//! runtime affinity changes — across seeds 1..=20 and asserts that the
//! full [`SimAudit`] (every task counter, every per-CPU time account, the
//! context-switch total, and the clock) matches exactly, that completion
//! times match, and that event traces are unaffected by the flag.

use zerosum_sched::{Behavior, NodeSim, SchedParams, SimAudit, WorkerSpec};
use zerosum_topology::{presets, CpuSet};

/// Builds a seed-varied workload exercising every scheduler mechanism.
fn build_sim(seed: u64, skip_ahead: bool) -> NodeSim {
    let mut sim = NodeSim::new(
        presets::laptop_i7_1165g7(),
        SchedParams {
            seed,
            barrier_spin_us: 1_000 + (seed % 5) * 700,
            ..SchedParams::default()
        },
    );
    sim.set_skip_ahead(skip_ahead);

    // Oversubscribed barrier team: 4 workers on 2 CPUs → spin-yield churn.
    let team_mask = CpuSet::from_indices([0u32, 1]);
    let mk_worker = |lead: bool| {
        Behavior::worker(WorkerSpec {
            iterations: 4 + (seed % 3) as u32,
            work_per_iter_us: 3_000 + (seed % 7) * 500,
            noise_frac: 0.1,
            sys_per_iter_us: 200,
            leader_extra_us: if lead { 1_500 } else { 0 },
            checkpoint_every: 2,
            checkpoint_extra_us: 400,
            is_leader: lead,
            barrier: Some(1),
            offload: None,
        })
    };
    let team = sim.spawn_process("team", team_mask, 4_096, mk_worker(true));
    for _ in 0..3 {
        sim.spawn_task(team, "worker", None, mk_worker(false), false);
    }

    // SMT pair: two computes on sibling hardware threads (0 and 4).
    sim.spawn_process(
        "smt_a",
        CpuSet::single(4),
        128,
        Behavior::FiniteCompute {
            remaining_us: 20_000 + (seed % 4) * 5_000,
            chunk_us: 7_000,
        },
    );

    // A sleeper that wakes periodically (timer events inside the run).
    sim.spawn_process("poller", CpuSet::single(2), 64, Behavior::Sleeper);

    // GPU offload worker: block/wake cycles through the device queue.
    sim.spawn_process(
        "gpu",
        CpuSet::single(3),
        1_024,
        Behavior::worker(WorkerSpec {
            iterations: 3,
            work_per_iter_us: 1_000,
            noise_frac: 0.0,
            sys_per_iter_us: 0,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier: None,
            offload: Some(zerosum_sched::OffloadSpec {
                device: 0,
                launch_us: 100,
                kernel_us: 2_000 + (seed % 3) * 800,
                sync_us: 50,
                bytes: 1 << 20,
            }),
        }),
    );
    sim
}

/// Drives the sim the way the monitored runner does (chunked stepping with
/// an affinity change partway through) and returns the final audit.
fn drive(sim: &mut NodeSim) -> (Option<u64>, SimAudit) {
    sim.run_for(7_300); // odd offset: exercise non-aligned batch windows
                        // Runtime affinity change of the team leader, like zerosum-omp pinning.
    sim.set_task_affinity(sim.pids()[0], CpuSet::single(1));
    let done = sim.run_until_apps_done(200, 30_000_000);
    // Keep stepping past completion: service/sleeper tasks stay live.
    sim.run_for(50_000);
    (done, sim.audit())
}

#[test]
fn skip_ahead_matches_naive_across_seeds() {
    for seed in 1..=20u64 {
        let (done_fast, audit_fast) = drive(&mut build_sim(seed, true));
        let (done_naive, audit_naive) = drive(&mut build_sim(seed, false));
        assert_eq!(done_fast, done_naive, "completion diverged at seed {seed}");
        assert_eq!(
            audit_fast, audit_naive,
            "audit diverged at seed {seed}: fast={audit_fast:#?} naive={audit_naive:#?}"
        );
    }
}

#[test]
fn traces_are_identical_regardless_of_flag() {
    // Tracing forces the naive stepper, so traces must not depend on the
    // skip-ahead flag at all.
    for seed in [1u64, 7, 20] {
        let mut a = build_sim(seed, true);
        let mut b = build_sim(seed, false);
        a.set_tracing(true);
        b.set_tracing(true);
        let _ = drive(&mut a);
        let _ = drive(&mut b);
        assert_eq!(
            a.take_trace(),
            b.take_trace(),
            "trace diverged at seed {seed}"
        );
    }
}

#[test]
fn traced_naive_run_matches_untraced_skip_ahead_audit() {
    // The traced (naive) engine and the untraced skip-ahead engine must
    // agree on every counter; only the trace buffer itself differs.
    for seed in [2u64, 11, 19] {
        let mut traced = build_sim(seed, true);
        traced.set_tracing(true);
        let (done_t, audit_t) = drive(&mut traced);
        let (done_f, audit_f) = drive(&mut build_sim(seed, true));
        assert_eq!(done_t, done_f, "completion diverged at seed {seed}");
        assert_eq!(audit_t, audit_f, "audit diverged at seed {seed}");
    }
}

#[test]
fn skip_ahead_advances_like_naive_on_pure_idle() {
    let mut fast = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
    let mut slow = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
    slow.set_skip_ahead(false);
    for sim in [&mut fast, &mut slow] {
        sim.spawn_process("idle", CpuSet::single(0), 64, Behavior::Sleeper);
        sim.run_for(5_000_000);
    }
    assert_eq!(fast.now_us(), slow.now_us());
    assert_eq!(fast.audit(), slow.audit());
}
