//! `zerosum bench` — the performance regression gate.
//!
//! Measures the four throughput figures the fast-path work targets and
//! renders them as hand-rolled JSON (no dependencies) so CI can diff a
//! run against a committed baseline:
//!
//! * `samples_per_sec` — task samples the monitor hot path completes per
//!   wall second against the simulated `/proc` (zero-alloc `_into` stack
//!   plus delta sampling).
//! * `sim_us_per_wall_ms` — virtual microseconds the bare scheduler
//!   substrate advances per wall millisecond (event-driven skip-ahead).
//! * `parse_mb_per_sec` — procfs text parsed per wall second through the
//!   borrowed-view parsers.
//! * `monitor_overhead_pct` — the §4.1 miniQMC reproduction: virtual-time
//!   overhead of a monitored run over the unmonitored baseline. This one
//!   is computed in virtual time, so it is deterministic.
//! * `net_frames_per_sec` — wire frames pushed through a full
//!   encode-then-decode round trip per wall second (mixed tag batch).
//! * `collector_round_us` — wall microseconds one collector round
//!   (`pump_frames` + `run_round`) costs over an 8-node in-process
//!   cluster with heartbeats and LWP details in flight.
//!
//! A fifth, ungated figure (`faultwrap_overhead_pct`) records what the
//! chaos layer's pass-through wrapper adds to fault-free sampling; the
//! `<5%` contract is enforced by a unit test, not the CI gate, because
//! the quantity is a small difference of two wall times.
//!
//! Wall-clock metrics use a best-of-N loop (the minimum is the least
//! noisy location estimator for a contended CI host); the gate then
//! allows `--max-regress` percent on top of that.

use std::path::Path;
use std::time::Instant;
use zerosum_core::{Monitor, NodeAggregate, ProcessInfo, ZeroSumConfig};
use zerosum_net::{decode_frame, encode_frame, in_proc_pair, Collector, Frame, NodeAgent};
use zerosum_proc::fault::{FaultInjector, FaultPlan};
use zerosum_proc::{format, parse, CpuTimes, SystemStat, TaskStat, TaskStatus};
use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
use zerosum_topology::{presets, CpuSet};

/// One measured figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable identifier used to match baseline entries.
    pub key: String,
    /// Measured value.
    pub value: f64,
    /// Human-readable unit.
    pub unit: String,
    /// Direction of goodness (determines the sign of a regression).
    pub higher_is_better: bool,
    /// Whether [`check`] compares this metric against the baseline.
    /// Ungated metrics are recorded for trend-watching only.
    pub gated: bool,
}

/// A full bench run (or a parsed baseline file).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// The measured metrics, in presentation order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// Looks up a metric by key.
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.key == key)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::from("benchmark results:\n");
        for m in &self.metrics {
            let dir = if m.higher_is_better { "↑" } else { "↓" };
            let gate = if m.gated { "" } else { "  (ungated)" };
            out.push_str(&format!(
                "  {:<24} {:>14.3} {} {}{}\n",
                m.key, m.value, m.unit, dir, gate
            ));
        }
        out
    }

    /// Serializes to the committed-baseline JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"key\": \"{}\", \"value\": {:.4}, \"unit\": \"{}\", \"higher_is_better\": {}, \"gated\": {}}}{}\n",
                m.key,
                m.value,
                m.unit,
                m.higher_is_better,
                m.gated,
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the format written by [`Self::to_json`]. Hand-rolled for
    /// exactly that shape (one object per metric), but defensive about
    /// everything a hand-edited or truncated baseline can contain:
    /// braces and escapes inside strings, objects cut off mid-field, and
    /// non-finite values all come back as errors, never panics.
    pub fn from_json(text: &str) -> Result<Self, String> {
        // Byte offset of the first `}` outside a string literal, so a
        // `}` inside a unit string cannot truncate the object.
        fn object_end(s: &str) -> Option<usize> {
            let (mut in_str, mut esc) = (false, false);
            for (i, c) in s.char_indices() {
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' if in_str => esc = true,
                    '"' => in_str = !in_str,
                    '}' if !in_str => return Some(i),
                    _ => {}
                }
            }
            None
        }
        fn str_field(obj: &str, name: &str) -> Result<String, String> {
            let tag = format!("\"{name}\": \"");
            let start = obj
                .find(&tag)
                .ok_or_else(|| format!("missing field {name:?}"))?
                + tag.len();
            let mut esc = false;
            for (i, c) in obj[start..].char_indices() {
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' => esc = true,
                    '"' => return Ok(obj[start..start + i].to_string()),
                    _ => {}
                }
            }
            Err(format!(
                "unterminated string for {name:?} (truncated file?)"
            ))
        }
        fn raw_field(obj: &str, name: &str) -> Result<String, String> {
            let tag = format!("\"{name}\": ");
            let start = obj
                .find(&tag)
                .ok_or_else(|| format!("missing field {name:?}"))?
                + tag.len();
            let end = obj[start..]
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated value for {name:?}"))?;
            Ok(obj[start..start + end].trim().to_string())
        }
        let mut metrics: Vec<Metric> = Vec::new();
        let mut rest = text;
        while let Some(start) = rest.find("{\"key\":") {
            let end = start
                + object_end(&rest[start..]).ok_or_else(|| {
                    format!(
                        "metric object {} is truncated (no closing brace)",
                        metrics.len() + 1
                    )
                })?;
            let obj = &rest[start..=end];
            let key = str_field(obj, "key")?;
            let value: f64 = raw_field(obj, "value")?
                .parse()
                .map_err(|e| format!("{key}: bad value: {e}"))?;
            if !value.is_finite() {
                return Err(format!("{key}: non-finite value {value}"));
            }
            metrics.push(Metric {
                key,
                value,
                unit: str_field(obj, "unit")?,
                higher_is_better: raw_field(obj, "higher_is_better")? == "true",
                gated: raw_field(obj, "gated")? == "true",
            });
            rest = &rest[end + 1..];
        }
        if metrics.is_empty() {
            return Err("no metrics found (not a bench JSON file?)".into());
        }
        Ok(BenchReport { metrics })
    }
}

/// Percent regression of `cur` against `base` (positive = worse).
fn regression_pct(base: &Metric, cur: &Metric) -> f64 {
    if base.higher_is_better {
        (base.value - cur.value) / base.value.abs().max(1e-9) * 100.0
    } else {
        // Small percentages regress in points, not ratios: a floor on
        // the denominator keeps 0.4% → 0.6% from reading as +50%. At a
        // 15% gate the floor of 5 allows up to 0.75 points of growth.
        (cur.value - base.value) / base.value.abs().max(5.0) * 100.0
    }
}

/// Compares a run against a baseline; returns one failure line per gated
/// metric regressing more than `max_regress_pct`.
pub fn check(current: &BenchReport, baseline: &BenchReport, max_regress_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline.metrics.iter().filter(|m| m.gated) {
        let Some(cur) = current.get(&base.key) else {
            failures.push(format!("{}: missing from current run", base.key));
            continue;
        };
        let regress = regression_pct(base, cur);
        if regress > max_regress_pct {
            failures.push(format!(
                "{}: {:.3} -> {:.3} {} ({:+.1}% regression, limit {:.0}%)",
                base.key, base.value, cur.value, cur.unit, regress, max_regress_pct
            ));
        }
    }
    failures
}

/// Side-by-side delta table for two bench files (`bench --compare`).
pub fn compare(a: &BenchReport, b: &BenchReport) -> String {
    let mut out = format!("{:<24} {:>14} {:>14} {:>9}\n", "metric", "A", "B", "delta");
    for ma in &a.metrics {
        match b.get(&ma.key) {
            Some(mb) => {
                let delta = (mb.value - ma.value) / ma.value.abs().max(1e-9) * 100.0;
                let good = if delta >= 0.0 {
                    ma.higher_is_better
                } else {
                    !ma.higher_is_better
                };
                out.push_str(&format!(
                    "{:<24} {:>14.3} {:>14.3} {:>+8.1}% {}\n",
                    ma.key,
                    ma.value,
                    mb.value,
                    delta,
                    if good { "better" } else { "worse" }
                ));
            }
            None => out.push_str(&format!(
                "{:<24} {:>14.3} {:>14} —\n",
                ma.key, ma.value, "-"
            )),
        }
    }
    out
}

/// Builds the sampling micro-scenario: 4 ranks × 8 threads of compute on
/// the Frontier preset, with the monitor watching every rank.
fn sampling_scenario() -> (NodeSim, Monitor, usize) {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(topo, SchedParams::default());
    let mut monitor = Monitor::new(ZeroSumConfig::default());
    let (procs, threads) = (4u32, 8u32);
    for p in 0..procs {
        let base = p * 16;
        let mask = CpuSet::from_indices(base..base + 16);
        let pid = sim.spawn_process(
            "bench",
            mask.clone(),
            200_000,
            Behavior::FiniteCompute {
                remaining_us: 3_600_000_000,
                chunk_us: 10_000,
            },
        );
        for w in 1..threads {
            sim.spawn_task(
                pid,
                &format!("worker{w}"),
                None,
                Behavior::FiniteCompute {
                    remaining_us: 3_600_000_000,
                    chunk_us: 10_000,
                },
                false,
            );
        }
        monitor.watch_process(ProcessInfo {
            pid,
            rank: Some(p),
            hostname: "bench".into(),
            gpus: vec![],
            cpus_allowed: mask,
        });
    }
    (sim, monitor, (procs * threads) as usize)
}

/// Times `rounds` sampling rounds (advancing virtual time between
/// rounds so schedstats move); returns wall seconds spent inside
/// `Monitor::sample` only.
fn time_sampling(rounds: u32, wrap: bool) -> (f64, usize) {
    let (mut sim, mut monitor, ntasks) = sampling_scenario();
    let injector = FaultInjector::new(FaultPlan::quiet(7));
    let mut in_sample = 0.0f64;
    for r in 0..rounds {
        sim.run_for(10_000);
        let t_s = r as f64 * 0.01;
        let src = SimProcSource::new(&sim);
        let t0 = Instant::now();
        if wrap {
            monitor.sample(t_s, &injector.wrap(&src));
        } else {
            monitor.sample(t_s, &src);
        }
        in_sample += t0.elapsed().as_secs_f64();
    }
    (in_sample, ntasks)
}

/// `samples_per_sec` and `faultwrap_overhead_pct`, best of `reps`.
fn bench_sampling(rounds: u32, reps: u32) -> (f64, f64) {
    let (mut best_plain, mut best_wrapped) = (f64::INFINITY, f64::INFINITY);
    let mut ntasks = 0;
    for _ in 0..reps {
        let (t, n) = time_sampling(rounds, false);
        best_plain = best_plain.min(t);
        ntasks = n;
        let (t, _) = time_sampling(rounds, true);
        best_wrapped = best_wrapped.min(t);
    }
    let samples_per_sec = (rounds as usize * ntasks) as f64 / best_plain;
    let overhead_pct = (best_wrapped / best_plain - 1.0) * 100.0;
    (samples_per_sec, overhead_pct)
}

/// Virtual µs the bare simulator advances per wall ms, best of `reps`.
fn bench_sim_speed(scale: u32, reps: u32) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let topo = presets::frontier();
        let mut sim = NodeSim::new(topo.clone(), SchedParams::default());
        let cfg = zerosum_apps::MiniQmcConfig::frontier_cpu().scaled_down(scale);
        let mut ompt = zerosum_omp::OmptRegistry::new();
        zerosum_apps::launch_miniqmc(&mut sim, &topo, &cfg, &mut ompt).expect("launch");
        let t0 = Instant::now();
        let done = sim
            .run_until_apps_done(200, 3_600_000_000)
            .expect("bench app finishes");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        best = best.max(done as f64 / wall_ms.max(1e-6));
    }
    best
}

/// Procfs text parsed per wall second through the `_into` parsers, best
/// of `reps` over a rendered Frontier-sized corpus.
fn bench_parse(iters: u32, reps: u32) -> f64 {
    // Render a representative corpus once: one 128-HWT /proc/stat plus
    // 64 task stat and status records.
    let mut sys = SystemStat::default();
    for i in 0..128u64 {
        let t = CpuTimes {
            user: 1_000 + i * 13,
            nice: i,
            system: 500 + i * 7,
            idle: 90_000 + i * 31,
            iowait: i * 3,
            irq: i,
            softirq: i * 2,
            steal: 0,
        };
        sys.total.user += t.user;
        sys.total.idle += t.idle;
        sys.cpus.push((i as u32, t));
    }
    sys.ctxt = 123_456_789;
    sys.processes = 4_242;
    let sys_text = format::format_system_stat(&sys);
    let mut stat_texts = Vec::new();
    let mut status_texts = Vec::new();
    for i in 0..64u64 {
        let st = TaskStat {
            tid: 1000 + i as u32,
            comm: format!("worker{i}"),
            utime: 10_000 + i * 97,
            stime: 2_000 + i * 13,
            minflt: i * 11,
            num_threads: 64,
            processor: (i % 128) as u32,
            ..Default::default()
        };
        stat_texts.push(format::format_task_stat(&st));
        let status = TaskStatus {
            name: format!("worker{i}"),
            tid: 1000 + i as u32,
            tgid: 1000,
            vm_rss_kib: 200_000,
            vm_size_kib: 400_000,
            vm_hwm_kib: 220_000,
            cpus_allowed: CpuSet::from_indices(0..128u32),
            voluntary_ctxt_switches: i * 100,
            nonvoluntary_ctxt_switches: i * 3,
            ..Default::default()
        };
        status_texts.push(format::format_task_status(&status));
    }
    let bytes_per_iter = sys_text.len()
        + stat_texts.iter().map(String::len).sum::<usize>()
        + status_texts.iter().map(String::len).sum::<usize>();
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut sys_out = SystemStat::default();
        let mut stat_out = TaskStat::default();
        let mut status_out = TaskStatus::default();
        let t0 = Instant::now();
        for _ in 0..iters {
            parse::parse_system_stat_into(&sys_text, &mut sys_out).expect("sys parses");
            for (s, st) in stat_texts.iter().zip(&status_texts) {
                parse::parse_task_stat_into(s.trim_end(), &mut stat_out).expect("stat parses");
                parse::parse_task_status_into(st, &mut status_out).expect("status parses");
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(iters as u64 as f64 * bytes_per_iter as f64 / secs.max(1e-9) / 1e6);
    }
    best
}

/// Best-of-`reps` wall time of one full `zerosum audit` over the
/// workspace, in milliseconds. The audit runs on every push (CI's
/// audit stage), so its own cost is a gated budget: a quadratic blowup
/// in the call graph or the effect fixpoint fails the bench gate
/// before it makes CI unbearable. Returns 0.0 when no workspace root
/// is locatable (bench invoked from an extracted tarball).
fn bench_audit(reps: usize) -> f64 {
    let Some(root) = crate::lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))) else {
        return 0.0;
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = crate::audit::audit_workspace(&root);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if report.is_ok() {
            best = best.min(ms);
        }
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// Wire frames encoded *and then* decoded per wall second over a mixed
/// batch (one frame of every tag, strings and f64 bit patterns
/// included), best of `reps`. The codec sits on every collector read
/// and every agent tick, so a per-frame allocation or a quadratic
/// checksum slip shows up here before it shows up as a stalled round.
fn bench_net_frames(iters: u32, reps: u32) -> f64 {
    let batch = vec![
        Frame::Hello {
            hostname: "bench-node".into(),
        },
        Frame::Heartbeat { round: 7, t_s: 0.7 },
        Frame::LwpDetail {
            round: 7,
            tid: 1234,
            busy_pct: 55.25,
        },
        Frame::Aggregate {
            round: 7,
            agg: NodeAggregate {
                hostname: "bench-node".into(),
                ranks: 2,
                lwps: 16,
                mean_user_pct: 91.5,
                mean_idle_pct: 6.5,
                total_nvcsw: 987_654,
                rss_kib: 8_388_608,
            },
        },
        Frame::Ack { round: 7 },
        Frame::Bye,
    ];
    let mut buf: Vec<u8> = Vec::with_capacity(4 * 1024);
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut frames = 0u64;
        for _ in 0..iters {
            buf.clear();
            for f in &batch {
                encode_frame(f, &mut buf).expect("bench frame encodes");
            }
            let mut off = 0usize;
            while off < buf.len() {
                let rest = buf.get(off..).expect("offset within buffer");
                let (_, n) = decode_frame(rest).expect("bench frame decodes");
                off += n;
            }
            frames += batch.len() as u64;
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(frames as f64 / secs.max(1e-9));
    }
    best
}

/// Wall µs per collector round over a `nodes`-node in-process cluster,
/// best of `reps`. Each round every agent sends a heartbeat plus eight
/// LWP details; the timer covers only the collector side
/// (`pump_frames` + `run_round`), which is exactly the loop one daemon
/// runs per period for the whole allocation.
fn bench_collector_round(nodes: usize, rounds: u64, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut collector = Collector::new();
        let mut agents = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let host = format!("bench{i:02}");
            collector.expect_node(&host);
            let (agent_end, collector_end) = in_proc_pair(64);
            collector.add_link(Box::new(collector_end));
            agents.push(NodeAgent::new(agent_end, host));
        }
        let mut in_round = 0.0f64;
        for r in 0..rounds {
            let round = r + 1;
            for a in &mut agents {
                a.begin_round(round, round as f64 * 0.1);
                for d in 0..8u32 {
                    a.send_detail(round, 100 + d, f64::from(d) * 11.5);
                }
                for _ in 0..4 {
                    a.tick();
                }
            }
            let t0 = Instant::now();
            collector.pump_frames();
            collector.run_round();
            in_round += t0.elapsed().as_secs_f64();
        }
        best = best.min(in_round / rounds as f64 * 1e6);
    }
    best
}

/// Runs the whole suite. `quick` shrinks workloads for the CI smoke
/// stage; the full mode is what `BENCH_pr3.json` records.
pub fn run_bench(quick: bool) -> BenchReport {
    let (rounds, reps) = if quick { (150, 3) } else { (400, 5) };
    let (samples_per_sec, faultwrap_pct) = bench_sampling(rounds, reps);
    let sim_speed = bench_sim_speed(if quick { 80 } else { 40 }, if quick { 2 } else { 3 });
    let parse_speed = bench_parse(if quick { 300 } else { 1_500 }, if quick { 3 } else { 5 });
    let audit_ms = bench_audit(if quick { 2 } else { 3 });
    let net_frames = bench_net_frames(if quick { 2_000 } else { 10_000 }, reps);
    let round_us = bench_collector_round(8, if quick { 60 } else { 200 }, reps);
    // §4.1 reproduction: virtual-time overhead of monitoring miniQMC at
    // two threads per core (the paper's contended configuration).
    let fig8 = zerosum_experiments::figures::fig8(true, if quick { 2 } else { 4 }, 60, 42);
    BenchReport {
        metrics: vec![
            Metric {
                key: "samples_per_sec".into(),
                value: samples_per_sec,
                unit: "task-samples/s".into(),
                higher_is_better: true,
                gated: true,
            },
            Metric {
                key: "sim_us_per_wall_ms".into(),
                value: sim_speed,
                unit: "virt-µs/wall-ms".into(),
                higher_is_better: true,
                gated: true,
            },
            Metric {
                key: "parse_mb_per_sec".into(),
                value: parse_speed,
                unit: "MB/s".into(),
                higher_is_better: true,
                gated: true,
            },
            Metric {
                key: "monitor_overhead_pct".into(),
                value: fig8.overhead_frac * 100.0,
                unit: "% virt".into(),
                higher_is_better: false,
                gated: true,
            },
            Metric {
                key: "audit_ms".into(),
                value: audit_ms,
                unit: "ms".into(),
                higher_is_better: false,
                gated: true,
            },
            Metric {
                key: "net_frames_per_sec".into(),
                value: net_frames,
                unit: "frames/s".into(),
                higher_is_better: true,
                gated: true,
            },
            Metric {
                key: "collector_round_us".into(),
                value: round_us,
                unit: "µs/round".into(),
                higher_is_better: false,
                gated: true,
            },
            Metric {
                key: "faultwrap_overhead_pct".into(),
                value: faultwrap_pct,
                unit: "% wall".into(),
                higher_is_better: false,
                gated: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            metrics: vec![
                Metric {
                    key: "samples_per_sec".into(),
                    value: 123456.789,
                    unit: "task-samples/s".into(),
                    higher_is_better: true,
                    gated: true,
                },
                Metric {
                    key: "monitor_overhead_pct".into(),
                    value: 0.42,
                    unit: "% virt".into(),
                    higher_is_better: false,
                    gated: true,
                },
                Metric {
                    key: "faultwrap_overhead_pct".into(),
                    value: 1.8,
                    unit: "% wall".into(),
                    higher_is_better: false,
                    gated: false,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.metrics.len(), 3);
        for (a, b) in r.metrics.iter().zip(&parsed.metrics) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.higher_is_better, b.higher_is_better);
            assert_eq!(a.gated, b.gated);
            assert!(
                (a.value - b.value).abs() < 1e-3,
                "{} vs {}",
                a.value,
                b.value
            );
        }
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json at all").is_err());
    }

    #[test]
    fn truncated_json_is_an_error_not_a_panic() {
        // Every prefix of a valid file must parse cleanly or fail with
        // an error — `bench --compare` sees torn baselines after a
        // crashed CI run. (`json` contains multi-byte "µ"s, so this also
        // walks every char boundary around them.)
        let json = sample_report().to_json();
        let full = BenchReport::from_json(&json).unwrap().metrics.len();
        for (i, _) in json.char_indices() {
            match BenchReport::from_json(&json[..i]) {
                Ok(r) => assert!(r.metrics.len() <= full),
                Err(e) => assert!(!e.is_empty()),
            }
        }
        // A file cut mid-object names the casualty.
        let cut = &json[..json.find("\"unit\"").unwrap()];
        let err = BenchReport::from_json(cut).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn braces_and_escapes_inside_strings_do_not_truncate_objects() {
        let mut r = sample_report();
        r.metrics[0].unit = "weird}unit".into();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.metrics.len(), r.metrics.len());
        assert_eq!(parsed.metrics[0].unit, "weird}unit");
        // An escape before the closing quote must not swallow it.
        let text =
            r#"{"key": "k\\", "value": 1.0, "unit": "u", "higher_is_better": true, "gated": true}"#;
        let parsed = BenchReport::from_json(text).unwrap();
        assert_eq!(parsed.metrics.len(), 1);
    }

    #[test]
    fn non_finite_and_malformed_values_are_rejected() {
        let mk = |val: &str| {
            format!(
                "{{\"key\": \"m\", \"value\": {val}, \"unit\": \"u\", \
                 \"higher_is_better\": true, \"gated\": true}}"
            )
        };
        let err = BenchReport::from_json(&mk("NaN")).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        let err = BenchReport::from_json(&mk("inf")).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        let err = BenchReport::from_json(&mk("1.2.3")).unwrap_err();
        assert!(err.contains("bad value"), "{err}");
    }

    #[test]
    fn check_flags_only_gated_regressions() {
        let base = sample_report();
        let mut cur = sample_report();
        // Within tolerance: no failures.
        assert!(check(&cur, &base, 15.0).is_empty());
        // 20% throughput drop fails the 15% gate.
        cur.metrics[0].value = base.metrics[0].value * 0.80;
        let f = check(&cur, &base, 15.0);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].starts_with("samples_per_sec"));
        // An ungated metric never fails, however bad.
        cur.metrics[0].value = base.metrics[0].value;
        cur.metrics[2].value = 99.0;
        assert!(check(&cur, &base, 15.0).is_empty());
        // A missing gated metric fails.
        cur.metrics.remove(1);
        let f = check(&cur, &base, 15.0);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("missing"));
    }

    #[test]
    fn overhead_points_use_a_denominator_floor() {
        let mk = |v: f64| Metric {
            key: "monitor_overhead_pct".into(),
            value: v,
            unit: "% virt".into(),
            higher_is_better: false,
            gated: true,
        };
        // 0.4% → 0.6% of virtual overhead is +0.2 points, not +50%.
        assert!(regression_pct(&mk(0.4), &mk(0.6)) < 15.0);
        // A jump to 25% overhead still trips the gate.
        assert!(regression_pct(&mk(0.4), &mk(25.0)) > 15.0);
    }

    #[test]
    fn compare_renders_both_columns() {
        let a = sample_report();
        let mut b = sample_report();
        b.metrics[0].value *= 1.10;
        let table = compare(&a, &b);
        assert!(table.contains("samples_per_sec"));
        assert!(table.contains("better"));
    }

    #[test]
    fn faultwrap_passthrough_stays_under_five_percent() {
        // The chaos satellite's contract: with a fault-free plan the
        // FaultyProc wrapper must add <5% to the sampling hot path
        // (`can_stale == false` skips all last-good caching). Best-of-N
        // keeps scheduler noise out of the comparison. The 5% bound is a
        // contract about optimized builds; unoptimized ones only get a
        // sanity ceiling (dispatch overhead is not what they measure).
        let (_, overhead_pct) = bench_sampling(60, 4);
        let limit = if cfg!(debug_assertions) { 40.0 } else { 5.0 };
        assert!(
            overhead_pct < limit,
            "fault-free wrapper overhead {overhead_pct:.2}% (want <{limit}%)"
        );
    }

    #[test]
    fn quick_bench_produces_all_metrics() {
        let r = run_bench(true);
        for key in [
            "samples_per_sec",
            "sim_us_per_wall_ms",
            "parse_mb_per_sec",
            "monitor_overhead_pct",
            "audit_ms",
            "net_frames_per_sec",
            "collector_round_us",
            "faultwrap_overhead_pct",
        ] {
            let m = r.get(key).expect(key);
            assert!(m.value.is_finite(), "{key} not finite");
        }
        // Throughputs are positive; a self-check against itself passes.
        assert!(r.get("samples_per_sec").unwrap().value > 0.0);
        assert!(r.get("parse_mb_per_sec").unwrap().value > 0.0);
        assert!(check(&r, &r, 15.0).is_empty());
        // And the JSON survives a round trip.
        let round = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(round.metrics.len(), r.metrics.len());
    }
}
