//! Allocation-scale chaos checking: node supervision under seeded
//! node-fault plans.
//!
//! The procfs chaos suite ([`crate::chaos`]) perturbs individual reads
//! on one node. This module judges the layer above: the
//! [`ClusterMonitor`](zerosum_core::ClusterMonitor)'s supervision of a
//! whole allocation while nodes are killed, stalled, rejoined late, and
//! clock-skewed by an [`AllocationFaultPlan`]. Per seeded plan it
//! asserts four properties:
//!
//! 1. **No panics** — the supervision layer survives every plan.
//! 2. **A report every round** — the allocation summary keeps rendering
//!    no matter how many nodes are down.
//! 3. **Honest degradation** — the `DEGRADED (k/n nodes)` marker
//!    appears exactly when the quorum shrank, with the right counts.
//! 4. **Exact survivors** — aggregates restricted to nodes that never
//!    went down match the fault-free run bit for bit (the differential
//!    property the independent per-node seeding guarantees).
//!
//! A separate [`bounded_memory_drill`] proves the monitor's series
//! memory stays constant over arbitrarily long runs: every time series
//! is a fixed-capacity ring that downsamples on wrap, so a million
//! sampling rounds hold the same storage as a few thousand.

use std::panic::{catch_unwind, AssertUnwindSafe};

use zerosum_core::{Monitor, NodeState, ProcessInfo, ZeroSumConfig};
use zerosum_experiments::cluster_chaos::{
    run_cluster_chaos, run_cluster_chaos_with_plan, ClusterChaosOutcome,
};
use zerosum_proc::{
    CpuTimes, MemInfo, Pid, ProcSource, SchedStat, SourceResult, SystemStat, TaskStat, TaskStatus,
    Tid,
};
use zerosum_sched::AllocationFaultPlan;
use zerosum_topology::CpuSet;

/// The verdict on one seeded allocation fault plan.
#[derive(Debug)]
pub struct ClusterChaosReport {
    /// Schedule name (`alloc-f00` …).
    pub name: String,
    /// The plan seed this schedule ran with.
    pub seed: u64,
    /// Nodes in the allocation.
    pub nodes: usize,
    /// Monitoring rounds driven.
    pub rounds: u32,
    /// The supervision layer panicked under the plan.
    pub panicked: bool,
    /// Nodes the plan faulted in any way.
    pub faulted_nodes: usize,
    /// Nodes the supervisor had declared dead at run end.
    pub dead_at_end: usize,
    /// Rounds whose quorum was below the full node count.
    pub degraded_rounds: usize,
    /// Everything that failed; empty means the schedule passed.
    pub problems: Vec<String>,
}

impl ClusterChaosReport {
    /// True when every supervision property held.
    pub fn passed(&self) -> bool {
        self.problems.is_empty()
    }

    /// One-line summary plus one line per problem.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let status = if self.passed() { "ok" } else { "FAIL" };
        writeln!(
            out,
            "{:<10} seed={:<6} {} node(s)  {} faulted  {} dead  \
             {:>3}/{} degraded round(s)  [{status}]",
            self.name,
            self.seed,
            self.nodes,
            self.faulted_nodes,
            self.dead_at_end,
            self.degraded_rounds,
            self.rounds,
        )
        .unwrap();
        for p in &self.problems {
            writeln!(out, "  problem: {p}").unwrap();
        }
        out
    }
}

/// Runs one seeded allocation fault plan and judges the supervision
/// layer's behaviour against the four properties above.
pub fn judge_cluster_run(
    name: &str,
    seed: u64,
    node_count: usize,
    rounds: u32,
) -> ClusterChaosReport {
    let mut report = ClusterChaosReport {
        name: name.to_string(),
        seed,
        nodes: node_count,
        rounds,
        panicked: false,
        faulted_nodes: 0,
        dead_at_end: 0,
        degraded_rounds: 0,
        problems: Vec::new(),
    };
    let outcome = match catch_unwind(AssertUnwindSafe(|| {
        run_cluster_chaos(node_count, rounds, seed)
    })) {
        Ok(o) => o,
        Err(_) => {
            report.panicked = true;
            report
                .problems
                .push("supervision layer panicked under the fault plan".to_string());
            return report;
        }
    };
    report.faulted_nodes = outcome.plan.nodes.iter().filter(|p| p.is_faulty()).count();
    // Property 2: the allocation report appeared after every round.
    if outcome.round_summaries.len() != rounds as usize {
        report.problems.push(format!(
            "only {}/{} rounds produced an allocation summary",
            outcome.round_summaries.len(),
            rounds
        ));
    }
    // Property 3: the DEGRADED marker is present with the right counts
    // exactly when the quorum shrank — never on a full quorum.
    for (r, (summary, &(k, n))) in outcome
        .round_summaries
        .iter()
        .zip(&outcome.round_quorums)
        .enumerate()
    {
        if n != node_count {
            report
                .problems
                .push(format!("round {r}: quorum total {n} != {node_count} nodes"));
        }
        if !summary.contains("TOTAL:") {
            report
                .problems
                .push(format!("round {r}: summary missing its TOTAL line"));
        }
        if k < n {
            report.degraded_rounds += 1;
            let marker = format!("DEGRADED ({k}/{n} nodes)");
            if !summary.contains(&marker) {
                report.problems.push(format!(
                    "round {r}: quorum {k}/{n} but summary lacks {marker:?}"
                ));
            }
        } else if summary.contains("DEGRADED") {
            report.problems.push(format!(
                "round {r}: full quorum but summary claims degradation"
            ));
        }
    }
    report.dead_at_end = (0..node_count)
        .filter(|&i| {
            outcome
                .cluster
                .node_state(&ClusterChaosOutcome::hostname(i))
                == NodeState::Dead
        })
        .count();
    // Property 4: the differential check. Nodes that never went down
    // must aggregate identically to the fault-free run of the same seed.
    let clean = run_cluster_chaos_with_plan(
        node_count,
        rounds,
        seed,
        &AllocationFaultPlan::clean(node_count),
    );
    let clean_aggs = clean.cluster.aggregates();
    let faulted_aggs = outcome.cluster.aggregates();
    for i in outcome.plan.survivors(rounds) {
        let host = ClusterChaosOutcome::hostname(i);
        let f = faulted_aggs.iter().find(|a| a.hostname == host);
        let c = clean_aggs.iter().find(|a| a.hostname == host);
        match (f, c) {
            (Some(f), Some(c)) if f == c => {}
            (Some(_), Some(_)) => report
                .problems
                .push(format!("survivor {host} diverged from the fault-free run")),
            _ => report
                .problems
                .push(format!("survivor {host} missing from aggregates")),
        }
    }
    report
}

/// Runs the allocation-scale soak: `schedules` seeded fault plans over
/// `node_count`-node allocations, each judged by [`judge_cluster_run`].
/// Schedules fan out on the experiment engine; reports come back in
/// submission order.
pub fn run_cluster_suite(
    node_count: usize,
    rounds: u32,
    schedules: usize,
    base_seed: u64,
) -> Vec<ClusterChaosReport> {
    zerosum_experiments::parallel::run_jobs(
        (0..schedules)
            .map(|i| {
                move || {
                    let seed = base_seed
                        .wrapping_add(7919u64.wrapping_mul(i as u64))
                        .wrapping_add(1);
                    judge_cluster_run(&format!("alloc-f{i:02}"), seed, node_count, rounds)
                }
            })
            .collect(),
        0,
    )
}

/// A synthetic two-thread node whose counters are pure functions of the
/// round number — the cheapest possible `ProcSource`, so the drill can
/// push a million sampling rounds through the full monitor stack in
/// seconds.
struct SyntheticNode {
    round: u64,
    pid: Pid,
}

impl SyntheticNode {
    fn times(&self, cpu: u64) -> CpuTimes {
        CpuTimes {
            user: self.round * 60 + cpu * 13,
            nice: 0,
            system: self.round * 10,
            idle: self.round * 30,
            iowait: 0,
            irq: 0,
            softirq: 0,
            steal: 0,
        }
    }
}

impl ProcSource for SyntheticNode {
    fn system_stat(&self) -> SourceResult<SystemStat> {
        let mut sys = SystemStat::default();
        for cpu in 0..2u64 {
            let t = self.times(cpu);
            sys.total.user += t.user;
            sys.total.system += t.system;
            sys.total.idle += t.idle;
            sys.cpus.push((cpu as u32, t));
        }
        sys.ctxt = self.round * 1_000;
        sys.processes = 100;
        Ok(sys)
    }

    fn meminfo(&self) -> SourceResult<MemInfo> {
        Ok(MemInfo {
            mem_total_kib: 16_000_000,
            mem_free_kib: 8_000_000,
            mem_available_kib: 12_000_000,
            ..Default::default()
        })
    }

    fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>> {
        Ok(vec![pid, pid + 1])
    }

    fn task_stat(&self, _pid: Pid, tid: Tid) -> SourceResult<TaskStat> {
        Ok(TaskStat {
            tid,
            comm: "drill".to_string(),
            utime: self.round * 80,
            stime: self.round * 5,
            num_threads: 2,
            processor: tid % 2,
            starttime: 1_234,
            ..Default::default()
        })
    }

    fn task_status(&self, _pid: Pid, tid: Tid) -> SourceResult<TaskStatus> {
        Ok(TaskStatus {
            name: "drill".to_string(),
            tid,
            tgid: self.pid,
            vm_rss_kib: 100_000 + self.round % 1_000,
            vm_size_kib: 200_000,
            vm_hwm_kib: 101_000,
            cpus_allowed: CpuSet::from_indices([0u32, 1]),
            voluntary_ctxt_switches: self.round,
            nonvoluntary_ctxt_switches: self.round / 10,
            ..Default::default()
        })
    }

    fn task_schedstat(&self, _pid: Pid, _tid: Tid) -> SourceResult<SchedStat> {
        Ok(SchedStat {
            run_ns: self.round * 1_000_000,
            wait_ns: self.round * 10_000,
            timeslices: self.round,
        })
    }
}

/// Drives `rounds` sampling rounds through a monitor whose series
/// capacity is `capacity` and checks the bounded-memory invariant:
/// every time series (per-LWP, per-HWT, memory, process RSS) holds at
/// most `capacity` points, no round was lost from the running totals,
/// the rings actually wrapped when `rounds > capacity`, and the latest
/// point is always the current round. Returns every violated invariant
/// (empty = pass).
pub fn bounded_memory_drill(rounds: u64, capacity: usize) -> Vec<String> {
    let mut problems = Vec::new();
    let pid: Pid = 4_242;
    let mut mon = Monitor::new(ZeroSumConfig::default().with_series_capacity(capacity));
    mon.watch_process(ProcessInfo {
        pid,
        rank: Some(0),
        hostname: "drill".into(),
        gpus: vec![],
        cpus_allowed: CpuSet::from_indices([0u32, 1]),
    });
    for round in 1..=rounds {
        let src = SyntheticNode { round, pid };
        mon.sample(round as f64, &src);
    }
    let last_t = rounds as f64;
    let must_wrap = rounds as usize > capacity;
    if mon.stats.rounds != rounds {
        problems.push(format!(
            "monitor completed {}/{rounds} rounds",
            mon.stats.rounds
        ));
    }
    let Some(w) = mon.process(pid) else {
        problems.push("watched process vanished from the monitor".to_string());
        return problems;
    };
    if w.rss_series.len() > capacity {
        problems.push(format!(
            "rss series holds {} points (capacity {capacity})",
            w.rss_series.len()
        ));
    }
    if w.rss_series.total_pushed() != rounds {
        problems.push(format!(
            "rss series recorded {}/{rounds} rounds",
            w.rss_series.total_pushed()
        ));
    }
    if must_wrap && w.rss_series.wraps() == 0 {
        problems.push("rss series never wrapped despite overflow".to_string());
    }
    if w.rss_series.last().map(|p| p.0) != Some(last_t) {
        problems.push("rss series lost the latest round".to_string());
    }
    for t in w.lwps.tracks() {
        if t.samples.len() > capacity {
            problems.push(format!(
                "LWP {} series holds {} points (capacity {capacity})",
                t.tid,
                t.samples.len()
            ));
        }
        if must_wrap && t.samples.wraps() == 0 {
            problems.push(format!("LWP {} series never wrapped", t.tid));
        }
        // Downsampling must preserve both ends of the series.
        if t.samples.last().map(|s| s.t_s) != Some(last_t) {
            problems.push(format!("LWP {} series lost the latest round", t.tid));
        }
        if t.samples.first().map(|s| s.t_s) != Some(1.0) {
            problems.push(format!("LWP {} series lost its first sample", t.tid));
        }
    }
    for cpu in mon.hwt.cpu_indices() {
        let s = mon.hwt.samples(cpu).unwrap_or(&[]);
        if s.len() > capacity {
            problems.push(format!(
                "CPU {cpu} series holds {} points (capacity {capacity})",
                s.len()
            ));
        }
        if s.last().map(|x| x.t_s) != Some(last_t) {
            problems.push(format!("CPU {cpu} series lost the latest round"));
        }
    }
    if mon.mem.samples().len() > capacity {
        problems.push(format!(
            "memory series holds {} points (capacity {capacity})",
            mon.mem.samples().len()
        ));
    }
    if mon.mem.samples().last().map(|s| s.t_s) != Some(last_t) {
        problems.push("memory series lost the latest round".to_string());
    }
    // The report must still render from downsampled series.
    let report = zerosum_core::render_process_report(&mon, pid, last_t, None);
    if !report.contains("Sampling Health:") {
        problems.push("report no longer renders after ring wrap".to_string());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance soak: 20 seeded node-fault plans, zero
    /// panics, a report with honest DEGRADED markers every round, and
    /// survivor aggregates exactly matching the fault-free run.
    #[test]
    fn cluster_soak_twenty_plans_all_pass() {
        let reports = run_cluster_suite(4, 20, 20, 0xA110);
        assert_eq!(reports.len(), 20);
        let failed: Vec<&ClusterChaosReport> = reports.iter().filter(|r| !r.passed()).collect();
        assert!(
            failed.is_empty(),
            "failed plans:\n{}",
            failed.iter().map(|r| r.render()).collect::<String>()
        );
        // The soak must exercise the machinery: every generated plan is
        // chaotic, and across 20 plans some nodes die and degrade the
        // quorum.
        assert!(reports.iter().all(|r| r.faulted_nodes > 0));
        let degraded: usize = reports.iter().map(|r| r.degraded_rounds).sum();
        assert!(degraded > 0, "no plan ever degraded the quorum");
        assert!(
            reports.iter().any(|r| r.dead_at_end > 0),
            "no plan left a node dead"
        );
    }

    #[test]
    fn bounded_memory_drill_wraps_and_stays_constant() {
        // 20k rounds into capacity-64 rings: >300 wraps per series.
        let problems = bounded_memory_drill(20_000, 64);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn bounded_memory_drill_without_overflow_also_passes() {
        let problems = bounded_memory_drill(50, 4_096);
        assert!(problems.is_empty(), "{problems:?}");
    }
}
