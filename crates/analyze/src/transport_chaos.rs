//! Lossy-transport chaos checking: the wire layer under seeded
//! [`TransportFaultPlan`]s.
//!
//! [`crate::cluster_chaos`] judges node supervision when *nodes*
//! misbehave; this module judges the layer the collector daemon
//! actually lives on — per-node links that drop, corrupt, truncate,
//! delay, reorder, disconnect, partition, and die while agents stream
//! frames. Per seeded plan it asserts five properties:
//!
//! 1. **No panics** — no frame the chaos can manufacture (truncation,
//!    bit flips, mid-frame disconnects) panics the collector.
//! 2. **A report every round** — the allocation summary keeps
//!    rendering off whatever frames arrived.
//! 3. **Honest degradation** — `DEGRADED (k/n nodes)` appears exactly
//!    when the wire-side quorum shrank.
//! 4. **Exact survivors** — every never-killed node's aggregate is
//!    delivered over the lossy wire bit-identical to both its locally
//!    computed value and the fault-free run's (corruption is rejected
//!    by checksum and repaired by retransmission, never absorbed).
//! 5. **Honest death** — permanently killed links end in `Dead` and
//!    deliver no aggregate.
//!
//! The same judging runs over the in-process backend (seeded,
//! deterministic, used by the soak) and — when the sandbox allows
//! sockets — over real loopback TCP via [`tcp_loopback_smoke`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use zerosum_core::{NodeAggregate, NodeState};
use zerosum_experiments::transport_chaos::{
    run_transport_chaos_with_plan, TransportChaosOutcome, TICKS_PER_ROUND,
};
use zerosum_net::{Acceptor, Collector, NodeAgent, TcpLink, TransportFaultPlan};

/// The verdict on one seeded transport fault plan.
#[derive(Debug)]
pub struct TransportChaosReport {
    /// Schedule name (`wire-f00` …).
    pub name: String,
    /// The plan seed this schedule ran with.
    pub seed: u64,
    /// Nodes in the allocation.
    pub nodes: usize,
    /// Monitoring rounds driven.
    pub rounds: u32,
    /// The collector panicked under the plan.
    pub panicked: bool,
    /// Links the plan faulted in any way.
    pub faulted_links: usize,
    /// Links the plan permanently killed.
    pub killed_links: usize,
    /// Rounds whose wire-side quorum was below the full node count.
    pub degraded_rounds: usize,
    /// Frames the chaos dropped, corrupted, or truncated in flight.
    pub frames_harmed: u64,
    /// Frames the collector rejected with a typed decode error.
    pub decode_errors: u64,
    /// Per-LWP detail frames agents shed to backpressure.
    pub details_shed: u64,
    /// Successful agent reconnects after torn links.
    pub reconnects: u64,
    /// Everything that failed; empty means the schedule passed.
    pub problems: Vec<String>,
}

impl TransportChaosReport {
    /// True when every wire property held.
    pub fn passed(&self) -> bool {
        self.problems.is_empty()
    }

    /// One-line summary plus one line per problem.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let status = if self.passed() { "ok" } else { "FAIL" };
        writeln!(
            out,
            "{:<10} seed={:<6} {} link(s)  {} faulted  {} killed  \
             {} harmed  {} rejected  {} shed  {} reconnect(s)  \
             {:>3}/{} degraded round(s)  [{status}]",
            self.name,
            self.seed,
            self.nodes,
            self.faulted_links,
            self.killed_links,
            self.frames_harmed,
            self.decode_errors,
            self.details_shed,
            self.reconnects,
            self.degraded_rounds,
            self.rounds,
        )
        .unwrap();
        for p in &self.problems {
            writeln!(out, "  problem: {p}").unwrap();
        }
        out
    }
}

/// Runs one seeded transport fault plan and judges the wire layer
/// against the five properties above.
pub fn judge_transport_run(
    name: &str,
    seed: u64,
    node_count: usize,
    rounds: u32,
) -> TransportChaosReport {
    let plan = TransportFaultPlan::generate(seed, node_count, rounds, TICKS_PER_ROUND);
    let mut report = TransportChaosReport {
        name: name.to_string(),
        seed,
        nodes: node_count,
        rounds,
        panicked: false,
        faulted_links: plan.links.iter().filter(|l| l.is_faulty()).count(),
        killed_links: plan.links.iter().filter(|l| l.kill_at.is_some()).count(),
        degraded_rounds: 0,
        frames_harmed: 0,
        decode_errors: 0,
        details_shed: 0,
        reconnects: 0,
        problems: Vec::new(),
    };
    let outcome = match catch_unwind(AssertUnwindSafe(|| {
        run_transport_chaos_with_plan(node_count, rounds, seed, &plan)
    })) {
        Ok(o) => o,
        Err(_) => {
            report.panicked = true;
            report
                .problems
                .push("collector panicked under the transport fault plan".to_string());
            return report;
        }
    };
    report.frames_harmed = outcome
        .fault_stats
        .iter()
        .map(|s| s.dropped + s.corrupted + s.truncated)
        .sum();
    report.decode_errors = outcome.collector.stats.decode_errors;
    report.details_shed = outcome.agent_stats.iter().map(|s| s.details_shed).sum();
    report.reconnects = outcome.agent_stats.iter().map(|s| s.reconnects).sum();
    // Property 2: a report after every round.
    if outcome.round_summaries.len() != rounds as usize {
        report.problems.push(format!(
            "only {}/{} rounds produced a wire summary",
            outcome.round_summaries.len(),
            rounds
        ));
    }
    // Property 3: DEGRADED present with the right counts exactly when
    // the wire-side quorum shrank.
    for (r, (summary, &(k, n))) in outcome
        .round_summaries
        .iter()
        .zip(&outcome.round_quorums)
        .enumerate()
    {
        if n != node_count {
            report
                .problems
                .push(format!("round {r}: quorum total {n} != {node_count} nodes"));
        }
        if k < n {
            report.degraded_rounds += 1;
            let marker = format!("DEGRADED ({k}/{n} nodes)");
            if !summary.contains(&marker) {
                report.problems.push(format!(
                    "round {r}: quorum {k}/{n} but summary lacks {marker:?}"
                ));
            }
        } else if summary.contains("DEGRADED") {
            report.problems.push(format!(
                "round {r}: full quorum but summary claims degradation"
            ));
        }
    }
    // Property 5: permanently killed links end Dead and deliver nothing.
    let wire = outcome.collector.wire_aggregates();
    for (i, link) in plan.links.iter().enumerate() {
        if link.kill_at.is_none() {
            continue;
        }
        let host = TransportChaosOutcome::hostname(i);
        if outcome.collector.cluster().node_state(&host) != NodeState::Dead {
            report
                .problems
                .push(format!("killed link {host} not marked DEAD at run end"));
        }
        if wire.iter().any(|a| a.hostname == host) {
            report.problems.push(format!(
                "killed link {host} delivered an aggregate over a dead wire"
            ));
        }
    }
    // Property 4: the differential. Survivors' wire-delivered aggregates
    // match their local ground truth and the fault-free run, bit for bit.
    let clean = run_transport_chaos_with_plan(
        node_count,
        rounds,
        seed,
        &TransportFaultPlan::clean(node_count),
    );
    let clean_wire = clean.collector.wire_aggregates();
    for i in plan.survivors() {
        let host = TransportChaosOutcome::hostname(i);
        let delivered = wire.iter().find(|a| a.hostname == host);
        let local = outcome.local_aggregates.iter().find(|a| a.hostname == host);
        let baseline = clean_wire.iter().find(|a| a.hostname == host);
        match (delivered, local, baseline) {
            (Some(d), Some(l), Some(b)) if d == l && d == b => {}
            (Some(d), Some(l), _) if d != l => report.problems.push(format!(
                "survivor {host}: wire-delivered aggregate differs from local ground truth"
            )),
            (Some(_), _, Some(_)) => report.problems.push(format!(
                "survivor {host}: aggregate diverged from the fault-free run"
            )),
            _ => report.problems.push(format!(
                "survivor {host}: aggregate never delivered over the lossy wire"
            )),
        }
    }
    report
}

/// Runs the lossy-transport soak: `schedules` seeded transport fault
/// plans, each judged by [`judge_transport_run`]. Schedules fan out on
/// the experiment engine; reports come back in submission order.
pub fn run_transport_suite(
    node_count: usize,
    rounds: u32,
    schedules: usize,
    base_seed: u64,
) -> Vec<TransportChaosReport> {
    zerosum_experiments::parallel::run_jobs(
        (0..schedules)
            .map(|i| {
                move || {
                    let seed = base_seed
                        .wrapping_add(7919u64.wrapping_mul(i as u64))
                        .wrapping_add(1);
                    judge_transport_run(&format!("wire-f{i:02}"), seed, node_count, rounds)
                }
            })
            .collect(),
        0,
    )
}

/// Drives `node_count` agents through real loopback TCP sockets into a
/// collector, each shipping a synthetic aggregate, and checks the same
/// honesty properties: every aggregate delivered bit-identically and a
/// full wire-side quorum. Returns `None` when the sandbox forbids
/// sockets (bind fails) — callers print a visible SKIPPED marker —
/// otherwise `Some(problems)`, empty on pass.
pub fn tcp_loopback_smoke(node_count: usize, rounds: u32) -> Option<Vec<String>> {
    let acceptor = Acceptor::bind("127.0.0.1:0").ok()?;
    let addr = acceptor.local_addr().ok()?;
    let mut problems = Vec::new();
    let mut collector = Collector::new();
    let mut agents = Vec::new();
    let mut expected = Vec::new();
    for i in 0..node_count {
        let host = format!("tcp{i:04}");
        collector.expect_node(&host);
        let Ok(link) = TcpLink::dial(&addr.to_string(), zerosum_net::DEFAULT_WINDOW) else {
            problems.push(format!("dial {addr} failed for {host}"));
            return Some(problems);
        };
        agents.push(NodeAgent::new(link, host.clone()));
        expected.push(NodeAggregate {
            hostname: host,
            ranks: 1,
            lwps: 2 + i,
            mean_user_pct: 80.0 + i as f64 * 0.5,
            mean_idle_pct: 20.0 - i as f64 * 0.5,
            total_nvcsw: 17 * (i as u64 + 1),
            rss_kib: 100_000 + i as u64,
        });
    }
    // Accept all the dials (non-blocking: poll until every peer lands).
    let mut accepted = 0;
    for _ in 0..10_000 {
        match acceptor.poll_accept(zerosum_net::DEFAULT_WINDOW) {
            Ok(Some(link)) => {
                collector.add_link(Box::new(link));
                accepted += 1;
                if accepted == node_count {
                    break;
                }
            }
            Ok(None) => std::thread::yield_now(),
            Err(e) => {
                problems.push(format!("accept failed: {e}"));
                return Some(problems);
            }
        }
    }
    if accepted != node_count {
        problems.push(format!("only {accepted}/{node_count} peers accepted"));
        return Some(problems);
    }
    let period_s = collector.cfg.period_s;
    for r in 0..rounds {
        let round = u64::from(r) + 1;
        for agent in &mut agents {
            agent.begin_round(round, round as f64 * period_s);
            agent.send_detail(round, 100, 50.0);
        }
        // Loopback is fast but asynchronous: tick and pump until every
        // node's heartbeat for this round has landed.
        for _ in 0..10_000 {
            for agent in &mut agents {
                agent.tick();
            }
            collector.pump_frames();
            if collector.stats.heartbeats_rx >= round * node_count as u64 {
                break;
            }
            std::thread::yield_now();
        }
        collector.run_round();
    }
    for (agent, agg) in agents.iter_mut().zip(&expected) {
        agent.finish(u64::from(rounds), agg.clone());
    }
    for _ in 0..10_000 {
        for agent in &mut agents {
            agent.tick();
        }
        collector.pump_frames();
        if agents.iter().all(|a| a.done()) {
            break;
        }
        std::thread::yield_now();
    }
    let (k, n) = collector.quorum();
    if k != node_count || n != node_count {
        problems.push(format!("quorum {k}/{n} over healthy loopback TCP"));
    }
    let wire = collector.wire_aggregates();
    if wire != expected {
        problems.push(format!(
            "TCP-delivered aggregates differ: {} delivered vs {} sent",
            wire.len(),
            expected.len()
        ));
    }
    if collector.stats.decode_errors != 0 {
        problems.push(format!(
            "{} decode errors over a clean TCP loopback",
            collector.stats.decode_errors
        ));
    }
    let summary = collector.render_summary();
    if summary.contains("DEGRADED") {
        problems.push("healthy TCP run rendered a DEGRADED marker".to_string());
    }
    for agent in &agents {
        if agent.is_down() {
            problems.push("an agent ended the clean TCP run in backoff".to_string());
        }
    }
    Some(problems)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance soak: 20 seeded transport fault plans over
    /// the deterministic in-process backend — zero panics, honest
    /// DEGRADED/DEAD markers, and survivor aggregates delivered over
    /// lossy links bit-identical to the fault-free run.
    #[test]
    fn transport_soak_twenty_plans_all_pass() {
        let reports = run_transport_suite(4, 16, 20, 0x51DE);
        assert_eq!(reports.len(), 20);
        let failed: Vec<&TransportChaosReport> = reports.iter().filter(|r| !r.passed()).collect();
        assert!(
            failed.is_empty(),
            "failed plans:\n{}",
            failed.iter().map(|r| r.render()).collect::<String>()
        );
        // The soak must exercise the machinery, not tiptoe around it:
        // every plan is chaotic, frames are harmed and rejected, details
        // shed to backpressure, links die, and agents reconnect.
        assert!(reports.iter().all(|r| r.faulted_links > 0));
        let harmed: u64 = reports.iter().map(|r| r.frames_harmed).sum();
        assert!(harmed > 0, "no plan ever harmed a frame");
        let rejected: u64 = reports.iter().map(|r| r.decode_errors).sum();
        assert!(rejected > 0, "no corrupt frame ever reached the decoder");
        let shed: u64 = reports.iter().map(|r| r.details_shed).sum();
        assert!(shed > 0, "backpressure never shed a detail frame");
        let reconnects: u64 = reports.iter().map(|r| r.reconnects).sum();
        assert!(reconnects > 0, "no agent ever had to reconnect");
        assert!(
            reports.iter().any(|r| r.killed_links > 0),
            "no plan permanently killed a link"
        );
        let degraded: usize = reports.iter().map(|r| r.degraded_rounds).sum();
        assert!(degraded > 0, "no plan ever degraded the wire quorum");
    }

    #[test]
    fn tcp_smoke_passes_or_skips_cleanly() {
        match tcp_loopback_smoke(3, 5) {
            None => eprintln!("tcp_smoke: SKIPPED (sandbox forbids sockets)"),
            Some(problems) => assert!(problems.is_empty(), "{problems:?}"),
        }
    }
}
