//! Vector-clock happens-before race detection over scheduler traces.
//!
//! The scheduler substrate is single-threaded, but it *models* a
//! concurrent system: per-CPU runqueues mutated by dispatch, preemption,
//! wakeups, and balancing. This module checks that the trace obeys the
//! locking discipline a real SMP scheduler must follow — every task's
//! scheduling state is only ever touched by a context that is ordered
//! after the previous writer.
//!
//! Contexts are the hardware threads plus one synthetic *kernel*
//! context for engine-driven work (timer wakes, enqueue/steal queue
//! manipulation). Each context carries a vector clock. Each task carries
//! a *release clock* (`task_sync`), updated only when the task leaves a
//! CPU (preempt, block, deschedule, exit) or when a context finishes a
//! queue-side access (spawn, wake, enqueue, steal). A CPU dispatching a
//! task joins that release clock — acquire semantics — **before** the
//! race check, so the only way a dispatch is ordered after the previous
//! writer is through the task's own release chain.
//!
//! This is what catches a double-dispatch: if a task is placed on two
//! CPUs without an intervening off-CPU release, the second CPU's clock
//! cannot contain the first CPU's write epoch, and the access is
//! flagged as concurrent — exactly the FastTrack write-write race
//! condition, applied to scheduler metadata instead of program memory.

use std::collections::HashMap;
use zerosum_proc::Tid;
use zerosum_sched::{TraceEvent, TraceRecord};

/// The synthetic engine context (timer wakes, queue balancing).
pub const KERNEL_CTX: u32 = u32::MAX;

/// A sparse vector clock over context ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VectorClock {
    entries: HashMap<u32, u64>,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// This clock's component for `ctx`.
    pub fn get(&self, ctx: u32) -> u64 {
        self.entries.get(&ctx).copied().unwrap_or(0)
    }

    /// Advances own component; returns the new value.
    pub fn tick(&mut self, ctx: u32) -> u64 {
        let e = self.entries.entry(ctx).or_insert(0);
        *e += 1;
        *e
    }

    /// Component-wise maximum with `other` (acquire).
    pub fn join(&mut self, other: &VectorClock) {
        for (&ctx, &t) in &other.entries {
            let e = self.entries.entry(ctx).or_insert(0);
            if t > *e {
                *e = t;
            }
        }
    }
}

/// A detected concurrent access to one task's scheduling state.
#[derive(Debug, Clone)]
pub struct Race {
    /// Index of the racing record in the trace.
    pub index: usize,
    /// Virtual time of the racing record.
    pub t_us: u64,
    /// The task whose state was accessed concurrently.
    pub tid: Tid,
    /// Context of the earlier, unordered write.
    pub prev_ctx: u32,
    /// Context performing the racing access.
    pub ctx: u32,
    /// Human-readable description with the racing event.
    pub message: String,
}

fn ctx_name(ctx: u32) -> String {
    if ctx == KERNEL_CTX {
        "kernel".to_string()
    } else {
        format!("cpu{ctx}")
    }
}

/// How the detector treats one event.
#[derive(Clone, Copy)]
enum Access {
    /// Kernel context initializes the task and releases it.
    Init,
    /// CPU joins the task's release clock, then writes (dispatch).
    Acquire(u32),
    /// CPU writes while it owns the task (jiffy charge, GPU submit).
    Owned(u32),
    /// CPU writes and releases the task off-CPU.
    Release(u32),
    /// Kernel first joins the CPU's clock (taking its runqueue lock),
    /// then writes and releases (forced deschedule).
    KernelFromCpu(u32),
    /// A queue-side access: join release clock, write, release again.
    /// Performed by `ctx` (kernel, or the waking CPU).
    Queue(u32),
    /// No scheduling-state access (metadata only).
    None,
}

fn classify(ev: &TraceEvent) -> Access {
    match *ev {
        TraceEvent::Spawn { .. } => Access::Init,
        TraceEvent::Dispatch { cpu, .. } => Access::Acquire(cpu),
        TraceEvent::JiffyCharge { cpu, .. } => Access::Owned(cpu),
        TraceEvent::Preempt { cpu, .. }
        | TraceEvent::Block { cpu, .. }
        | TraceEvent::Exit { cpu, .. } => Access::Release(cpu),
        TraceEvent::Deschedule { cpu, .. } => Access::KernelFromCpu(cpu),
        TraceEvent::Wake { waker_cpu, .. } => Access::Queue(waker_cpu.unwrap_or(KERNEL_CTX)),
        TraceEvent::Dequeue { .. }
        | TraceEvent::Enqueue { .. }
        | TraceEvent::Steal { .. }
        | TraceEvent::GpuComplete { .. } => Access::Queue(KERNEL_CTX),
        // GpuEnqueue carries no CPU field; the submitting task is still
        // running and the Block that follows immediately performs the
        // checked release, so the submit itself needs no access.
        TraceEvent::Migrate { .. }
        | TraceEvent::AffinityChange { .. }
        | TraceEvent::GpuEnqueue { .. } => Access::None,
    }
}

/// Replays a trace and reports every happens-before violation on task
/// scheduling state.
pub fn detect_races(trace: &[TraceRecord]) -> Vec<Race> {
    let mut clocks: HashMap<u32, VectorClock> = HashMap::new();
    let mut task_sync: HashMap<Tid, VectorClock> = HashMap::new();
    // Epoch of the last write to each task's state: (ctx, ctx-local time).
    let mut last_write: HashMap<Tid, (u32, u64)> = HashMap::new();
    let mut races = Vec::new();

    for (index, rec) in trace.iter().enumerate() {
        let tid = rec.ev.tid();
        let access = classify(&rec.ev);
        let (ctx, joins_task, joins_cpu, releases) = match access {
            Access::Init => (KERNEL_CTX, false, None, true),
            Access::Acquire(c) => (c, true, None, false),
            Access::Owned(c) => (c, false, None, false),
            Access::Release(c) => (c, false, None, true),
            Access::KernelFromCpu(c) => (KERNEL_CTX, true, Some(c), true),
            Access::Queue(c) => (c, true, None, true),
            Access::None => continue,
        };
        // Acquire phase.
        if let Some(cpu) = joins_cpu {
            let donor = clocks.entry(cpu).or_default().clone();
            clocks.entry(ctx).or_default().join(&donor);
        }
        if joins_task {
            if let Some(sync) = task_sync.get(&tid) {
                let sync = sync.clone();
                clocks.entry(ctx).or_default().join(&sync);
            }
        }
        let clock = clocks.entry(ctx).or_default();
        let now = clock.tick(ctx);
        // Write-write race check: the previous writer must be ordered
        // before this context's current clock.
        if let Some(&(prev_ctx, prev_t)) = last_write.get(&tid) {
            if prev_ctx != ctx && prev_t > clock.get(prev_ctx) {
                races.push(Race {
                    index,
                    t_us: rec.t_us,
                    tid,
                    prev_ctx,
                    ctx,
                    message: format!(
                        "trace[{index}] t={}us: {} access to task {tid} state by {} \
                         is concurrent with an earlier write by {} (event {:?})",
                        rec.t_us,
                        match access {
                            Access::Acquire(_) => "dispatch",
                            Access::Owned(_) => "running",
                            Access::Release(_) => "off-cpu",
                            _ => "queue",
                        },
                        ctx_name(ctx),
                        ctx_name(prev_ctx),
                        rec.ev,
                    ),
                });
            }
        }
        last_write.insert(tid, (ctx, now));
        // Release phase.
        if releases {
            let snapshot = clocks.entry(ctx).or_default().clone();
            task_sync.insert(tid, snapshot);
        }
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_sched::{ChargeKind, TraceEvent as E, TraceRecord as R};
    use zerosum_topology::CpuSet;

    fn spawn(tid: Tid) -> R {
        R {
            t_us: 0,
            ev: E::Spawn {
                tid,
                pid: 1,
                affinity: CpuSet::from_iter([0u32, 1]),
            },
        }
    }

    fn rec(t_us: u64, ev: E) -> R {
        R { t_us, ev }
    }

    #[test]
    fn clock_join_is_componentwise_max() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn clean_dispatch_preempt_dispatch_has_no_race() {
        let trace = vec![
            spawn(7),
            rec(0, E::Enqueue { tid: 7, cpu: 0 }),
            rec(0, E::Dispatch { tid: 7, cpu: 0 }),
            rec(
                0,
                E::JiffyCharge {
                    tid: 7,
                    cpu: 0,
                    kind: ChargeKind::User,
                    us: 50,
                },
            ),
            rec(50, E::Preempt { tid: 7, cpu: 0 }),
            rec(100, E::Dispatch { tid: 7, cpu: 1 }),
        ];
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn double_dispatch_without_release_races() {
        let trace = vec![
            spawn(7),
            rec(0, E::Enqueue { tid: 7, cpu: 0 }),
            rec(0, E::Dispatch { tid: 7, cpu: 0 }),
            // No Preempt/Block release: CPU 1 grabs the same task.
            rec(50, E::Dispatch { tid: 7, cpu: 1 }),
        ];
        let races = detect_races(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].tid, 7);
        assert_eq!(races[0].prev_ctx, 0);
        assert_eq!(races[0].ctx, 1);
        assert_eq!(races[0].index, 3);
    }

    #[test]
    fn concurrent_jiffy_charge_races() {
        let trace = vec![
            spawn(7),
            rec(0, E::Enqueue { tid: 7, cpu: 0 }),
            rec(0, E::Dispatch { tid: 7, cpu: 0 }),
            // A charge from a CPU that never dispatched the task.
            rec(
                0,
                E::JiffyCharge {
                    tid: 7,
                    cpu: 3,
                    kind: ChargeKind::User,
                    us: 50,
                },
            ),
        ];
        let races = detect_races(&trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].ctx, 3);
    }

    #[test]
    fn barrier_wake_orders_releaser_before_waiter() {
        // CPU 0's task wakes task 9; task 9 then runs on CPU 1. The wake
        // edge must order the two accesses.
        let trace = vec![
            spawn(9),
            rec(0, E::Enqueue { tid: 9, cpu: 1 }),
            rec(0, E::Dispatch { tid: 9, cpu: 1 }),
            rec(10, E::Block { tid: 9, cpu: 1 }),
            rec(
                90,
                E::Wake {
                    tid: 9,
                    waker_cpu: Some(0),
                },
            ),
            rec(90, E::Enqueue { tid: 9, cpu: 1 }),
            rec(90, E::Dispatch { tid: 9, cpu: 1 }),
        ];
        assert!(detect_races(&trace).is_empty());
    }
}
