//! Running the paper's experiment scenarios under the trace checker.
//!
//! Each scenario executes a real experiment harness with scheduler
//! tracing enabled, then feeds the trace to the happens-before detector
//! and the invariant engine. Figure 5 has no scheduler component (it is
//! a pure MPI communication study), so it gets communication-matrix
//! consistency checks instead.

use crate::hb::{detect_races, Race};
use crate::invariants::{check_invariants, InvariantKind, Violation};
use zerosum_experiments::figures::{fig5, fig67_traced, fig8_traced_run};
use zerosum_experiments::tables::{run_table_traced, TableConfig};
use zerosum_mpi::CommMatrix;

/// The result of checking one scenario.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Scenario name (`table1` … `fig8-smt2`).
    pub name: String,
    /// Number of trace records checked (0 for fig5).
    pub events: usize,
    /// Happens-before violations.
    pub races: Vec<Race>,
    /// Invariant violations.
    pub violations: Vec<Violation>,
}

impl ScenarioReport {
    /// True when the scenario passed every check.
    pub fn clean(&self) -> bool {
        self.races.is_empty() && self.violations.is_empty()
    }

    /// One-line summary plus one line per finding.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let status = if self.clean() { "ok" } else { "FAIL" };
        writeln!(
            out,
            "{:<12} {:>8} events  {:>3} races  {:>3} violations  [{status}]",
            self.name,
            self.events,
            self.races.len(),
            self.violations.len()
        )
        .unwrap();
        for r in &self.races {
            writeln!(out, "  race: {}", r.message).unwrap();
        }
        for v in &self.violations {
            writeln!(out, "  {:?}: {}", v.kind, v.message).unwrap();
        }
        out
    }
}

/// Checks one already-captured trace/audit pair.
pub fn check_trace(
    name: &str,
    trace: &[zerosum_sched::TraceRecord],
    audit: &zerosum_sched::SimAudit,
) -> ScenarioReport {
    ScenarioReport {
        name: name.to_string(),
        events: trace.len(),
        races: detect_races(trace),
        violations: check_invariants(trace, audit),
    }
}

/// Consistency checks on a Figure 5 communication matrix.
pub fn check_comm_matrix(name: &str, m: &CommMatrix) -> ScenarioReport {
    let mut violations = Vec::new();
    let n = m.size();
    let mut sum = 0u64;
    let mut max = 0u64;
    for src in 0..n {
        for dst in 0..n {
            let b = m.bytes(src, dst);
            sum += b;
            max = max.max(b);
            if b > 0 && m.messages(src, dst) == 0 {
                violations.push(Violation {
                    index: None,
                    t_us: 0,
                    kind: InvariantKind::CounterMismatch,
                    message: format!("pair ({src},{dst}) has {b} bytes but zero messages"),
                });
            }
        }
    }
    if sum != m.total_bytes() {
        violations.push(Violation {
            index: None,
            t_us: 0,
            kind: InvariantKind::Conservation,
            message: format!(
                "per-pair bytes sum to {sum} but total_bytes reports {}",
                m.total_bytes()
            ),
        });
    }
    if max != m.max_bytes() {
        violations.push(Violation {
            index: None,
            t_us: 0,
            kind: InvariantKind::CounterMismatch,
            message: format!(
                "per-pair maximum is {max} but max_bytes reports {}",
                m.max_bytes()
            ),
        });
    }
    let frac = m.diagonal_fraction(2);
    if !(0.0..=1.0).contains(&frac) {
        violations.push(Violation {
            index: None,
            t_us: 0,
            kind: InvariantKind::Conservation,
            message: format!("diagonal fraction {frac} outside [0, 1]"),
        });
    }
    ScenarioReport {
        name: name.to_string(),
        events: 0,
        races: Vec::new(),
        violations,
    }
}

/// Runs every paper scenario under the checker. `scale` divides the
/// workloads exactly as in the experiment tests (CI uses 100–150).
pub fn run_all(scale: u32, seed: u64) -> Vec<ScenarioReport> {
    let mut reports = Vec::new();
    for (name, config) in [
        ("table1", TableConfig::Table1),
        ("table2", TableConfig::Table2),
        ("table3", TableConfig::Table3),
    ] {
        let (_, trace, audit) = run_table_traced(config, scale, seed);
        reports.push(check_trace(name, &trace, &audit));
    }
    {
        let (_, trace, audit) = fig67_traced(scale.max(150), seed);
        reports.push(check_trace("fig67", &trace, &audit));
    }
    for (name, smt2) in [("fig8-smt1", false), ("fig8-smt2", true)] {
        let (_, trace, audit) = fig8_traced_run(smt2, scale, seed);
        reports.push(check_trace(name, &trace, &audit));
    }
    {
        let run = fig5(&zerosum_apps::PicConfig::small());
        reports.push(check_comm_matrix("fig5", &run.matrix));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matrix_is_consistent() {
        let run = fig5(&zerosum_apps::PicConfig::small());
        let rep = check_comm_matrix("fig5", &run.matrix);
        assert!(rep.clean(), "{}", rep.render());
    }
}
