//! Dynamic and static analysis for the ZeroSum reproduction.
//!
//! Two halves:
//!
//! * **Dynamic trace checking** ([`hb`], [`invariants`], [`scenarios`])
//!   — runs the paper's experiment harnesses with scheduler tracing on,
//!   then proves the resulting event log self-consistent: a vector-clock
//!   happens-before race detector over scheduler metadata, and an
//!   invariant engine reconciling the replayed trace against the
//!   simulator's final counters (jiffy conservation, single residency,
//!   affinity, context-switch totals, GPU causality).
//! * **Source linting** ([`lint`]) — repo-specific rules run by the
//!   `zslint` binary: no panics in monitor hot paths, no wall-clock in
//!   the scheduler substrate, no prints in library crates, no bare
//!   `?`-propagation of `/proc` read errors out of the sampling loop.
//! * **Chaos checking** ([`chaos`]) — Tables 1–3 under seeded procfs
//!   fault schedules: zero panics, exact ledger/fault-log
//!   reconciliation, bounded distortion, and an abnormal-exit drill for
//!   the crash-safe export path.
//! * **Allocation-scale chaos** ([`cluster_chaos`]) — node supervision
//!   under seeded node-fault plans (kills, stragglers, delayed rejoins,
//!   clock skew): an allocation report every round with honest
//!   `DEGRADED (k/n nodes)` markers, survivor aggregates exactly
//!   matching the fault-free run, plus the bounded-memory drill proving
//!   series storage stays constant over million-round runs.
//! * **Lossy-transport chaos** ([`transport_chaos`]) — the same
//!   allocation judged through the wire: seeded transport fault plans
//!   (frame drops, bit flips, truncation, delay, reorder, disconnects,
//!   partitions, permanent kills) over the deterministic in-process
//!   backend, with survivor aggregates delivered bit-identical to the
//!   fault-free run, plus a loopback-TCP smoke when sockets are
//!   allowed.
//!
//! Entry points: `zerosum analyze` / `zerosum chaos` (CLI) and
//! `cargo run -p zerosum-analyze --bin zslint`.

pub mod audit;
pub mod bench;
pub mod chaos;
pub mod cluster_chaos;
pub mod hb;
pub mod invariants;
pub mod lint;
pub mod scenarios;
pub mod transport_chaos;

pub use audit::{audit_sources, audit_workspace, baseline_from_json, AuditReport};
pub use bench::{check as bench_check, compare as bench_compare, run_bench, BenchReport, Metric};
pub use chaos::{abnormal_exit_drill, realistic_plan, run_suite, ChaosReport};
pub use cluster_chaos::{
    bounded_memory_drill, judge_cluster_run, run_cluster_suite, ClusterChaosReport,
};
pub use hb::{detect_races, Race, VectorClock, KERNEL_CTX};
pub use invariants::{check_invariants, InvariantKind, Violation};
pub use lint::{find_workspace_root, lint_repo, lint_source, LintViolation, Rule};
pub use scenarios::{check_comm_matrix, check_trace, run_all, ScenarioReport};
pub use transport_chaos::{
    judge_transport_run, run_transport_suite, tcp_loopback_smoke, TransportChaosReport,
};
