//! The scheduler invariant engine: replays an event trace and checks
//! both the legality of every transition and the reconciliation of the
//! replayed totals against the simulator's own final counters.
//!
//! Checked invariants:
//!
//! 1. **Time is monotonic** — record timestamps never decrease.
//! 2. **State machine legality** — dispatch only from the runqueue,
//!    preempt/block/exit only while running, wake only while blocked,
//!    enqueue only for tasks not already queued.
//! 3. **Single residency** — a task occupies at most one CPU, and a CPU
//!    runs at most one task; at most one jiffy charge per task per tick
//!    and per CPU per tick.
//! 4. **Affinity** — every dispatch, steal, and migration lands on a CPU
//!    inside the task's affinity mask as of that moment.
//! 5. **Charge attribution** — jiffy charges come only from the CPU the
//!    task currently occupies.
//! 6. **GPU causality** — every kernel completion matches an earlier
//!    enqueue on the same device and never fires before the enqueue's
//!    declared completion time.
//! 7. **Conservation** — per CPU, `user + system + idle == now`; the
//!    replayed per-CPU user/system sums equal the simulator's accounts.
//! 8. **Counter reconciliation** — per task, replayed utime/stime,
//!    voluntary and involuntary switch counts, migrations, and dispatch
//!    counts equal the final `TaskCounters`; the global context-switch
//!    total equals preempts + blocks.

use std::collections::HashMap;
use zerosum_proc::Tid;
use zerosum_sched::{ChargeKind, SimAudit, TraceEvent, TraceRecord};
use zerosum_topology::CpuSet;

/// One invariant violation, anchored to the event that exposed it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the offending record, if the violation is event-level
    /// (`None` for final-reconciliation mismatches).
    pub index: Option<usize>,
    /// Virtual time of the offending record (or the audit snapshot).
    pub t_us: u64,
    /// Which invariant was broken.
    pub kind: InvariantKind,
    /// Full diagnostic.
    pub message: String,
}

/// The invariant families the engine enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Record timestamps decreased.
    TimeMonotonic,
    /// An illegal task state transition.
    StateMachine,
    /// A task on two CPUs, a CPU with two tasks, or a double charge.
    SingleResidency,
    /// A placement outside the task's affinity mask.
    Affinity,
    /// A charge from a CPU the task does not occupy.
    ChargeAttribution,
    /// A GPU completion without a matching enqueue, or too early.
    GpuCausality,
    /// Per-CPU time accounts do not add up.
    Conservation,
    /// Replayed totals disagree with the simulator's counters.
    CounterMismatch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Spawned, woken, or descheduled — off CPU and not yet queued.
    NotQueued,
    Runnable,
    Running,
    Blocked,
    Exited,
}

#[derive(Default)]
struct TaskReplay {
    affinity: Option<CpuSet>,
    state: Option<St>,
    on_cpu: Option<u32>,
    last_cpu: Option<u32>,
    utime_us: u64,
    stime_us: u64,
    preempts: u64,
    blocks: u64,
    migrations: u64,
    dispatches: u64,
    last_charge_t: Option<u64>,
}

/// Replays `trace` and reconciles it against `audit`, returning every
/// violation found (empty = all invariants hold).
pub fn check_invariants(trace: &[TraceRecord], audit: &SimAudit) -> Vec<Violation> {
    let mut v: Vec<Violation> = Vec::new();
    let mut tasks: HashMap<Tid, TaskReplay> = HashMap::new();
    // cpu -> (occupying tid, time of last charge on this cpu)
    let mut cpu_current: HashMap<u32, Tid> = HashMap::new();
    let mut cpu_last_charge: HashMap<u32, u64> = HashMap::new();
    let mut cpu_user: HashMap<u32, u64> = HashMap::new();
    let mut cpu_system: HashMap<u32, u64> = HashMap::new();
    let mut gpu_pending: HashMap<(Tid, u32), u64> = HashMap::new();
    let mut last_t = 0u64;
    let mut ctxt = 0u64;

    let fail = |index: usize, t_us: u64, kind: InvariantKind, message: String| {
        // One diagnostic per (kind, event) is enough; the engine keeps
        // replaying to surface independent problems.
        Violation {
            index: Some(index),
            t_us,
            kind,
            message: format!("trace[{index}] t={t_us}us: {message}"),
        }
    };

    for (i, rec) in trace.iter().enumerate() {
        let t = rec.t_us;
        if t < last_t {
            v.push(fail(
                i,
                t,
                InvariantKind::TimeMonotonic,
                format!("timestamp went backwards ({last_t} -> {t})"),
            ));
        }
        last_t = last_t.max(t);
        match rec.ev {
            TraceEvent::Spawn {
                tid,
                pid: _,
                ref affinity,
            } => {
                let task = tasks.entry(tid).or_default();
                if task.state.is_some() {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!("task {tid} spawned twice"),
                    ));
                }
                task.affinity = Some(affinity.clone());
                task.state = Some(St::NotQueued);
            }
            TraceEvent::AffinityChange { tid, ref affinity } => {
                tasks.entry(tid).or_default().affinity = Some(affinity.clone());
            }
            TraceEvent::Dequeue { tid, cpu: _ } => {
                let task = tasks.entry(tid).or_default();
                if task.state != Some(St::Runnable) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!("task {tid} dequeued from state {:?}", task.state),
                    ));
                }
                task.state = Some(St::NotQueued);
            }
            TraceEvent::Enqueue { tid, cpu } => {
                let task = tasks.entry(tid).or_default();
                match task.state {
                    Some(St::NotQueued) => {}
                    other => v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!("task {tid} enqueued from state {other:?}"),
                    )),
                }
                if let Some(aff) = &task.affinity {
                    if !aff.contains(cpu) {
                        v.push(fail(
                            i,
                            t,
                            InvariantKind::Affinity,
                            format!(
                                "task {tid} enqueued on cpu{cpu} outside affinity {}",
                                aff.to_list_string()
                            ),
                        ));
                    }
                }
                task.state = Some(St::Runnable);
            }
            TraceEvent::Steal { tid, from: _, to } => {
                let task = tasks.entry(tid).or_default();
                if task.state != Some(St::Runnable) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!("stolen task {tid} was not runnable ({:?})", task.state),
                    ));
                }
                if let Some(aff) = &task.affinity {
                    if !aff.contains(to) {
                        v.push(fail(
                            i,
                            t,
                            InvariantKind::Affinity,
                            format!(
                                "task {tid} stolen to cpu{to} outside affinity {}",
                                aff.to_list_string()
                            ),
                        ));
                    }
                }
            }
            TraceEvent::Migrate { tid, from, to } => {
                let task = tasks.entry(tid).or_default();
                if task.last_cpu.is_some() && task.last_cpu != Some(from) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!(
                            "task {tid} migration claims from cpu{from} but last ran on {:?}",
                            task.last_cpu
                        ),
                    ));
                }
                if let Some(aff) = &task.affinity {
                    if !aff.contains(to) {
                        v.push(fail(
                            i,
                            t,
                            InvariantKind::Affinity,
                            format!(
                                "task {tid} migrated to cpu{to} outside affinity {}",
                                aff.to_list_string()
                            ),
                        ));
                    }
                }
                task.migrations += 1;
            }
            TraceEvent::Dispatch { tid, cpu } => {
                if let Some(&other) = cpu_current.get(&cpu) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::SingleResidency,
                        format!("cpu{cpu} dispatched task {tid} while running task {other}"),
                    ));
                }
                let task = tasks.entry(tid).or_default();
                if task.state != Some(St::Runnable) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!("task {tid} dispatched from state {:?}", task.state),
                    ));
                }
                if let Some(prev) = task.on_cpu {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::SingleResidency,
                        format!("task {tid} dispatched on cpu{cpu} while still on cpu{prev}"),
                    ));
                }
                if let Some(aff) = &task.affinity {
                    if !aff.contains(cpu) {
                        v.push(fail(
                            i,
                            t,
                            InvariantKind::Affinity,
                            format!(
                                "task {tid} dispatched on cpu{cpu} outside affinity {}",
                                aff.to_list_string()
                            ),
                        ));
                    }
                }
                task.state = Some(St::Running);
                task.on_cpu = Some(cpu);
                task.last_cpu = Some(cpu);
                task.dispatches += 1;
                cpu_current.insert(cpu, tid);
            }
            TraceEvent::JiffyCharge { tid, cpu, kind, us } => {
                let occupant = cpu_current.get(&cpu).copied();
                if occupant != Some(tid) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::ChargeAttribution,
                        format!(
                            "task {tid} charged {us}us on cpu{cpu}, but that cpu runs {occupant:?}"
                        ),
                    ));
                }
                let task = tasks.entry(tid).or_default();
                if task.last_charge_t == Some(t) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::SingleResidency,
                        format!("task {tid} charged twice in the tick at {t}us"),
                    ));
                }
                task.last_charge_t = Some(t);
                if cpu_last_charge.get(&cpu) == Some(&t) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::SingleResidency,
                        format!("cpu{cpu} issued two charges in the tick at {t}us"),
                    ));
                }
                cpu_last_charge.insert(cpu, t);
                match kind {
                    ChargeKind::User => {
                        task.utime_us += us;
                        *cpu_user.entry(cpu).or_insert(0) += us;
                    }
                    ChargeKind::System => {
                        task.stime_us += us;
                        *cpu_system.entry(cpu).or_insert(0) += us;
                    }
                }
            }
            TraceEvent::Preempt { tid, cpu }
            | TraceEvent::Block { tid, cpu }
            | TraceEvent::Deschedule { tid, cpu }
            | TraceEvent::Exit { tid, cpu } => {
                let task = tasks.entry(tid).or_default();
                if task.state != Some(St::Running) || task.on_cpu != Some(cpu) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!(
                            "task {tid} left cpu{cpu} ({:?}) but was {:?} on {:?}",
                            rec.ev, task.state, task.on_cpu
                        ),
                    ));
                }
                task.on_cpu = None;
                match rec.ev {
                    TraceEvent::Preempt { .. } => {
                        task.preempts += 1;
                        ctxt += 1;
                        task.state = Some(St::Runnable);
                    }
                    TraceEvent::Block { .. } => {
                        task.blocks += 1;
                        ctxt += 1;
                        task.state = Some(St::Blocked);
                    }
                    TraceEvent::Deschedule { .. } => task.state = Some(St::NotQueued),
                    _ => task.state = Some(St::Exited),
                }
                if cpu_current.get(&cpu) == Some(&tid) {
                    cpu_current.remove(&cpu);
                }
            }
            TraceEvent::Wake { tid, waker_cpu: _ } => {
                let task = tasks.entry(tid).or_default();
                if task.state != Some(St::Blocked) {
                    v.push(fail(
                        i,
                        t,
                        InvariantKind::StateMachine,
                        format!("task {tid} woken from state {:?}", task.state),
                    ));
                }
                task.state = Some(St::NotQueued);
            }
            TraceEvent::GpuEnqueue {
                tid,
                device,
                kernel_us: _,
                complete_at_us,
            } => {
                gpu_pending.insert((tid, device), complete_at_us);
            }
            TraceEvent::GpuComplete { tid, device } => match gpu_pending.remove(&(tid, device)) {
                None => v.push(fail(
                    i,
                    t,
                    InvariantKind::GpuCausality,
                    format!("completion for task {tid} dev{device} without an enqueue"),
                )),
                Some(done) if t < done => v.push(fail(
                    i,
                    t,
                    InvariantKind::GpuCausality,
                    format!(
                        "completion for task {tid} dev{device} at {t}us, before its \
                         declared completion time {done}us"
                    ),
                )),
                Some(_) => {}
            },
        }
    }

    // ----- reconciliation against the audit -------------------------------

    let snap = |msg: String, kind: InvariantKind| Violation {
        index: None,
        t_us: audit.now_us,
        kind,
        message: msg,
    };

    for &(cpu, user, system, idle) in &audit.cpus {
        let total = user + system + idle;
        if total != audit.now_us {
            v.push(snap(
                format!(
                    "cpu{cpu}: user {user} + system {system} + idle {idle} = {total}us, \
                     but the clock reads {}us",
                    audit.now_us
                ),
                InvariantKind::Conservation,
            ));
        }
        let ru = cpu_user.get(&cpu).copied().unwrap_or(0);
        let rs = cpu_system.get(&cpu).copied().unwrap_or(0);
        if ru != user || rs != system {
            v.push(snap(
                format!(
                    "cpu{cpu}: trace charges sum to user {ru}us / system {rs}us, \
                     but the simulator accounts user {user}us / system {system}us"
                ),
                InvariantKind::Conservation,
            ));
        }
    }

    if ctxt != audit.ctxt_total {
        v.push(snap(
            format!(
                "global context switches: trace shows {ctxt} (preempts + blocks), \
                 simulator counted {}",
                audit.ctxt_total
            ),
            InvariantKind::CounterMismatch,
        ));
    }

    for ta in &audit.tasks {
        let Some(rep) = tasks.get(&ta.tid) else {
            v.push(snap(
                format!(
                    "task {} appears in the audit but never in the trace",
                    ta.tid
                ),
                InvariantKind::CounterMismatch,
            ));
            continue;
        };
        let c = &ta.counters;
        let pairs: [(&str, u64, u64); 6] = [
            ("utime_us", rep.utime_us, c.utime_us),
            ("stime_us", rep.stime_us, c.stime_us),
            ("nvcsw", rep.preempts, c.nvcsw),
            ("vcsw", rep.blocks, c.vcsw),
            ("migrations", rep.migrations, c.migrations),
            ("dispatches", rep.dispatches, c.dispatches),
        ];
        for (name, replayed, counted) in pairs {
            if replayed != counted {
                v.push(snap(
                    format!(
                        "task {} ({}): replayed {name} = {replayed}, counter says {counted}",
                        ta.tid, ta.name
                    ),
                    InvariantKind::CounterMismatch,
                ));
            }
        }
        let replay_exited = rep.state == Some(St::Exited);
        if replay_exited != ta.exited {
            v.push(snap(
                format!(
                    "task {} ({}): trace ends with exited={replay_exited}, audit says {}",
                    ta.tid, ta.name, ta.exited
                ),
                InvariantKind::CounterMismatch,
            ));
        }
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_sched::{TaskAudit, TaskCounters, TraceEvent as E, TraceRecord as R};

    fn rec(t_us: u64, ev: E) -> R {
        R { t_us, ev }
    }

    fn tiny_trace() -> Vec<R> {
        vec![
            rec(
                0,
                E::Spawn {
                    tid: 5,
                    pid: 1,
                    affinity: CpuSet::from_iter([0u32, 1]),
                },
            ),
            rec(0, E::Enqueue { tid: 5, cpu: 0 }),
            rec(0, E::Dispatch { tid: 5, cpu: 0 }),
            rec(
                0,
                E::JiffyCharge {
                    tid: 5,
                    cpu: 0,
                    kind: ChargeKind::User,
                    us: 50,
                },
            ),
            rec(50, E::Exit { tid: 5, cpu: 0 }),
        ]
    }

    fn tiny_audit() -> SimAudit {
        SimAudit {
            now_us: 100,
            tick_us: 50,
            ctxt_total: 0,
            cpus: vec![(0, 50, 0, 50), (1, 0, 0, 100)],
            tasks: vec![TaskAudit {
                tid: 5,
                pid: 1,
                name: "t".into(),
                affinity: CpuSet::from_iter([0u32, 1]),
                counters: TaskCounters {
                    utime_us: 50,
                    dispatches: 1,
                    ..Default::default()
                },
                exited: true,
                service: false,
            }],
        }
    }

    #[test]
    fn clean_trace_has_no_violations() {
        let v = check_invariants(&tiny_trace(), &tiny_audit());
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn dropped_charge_is_flagged_on_both_sides() {
        let mut trace = tiny_trace();
        trace.remove(3); // lose the JiffyCharge
        let v = check_invariants(&trace, &tiny_audit());
        assert!(v.iter().any(|x| x.kind == InvariantKind::Conservation));
        assert!(v
            .iter()
            .any(|x| x.kind == InvariantKind::CounterMismatch && x.message.contains("utime_us")));
    }

    #[test]
    fn off_affinity_dispatch_is_flagged() {
        let mut trace = tiny_trace();
        trace.insert(
            1,
            rec(
                0,
                E::AffinityChange {
                    tid: 5,
                    affinity: CpuSet::single(1),
                },
            ),
        );
        let v = check_invariants(&trace, &tiny_audit());
        assert!(v.iter().any(|x| x.kind == InvariantKind::Affinity));
    }

    #[test]
    fn premature_gpu_completion_is_flagged() {
        let trace = vec![
            rec(
                0,
                E::Spawn {
                    tid: 5,
                    pid: 1,
                    affinity: CpuSet::single(0),
                },
            ),
            rec(0, E::Enqueue { tid: 5, cpu: 0 }),
            rec(0, E::Dispatch { tid: 5, cpu: 0 }),
            rec(
                0,
                E::GpuEnqueue {
                    tid: 5,
                    device: 0,
                    kernel_us: 500,
                    complete_at_us: 500,
                },
            ),
            rec(0, E::Block { tid: 5, cpu: 0 }),
            rec(100, E::GpuComplete { tid: 5, device: 0 }),
        ];
        let audit = SimAudit {
            now_us: 100,
            tick_us: 50,
            ctxt_total: 1,
            cpus: vec![(0, 0, 0, 100)],
            tasks: vec![],
        };
        let v = check_invariants(&trace, &audit);
        assert!(v.iter().any(|x| x.kind == InvariantKind::GpuCausality));
    }
}
