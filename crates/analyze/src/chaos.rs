//! The chaos harness: Tables 1–3 under seeded procfs fault schedules.
//!
//! ZeroSum's §3.1.1 observation surface is hostile — tasks vanish
//! mid-read, `/proc` files go momentarily unreadable, reads stall. This
//! module drives the full table experiments through
//! [`run_table_chaos`], with every `/proc` read routed through a seeded
//! [`FaultInjector`](zerosum_proc::FaultInjector), and asserts three
//! properties per schedule:
//!
//! 1. **No panics** — the application completes and the sampling-loop
//!    supervisor never had to catch anything.
//! 2. **Exact accounting** — the merged `HealthLedger`s reconcile
//!    one-for-one against the injector's ground-truth fault log.
//! 3. **Bounded distortion** — duration and per-thread utilization stay
//!    within tolerance of the fault-free run at realistic fault rates.
//!
//! A separate [`abnormal_exit_drill`] rehearses the crash path: it
//! registers a partial-log flush, fires a simulated SIGSEGV, and checks
//! that every emitted log is marked `PARTIAL`, terminated by the `END`
//! marker, and that no torn `.tmp` files remain.

use std::path::Path;
use std::sync::Arc;

use zerosum_core::export::{write_partial_logs, LOG_END_MARKER, LOG_PARTIAL_MARKER};
use zerosum_core::signal::{
    clear_crash_flushes, register_crash_flush, report_abnormal_exit, AbnormalExit,
};
use zerosum_core::{render_process_report, Monitor, ProcessInfo, Tracked, ZeroSumConfig};
use zerosum_experiments::tables::{run_table, run_table_chaos, ChaosAudit, TableConfig, TableRun};
use zerosum_proc::fault::{FaultKind, FaultPlan, FaultRates, Op, ScriptedFault};
use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
use zerosum_topology::{presets, CpuSet};

/// The three table configurations the soak cycles through.
pub const CONFIGS: [TableConfig; 3] = [
    TableConfig::Table1,
    TableConfig::Table2,
    TableConfig::Table3,
];

/// Duration-distortion tolerance vs. the fault-free run. Injected read
/// latency and retry backoff are charged to virtual time, so faulted
/// runs may only be slightly slower, never faster.
pub const DURATION_TOL: (f64, f64) = (0.95, 1.25);

/// Mean per-thread utime distortion tolerance vs. the fault-free run.
/// Interpolated and dropped samples shift per-period averages a little;
/// more than this means degradation is corrupting the measurement.
pub const UTIME_TOL: (f64, f64) = (0.70, 1.40);

/// A fault schedule at rates representative of a busy production node:
/// ~1% transient I/O failures and stale reads on every op, ~2% of reads
/// slowed by 100 µs, plus exit races (`NotFound`) and torn writes
/// (`Malformed`) on the per-task files where they occur in practice.
///
/// Deliberately no permanent faults on the node-level ops: a permanent
/// `Denied` on `(SystemStat, 0, 0)` would blind hardware-thread
/// observation for the whole run, which is a different experiment.
pub fn realistic_plan(fault_seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::quiet(fault_seed);
    plan.default_rates = FaultRates {
        io_transient: 0.01,
        stale: 0.01,
        latency_prob: 0.02,
        latency_us: 100,
        ..FaultRates::default()
    };
    let task_rates = FaultRates {
        not_found: 0.005,
        malformed: 0.005,
        ..plan.default_rates
    };
    plan.per_op = vec![(Op::TaskStat, task_rates), (Op::TaskStatus, task_rates)];
    plan
}

/// A schedule whose only fault is one scripted panic inside the first
/// sampling round — exercises the `catch_unwind` supervisor end-to-end.
pub fn panic_plan(fault_seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::quiet(fault_seed);
    // Call 3 is the first per-task read of round one (the `schedstat`
    // that leads each task slot, after `system_stat` and `list_tasks`).
    plan.scripted = vec![ScriptedFault {
        call: 3,
        kind: FaultKind::Panic,
    }];
    plan
}

/// The outcome of one chaos schedule, judged against its baseline.
#[derive(Debug)]
pub struct ChaosReport {
    /// Schedule name (`t1-f00` …).
    pub name: String,
    /// The injector seed this schedule ran with.
    pub fault_seed: u64,
    /// Application ran to completion under fault load.
    pub completed: bool,
    /// Ledger error totals match the injected fault log exactly.
    pub reconciled: bool,
    /// Ground-truth fault-log entries the injector recorded.
    pub fault_events: usize,
    /// Errors the monitor accounted for across all ledgers.
    pub errors_accounted: u64,
    /// Samples served from last-good interpolation.
    pub degraded: u64,
    /// Samples dropped outright (no last-good available).
    pub dropped: u64,
    /// Reads recovered by retry.
    pub retried: u64,
    /// Tids still quarantined at run end.
    pub quarantined: usize,
    /// Sampling-loop panics caught by the supervisor.
    pub supervisor_restarts: u64,
    /// Faulted duration / fault-free duration.
    pub duration_ratio: f64,
    /// Faulted mean row utime / fault-free mean row utime.
    pub utime_ratio: f64,
    /// Everything that failed; empty means the schedule passed.
    pub problems: Vec<String>,
}

impl ChaosReport {
    /// True when every chaos property held.
    pub fn passed(&self) -> bool {
        self.problems.is_empty()
    }

    /// One-line summary plus one line per problem.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let status = if self.passed() { "ok" } else { "FAIL" };
        writeln!(
            out,
            "{:<8} seed={:<6} {:>5} faults  {:>4} errors  {:>3} degraded  \
             {:>3} retried  dur x{:.3}  utime x{:.3}  [{status}]",
            self.name,
            self.fault_seed,
            self.fault_events,
            self.errors_accounted,
            self.degraded,
            self.retried,
            self.duration_ratio,
            self.utime_ratio,
        )
        .unwrap();
        for p in &self.problems {
            writeln!(out, "  problem: {p}").unwrap();
        }
        out
    }
}

fn mean_utime(run: &TableRun) -> f64 {
    if run.rows.is_empty() {
        return 0.0;
    }
    run.rows.iter().map(|r| r.utime).sum::<f64>() / run.rows.len() as f64
}

fn short_label(config: TableConfig) -> &'static str {
    match config {
        TableConfig::Table1 => "t1",
        TableConfig::Table2 => "t2",
        TableConfig::Table3 => "t3",
    }
}

/// Judges one faulted run against its fault-free baseline.
pub fn judge(
    name: &str,
    fault_seed: u64,
    run: &TableRun,
    audit: &ChaosAudit,
    baseline: &TableRun,
) -> ChaosReport {
    let duration_ratio = run.duration_s / baseline.duration_s.max(1e-9);
    let base_utime = mean_utime(baseline);
    let utime_ratio = if base_utime > 0.0 {
        mean_utime(run) / base_utime
    } else {
        1.0
    };
    let mut problems = Vec::new();
    if !audit.completed {
        problems.push("application did not complete under fault load".to_string());
    }
    if !audit.reconciles() {
        problems.push(format!(
            "ledger/fault-log mismatch: accounted {:?} vs injected {:?}",
            audit.ledger_errors, audit.injected_errors
        ));
    }
    if audit.supervisor_restarts > 0 {
        problems.push(format!(
            "sampling loop panicked {} time(s)",
            audit.supervisor_restarts
        ));
    }
    if !(DURATION_TOL.0..=DURATION_TOL.1).contains(&duration_ratio) {
        problems.push(format!(
            "duration ratio {duration_ratio:.3} outside {DURATION_TOL:?}"
        ));
    }
    if !(UTIME_TOL.0..=UTIME_TOL.1).contains(&utime_ratio) {
        problems.push(format!(
            "utime ratio {utime_ratio:.3} outside {UTIME_TOL:?}"
        ));
    }
    ChaosReport {
        name: name.to_string(),
        fault_seed,
        completed: audit.completed,
        reconciled: audit.reconciles(),
        fault_events: audit.fault_events,
        errors_accounted: audit.ledger.errors_total(),
        degraded: audit.ledger.degraded,
        dropped: audit.ledger.dropped,
        retried: audit.ledger.retried,
        quarantined: audit.quarantined,
        supervisor_restarts: audit.supervisor_restarts,
        duration_ratio,
        utime_ratio,
        problems,
    }
}

fn sim_seed_for(config: TableConfig) -> u64 {
    match config {
        TableConfig::Table1 => 11,
        TableConfig::Table2 => 12,
        TableConfig::Table3 => 13,
    }
}

/// Runs the chaos soak: one fault-free baseline per table configuration,
/// then `schedules` seeded fault schedules distributed round-robin over
/// the three configurations, each judged against its baseline.
pub fn run_suite(scale: u32, schedules: usize, base_fault_seed: u64) -> Vec<ChaosReport> {
    // Baselines and fault schedules are independent simulations; both
    // stages fan out on the experiment engine. Results come back in
    // submission order, so reports are identical to a sequential run.
    let baselines: Vec<TableRun> = zerosum_experiments::parallel::run_jobs(
        CONFIGS
            .iter()
            .map(|&c| move || run_table(c, scale, sim_seed_for(c)))
            .collect(),
        0,
    );
    let baselines = &baselines;
    zerosum_experiments::parallel::run_jobs(
        (0..schedules)
            .map(|i| {
                move || {
                    let idx = i % CONFIGS.len();
                    let config = CONFIGS[idx];
                    let fault_seed = base_fault_seed
                        .wrapping_add(7919u64.wrapping_mul(i as u64))
                        .wrapping_add(1);
                    let (run, audit) = run_table_chaos(
                        config,
                        scale,
                        sim_seed_for(config),
                        realistic_plan(fault_seed),
                    );
                    let name = format!("{}-f{:02}", short_label(config), i);
                    judge(&name, fault_seed, &run, &audit, &baselines[idx])
                }
            })
            .collect(),
        0,
    )
}

/// Rehearses the crash-safe export path and returns every problem found
/// (empty = pass): builds a small monitored run, registers a
/// partial-log flush, fires a simulated SIGSEGV through
/// [`report_abnormal_exit`], then checks that each log in `dir` opens
/// with the `PARTIAL` marker, closes with the `END` marker, and that no
/// torn `.tmp` files were left behind.
///
/// Uses the process-global crash-flush registry; callers must not run
/// two drills concurrently.
pub fn abnormal_exit_drill(dir: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
    let pid = sim.spawn_process(
        "app",
        CpuSet::from_indices([0u32, 1]),
        1_024,
        Behavior::FiniteCompute {
            remaining_us: 800_000,
            chunk_us: 10_000,
        },
    );
    let mut mon = Monitor::new(ZeroSumConfig::default().with_period_ms(100));
    mon.watch_process(ProcessInfo {
        pid,
        rank: Some(0),
        hostname: "chaos-node".into(),
        gpus: vec![],
        cpus_allowed: Default::default(),
    });
    for round in 0..4u64 {
        sim.run_for(100_000);
        let src = SimProcSource::new(&sim);
        mon.sample(round as f64 * 0.1, &src);
    }
    clear_crash_flushes();
    let shared = Arc::new(Tracked::new("analyze.chaos.flush_monitor", mon));
    let flush_mon = Arc::clone(&shared);
    let flush_dir = dir.to_path_buf();
    register_crash_flush(move || {
        if let Ok(m) = flush_mon.lock() {
            let _ = write_partial_logs(&m, &flush_dir, "SIGSEGV", |p| {
                render_process_report(&m, p, m.last_t_s, None)
            });
        }
    });
    let report = report_abnormal_exit(AbnormalExit::SegmentationViolation, pid, Some(0));
    clear_crash_flushes();
    if !report.contains("SIGSEGV") {
        problems.push("crash report does not name the signal".to_string());
    }
    let mut logs = 0usize;
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".tmp") {
                    problems.push(format!("torn temp file left behind: {name}"));
                    continue;
                }
                if !name.ends_with(".log") {
                    continue;
                }
                logs += 1;
                let content = std::fs::read_to_string(&path).unwrap_or_default();
                if !content.starts_with(LOG_PARTIAL_MARKER) {
                    problems.push(format!("{name}: missing PARTIAL marker"));
                }
                if !content.trim_end().ends_with(LOG_END_MARKER) {
                    problems.push(format!("{name}: missing END marker (torn write?)"));
                }
                if !content.contains("Sampling health (CSV)") {
                    problems.push(format!("{name}: health ledger section missing"));
                }
            }
        }
        Err(e) => problems.push(format!("cannot read drill dir: {e}")),
    }
    if logs == 0 {
        problems.push("crash flush produced no partial logs".to_string());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance soak: ≥ 20 seeded schedules across Tables
    /// 1–3, zero panics, exact reconciliation, bounded distortion.
    #[test]
    fn chaos_soak_twenty_one_schedules_all_pass() {
        let reports = run_suite(150, 21, 0xC4A0);
        assert_eq!(reports.len(), 21);
        let failed: Vec<&ChaosReport> = reports.iter().filter(|r| !r.passed()).collect();
        assert!(
            failed.is_empty(),
            "failed schedules:\n{}",
            failed.iter().map(|r| r.render()).collect::<String>()
        );
        // The soak must actually exercise the machinery: faults were
        // injected and some were hard errors the ledger accounted for.
        let total_faults: usize = reports.iter().map(|r| r.fault_events).sum();
        let total_errors: u64 = reports.iter().map(|r| r.errors_accounted).sum();
        assert!(total_faults > 100, "only {total_faults} faults injected");
        assert!(total_errors > 20, "only {total_errors} errors accounted");
    }

    #[test]
    fn scripted_panic_is_caught_and_still_reconciles() {
        // Silence the default panic printer around the injected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (run, audit) = run_table_chaos(TableConfig::Table1, 200, 7, panic_plan(7));
        std::panic::set_hook(prev);
        assert!(audit.completed, "app must survive a monitor panic");
        assert_eq!(audit.supervisor_restarts, 1);
        // A panic is not a read error: the ledgers still reconcile.
        assert!(audit.reconciles(), "{audit:?}");
        assert!(run.duration_s > 0.0);
    }

    #[test]
    fn abnormal_exit_drill_leaves_no_torn_files() {
        let dir = std::env::temp_dir().join(format!("zs-chaos-drill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let problems = abnormal_exit_drill(&dir);
        let listing = std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            problems.is_empty(),
            "drill problems: {problems:?} (dir: {listing:?})"
        );
    }
}
