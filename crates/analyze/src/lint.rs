//! `zslint`: repo-specific source lints for the ZeroSum tree.
//!
//! Four active rules, each encoding a project constraint that `clippy`
//! cannot express:
//!
//! * **no-panic-hot-path** — `unwrap()` / `expect(` are banned in the
//!   monitor's per-sample hot paths (`crates/core/src/monitor.rs`,
//!   `lwp.rs`, `hwt.rs`, `feed.rs`). A monitoring tool must never take
//!   down the application it watches (§3.1 of the paper): a malformed
//!   `/proc` line or a closed channel is data, not a crash.
//! * **no-print-in-lib** — `println!` / `eprintln!` are banned in
//!   library code (everything except `src/main.rs`, `src/bin/`,
//!   examples, benches, and tests). Libraries report through return
//!   values or the caller-provided sink; direct prints also panic when
//!   stdio is closed, violating rule one transitively.
//! * **no-source-error-bubble** — bare `?`-propagation of a
//!   [`ProcSource`](zerosum_proc::ProcSource) read error is banned in
//!   the monitor's per-sample loop (`crates/core/src/monitor.rs`). A
//!   failed `/proc` read is an observation about the observed system —
//!   it must be routed through the `HealthLedger` (retry, interpolate,
//!   quarantine), never allowed to abort the whole sample round.
//! * **no-unbounded-growth-in-monitor** (*note level*) — `.push(` into
//!   a field of long-lived monitor/cluster state is reported unless the
//!   receiver field is on the reviewed allowlist
//!   ([`ALLOWED_GROWTH_FIELDS`]). Monitors run for the life of an
//!   allocation (§2): every unbounded `Vec` time series eventually
//!   exhausts node memory, which is why series storage is built on the
//!   fixed-capacity `Ring`. A push into a new field is how the next
//!   leak starts, so each one gets flagged until it is allowlisted with
//!   a bound argument. Pushes into locals (no `.` in the receiver) are
//!   per-round scratch and not flagged.
//!
//! Two former rules are **deprecated aliases** superseded by the
//! interprocedural effect passes of `zerosum audit`, which see through
//! call chains instead of matching single lines:
//!
//! * **no-wall-clock-in-sched** → the audit's *nondeterminism* pass
//!   (wall-clock, ambient entropy, and unordered-map iteration
//!   reachable from the sim/experiment roots);
//! * **no-clone-in-hot-path** → the audit's *hot-path-alloc* pass
//!   (allocation effects reachable from the `_into` sampling roots,
//!   with witness traces and a fail-on-new allowlist instead of a
//!   note).
//!
//! The rules are line-oriented but run on token-blanked text from the
//! audit lexer ([`crate::audit::lexer`]): comments, string, char, and
//! raw-string literals are blanked with exact line preservation, and
//! `#[cfg(test)]`-gated items are removed by token-level brace matching
//! — so braces inside literals can never miscount, and test code may
//! use `unwrap()` freely. The same token stream drives `zerosum audit`;
//! brace counting and string stripping exist exactly once.

use crate::audit::lexer::{blank_noncode, blank_test_mods};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unwrap()`/`expect(` in a monitor hot-path file.
    NoPanicHotPath,
    /// Deprecated alias: wall-clock reads in the scheduler are now
    /// caught interprocedurally by `zerosum audit`'s nondeterminism
    /// pass. Never scheduled by [`lint_source`]/[`lint_repo`].
    NoWallClockInSched,
    /// `println!`/`eprintln!` in library code.
    NoPrintInLib,
    /// Bare `?`-propagation of a `ProcSource` read error in the
    /// monitor's per-sample loop.
    NoSourceErrorBubble,
    /// Deprecated alias: hot-path allocations are now caught
    /// interprocedurally by `zerosum audit`'s hot-path-alloc pass.
    /// Never scheduled by [`lint_source`]/[`lint_repo`].
    NoCloneInHotPath,
    /// `.push(` into a non-allowlisted field of long-lived
    /// monitor/cluster state (note level: flags potential unbounded
    /// growth for review).
    NoUnboundedGrowthInMonitor,
}

impl Rule {
    /// The rule's stable identifier, shown in diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanicHotPath => "no-panic-hot-path",
            Rule::NoWallClockInSched => "no-wall-clock-in-sched",
            Rule::NoPrintInLib => "no-print-in-lib",
            Rule::NoSourceErrorBubble => "no-source-error-bubble",
            Rule::NoCloneInHotPath => "no-clone-in-hot-path",
            Rule::NoUnboundedGrowthInMonitor => "no-unbounded-growth-in-monitor",
        }
    }

    /// Note-level rules report without failing the lint pass.
    pub fn is_note(self) -> bool {
        matches!(
            self,
            Rule::NoCloneInHotPath | Rule::NoUnboundedGrowthInMonitor
        )
    }

    /// For deprecated alias rules, the `zerosum audit` pass that
    /// replaced them; `None` for active rules. Deprecated rules are
    /// never scheduled and [`scan_blanked`] skips them defensively.
    pub fn deprecated_replacement(self) -> Option<&'static str> {
        match self {
            Rule::NoWallClockInSched => Some("zerosum audit (nondeterminism pass)"),
            Rule::NoCloneInHotPath => Some("zerosum audit (hot-path-alloc pass)"),
            _ => None,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct LintViolation {
    /// File the finding is in (relative to the scanned root).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending token.
    pub token: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rule.is_note() {
            let why = match self.rule {
                Rule::NoUnboundedGrowthInMonitor => {
                    "grows long-lived monitor state without a ring bound"
                }
                _ => "allocates in a sampling hot path",
            };
            write!(
                f,
                "{}:{}: [{}] note: `{}` {why}",
                self.path.display(),
                self.line,
                self.rule.id(),
                self.token
            )
        } else {
            write!(
                f,
                "{}:{}: [{}] `{}` is not allowed here",
                self.path.display(),
                self.line,
                self.rule.id(),
                self.token
            )
        }
    }
}

/// Long-lived state fields the growth rule accepts, each with a known
/// bound: `samples`, `rss_series`, and `gap_times_s` are fixed-capacity
/// rings; `cpus` is one entry per hardware thread; `processes`, `peaks`,
/// `nodes`, and `sup` are one entry per watched rank or node; `tracks`
/// is one per observed LWP; `changes` is one per governor period
/// doubling (bounded by the period ceiling); `transitions` is one per
/// supervision state change; `watched_rss` is per-round scratch reused
/// across rounds.
pub const ALLOWED_GROWTH_FIELDS: [&str; 12] = [
    "changes",
    "cpus",
    "gap_times_s",
    "nodes",
    "peaks",
    "processes",
    "rss_series",
    "samples",
    "sup",
    "tracks",
    "transitions",
    "watched_rss",
];

/// The trailing `a.b.c`-style path ending at byte `col` of
/// `lines[lineno]`, following the chain onto earlier lines when a line
/// opens with `.` (rustfmt splits long receivers that way).
fn receiver_before(lines: &[&str], lineno: usize, col: usize) -> String {
    fn tail(s: &str) -> &str {
        let mut start = s.len();
        for (i, c) in s.char_indices().rev() {
            if c.is_alphanumeric() || c == '_' || c == '.' {
                start = i;
            } else {
                break;
            }
        }
        &s[start..]
    }
    let mut recv = tail(&lines[lineno][..col]).to_string();
    let mut ln = lineno;
    while ln > 0 && (recv.is_empty() || recv.starts_with('.')) {
        ln -= 1;
        let t = tail(lines[ln].trim_end());
        if t.is_empty() {
            break;
        }
        recv.insert_str(0, t);
        if !t.starts_with('.') {
            break;
        }
    }
    recv
}

fn scan_text(rel: &Path, src: &str, rules: &[Rule]) -> Vec<LintViolation> {
    // Token-level blanking: test-gated items first (needs real string
    // tokens to brace-match), then comments and literals.
    scan_blanked(rel, &blank_noncode(&blank_test_mods(src)), rules)
}

/// Runs the line-oriented rules over already-blanked text. Split from
/// [`scan_text`] so the tests can diff the token-level blanking against
/// the legacy textual strippers on identical rule logic.
fn scan_blanked(rel: &Path, code: &str, rules: &[Rule]) -> Vec<LintViolation> {
    let lines: Vec<&str> = code.lines().collect();
    let mut out = Vec::new();
    for (lineno, &line) in lines.iter().enumerate() {
        for &rule in rules {
            if rule.deprecated_replacement().is_some() {
                continue;
            }
            if rule == Rule::NoUnboundedGrowthInMonitor {
                let Some(col) = line.find(".push(") else {
                    continue;
                };
                let recv = receiver_before(&lines, lineno, col);
                // A dotless receiver is a local (per-round scratch);
                // field pushes are long-lived state and must be on the
                // reviewed allowlist.
                if !recv.contains('.') {
                    continue;
                }
                let field = recv.rsplit('.').next().unwrap_or("");
                if ALLOWED_GROWTH_FIELDS.contains(&field) {
                    continue;
                }
                out.push(LintViolation {
                    path: rel.to_path_buf(),
                    line: lineno + 1,
                    rule,
                    token: format!("{recv}.push"),
                });
                continue;
            }
            if rule == Rule::NoSourceErrorBubble {
                // A `ProcSource` read call with a `?` after its closing
                // paren on the same line: the error skips the ledger.
                const READS: [&str; 7] = [
                    ".system_stat(",
                    ".meminfo(",
                    ".list_tasks(",
                    ".task_stat(",
                    ".task_status(",
                    ".task_schedstat(",
                    ".process_status(",
                ];
                for tok in READS {
                    if let Some(pos) = line.find(tok) {
                        if line[pos..].contains(")?") {
                            out.push(LintViolation {
                                path: rel.to_path_buf(),
                                line: lineno + 1,
                                rule,
                                token: format!("{}..)?", tok.trim_start_matches('.')),
                            });
                        }
                    }
                }
                continue;
            }
            let tokens: &[&str] = match rule {
                Rule::NoPanicHotPath => &[".unwrap()", ".expect("],
                Rule::NoWallClockInSched => &["Instant::now", "SystemTime::now"],
                Rule::NoPrintInLib => &["println!", "eprintln!", "print!", "eprint!"],
                // `.clone()` with parens: the buffer-reusing
                // `clone_from(` is the approved form and must not match.
                Rule::NoCloneInHotPath => &[".clone()", ".to_owned()", ".to_vec()"],
                Rule::NoSourceErrorBubble | Rule::NoUnboundedGrowthInMonitor => {
                    unreachable!("handled above")
                }
            };
            for tok in tokens {
                // Token-boundary match: `println!` must not also fire
                // inside `eprintln!`, nor `print!` inside `println!`
                // (`.`-prefixed tokens carry their own boundary).
                let hit = line.match_indices(tok).any(|(pos, _)| {
                    let pre_ok = tok.starts_with('.')
                        || pos == 0
                        || !line[..pos]
                            .chars()
                            .next_back()
                            .is_some_and(|c| c.is_alphanumeric() || c == '_');
                    let post = line[pos + tok.len()..].chars().next();
                    let post_ok = tok.ends_with('(')
                        || tok.ends_with(')')
                        || tok.ends_with('!')
                        || !post.is_some_and(|c| c.is_alphanumeric() || c == '_');
                    pre_ok && post_ok
                });
                if hit {
                    out.push(LintViolation {
                        path: rel.to_path_buf(),
                        line: lineno + 1,
                        rule,
                        token: tok.trim_start_matches('.').to_string(),
                    });
                }
            }
        }
    }
    out
}

/// The monitor hot-path files covered by [`Rule::NoPanicHotPath`].
const HOT_PATHS: [&str; 4] = [
    "crates/core/src/monitor.rs",
    "crates/core/src/lwp.rs",
    "crates/core/src/hwt.rs",
    "crates/core/src/feed.rs",
];

/// Files holding state that lives as long as the monitor itself,
/// covered by [`Rule::NoUnboundedGrowthInMonitor`].
const MONITOR_STATE_PATHS: [&str; 5] = [
    "crates/core/src/monitor.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/lwp.rs",
    "crates/core/src/hwt.rs",
    "crates/core/src/memory.rs",
];

fn is_library_source(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    if !s.starts_with("crates/") && !s.starts_with("src/") {
        return false;
    }
    if s.contains("/bin/") || s.ends_with("/main.rs") || s == "src/main.rs" {
        return false;
    }
    if s.contains("/tests/") || s.contains("/examples/") || s.contains("/benches/") {
        return false;
    }
    s.ends_with(".rs")
}

fn rules_for(rel: &Path) -> Vec<Rule> {
    let s = rel.to_string_lossy().replace('\\', "/");
    let mut rules = Vec::new();
    if HOT_PATHS.contains(&s.as_str()) {
        rules.push(Rule::NoPanicHotPath);
    }
    if MONITOR_STATE_PATHS.contains(&s.as_str()) {
        rules.push(Rule::NoUnboundedGrowthInMonitor);
    }
    if s == "crates/core/src/monitor.rs" {
        rules.push(Rule::NoSourceErrorBubble);
    }
    if is_library_source(rel) {
        rules.push(Rule::NoPrintInLib);
    }
    rules
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` trees hold deliberately-violating golden files
            // for the lint/audit test suites.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one source text as if it lived at `rel` inside the repo.
/// Exposed for testing the rules against seeded violations.
pub fn lint_source(rel: &Path, src: &str) -> Vec<LintViolation> {
    let rules = rules_for(rel);
    if rules.is_empty() {
        return Vec::new();
    }
    scan_text(rel, src, &rules)
}

/// Lints the whole repository rooted at `root`. Returns violations
/// sorted by path and line.
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<LintViolation>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rules = rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        out.extend(scan_text(&rel, &src, &rules));
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(out)
}

/// Returns the [`ALLOWED_GROWTH_FIELDS`] entries that no longer match
/// any `.push(` receiver field in the monitor-state files — stale
/// allowlist entries that must be pruned (`zerosum lint` fails on
/// them). An allowlist that rots stops being a review record.
pub fn stale_growth_entries(root: &Path) -> std::io::Result<Vec<&'static str>> {
    let mut used: Vec<&'static str> = Vec::new();
    for rel in MONITOR_STATE_PATHS {
        let path = root.join(rel);
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            // A monitor-state file that no longer exists contributes no
            // uses; its allowlisted fields then report as stale.
            Err(_) => continue,
        };
        let code = blank_noncode(&blank_test_mods(&src));
        let mut rest: &str = &code;
        while let Some(col) = rest.find(".push(") {
            // Walk back over whitespace (rustfmt may split the receiver
            // onto its own line), then take the trailing ident.
            let before = rest[..col].trim_end();
            let field: String = before
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            if let Some(entry) = ALLOWED_GROWTH_FIELDS.iter().find(|e| **e == field) {
                if !used.contains(entry) {
                    used.push(entry);
                }
            }
            rest = &rest[col + 6..];
        }
    }
    Ok(ALLOWED_GROWTH_FIELDS
        .iter()
        .filter(|e| !used.contains(e))
        .copied()
        .collect())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_hot_path_is_flagged() {
        let v = lint_source(
            Path::new("crates/core/src/lwp.rs"),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanicHotPath);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn expect_in_hot_path_is_flagged() {
        let v = lint_source(
            Path::new("crates/core/src/feed.rs"),
            "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"boom\")\n}\n",
        );
        assert!(v
            .iter()
            .any(|x| x.rule == Rule::NoPanicHotPath && x.line == 2));
    }

    #[test]
    fn unwrap_outside_hot_path_is_allowed() {
        let v = lint_source(
            Path::new("crates/core/src/config.rs"),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_in_test_mod_is_allowed() {
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
        let v = lint_source(Path::new("crates/core/src/lwp.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wall_clock_in_sched_is_deprecated_to_the_audit() {
        // The rule is an alias now: lint no longer schedules it (the
        // audit's nondeterminism pass covers `crates/sched` roots
        // interprocedurally), and passing it explicitly is a no-op.
        let v = lint_source(
            Path::new("crates/sched/src/node.rs"),
            "fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert!(
            !v.iter().any(|x| x.rule == Rule::NoWallClockInSched),
            "{v:?}"
        );
        assert_eq!(
            Rule::NoWallClockInSched.deprecated_replacement(),
            Some("zerosum audit (nondeterminism pass)")
        );
    }

    #[test]
    fn println_in_lib_is_flagged_but_not_in_main() {
        let src = "fn f() { println!(\"hi\"); }\n";
        let v = lint_source(Path::new("crates/core/src/monitor.rs"), src);
        assert!(v.iter().any(|x| x.rule == Rule::NoPrintInLib));
        assert!(lint_source(Path::new("crates/cli/src/main.rs"), src).is_empty());
        assert!(lint_source(Path::new("crates/analyze/src/bin/zslint.rs"), src).is_empty());
    }

    #[test]
    fn prints_in_comments_and_strings_are_ignored() {
        let src = "\
// println!(\"not code\")
fn f() -> &'static str {
    \"eprintln!(no)\"
}
/* println! */
";
        let v = lint_source(Path::new("crates/core/src/monitor.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn source_error_bubble_in_monitor_is_flagged() {
        let src = "\
fn sample(res: &dyn ProcSource, pid: u32) -> SourceResult<()> {
    let stat = res.task_stat(pid, pid)?;
    let _ = stat;
    Ok(())
}
";
        let v = lint_source(Path::new("crates/core/src/monitor.rs"), src);
        assert!(
            v.iter()
                .any(|x| x.rule == Rule::NoSourceErrorBubble && x.line == 2),
            "{v:?}"
        );
        // Same code outside the monitor is fine.
        assert!(lint_source(Path::new("crates/core/src/attach.rs"), src).is_empty());
    }

    #[test]
    fn source_read_routed_through_ledger_is_allowed() {
        let src = "\
fn sample(res: &dyn ProcSource, pid: u32) {
    match res.task_stat(pid, pid) {
        Ok(_) => {}
        Err(_) => {}
    }
    let _ = res.task_schedstat(pid, pid).ok();
}
";
        let v = lint_source(Path::new("crates/core/src/monitor.rs"), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clone_in_hot_path_is_deprecated_to_the_audit() {
        // The note-level rule is an alias now: the audit's
        // hot-path-alloc pass flags allocations reachable from the
        // `_into` roots with witness traces instead of per-file notes.
        let src = "\
fn f(s: &TaskStatus, out: &mut TaskStatus) {
    let a = s.cpus_allowed.clone();
    out.cpus_allowed.clone_from(&s.cpus_allowed);
    let _ = a;
}
";
        let v = lint_source(Path::new("crates/core/src/monitor.rs"), src);
        assert!(!v.iter().any(|x| x.rule == Rule::NoCloneInHotPath), "{v:?}");
        assert_eq!(
            Rule::NoCloneInHotPath.deprecated_replacement(),
            Some("zerosum audit (hot-path-alloc pass)")
        );
        // Deprecated rules are skipped even when passed explicitly.
        let forced = scan_blanked(
            Path::new("crates/core/src/monitor.rs"),
            src,
            &[Rule::NoCloneInHotPath, Rule::NoWallClockInSched],
        );
        assert!(forced.is_empty(), "{forced:?}");
    }

    #[test]
    fn unallowlisted_state_push_is_a_note() {
        let src = "\
fn observe(&mut self, t_s: f64) {
    self.history.push(t_s);
    self.samples.push(t_s);
    let mut scratch = Vec::new();
    scratch.push(t_s);
}
";
        let v = lint_source(Path::new("crates/core/src/cluster.rs"), src);
        let notes: Vec<_> = v
            .iter()
            .filter(|x| x.rule == Rule::NoUnboundedGrowthInMonitor)
            .collect();
        // `history` is not allowlisted; the ring field `samples` and the
        // local `scratch` are fine.
        assert_eq!(notes.len(), 1, "{v:?}");
        assert_eq!(notes[0].line, 2);
        assert!(notes[0].token.contains("self.history.push"));
        assert!(notes[0].rule.is_note());
        assert!(notes[0].to_string().contains("ring bound"));
        // Outside the monitor-state file set, no note.
        assert!(lint_source(Path::new("crates/core/src/config.rs"), src).is_empty());
    }

    #[test]
    fn growth_rule_follows_rustfmt_split_receivers() {
        let src = "\
fn observe(&mut self) {
    self.deeply.nested
        .event_log
        .push(1);
    self.scratch
        .watched_rss
        .push((1, 2));
}
";
        let v = lint_source(Path::new("crates/core/src/monitor.rs"), src);
        let notes: Vec<_> = v
            .iter()
            .filter(|x| x.rule == Rule::NoUnboundedGrowthInMonitor)
            .collect();
        assert_eq!(notes.len(), 1, "{v:?}");
        assert_eq!(notes[0].line, 4);
        assert!(
            notes[0].token.contains("event_log.push"),
            "{}",
            notes[0].token
        );
    }

    /// The pre-port textual strippers, kept verbatim so the token-level
    /// blanking can be differential-tested against them on the shipped
    /// tree. Do not use outside tests: raw strings containing `"` derail
    /// the string scanner (the bug the port fixed).
    mod legacy {
        pub fn strip_noncode(src: &str) -> String {
            let b: Vec<char> = src.chars().collect();
            let mut out: Vec<char> = Vec::with_capacity(b.len());
            let mut i = 0;
            let n = b.len();
            let keep_ws = |c: char| if c == '\n' { '\n' } else { ' ' };
            while i < n {
                let c = b[i];
                if c == '/' && i + 1 < n && b[i + 1] == '/' {
                    while i < n && b[i] != '\n' {
                        out.push(' ');
                        i += 1;
                    }
                } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
                    let mut depth = 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    while i < n && depth > 0 {
                        if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                            depth += 1;
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                            depth -= 1;
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else {
                            out.push(keep_ws(b[i]));
                            i += 1;
                        }
                    }
                } else if c == '"' {
                    out.push(' ');
                    i += 1;
                    while i < n {
                        if b[i] == '\\' && i + 1 < n {
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else if b[i] == '"' {
                            out.push(' ');
                            i += 1;
                            break;
                        } else {
                            out.push(keep_ws(b[i]));
                            i += 1;
                        }
                    }
                } else if c == '\'' && i + 2 < n && (b[i + 1] == '\\' || b[i + 2] == '\'') {
                    out.push(' ');
                    i += 1;
                    while i < n && b[i] != '\'' {
                        if b[i] == '\\' && i + 1 < n {
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else {
                            out.push(keep_ws(b[i]));
                            i += 1;
                        }
                    }
                    if i < n {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            out.into_iter().collect()
        }

        pub fn strip_test_mods(stripped: &str) -> String {
            let lines: Vec<&str> = stripped.lines().collect();
            let mut keep: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
            let mut i = 0;
            while i < lines.len() {
                let t = lines[i].trim_start();
                let is_test_attr = t.starts_with("#[cfg(test)]")
                    || (t.starts_with("#[cfg(all(test") && t.contains("test"));
                if is_test_attr {
                    let mut depth = 0i64;
                    let mut opened = false;
                    let mut j = i;
                    while j < lines.len() {
                        for ch in lines[j].chars() {
                            match ch {
                                '{' => {
                                    depth += 1;
                                    opened = true;
                                }
                                '}' => depth -= 1,
                                _ => {}
                            }
                        }
                        keep[j] = String::new();
                        if opened && depth <= 0 {
                            break;
                        }
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    i += 1;
                }
            }
            keep.join("\n")
        }
    }

    #[test]
    fn token_blanking_matches_legacy_strippers_on_the_shipped_tree() {
        // The port's contract: on every file the lint pass covers, the
        // six rules produce identical findings over the token-blanked
        // text and over the legacy textual strip (the shipped tree has
        // none of the raw-string shapes that trip the legacy scanner).
        let root =
            find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let mut files = Vec::new();
        walk(&root, &mut files).expect("walk");
        let mut compared = 0usize;
        for path in files {
            let rel = path.strip_prefix(&root).unwrap_or(&path).to_path_buf();
            let rules = rules_for(&rel);
            if rules.is_empty() {
                continue;
            }
            let src = std::fs::read_to_string(&path).expect("read");
            let new = scan_text(&rel, &src, &rules);
            let old = scan_blanked(
                &rel,
                &legacy::strip_test_mods(&legacy::strip_noncode(&src)),
                &rules,
            );
            let fmt = |v: &[LintViolation]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(
                fmt(&new),
                fmt(&old),
                "token/legacy divergence in {}",
                rel.display()
            );
            compared += 1;
        }
        assert!(compared > 10, "only {compared} files compared");
    }

    #[test]
    fn raw_string_braces_do_not_derail_test_mod_skipping() {
        // Regression: a raw string with an interior `"` flips the legacy
        // scanner's quote parity, swallowing everything up to the next
        // plain quote — including the `#[cfg(test)]` attribute and the
        // real violation after the test mod. The token-level blanking
        // lexes the raw string as one literal and gets both right.
        let src = "\
fn banner() -> &'static str { r#\"odd \" quote {\"# }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
fn after(x: Option<u32>) -> u32 { x.unwrap() }
";
        let v = lint_source(Path::new("crates/core/src/lwp.rs"), src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 7, "only `after`'s unwrap is real code");
        // The legacy pipeline misses it (documents the fixed bug).
        let old = scan_blanked(
            Path::new("crates/core/src/lwp.rs"),
            &legacy::strip_test_mods(&legacy::strip_noncode(src)),
            &[Rule::NoPanicHotPath],
        );
        assert!(old.is_empty(), "legacy unexpectedly caught it: {old:?}");
    }

    #[test]
    fn shipped_growth_allowlist_has_no_stale_entries() {
        let root =
            find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let stale = stale_growth_entries(&root).expect("scan");
        assert!(stale.is_empty(), "stale ALLOWED_GROWTH_FIELDS: {stale:?}");
    }

    #[test]
    fn shipped_tree_is_clean() {
        let root =
            find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let v = lint_repo(&root).expect("lint");
        // Notes are allowed in the shipped tree (one-time setup clones);
        // error-level rules must not fire.
        let errors: Vec<_> = v.iter().filter(|x| !x.rule.is_note()).collect();
        assert!(
            errors.is_empty(),
            "shipped tree has lint violations:\n{}",
            errors
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
