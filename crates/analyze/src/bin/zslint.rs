//! `zslint` — the repo-specific lint pass.
//!
//! Usage: `cargo run -p zerosum-analyze --bin zslint [--root DIR]`
//!
//! Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use zerosum_analyze::lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("zslint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: zslint [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("zslint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("zslint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let stale = match lint::stale_growth_entries(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("zslint: {e}");
            return ExitCode::from(2);
        }
    };
    for entry in &stale {
        println!(
            "zslint: [stale-allowlist] ALLOWED_GROWTH_FIELDS entry `{entry}` matches no `.push(` site"
        );
    }
    match lint::lint_repo(&root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            // Note-level findings inform; only error-level rules (and
            // stale allowlist entries) fail.
            let errors = violations.iter().filter(|v| !v.rule.is_note()).count() + stale.len();
            let notes = violations.len() + stale.len() - errors;
            if errors == 0 {
                println!("zslint: clean ({}), {notes} note(s)", root.display());
                ExitCode::SUCCESS
            } else {
                println!("zslint: {errors} violation(s), {notes} note(s)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("zslint: {e}");
            ExitCode::from(2)
        }
    }
}
