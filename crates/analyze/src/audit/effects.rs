//! Interprocedural effect analysis.
//!
//! Extracts a per-function *direct effect set* — allocation,
//! wall-clock reads, ambient entropy/thread-id reads, unordered-map
//! iteration, and blocking (sleep, channel ops, file IO, thread join) —
//! from the shared token stream, propagates it to a fixpoint over the
//! workspace call graph, and drives three passes off the summaries:
//!
//! * **hot-path-alloc** — any allocation effect reachable from the
//!   `_into` sampling-round roots fails. This turns the zero-alloc
//!   sampling discipline (DESIGN.md §4) into a CI-enforced
//!   *reachability* property: a `format!` three calls below a
//!   `task_stat_into` is caught even though the file-local lint never
//!   saw it.
//! * **nondeterminism** — wall-clock, entropy, and unordered-iteration
//!   effects reachable from the sim/experiment roots, statically
//!   protecting the bit-identical survivor-equality differentials.
//! * **blocking** — blocking effects reachable inside the
//!   deadline-watchdog scope or while a lock is held. Channel and
//!   `/proc`-read blocking under a lock stays with the dedicated
//!   `lock-across-*` passes; this pass adds sleep/file-IO/join.
//!
//! The summary domain is a bitset lattice ([`EffectSet`]) ordered by
//! inclusion; propagation is monotone (a step only ORs bits in), so the
//! fixpoint exists and terminates on recursive/cyclic SCCs — each of
//! the `n` summaries can grow at most 8 times. Every finding carries a
//! **witness trace**: the shortest root→site call chain recovered from
//! the BFS parent map (surfaced by `zerosum audit --explain`).

use super::callgraph::{CallGraph, SiteKind};
use super::items::{FnItem, ParsedFile};
use super::lexer::TokKind;
use super::locks::{is_sanitizer_impl, LockAnalysis};
use super::Finding;
use std::collections::BTreeSet;

/// A set of effects: a bitmask lattice ordered by inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(pub u16);

impl EffectSet {
    /// Heap allocation (`clone`, `to_string`, `format!`, `collect`, …).
    pub const ALLOC: u16 = 1 << 0;
    /// Wall-clock read (`Instant::now`, `SystemTime::now`).
    pub const WALL_CLOCK: u16 = 1 << 1;
    /// Ambient entropy / identity (`thread::current`, `process::id`,
    /// `thread_rng`, `from_entropy`, `RandomState`).
    pub const AMBIENT: u16 = 1 << 2;
    /// Iteration over a `HashMap`/`HashSet` (arbitrary order).
    pub const UNORDERED_ITER: u16 = 1 << 3;
    /// `thread::sleep`/`park`.
    pub const BLOCK_SLEEP: u16 = 1 << 4;
    /// Blocking channel op (`send`, `recv`, `recv_timeout`).
    pub const BLOCK_CHAN: u16 = 1 << 5;
    /// File IO (`File::open`, `fs::read_to_string`, `.read_to_string(`).
    pub const BLOCK_IO: u16 = 1 << 6;
    /// `.join()` on a thread handle.
    pub const BLOCK_JOIN: u16 = 1 << 7;

    /// The empty set (lattice bottom).
    pub const fn empty() -> EffectSet {
        EffectSet(0)
    }

    /// Least upper bound.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Whether any bit of `mask` is present.
    pub fn intersects(self, mask: u16) -> bool {
        self.0 & mask != 0
    }

    /// Inclusion order: `self ⊆ other`.
    pub fn le(self, other: EffectSet) -> bool {
        self.0 & other.0 == self.0
    }
}

/// Effects the determinism pass polices.
pub const DET_MASK: u16 = EffectSet::WALL_CLOCK | EffectSet::AMBIENT | EffectSet::UNORDERED_ITER;
/// Effects the watchdog-scope blocking pass polices. File IO is
/// excluded deliberately: the `/proc` reads *are* the measured work of
/// a sampling round, and stalls there are the watchdog's own job.
pub const WATCHDOG_MASK: u16 =
    EffectSet::BLOCK_SLEEP | EffectSet::BLOCK_CHAN | EffectSet::BLOCK_JOIN;
/// Effects the under-lock blocking pass polices. Channel ops and
/// `/proc` reads under a lock are covered by `lock-across-channel` /
/// `lock-across-proc-read`; nested locks are the cycle pass's domain.
pub const HELD_MASK: u16 = EffectSet::BLOCK_SLEEP | EffectSet::BLOCK_IO | EffectSet::BLOCK_JOIN;

/// One direct effect site inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Which effect (a single [`EffectSet`] bit).
    pub bit: u16,
    /// Token index in the owning file's stream.
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
    /// Stable site token (`clone`, `format!`, `Vec::new`,
    /// `Instant::now`, `states.values`, `thread::sleep`, …) — part of
    /// the baseline key.
    pub token: String,
}

/// Configuration for the three effect passes: roots and reviewed
/// allowlists. Allowlist entries are `(file_suffix, fn_name, token,
/// why)`; an entry that stops matching any site fails the audit as
/// stale.
#[derive(Debug, Clone, Copy)]
pub struct EffectConfig<'a> {
    /// Every non-test fn whose name ends with this suffix is a hot
    /// root (the `_into` sampling-round family).
    pub hot_root_suffix: &'a str,
    /// Extra hot roots: `(file_suffix, fn_name)`.
    pub hot_roots: &'a [(&'a str, &'a str)],
    /// Reviewed allocation sites reachable from hot roots.
    pub alloc_allowlist: &'a [(&'a str, &'a str, &'a str, &'a str)],
    /// Every fn in a file starting with one of these prefixes is a
    /// determinism root (the simulator).
    pub det_root_prefixes: &'a [&'a str],
    /// Named determinism roots: `(file_suffix, fn_name)` — the
    /// experiment drivers whose outputs must be bit-identical.
    pub det_roots: &'a [(&'a str, &'a str)],
    /// Reviewed nondeterministic sites reachable from det roots.
    pub det_allowlist: &'a [(&'a str, &'a str, &'a str, &'a str)],
    /// Roots of the deadline-watchdog scope: `(file_suffix, fn_name)`.
    pub watchdog_roots: &'a [(&'a str, &'a str)],
    /// Reviewed blocking findings (watchdog or under-lock).
    pub blocking_allowlist: &'a [(&'a str, &'a str, &'a str, &'a str)],
}

impl EffectConfig<'static> {
    /// A config with the `_into` suffix rule but no named roots and no
    /// allowlists — the fixture-test entry point.
    pub const fn empty() -> EffectConfig<'static> {
        EffectConfig {
            hot_root_suffix: "_into",
            hot_roots: &[],
            alloc_allowlist: &[],
            det_root_prefixes: &[],
            det_roots: &[],
            det_allowlist: &[],
            watchdog_roots: &[],
            blocking_allowlist: &[],
        }
    }
}

/// The repo's standard effect configuration.
pub const DEFAULT_EFFECTS: EffectConfig<'static> = EffectConfig {
    hot_root_suffix: "_into",
    hot_roots: &[],
    alloc_allowlist: &DEFAULT_ALLOC_ALLOWLIST,
    det_root_prefixes: &["crates/sched/src/"],
    det_roots: &[
        ("crates/experiments/src/tables.rs", "run_table"),
        ("crates/experiments/src/tables.rs", "run_table_configured"),
        ("crates/experiments/src/tables.rs", "run_table_traced"),
        ("crates/experiments/src/tables.rs", "run_table_chaos"),
        (
            "crates/experiments/src/cluster_chaos.rs",
            "run_cluster_chaos",
        ),
        (
            "crates/experiments/src/cluster_chaos.rs",
            "run_cluster_chaos_with_plan",
        ),
        (
            "crates/experiments/src/transport_chaos.rs",
            "run_transport_chaos",
        ),
        (
            "crates/experiments/src/transport_chaos.rs",
            "run_transport_chaos_with_plan",
        ),
        ("crates/experiments/src/parallel.rs", "run_jobs"),
        ("crates/experiments/src/parallel.rs", "run_seeded"),
        ("crates/experiments/src/figures.rs", "fig5"),
        ("crates/experiments/src/figures.rs", "fig67"),
        ("crates/experiments/src/figures.rs", "fig67_traced"),
        ("crates/experiments/src/figures.rs", "fig8"),
        ("crates/experiments/src/sweep.rs", "sweep_cpus_per_task"),
    ],
    det_allowlist: &DEFAULT_DET_ALLOWLIST,
    watchdog_roots: &[("crates/core/src/monitor.rs", "sample_inner")],
    blocking_allowlist: &DEFAULT_BLOCKING_ALLOWLIST,
};

/// Reviewed allocation sites reachable from the `_into` roots:
/// `(file_suffix, fn, token, why)`. Every entry is either an error /
/// fallback path that never runs on a healthy sample round, or a
/// deliberate cache in the chaos-injection layer. A stale entry fails
/// the audit.
pub const DEFAULT_ALLOC_ALLOWLIST: [(&str, &str, &str, &str); 20] = [
    // FaultInjector keeps a last-good clone of each view so chaos
    // decisions can serve stale data (§ fault model); the cache *is*
    // the feature, and the injector wraps sources only in drills.
    (
        "crates/procfs/src/fault.rs",
        "system_stat",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "list_tasks",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "task_stat",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "task_status",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "system_stat_into",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "list_tasks_into",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "task_stat_into",
        "clone",
        "last-good cache, chaos layer",
    ),
    (
        "crates/procfs/src/fault.rs",
        "task_status_into",
        "clone",
        "last-good cache, chaos layer",
    ),
    // Derived `Clone` impls on the view structs — reached only through
    // the fault injector's last-good cache above.
    (
        "crates/procfs/src/types.rs",
        "clone",
        "clone",
        "derived Clone, fault-cache only",
    ),
    (
        "crates/topology/src/cpuset.rs",
        "clone",
        "clone",
        "derived Clone, fault-cache only",
    ),
    // Error-path message formatting: runs only when a /proc read or
    // parse fails, never on the healthy sampling path.
    (
        "crates/procfs/src/linux.rs",
        "classify_read_error",
        "to_string",
        "error path only",
    ),
    (
        "crates/procfs/src/parse.rs",
        "parse_system_stat_into",
        "format!",
        "parse-error path only",
    ),
    (
        "crates/procfs/src/parse.rs",
        "parse_cpu_times",
        "format!",
        "parse-error path only",
    ),
    (
        "crates/procfs/src/parse.rs",
        "parse_task_stat_view",
        "format!",
        "parse-error path only",
    ),
    (
        "crates/procfs/src/parse.rs",
        "parse_task_status_into",
        "format!",
        "parse-error path only",
    ),
    // Owning `list_tasks` fallbacks: the default-trait shims allocate a
    // fresh Vec by contract; hot callers use `list_tasks_into`.
    (
        "crates/procfs/src/linux.rs",
        "list_tasks",
        "Vec::new",
        "owning fallback, cold callers only",
    ),
    (
        "crates/sched/src/proc_source.rs",
        "list_tasks",
        "Vec::new",
        "owning fallback, cold callers only",
    ),
    // The cluster-chaos sim materializes fresh proc views per step by
    // design — it models a remote node, not the in-process hot path.
    (
        "crates/analyze/src/cluster_chaos.rs",
        "list_tasks",
        "vec!",
        "sim materializes views",
    ),
    (
        "crates/analyze/src/cluster_chaos.rs",
        "task_stat",
        "to_string",
        "sim materializes views",
    ),
    (
        "crates/analyze/src/cluster_chaos.rs",
        "task_status",
        "to_string",
        "sim materializes views",
    ),
];

/// Reviewed nondeterministic sites reachable from the sim/experiment
/// roots: `(file_suffix, fn, token, why)`.
pub const DEFAULT_DET_ALLOWLIST: [(&str, &str, &str, &str); 1] = [(
    "crates/core/src/health.rs",
    "quarantined_now",
    "states.values",
    "order-independent count over map values",
)];

/// Reviewed blocking findings: `(file_suffix, fn, token, why)`, where
/// `token` is `lock:effect`.
pub const DEFAULT_BLOCKING_ALLOWLIST: [(&str, &str, &str, &str); 3] = [
    (
        "crates/core/src/attach.rs",
        "start_for_pid",
        "core.attach.monitor:fs::read_dir",
        "priming sample before the thread exists; mirrors LOCK_ALLOWLIST",
    ),
    (
        "crates/core/src/attach.rs",
        "stop",
        "core.attach.monitor:fs::read_dir",
        "final sample after the thread has joined; mirrors LOCK_ALLOWLIST",
    ),
    (
        "crates/analyze/src/chaos.rs",
        "abnormal_exit_drill",
        "analyze.chaos.flush_monitor:fs::create_dir_all",
        "drill-only crash flush; single-threaded harness, no contention",
    ),
];

/// The result of the effect pass.
pub struct EffectAnalysis {
    /// Findings across the three passes plus stale-allowlist entries.
    pub findings: Vec<Finding>,
    /// Fixpoint summaries, indexed like `graph.fns`.
    pub summaries: Vec<EffectSet>,
    /// Total direct effect sites extracted.
    pub sites: usize,
    /// Functions reachable from the hot (`_into`) roots.
    pub hot_reachable: usize,
    /// Functions reachable from the determinism roots.
    pub det_reachable: usize,
}

/// Method names that allocate when called in method position.
const ALLOC_METHODS: [&str; 6] = [
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "to_path_buf",
    "into_owned",
];

/// Owner types whose `new`/`with_capacity`/`from` allocate.
const ALLOC_TYPES: [&str; 9] = [
    "Vec", "String", "Box", "PathBuf", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// Iteration methods with arbitrary order on a hash container.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// `std::fs` free functions that hit the filesystem.
const FS_OPS: [&str; 10] = [
    "read_to_string",
    "read",
    "read_dir",
    "write",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "copy",
    "metadata",
];

/// Whether the ident at `t` begins a call's argument list, allowing a
/// turbofish: `ident (` or `ident :: < … > (`. The call-graph site
/// scanner only matches the bare form, so `collect::<Vec<_>>()` needs
/// this dedicated check.
fn call_open(pf: &ParsedFile, t: usize) -> bool {
    if pf.is_punct(t + 1, '(') {
        return true;
    }
    if !(pf.is_punct(t + 1, ':') && pf.is_punct(t + 2, ':') && pf.is_punct(t + 3, '<')) {
        return false;
    }
    let mut depth = 0i32;
    let mut i = t + 3;
    while i < pf.tokens.len() {
        match pf.tokens[i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return pf.is_punct(i + 1, '(');
                }
            }
            TokKind::Punct(';') | TokKind::Punct('{') => return false,
            _ => {}
        }
        i += 1;
    }
    false
}

/// Identifiers bound to `HashMap`/`HashSet` values in one file, from
/// type ascriptions (`states: HashMap<…>` — struct fields, params,
/// typed lets) and `let x = HashMap::new()` initializers. `BTreeMap`
/// and friends never enter the set: their iteration order is defined.
fn unordered_bindings(pf: &ParsedFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        if !(pf.is_ident(i, "HashMap") || pf.is_ident(i, "HashSet")) {
            continue;
        }
        if pf.is_punct(i + 1, '<') {
            // Walk back over `&`, `:` and path segments to the binding
            // ident: `states : std :: collections :: HashMap <`.
            let mut j = i;
            while j > 0 {
                let p = j - 1;
                let skip = pf.is_punct(p, ':')
                    || pf.is_punct(p, '&')
                    || pf.is_ident(p, "std")
                    || pf.is_ident(p, "collections")
                    || pf.is_ident(p, "mut");
                if !skip {
                    break;
                }
                j = p;
            }
            if j >= 1
                && toks[j - 1].kind == TokKind::Ident
                && !(j >= 2 && pf.is_punct(j - 2, ':'))
                && j < i
            {
                out.insert(pf.text(j - 1).to_string());
            }
        }
        if pf.is_punct(i + 1, ':') && pf.is_punct(i + 2, ':') {
            // `let [mut] x = HashMap::new(…)` — scan back to the
            // statement start and take the `let` target.
            let mut k = i;
            while k > 0 {
                k -= 1;
                if matches!(
                    toks[k].kind,
                    TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
                ) {
                    let mut n = k + 1;
                    if pf.is_ident(n, "let") {
                        n += 1;
                        if pf.is_ident(n, "mut") {
                            n += 1;
                        }
                        if toks.get(n).map(|t| t.kind) == Some(TokKind::Ident) {
                            out.insert(pf.text(n).to_string());
                        }
                    }
                    break;
                }
            }
        }
    }
    out
}

/// Extracts the direct effect sites of one function body.
fn body_effect_sites(
    pf: &ParsedFile,
    item: &FnItem,
    unordered: &BTreeSet<String>,
) -> Vec<EffectSite> {
    let mut out = Vec::new();
    let mut push = |bit: u16, tok: usize, line: usize, token: String| {
        out.push(EffectSite {
            bit,
            tok,
            line,
            token,
        });
    };
    for t in item.body.clone() {
        if pf.tokens[t].kind != TokKind::Ident {
            continue;
        }
        let name = pf.text(t);
        let line = pf.tokens[t].line;
        // Macros.
        if pf.is_punct(t + 1, '!') {
            if matches!(name, "format" | "vec") {
                push(EffectSet::ALLOC, t, line, format!("{name}!"));
            }
            continue;
        }
        let method = t >= 1 && pf.is_punct(t - 1, '.');
        let path_q = if t >= 3
            && pf.is_punct(t - 1, ':')
            && pf.is_punct(t - 2, ':')
            && pf.tokens[t - 3].kind == TokKind::Ident
        {
            Some(pf.text(t - 3))
        } else {
            None
        };
        if method {
            if ALLOC_METHODS.contains(&name) && call_open(pf, t) {
                push(EffectSet::ALLOC, t, line, name.to_string());
            } else if name == "collect" && call_open(pf, t) {
                push(EffectSet::ALLOC, t, line, "collect".into());
            } else if name == "join" && pf.is_punct(t + 1, '(') {
                if pf.is_punct(t + 2, ')') {
                    push(EffectSet::BLOCK_JOIN, t, line, "join".into());
                } else {
                    // `path.join(seg)` / `slice.join(sep)` allocate.
                    push(EffectSet::ALLOC, t, line, "join".into());
                }
            } else if matches!(name, "recv" | "recv_timeout" | "send") && pf.is_punct(t + 1, '(') {
                push(EffectSet::BLOCK_CHAN, t, line, name.to_string());
            } else if matches!(name, "read_to_string" | "read_line" | "sync_all")
                && pf.is_punct(t + 1, '(')
            {
                push(EffectSet::BLOCK_IO, t, line, name.to_string());
            } else if ITER_METHODS.contains(&name)
                && pf.is_punct(t + 1, '(')
                && t >= 2
                && pf.tokens[t - 2].kind == TokKind::Ident
            {
                let recv = pf.text(t - 2);
                if unordered.contains(recv) {
                    push(EffectSet::UNORDERED_ITER, t, line, format!("{recv}.{name}"));
                }
            }
        } else if let Some(q) = path_q {
            match (q, name) {
                ("Instant" | "SystemTime", "now") => {
                    push(EffectSet::WALL_CLOCK, t, line, format!("{q}::now"));
                }
                ("File", "open" | "create") if pf.is_punct(t + 1, '(') => {
                    push(EffectSet::BLOCK_IO, t, line, format!("File::{name}"));
                }
                ("fs", op) if FS_OPS.contains(&op) && pf.is_punct(t + 1, '(') => {
                    push(EffectSet::BLOCK_IO, t, line, format!("fs::{name}"));
                }
                ("thread", "sleep" | "park" | "park_timeout") if pf.is_punct(t + 1, '(') => {
                    push(EffectSet::BLOCK_SLEEP, t, line, format!("thread::{name}"));
                }
                ("thread", "current") => {
                    push(EffectSet::AMBIENT, t, line, "thread::current".into());
                }
                ("process", "id") => {
                    push(EffectSet::AMBIENT, t, line, "process::id".into());
                }
                ("RandomState", "new") => {
                    push(EffectSet::AMBIENT, t, line, "RandomState::new".into());
                }
                (owner, "new" | "with_capacity" | "from")
                    if ALLOC_TYPES.contains(&owner) && call_open(pf, t) =>
                {
                    push(EffectSet::ALLOC, t, line, format!("{q}::{name}"));
                }
                _ => {}
            }
        }
        if matches!(name, "thread_rng" | "from_entropy") && pf.is_punct(t + 1, '(') {
            push(EffectSet::AMBIENT, t, line, name.to_string());
        }
        // `for x in map { … }` — hash-container iteration without a
        // method call.
        if name == "for" && !method {
            let mut depth = 0i32;
            let mut in_at = None;
            let mut i = t + 1;
            while i < pf.tokens.len() {
                match pf.tokens[i].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => break,
                    TokKind::Ident if depth == 0 && pf.is_ident(i, "in") => {
                        in_at = Some(i);
                    }
                    _ => {}
                }
                i += 1;
            }
            if let Some(start) = in_at {
                let mut last_ident: Option<&str> = None;
                let mut has_call = false;
                for j in start + 1..i {
                    match pf.tokens[j].kind {
                        TokKind::Ident => last_ident = Some(pf.text(j)),
                        TokKind::Punct('(') => has_call = true,
                        _ => {}
                    }
                }
                if !has_call {
                    if let Some(id) = last_ident {
                        if unordered.contains(id) {
                            push(
                                EffectSet::UNORDERED_ITER,
                                t,
                                pf.tokens[t].line,
                                format!("{id}.for-in"),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Extracts direct effect sites for every function in the graph. The
/// sanitizer implementation files are skipped, consistent with the lock
/// pass: their thread-id bookkeeping is the *mechanism* of the runtime
/// sanitizer, not an effect of the code under audit.
pub fn effect_sites(graph: &CallGraph) -> Vec<Vec<EffectSite>> {
    let unordered: Vec<BTreeSet<String>> = graph.files.iter().map(unordered_bindings).collect();
    graph
        .fns
        .iter()
        .map(|node| {
            if is_sanitizer_impl(&node.item.file) {
                return Vec::new();
            }
            let pf = &graph.files[node.file_idx];
            body_effect_sites(pf, &node.item, &unordered[node.file_idx])
        })
        .collect()
}

/// Propagates direct effects to a fixpoint over an explicit callee
/// list. Exposed for the monotonicity/fixpoint property tests.
pub fn propagate_over(callees: &[Vec<usize>], direct: &[EffectSet]) -> Vec<EffectSet> {
    let mut eff: Vec<EffectSet> = direct.to_vec();
    loop {
        let mut changed = false;
        for (i, cs) in callees.iter().enumerate() {
            let mut acc = eff[i];
            for &c in cs {
                acc = acc.union(eff[c]);
            }
            if acc != eff[i] {
                eff[i] = acc;
                changed = true;
            }
        }
        if !changed {
            return eff;
        }
    }
}

/// Propagates direct effects to a fixpoint over the call graph.
pub fn propagate(graph: &CallGraph, direct: &[EffectSet]) -> Vec<EffectSet> {
    let callees: Vec<Vec<usize>> = graph.fns.iter().map(|f| f.callees.clone()).collect();
    propagate_over(&callees, direct)
}

/// Checks `(file, func, token)` against an allowlist, recording hits.
fn allow_hit(
    list: &[(&str, &str, &str, &str)],
    hits: &mut [usize],
    file: &str,
    func: &str,
    token: &str,
) -> bool {
    let mut any = false;
    for (i, (f, fun, tok, _)) in list.iter().enumerate() {
        if file.ends_with(f) && func == *fun && token == *tok {
            hits[i] += 1;
            any = true;
        }
    }
    any
}

/// Emits stale-allowlist findings for entries that matched nothing.
fn stale_entries(
    findings: &mut Vec<Finding>,
    list: &[(&str, &str, &str, &str)],
    hits: &[usize],
    pass: &str,
) {
    for (i, (file, func, token, _)) in list.iter().enumerate() {
        if hits[i] == 0 {
            findings.push(Finding {
                pass: "stale-allowlist",
                file: file.to_string(),
                line: 0,
                func: func.to_string(),
                token: token.to_string(),
                detail: format!(
                    "{pass} allowlist entry ({file}, {func}, {token}) matches no current site"
                ),
                witness: Vec::new(),
            });
        }
    }
}

/// Names of the effect bits in `mask`, for human-readable details.
pub fn bit_name(bit: u16) -> &'static str {
    match bit {
        EffectSet::ALLOC => "alloc",
        EffectSet::WALL_CLOCK => "wall-clock",
        EffectSet::AMBIENT => "ambient",
        EffectSet::UNORDERED_ITER => "unordered-iter",
        EffectSet::BLOCK_SLEEP => "sleep",
        EffectSet::BLOCK_CHAN => "channel",
        EffectSet::BLOCK_IO => "file-io",
        EffectSet::BLOCK_JOIN => "join",
        _ => "effect",
    }
}

/// One reachability pass: report every direct site with a bit in
/// `mask` inside a function reachable from `roots`.
#[allow(clippy::too_many_arguments)]
fn reach_pass(
    graph: &CallGraph,
    sites: &[Vec<EffectSite>],
    roots: &[usize],
    mask: u16,
    pass: &'static str,
    scope: &str,
    allowlist: &[(&str, &str, &str, &str)],
    findings: &mut Vec<Finding>,
) -> usize {
    let parents = graph.reach_from(roots);
    let mut hits = vec![0usize; allowlist.len()];
    let mut reachable = 0usize;
    for (fi, p) in parents.iter().enumerate() {
        if p.is_none() {
            continue;
        }
        reachable += 1;
        let node = &graph.fns[fi];
        for s in &sites[fi] {
            if s.bit & mask == 0 {
                continue;
            }
            if allow_hit(
                allowlist,
                &mut hits,
                &node.item.file,
                &node.item.name,
                &s.token,
            ) {
                continue;
            }
            let witness = graph.path_chain(&parents, fi);
            findings.push(Finding {
                pass,
                file: node.item.file.clone(),
                line: s.line,
                func: node.item.name.clone(),
                token: s.token.clone(),
                detail: format!(
                    "{} effect `{}` in `{}` is reachable from {} via {}",
                    bit_name(s.bit),
                    s.token,
                    node.item.name,
                    scope,
                    witness.join(" -> ")
                ),
                witness,
            });
        }
    }
    stale_entries(findings, allowlist, &hits, pass);
    reachable
}

/// Runs the effect passes over a built call graph, reusing the lock
/// pass's acquisitions for held ranges.
pub fn analyze_effects(graph: &CallGraph, la: &LockAnalysis, cfg: &EffectConfig) -> EffectAnalysis {
    let sites = effect_sites(graph);
    let direct: Vec<EffectSet> = sites
        .iter()
        .map(|v| {
            v.iter()
                .fold(EffectSet::empty(), |acc, s| acc.union(EffectSet(s.bit)))
        })
        .collect();
    let summaries = propagate(graph, &direct);
    let mut findings: Vec<Finding> = Vec::new();

    // Pass 1: hot-path allocation.
    let mut hot_roots: Vec<usize> = Vec::new();
    if !cfg.hot_root_suffix.is_empty() {
        hot_roots.extend(
            (0..graph.fns.len()).filter(|&i| graph.fns[i].item.name.ends_with(cfg.hot_root_suffix)),
        );
    }
    for (file, name) in cfg.hot_roots {
        hot_roots.extend(graph.matching(file, name));
    }
    let hot_reachable = reach_pass(
        graph,
        &sites,
        &hot_roots,
        EffectSet::ALLOC,
        "hot-path-alloc",
        "the `_into` sampling roots",
        cfg.alloc_allowlist,
        &mut findings,
    );

    // Pass 2: determinism.
    let mut det_roots: Vec<usize> = Vec::new();
    for (fi, node) in graph.fns.iter().enumerate() {
        if cfg
            .det_root_prefixes
            .iter()
            .any(|p| node.item.file.starts_with(p))
        {
            det_roots.push(fi);
        }
    }
    for (file, name) in cfg.det_roots {
        det_roots.extend(graph.matching(file, name));
    }
    let det_reachable = reach_pass(
        graph,
        &sites,
        &det_roots,
        DET_MASK,
        "nondeterminism",
        "the sim/experiment roots",
        cfg.det_allowlist,
        &mut findings,
    );

    // Pass 3a: blocking inside the deadline-watchdog scope.
    let mut wd_roots: Vec<usize> = Vec::new();
    for (file, name) in cfg.watchdog_roots {
        wd_roots.extend(graph.matching(file, name));
    }
    let mut blocking_hits = vec![0usize; cfg.blocking_allowlist.len()];
    {
        let parents = graph.reach_from(&wd_roots);
        for (fi, p) in parents.iter().enumerate() {
            if p.is_none() {
                continue;
            }
            let node = &graph.fns[fi];
            for s in &sites[fi] {
                if s.bit & WATCHDOG_MASK == 0 {
                    continue;
                }
                if allow_hit(
                    cfg.blocking_allowlist,
                    &mut blocking_hits,
                    &node.item.file,
                    &node.item.name,
                    &s.token,
                ) {
                    continue;
                }
                let witness = graph.path_chain(&parents, fi);
                findings.push(Finding {
                    pass: "blocking",
                    file: node.item.file.clone(),
                    line: s.line,
                    func: node.item.name.clone(),
                    token: s.token.clone(),
                    detail: format!(
                        "{} effect `{}` in `{}` blocks inside the deadline-watchdog scope via {}",
                        bit_name(s.bit),
                        s.token,
                        node.item.name,
                        witness.join(" -> ")
                    ),
                    witness,
                });
            }
        }
    }

    // Pass 3b: blocking while a lock is held. Direct sites inside the
    // held range, plus calls whose callee summaries carry a blocking
    // bit — witnessed down to the nearest function with a direct site.
    for a in &la.acquisitions {
        let node = &graph.fns[a.fn_idx];
        let pf = &graph.files[node.file_idx];
        let range = (a.token + 1)..a.held_until;
        for s in &sites[a.fn_idx] {
            if s.bit & HELD_MASK == 0 || !range.contains(&s.tok) {
                continue;
            }
            let token = format!("{}:{}", a.lock, s.token);
            if allow_hit(
                cfg.blocking_allowlist,
                &mut blocking_hits,
                &node.item.file,
                &node.item.name,
                &token,
            ) {
                continue;
            }
            findings.push(Finding {
                pass: "blocking",
                file: node.item.file.clone(),
                line: s.line,
                func: node.item.name.clone(),
                token,
                detail: format!(
                    "lock `{}` (acquired {}:{}) is held across {} effect `{}`",
                    a.lock,
                    node.item.file,
                    a.line,
                    bit_name(s.bit),
                    s.token
                ),
                witness: vec![node.item.name.clone()],
            });
        }
        for site in &node.sites {
            if site.kind != SiteKind::Call || !range.contains(&site.token) {
                continue;
            }
            if site.token == a.token {
                continue;
            }
            let carried: Vec<usize> = graph
                .resolve_site(node.file_idx, site)
                .into_iter()
                .filter(|&c| summaries[c].intersects(HELD_MASK))
                .collect();
            if carried.is_empty() {
                continue;
            }
            // Shortest witness into the callee cone: the nearest fn
            // with a direct blocking site.
            let parents = graph.reach_from(&carried);
            let mut best: Option<(usize, Vec<String>, &EffectSite)> = None;
            for (fi2, p) in parents.iter().enumerate() {
                if p.is_none() {
                    continue;
                }
                for s in &sites[fi2] {
                    if s.bit & HELD_MASK == 0 {
                        continue;
                    }
                    let chain = graph.path_chain(&parents, fi2);
                    let better = match &best {
                        None => true,
                        Some((len, c, _)) => (chain.len(), &chain) < (*len, c),
                    };
                    if better {
                        best = Some((chain.len(), chain, s));
                    }
                }
            }
            let Some((_, chain, bs)) = best else { continue };
            let token = format!("{}:{}", a.lock, bs.token);
            if allow_hit(
                cfg.blocking_allowlist,
                &mut blocking_hits,
                &node.item.file,
                &node.item.name,
                &token,
            ) {
                continue;
            }
            let mut witness = vec![node.item.name.clone()];
            witness.extend(chain.iter().cloned());
            findings.push(Finding {
                pass: "blocking",
                file: node.item.file.clone(),
                line: pf.tokens[site.token].line,
                func: node.item.name.clone(),
                token,
                detail: format!(
                    "lock `{}` (acquired {}:{}) is held across call to `{}` which may reach \
                     {} effect `{}` via {}",
                    a.lock,
                    node.item.file,
                    a.line,
                    site.name,
                    bit_name(bs.bit),
                    bs.token,
                    witness.join(" -> ")
                ),
                witness,
            });
        }
    }
    stale_entries(
        &mut findings,
        cfg.blocking_allowlist,
        &blocking_hits,
        "blocking",
    );

    EffectAnalysis {
        findings,
        summaries,
        sites: sites.iter().map(Vec::len).sum(),
        hot_reachable,
        det_reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::items::parse_file;
    use crate::audit::locks::analyze_locks;

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(srcs.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    fn run(srcs: &[(&str, &str)], cfg: &EffectConfig) -> EffectAnalysis {
        let g = graph(srcs);
        let la = analyze_locks(&g);
        analyze_effects(&g, &la, cfg)
    }

    #[test]
    fn extraction_classifies_each_effect_kind() {
        let g = graph(&[(
            "a.rs",
            "\
fn f(m: &HashMap<u32, u32>, rx: &Receiver<u32>) {
    let s = x.to_string();
    let v: Vec<u32> = it.collect::<Vec<u32>>();
    let t0 = Instant::now();
    let me = thread::current();
    for (k, v) in m {}
    thread::sleep(d);
    let msg = rx.recv();
    let text = fs::read_to_string(p);
    handle.join();
    let label = format!(\"x{}\", 1);
}
",
        )]);
        let sites = effect_sites(&g);
        let bits: Vec<u16> = sites[0].iter().map(|s| s.bit).collect();
        for expect in [
            EffectSet::ALLOC,
            EffectSet::WALL_CLOCK,
            EffectSet::AMBIENT,
            EffectSet::UNORDERED_ITER,
            EffectSet::BLOCK_SLEEP,
            EffectSet::BLOCK_CHAN,
            EffectSet::BLOCK_IO,
            EffectSet::BLOCK_JOIN,
        ] {
            assert!(bits.contains(&expect), "missing bit {expect}: {sites:?}");
        }
        // Turbofish collect was caught.
        assert!(sites[0].iter().any(|s| s.token == "collect"));
    }

    #[test]
    fn btreemap_iteration_is_ordered_and_not_flagged() {
        let g = graph(&[(
            "a.rs",
            "\
fn f(m: &BTreeMap<u32, u32>, h: HashMap<u32, u32>) {
    for x in m {}
    let n = h.values().count();
}
",
        )]);
        let sites = effect_sites(&g);
        let unordered: Vec<&EffectSite> = sites[0]
            .iter()
            .filter(|s| s.bit == EffectSet::UNORDERED_ITER)
            .collect();
        assert_eq!(unordered.len(), 1, "{unordered:?}");
        assert_eq!(unordered[0].token, "h.values");
    }

    #[test]
    fn hot_path_alloc_flags_reachable_allocation_with_witness() {
        let ea = run(
            &[(
                "crates/x/src/a.rs",
                "\
fn task_stat_into(buf: &mut String) { helper(buf); }
fn helper(buf: &mut String) { leaf(buf); }
fn leaf(buf: &mut String) { let s = buf.clone(); }
fn island() { let v = Vec::new(); }
",
            )],
            &EffectConfig::empty(),
        );
        let hot: Vec<&Finding> = ea
            .findings
            .iter()
            .filter(|f| f.pass == "hot-path-alloc")
            .collect();
        assert_eq!(hot.len(), 1, "{:?}", ea.findings);
        assert_eq!(hot[0].func, "leaf");
        assert_eq!(
            hot[0].witness,
            vec!["task_stat_into", "helper", "leaf"],
            "witness should be the shortest root->site chain"
        );
    }

    #[test]
    fn determinism_pass_uses_named_roots() {
        let cfg = EffectConfig {
            det_roots: &[("a.rs", "run_sim")],
            ..EffectConfig::empty()
        };
        let ea = run(
            &[(
                "a.rs",
                "\
fn run_sim() { step(); }
fn step() { let t = Instant::now(); }
fn unrelated() { let t = SystemTime::now(); }
",
            )],
            &cfg,
        );
        let det: Vec<&Finding> = ea
            .findings
            .iter()
            .filter(|f| f.pass == "nondeterminism")
            .collect();
        assert_eq!(det.len(), 1, "{:?}", ea.findings);
        assert_eq!(det[0].func, "step");
        assert_eq!(det[0].token, "Instant::now");
    }

    #[test]
    fn blocking_under_lock_direct_and_via_callee() {
        let ea = run(
            &[(
                "a.rs",
                "\
fn direct(x: &M) {
    let g = x.alpha.lock();
    thread::sleep(d);
}
fn outer(x: &M) {
    let g = x.beta.lock();
    helper();
}
fn helper() { let s = fs::read_to_string(p); }
fn fine(x: &M) {
    x.alpha.lock().push(1);
    thread::sleep(d);
}
",
            )],
            &EffectConfig::empty(),
        );
        let blocking: Vec<&Finding> = ea
            .findings
            .iter()
            .filter(|f| f.pass == "blocking")
            .collect();
        assert!(
            blocking
                .iter()
                .any(|f| f.func == "direct" && f.token == "alpha:thread::sleep"),
            "{blocking:?}"
        );
        let via = blocking
            .iter()
            .find(|f| f.func == "outer")
            .expect("callee-carried finding");
        assert_eq!(via.token, "beta:fs::read_to_string");
        assert_eq!(via.witness, vec!["outer", "helper"]);
        assert!(!blocking.iter().any(|f| f.func == "fine"), "{blocking:?}");
    }

    #[test]
    fn watchdog_scope_flags_sleep_and_join() {
        let cfg = EffectConfig {
            watchdog_roots: &[("a.rs", "sample_inner")],
            ..EffectConfig::empty()
        };
        let ea = run(
            &[(
                "a.rs",
                "\
fn sample_inner() { wait(); }
fn wait() { thread::sleep(d); handle.join(); }
",
            )],
            &cfg,
        );
        let tokens: Vec<&str> = ea
            .findings
            .iter()
            .filter(|f| f.pass == "blocking")
            .map(|f| f.token.as_str())
            .collect();
        assert!(tokens.contains(&"thread::sleep"), "{:?}", ea.findings);
        assert!(tokens.contains(&"join"), "{:?}", ea.findings);
    }

    #[test]
    fn allowlist_suppresses_and_stale_entry_fails() {
        let allow = [
            ("a.rs", "leaf", "clone", "scratch-buffer clone, reviewed"),
            ("a.rs", "gone", "clone", "stale"),
        ];
        let cfg = EffectConfig {
            alloc_allowlist: &allow,
            ..EffectConfig::empty()
        };
        let ea = run(
            &[(
                "a.rs",
                "fn run_into(b: &B) { leaf(b); }\nfn leaf(b: &B) { let c = b.clone(); }\n",
            )],
            &cfg,
        );
        assert!(
            !ea.findings.iter().any(|f| f.pass == "hot-path-alloc"),
            "{:?}",
            ea.findings
        );
        let stale: Vec<&Finding> = ea
            .findings
            .iter()
            .filter(|f| f.pass == "stale-allowlist")
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", ea.findings);
        assert_eq!(stale[0].func, "gone");
    }

    #[test]
    fn fixpoint_terminates_on_self_and_mutual_recursion() {
        let g = graph(&[(
            "a.rs",
            "\
fn selfrec(n: u32) { if n > 0 { selfrec(n - 1); } let s = x.to_string(); }
fn ping(n: u32) { pong(n); }
fn pong(n: u32) { if n > 0 { ping(n - 1); } thread::sleep(d); }
",
        )]);
        let sites = effect_sites(&g);
        let direct: Vec<EffectSet> = sites
            .iter()
            .map(|v| {
                v.iter()
                    .fold(EffectSet::empty(), |a, s| a.union(EffectSet(s.bit)))
            })
            .collect();
        let summ = propagate(&g, &direct);
        let idx = |n: &str| g.matching("a.rs", n)[0];
        assert!(summ[idx("selfrec")].intersects(EffectSet::ALLOC));
        // Mutual recursion: both sides end up with the sleep bit.
        assert!(summ[idx("ping")].intersects(EffectSet::BLOCK_SLEEP));
        assert!(summ[idx("pong")].intersects(EffectSet::BLOCK_SLEEP));
    }

    #[test]
    fn propagation_is_monotone_under_edge_addition() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        for _trial in 0..50 {
            let n = 2 + next(10);
            let mut callees: Vec<Vec<usize>> = (0..n)
                .map(|_| (0..next(4)).map(|_| next(n)).collect())
                .collect();
            let direct: Vec<EffectSet> = (0..n).map(|_| EffectSet((next(256)) as u16)).collect();
            let before = propagate_over(&callees, &direct);
            // Add one random edge; every summary must only grow.
            callees[next(n)].push(next(n));
            let after = propagate_over(&callees, &direct);
            for i in 0..n {
                assert!(
                    before[i].le(after[i]),
                    "summary shrank at {i}: {:?} -> {:?}",
                    before[i],
                    after[i]
                );
            }
            // Idempotence: propagating a fixpoint changes nothing.
            let again = propagate_over(&callees, &after);
            assert_eq!(again, after);
        }
    }
}
