//! A lightweight item parser: recovers `fn` items, their bodies, and
//! their call/panic/lock sites from the token stream.
//!
//! This is *not* a Rust parser. It tracks exactly enough structure for
//! the interprocedural passes:
//!
//! * function items with name, enclosing `impl` type, parameter names,
//!   body token range, and whether they are test code (`#[test]` or
//!   inside a `#[cfg(test)]` module);
//! * call expressions inside bodies (`name(…)`, `path::name(…)`,
//!   `.name(…)` — resolved later by bare name);
//! * macro invocations (`name!…`);
//! * index expressions (`expr[…]` — a potential panic site).
//!
//! Known approximations (see DESIGN.md §10): nested `fn`s and closures
//! are attributed to the enclosing item's body, calls are keyed by bare
//! name only, and trait-object/closure indirect calls are invisible.

use super::lexer::{lex, TokKind, Token};
use std::ops::Range;

/// A recovered function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, when inside an `impl` block.
    pub impl_type: Option<String>,
    /// Repo-relative file (as given to [`parse_file`]).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, **excluding** the outer braces.
    pub body: Range<usize>,
    /// True for `#[test]` functions and anything inside a
    /// `#[cfg(test)]` module.
    pub is_test: bool,
    /// Parameter names, in order (`self` included when present).
    pub params: Vec<String>,
}

impl FnItem {
    /// `file:Type::name`-style display identifier.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}:{}::{}", self.file, t, self.name),
            None => format!("{}:{}", self.file, self.name),
        }
    }
}

/// One parsed file: the token stream (comments stripped) plus the
/// recovered items.
pub struct ParsedFile {
    /// Repo-relative path.
    pub file: String,
    /// The source text (needed to read token spans).
    pub src: String,
    /// Comment-free token stream.
    pub tokens: Vec<Token>,
    /// Recovered function items, in source order.
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.src)
    }

    /// True if token `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .map(|t| t.kind == TokKind::Ident && t.text(&self.src) == name)
            .unwrap_or(false)
    }

    /// True if token `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.tokens
            .get(i)
            .map(|t| t.kind == TokKind::Punct(c))
            .unwrap_or(false)
    }

    /// Line of token `i`.
    pub fn line(&self, i: usize) -> usize {
        self.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Index of the matching `}` for the `{` at token `open` (or the
    /// last token if unbalanced).
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.tokens.len() {
            match self.tokens[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len().saturating_sub(1)
    }
}

/// Scope tracked while walking the token stream.
#[derive(Debug, Clone)]
struct Scope {
    close: usize,
    is_test: bool,
    impl_type: Option<String>,
}

/// Parses `src` (living at repo-relative `file`) into items.
pub fn parse_file(file: &str, src: &str) -> ParsedFile {
    let tokens: Vec<Token> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut pf = ParsedFile {
        file: file.to_string(),
        src: src.to_string(),
        tokens,
        fns: Vec::new(),
    };
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test = false; // #[test] / #[cfg(test)] seen for next item
    let mut pending_impl: Option<String> = None; // impl header parsed, awaiting `{`
    let mut i = 0usize;
    while i < pf.tokens.len() {
        // Leave scopes whose close brace we've passed.
        while scopes.last().map(|s| i > s.close).unwrap_or(false) {
            scopes.pop();
        }
        // Attributes: detect test-gating ones, skip all of them.
        if pf.is_punct(i, '#') {
            if let Some((end, kind)) = classify_attr(&pf, i) {
                if kind != AttrKind::Other {
                    pending_test = true;
                }
                i = end;
                continue;
            }
        }
        if pf.is_ident(i, "impl") {
            // Recover the implemented type: the first type name after
            // `for` if present, else the first after the generics.
            let (ty, at) = parse_impl_header(&pf, i);
            pending_impl = ty;
            i = at;
            continue;
        }
        if pf.is_ident(i, "mod") {
            // `mod name {` opens a scope inheriting the test flag.
            let mut j = i + 1;
            while j < pf.tokens.len() && !pf.is_punct(j, '{') && !pf.is_punct(j, ';') {
                j += 1;
            }
            if pf.is_punct(j, '{') {
                let close = pf.matching_brace(j);
                scopes.push(Scope {
                    close,
                    is_test: pending_test || scopes.last().map(|s| s.is_test).unwrap_or(false),
                    impl_type: None,
                });
            }
            pending_test = false;
            i = j + 1;
            continue;
        }
        if pf.is_ident(i, "fn") {
            let in_test = pending_test || scopes.iter().any(|s| s.is_test);
            pending_test = false;
            if let Some((item, next)) = parse_fn(&pf, i, in_test, &scopes) {
                pf.fns.push(item);
                i = next;
                continue;
            }
            i += 1;
            continue;
        }
        if pf.is_punct(i, '{') {
            let close = pf.matching_brace(i);
            scopes.push(Scope {
                close,
                is_test: scopes.last().map(|s| s.is_test).unwrap_or(false),
                impl_type: pending_impl
                    .take()
                    .or_else(|| scopes.last().and_then(|s| s.impl_type.clone())),
            });
            i += 1;
            continue;
        }
        if !pf.is_punct(i, '#') {
            pending_test = pending_test && !starts_item(&pf, i);
        }
        i += 1;
    }
    pf
}

/// Whether token `i` starts a non-fn item that would consume a pending
/// test attribute (`use`, `static`, `const`, `struct`, …).
fn starts_item(pf: &ParsedFile, i: usize) -> bool {
    ["use", "static", "const", "struct", "enum", "type", "trait"]
        .iter()
        .any(|k| pf.is_ident(i, k))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttrKind {
    Test,
    Other,
}

/// If token `i` starts an attribute, returns (one past `]`, kind).
fn classify_attr(pf: &ParsedFile, i: usize) -> Option<(usize, AttrKind)> {
    if !pf.is_punct(i, '#') {
        return None;
    }
    let mut j = i + 1;
    if pf.is_punct(j, '!') {
        j += 1;
    }
    if !pf.is_punct(j, '[') {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    let mut end = None;
    while j < pf.tokens.len() {
        match pf.tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    end = Some(j + 1);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let end = end?;
    // `#[test]`
    if pf.is_ident(open + 1, "test") && pf.is_punct(open + 2, ']') {
        return Some((end, AttrKind::Test));
    }
    // `#[cfg(test)]` / `#[cfg(all(test, …))]`
    if pf.is_ident(open + 1, "cfg") && pf.is_punct(open + 2, '(') {
        if pf.is_ident(open + 3, "test") {
            return Some((end, AttrKind::Test));
        }
        if pf.is_ident(open + 3, "all")
            && pf.is_punct(open + 4, '(')
            && pf.is_ident(open + 5, "test")
        {
            return Some((end, AttrKind::Test));
        }
    }
    Some((end, AttrKind::Other))
}

/// Parses an `impl` header starting at token `i` (`impl`), returning
/// the implemented type name and the index of the opening `{`.
fn parse_impl_header(pf: &ParsedFile, i: usize) -> (Option<String>, usize) {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut first_ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < pf.tokens.len() {
        match pf.tokens[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => break,
            TokKind::Punct(';') if angle <= 0 => break,
            TokKind::Ident if angle <= 0 => {
                let t = pf.text(j);
                if t == "for" {
                    saw_for = true;
                } else if t == "where" {
                    // Type name comes before the where clause.
                } else if saw_for {
                    if after_for.is_none() {
                        after_for = Some(t.to_string());
                    }
                } else if first_ty.is_none() && t != "dyn" {
                    first_ty = Some(t.to_string());
                } else {
                    // Later path segments win: `impl fmt::Display for X`
                    // keeps X via after_for; `impl zerosum::Monitor`
                    // keeps the last segment.
                    if !saw_for && pf.is_punct(j.wrapping_sub(1), ':') {
                        first_ty = Some(t.to_string());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (after_for.or(first_ty), j)
}

/// Parses a `fn` item starting at token `i` (`fn`). Returns the item
/// and the index to continue scanning from (just after the opening
/// brace so nested scopes are still walked).
fn parse_fn(pf: &ParsedFile, i: usize, is_test: bool, scopes: &[Scope]) -> Option<(FnItem, usize)> {
    let name_tok = i + 1;
    if pf.tokens.get(name_tok)?.kind != TokKind::Ident {
        return None;
    }
    let name = pf.text(name_tok).to_string();
    // Walk the signature: skip generics `<…>`, collect parameter names
    // from the top-level paren group, then find the body `{` (or `;`
    // for a bodyless declaration).
    let mut j = name_tok + 1;
    let mut params = Vec::new();
    // Generics.
    if pf.is_punct(j, '<') {
        let mut angle = 0i32;
        while j < pf.tokens.len() {
            match pf.tokens[j].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Parameters.
    if pf.is_punct(j, '(') {
        let mut paren = 0i32;
        let open = j;
        while j < pf.tokens.len() {
            match pf.tokens[j].kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                TokKind::Ident if paren == 1 => {
                    let t = pf.text(j);
                    if t == "self" {
                        params.push("self".to_string());
                    } else if t != "mut" && pf.is_punct(j + 1, ':') {
                        // `name: Type` at top level — but only when the
                        // previous token is `(`, `,`, or `mut`
                        // (excludes struct-pattern params).
                        let prev_ok =
                            j == open + 1 || pf.is_punct(j - 1, ',') || pf.is_ident(j - 1, "mut");
                        if prev_ok {
                            params.push(t.to_string());
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Find body `{` (skipping return type / where clause) or `;`.
    let mut angle = 0i32;
    while j < pf.tokens.len() {
        match pf.tokens[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = (angle - 1).max(0),
            TokKind::Punct('{') if angle == 0 => break,
            TokKind::Punct(';') if angle == 0 => {
                // Bodyless (trait method declaration).
                return None;
            }
            _ => {}
        }
        j += 1;
    }
    if j >= pf.tokens.len() {
        return None;
    }
    let open = j;
    let close = pf.matching_brace(open);
    let impl_type = scopes.iter().rev().find_map(|s| s.impl_type.clone());
    Some((
        FnItem {
            name,
            impl_type,
            file: pf.file.clone(),
            line: pf.tokens[i].line,
            body: (open + 1)..close,
            is_test,
            params,
        },
        open + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_fns_with_bodies_and_params() {
        let src = "\
fn free(a: u32, mut b: &str) -> u32 { a }
struct S;
impl S {
    pub fn method(&self, x: Option<u32>) -> u32 { x.unwrap() }
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let pf = parse_file("a.rs", src);
        let names: Vec<(String, Option<String>)> = pf
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
            ]
        );
        assert_eq!(pf.fns[0].params, vec!["a", "b"]);
        assert_eq!(pf.fns[1].params, vec!["self", "x"]);
    }

    #[test]
    fn test_fns_and_test_mods_are_marked() {
        let src = "\
fn live() {}
#[test]
fn unit() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn t() {}
}
";
        let pf = parse_file("a.rs", src);
        let by_name: Vec<(String, bool)> =
            pf.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            by_name,
            vec![
                ("live".into(), false),
                ("unit".into(), true),
                ("helper".into(), true),
                ("t".into(), true),
            ]
        );
    }

    #[test]
    fn generics_where_clauses_and_nested_braces() {
        let src = "\
pub fn run<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let x = if workers > 0 { 1 } else { 2 };
    inner(x)
}
fn inner(v: usize) -> usize { v }
";
        let pf = parse_file("a.rs", src);
        assert_eq!(pf.fns.len(), 2);
        assert_eq!(pf.fns[0].name, "run");
        assert_eq!(pf.fns[0].params, vec!["jobs", "workers"]);
        // Body range covers the call to `inner`.
        let body_text: Vec<&str> = pf.fns[0].body.clone().map(|k| pf.text(k)).collect();
        assert!(body_text.contains(&"inner"));
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let src = "trait T { fn decl(&self) -> u32; fn with_default(&self) -> u32 { 1 } }";
        let pf = parse_file("a.rs", src);
        assert_eq!(pf.fns.len(), 1);
        assert_eq!(pf.fns[0].name, "with_default");
    }
}
