//! A comment/string/raw-string–correct Rust lexer.
//!
//! This is the single place in the repo that knows how to separate Rust
//! *code* from comments and literals. Both the `zslint` rules and the
//! `zsaudit` interprocedural passes consume its token stream, so the
//! brace-counting/string-stripping logic exists exactly once.
//!
//! The lexer is deliberately small: it produces identifiers, lifetimes,
//! literals, and single-character punctuation with exact line numbers
//! and byte spans. It does **not** try to be a full Rust grammar — the
//! item parser on top of it ([`super::items`]) recovers only what the
//! audit passes need (functions, bodies, calls).
//!
//! Handled correctly (the classes the old purely-textual scanner got
//! wrong or nearly wrong):
//!
//! * nested block comments `/* /* */ */`;
//! * cooked strings with escapes (`"\\"`, `"\""`);
//! * **raw strings** `r"…"`, `r#"…"#`, … — no escape processing, so
//!   `r"\"` ends at the second quote instead of swallowing the rest of
//!   the file;
//! * byte strings/chars `b"…"`, `b'x'` and raw byte strings `br#"…"#`;
//! * char literals vs lifetimes (`'a'` vs `'a`), including punctuation
//!   chars like `'{'` and `'}'`.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`, `'static`). Distinct from char literals.
    Lifetime,
    /// String literal of any flavor (cooked, raw, byte, raw byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct(char),
    /// Line or block comment (kept in the stream so blanking can use
    /// spans; the item parser filters these out).
    Comment,
}

/// One lexed token: kind, exact source span, and 1-based line number.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: usize,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// For [`TokKind::Str`] tokens: the literal's contents (between the
    /// quotes, raw-prefix and hashes stripped). Escapes are not
    /// processed — good enough for recovering lock names, which the
    /// audit requires to be plain.
    pub fn str_contents<'s>(&self, src: &'s str) -> &'s str {
        let t = self.text(src);
        let open = match t.find('"') {
            Some(i) => i,
            None => return "",
        };
        let hashes = t[..open].chars().filter(|&c| c == '#').count();
        let body = &t[open + 1..];
        let close = body.len().saturating_sub(1 + hashes);
        body.get(..close).unwrap_or("")
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<(usize, char)>,
    src_len: usize,
    i: usize,
    line: usize,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.char_indices().collect(),
            src_len: src.len(),
            i: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars
            .get(self.i)
            .map(|&(p, _)| p)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    /// Consumes a cooked (escape-processing) string/char body after the
    /// opening delimiter, up to and including the closing `delim`.
    fn eat_cooked(&mut self, delim: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == delim {
                break;
            }
        }
    }

    /// Consumes a raw string body after `r`/`br` given `hashes` leading
    /// `#`s and the opening quote have been consumed: ends at `"`
    /// followed by `hashes` `#`s. No escapes.
    fn eat_raw(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c != '"' {
                continue;
            }
            let mut ok = true;
            for k in 0..hashes {
                if self.peek(k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }
}

/// Lexes `src` into a token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let start = cur.pos();
        let line = cur.line;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c2) = cur.peek(0) {
                if c2 == '\n' {
                    break;
                }
                cur.bump();
            }
            out.push(Token {
                kind: TokKind::Comment,
                start,
                end: cur.pos(),
                line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.push(Token {
                kind: TokKind::Comment,
                start,
                end: cur.pos(),
                line,
            });
            continue;
        }
        // Identifiers, and the string/char prefixes that look like them
        // (r"", r#""#, b"", b'', br#""#, c"").
        if is_ident_start(c) {
            let mut ident = String::new();
            while let Some(c2) = cur.peek(0) {
                if is_ident_cont(c2) {
                    ident.push(c2);
                    cur.bump();
                } else {
                    break;
                }
            }
            let raw = matches!(ident.as_str(), "r" | "br" | "cr");
            let stringish = raw || matches!(ident.as_str(), "b" | "c");
            if stringish {
                // Count `#`s, then require `"` for a raw literal; plain
                // `b"`/`c"` need the quote immediately.
                let mut hashes = 0usize;
                while raw && cur.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(hashes) == Some('"') && (raw || hashes == 0) {
                    for _ in 0..=hashes {
                        cur.bump(); // hashes + opening quote
                    }
                    if raw {
                        cur.eat_raw(hashes);
                    } else {
                        cur.eat_cooked('"');
                    }
                    out.push(Token {
                        kind: TokKind::Str,
                        start,
                        end: cur.pos(),
                        line,
                    });
                    continue;
                }
                if ident == "b" && cur.peek(0) == Some('\'') {
                    cur.bump();
                    cur.eat_cooked('\'');
                    out.push(Token {
                        kind: TokKind::Char,
                        start,
                        end: cur.pos(),
                        line,
                    });
                    continue;
                }
            }
            out.push(Token {
                kind: TokKind::Ident,
                start,
                end: cur.pos(),
                line,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            cur.bump();
            cur.eat_cooked('"');
            out.push(Token {
                kind: TokKind::Str,
                start,
                end: cur.pos(),
                line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = cur.peek(1);
            let is_char = match next {
                Some('\\') => true,
                // 'x' (any single char followed by a closing quote,
                // covering punctuation chars like '{').
                Some(_) => cur.peek(2) == Some('\''),
                None => false,
            };
            if is_char {
                cur.bump();
                cur.eat_cooked('\'');
                out.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: cur.pos(),
                    line,
                });
            } else {
                // Lifetime: `'` + identifier, no closing quote.
                cur.bump();
                while let Some(c2) = cur.peek(0) {
                    if is_ident_cont(c2) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Lifetime,
                    start,
                    end: cur.pos(),
                    line,
                });
            }
            continue;
        }
        // Numbers (enough to keep `1.0e-3`, `0xFF`, `1_000` atomic; `..`
        // after an integer stays punctuation).
        if c.is_ascii_digit() {
            cur.bump();
            while let Some(c2) = cur.peek(0) {
                let in_float =
                    c2 == '.' && cur.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false);
                if is_ident_cont(c2) || in_float {
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: TokKind::Num,
                start,
                end: cur.pos(),
                line,
            });
            continue;
        }
        // Single punctuation char.
        cur.bump();
        out.push(Token {
            kind: TokKind::Punct(c),
            start,
            end: cur.pos(),
            line,
        });
    }
    out
}

/// Replaces comments and string/char literal spans with spaces,
/// preserving newlines (and thus line numbers) exactly — the shared
/// foundation for the line-oriented `zslint` rules.
pub fn blank_noncode(src: &str) -> String {
    let tokens = lex(src);
    blank_spans(
        src,
        tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Comment | TokKind::Str | TokKind::Char))
            .map(|t| (t.start, t.end)),
    )
}

fn blank_spans(src: &str, spans: impl Iterator<Item = (usize, usize)>) -> String {
    let mut out: Vec<u8> = src.bytes().collect();
    for (a, b) in spans {
        for byte in &mut out[a..b] {
            if *byte != b'\n' {
                *byte = b' ';
            }
        }
    }
    // Only ASCII spaces were written over non-newline bytes; multibyte
    // chars inside spans became runs of spaces, so this is valid UTF-8.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Returns `src` with every `#[cfg(test)]`-gated item blanked (spaces,
/// newlines kept), using token-level brace matching so braces inside
/// strings, chars, and comments never miscount.
///
/// Matches the attribute forms `#[cfg(test)]` and `#[cfg(all(test, …))]`
/// (the forms the repo uses); `#[cfg(not(test))]` is code and stays.
pub fn blank_test_mods(src: &str) -> String {
    let tokens: Vec<Token> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some((attr_end, _)) = match_test_attr(src, &tokens, i) {
            // Blank from the attribute through the end of the item it
            // gates: either a braced item (`mod`/`fn`/`impl` …) or a
            // `;`-terminated one (`use` …).
            let start = tokens[i].start;
            let mut j = attr_end;
            // Skip any further attributes on the same item.
            while j < tokens.len() && tokens[j].kind == TokKind::Punct('#') {
                if let Some((e, _)) = match_any_attr(&tokens, j) {
                    j = e;
                } else {
                    break;
                }
            }
            let mut depth = 0usize;
            let mut end = start;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = tokens[j].end;
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => {
                        end = tokens[j].end;
                        break;
                    }
                    _ => {}
                }
                end = tokens[j].end;
                j += 1;
            }
            spans.push((start, end));
            // Continue after the blanked region.
            while i < tokens.len() && tokens[i].start < end {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    blank_spans(src, spans.into_iter())
}

/// If tokens at `i` start any attribute `#[…]`, returns (index one past
/// the closing `]`, index of `[`).
fn match_any_attr(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    if tokens.get(i)?.kind != TokKind::Punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.kind == TokKind::Punct('!') {
        j += 1;
    }
    if tokens.get(j)?.kind != TokKind::Punct('[') {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, open));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// If tokens at `i` start a `#[cfg(test)]` / `#[cfg(all(test, …))]`
/// attribute, returns (index one past `]`, index of `[`).
fn match_test_attr(src: &str, tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let (end, open) = match_any_attr(tokens, i)?;
    let mut j = open + 1;
    let ident = |k: usize, name: &str| -> bool {
        tokens
            .get(k)
            .map(|t| t.kind == TokKind::Ident && t.text(src) == name)
            .unwrap_or(false)
    };
    if !ident(j, "cfg") {
        return None;
    }
    j += 1;
    if tokens.get(j)?.kind != TokKind::Punct('(') {
        return None;
    }
    j += 1;
    if ident(j, "test") {
        return Some((end, open));
    }
    if ident(j, "all") && tokens.get(j + 1)?.kind == TokKind::Punct('(') && ident(j + 2, "test") {
        return Some((end, open));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn f() {\n  x.unwrap()\n}\n");
        let unwrap = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text("fn f() {\n  x.unwrap()\n}\n") == "unwrap")
            .unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        let toks = lex(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn raw_string_with_backslash_before_quote() {
        // The classic textual-scanner killer: `r"\"` is a complete raw
        // string (backslash is literal); the old scanner treated `\"` as
        // an escape and swallowed the rest of the file.
        let src = "let p = r\"\\\"; x.unwrap();";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text(src), "r\"\\\"");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(idents.contains(&"unwrap"), "{idents:?}");
    }

    #[test]
    fn raw_hash_strings_and_contents() {
        let src = r##"let s = r#"has "quotes" and \ raw"#;"##;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.str_contents(src), r#"has "quotes" and \ raw"#);
    }

    #[test]
    fn byte_and_c_strings() {
        assert!(kinds("b\"bytes\"").contains(&TokKind::Str));
        assert!(kinds("br#\"raw bytes\"#").contains(&TokKind::Str));
        assert!(kinds("b'x'").contains(&TokKind::Char));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = '{'; let d: &'static str = \"s\"; fn f<'a>() {}";
        let toks = lex(src);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text(src), "'{'");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, ["'static", "'a"]);
    }

    #[test]
    fn blank_noncode_preserves_lines_and_code() {
        let src = "// c\nlet s = \"x.unwrap()\";\nx.unwrap();\n";
        let blanked = blank_noncode(src);
        assert_eq!(blanked.lines().count(), src.lines().count());
        assert_eq!(blanked.matches(".unwrap()").count(), 1);
        assert!(blanked.lines().nth(2).unwrap().contains(".unwrap()"));
    }

    #[test]
    fn blank_test_mods_ignores_braces_in_strings() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let weird = \"}}}{\";
        let raw = r\"\\\";
        Some(1).unwrap();
    }
}
fn also_live(x: Option<u32>) -> u32 { x.unwrap() }
";
        let out = blank_test_mods(src);
        assert!(!out.contains("Some(1)"), "test body blanked:\n{out}");
        assert!(
            out.contains("also_live"),
            "code after the mod survives:\n{out}"
        );
        assert_eq!(out.matches("unwrap").count(), 1);
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))]\nfn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let out = blank_test_mods(src);
        assert!(out.contains("unwrap"));
    }

    #[test]
    fn cfg_all_test_is_blanked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { p.unwrap() } }\n";
        let out = blank_test_mods(src);
        assert!(!out.contains("unwrap"));
    }

    #[test]
    fn cfg_test_on_semicolon_item_is_blanked() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let out = blank_test_mods(src);
        assert!(!out.contains("HashMap"));
        assert!(out.contains("live"));
    }
}
