//! Interprocedural lock-order analysis.
//!
//! Extracts every blocking lock acquisition (`.lock()`, `.read()`,
//! `.write()` — empty-parens only, which cleanly excludes
//! `io::Read::read(buf)`/`io::Write::write(buf)` — plus `.try_lock()`,
//! which cannot *block* but does *hold*), keys each by its receiver
//! path, propagates held-lock sets through the call graph, and reports:
//!
//! * **lock-cycle** — a cycle in the lock-order graph (potential
//!   deadlock). This pass must be clean; cycles are never baselined.
//! * **lock-across-channel** — a lock held across a blocking channel
//!   `send`/`recv` (directly or via a callee).
//! * **lock-across-proc-read** — a lock held across a `ProcSource`
//!   read: a stalled `/proc` read (§3.1) must never extend a critical
//!   section other threads wait on.
//!
//! Receiver paths are resolved to sanitizer names where possible: a
//! `Tracked::new("name", …)` initializer binds its receiver ident to
//! `name`, and `Arc::clone`/`&`-alias `let`s propagate the binding —
//! so the static graph speaks the same node language the runtime
//! sanitizer ([`zerosum_core::sync`]) records.

use super::callgraph::{CallGraph, SiteKind};
use super::items::ParsedFile;
use super::lexer::TokKind;
use super::Finding;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Blocking ProcSource reads (owning and `_into` buffer-reuse forms).
const PROC_READS: [&str; 12] = [
    "system_stat",
    "meminfo",
    "list_tasks",
    "task_stat",
    "task_status",
    "task_schedstat",
    "process_status",
    "system_stat_into",
    "list_tasks_into",
    "task_stat_into",
    "task_status_into",
    "meminfo_into",
];

/// Files whose interior lock use is the *implementation* of the
/// sanitizer itself: `Tracked` wraps a Mutex and the edge recorder
/// serializes on one. Modeling those interior acquisitions would merge
/// every tracked lock into one node; acquisitions are modeled at
/// `Tracked` call sites instead.
const SANITIZER_IMPL_FILES: [&str; 1] = ["crates/core/src/sync.rs"];

/// One static lock acquisition.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Graph node key: the sanitizer name if resolvable, else the
    /// normalized receiver path.
    pub lock: String,
    /// Owning function (index into the call graph).
    pub fn_idx: usize,
    /// Token index of the method-name token (or wrapper-call ident).
    pub token: usize,
    /// 1-based line.
    pub line: usize,
    /// `try_lock` — holds but cannot block.
    pub non_blocking: bool,
    /// Token index one past which the guard is live (exclusive).
    pub held_until: usize,
}

/// One lock-order edge: `from` is held while `to` is acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The held lock.
    pub from: String,
    /// The acquired lock.
    pub to: String,
    /// `file:line` of the inner acquisition (or the call leading to it).
    pub site: String,
    /// Callee name when the inner acquisition is interprocedural.
    pub via: Option<String>,
}

/// The result of the lock pass.
pub struct LockAnalysis {
    /// Every acquisition found.
    pub acquisitions: Vec<Acquisition>,
    /// Deduplicated lock-order edges.
    pub edges: Vec<LockEdge>,
    /// Distinct lock node keys.
    pub locks: BTreeSet<String>,
    /// Findings (cycles and held-across violations).
    pub findings: Vec<Finding>,
}

/// Allowlisted `lock-across-*` findings, each with a reviewed
/// justification. Keys are `(file_suffix, fn_name, pass)`.
pub const LOCK_ALLOWLIST: [(&str, &str, &str, &str); 2] = [
    (
        "crates/core/src/attach.rs",
        "start_for_pid",
        "lock-across-proc-read",
        "monitor thread owns the monitor lock for the whole sampling round by design; \
         the only contenders (with_monitor, stop) are steering/shutdown paths",
    ),
    (
        "crates/core/src/attach.rs",
        "stop",
        "lock-across-proc-read",
        "final flush after the sampler thread has been joined; the lock is uncontended",
    ),
];

pub(crate) fn is_sanitizer_impl(file: &str) -> bool {
    SANITIZER_IMPL_FILES.iter().any(|f| file.ends_with(f))
}

/// Builds the `receiver ident -> sanitizer name` map for one file:
/// `Tracked::new("name", …)` initializer bindings plus one round of
/// `Arc::clone`/`.clone()`/`&`-alias `let` propagation.
fn tracked_names(pf: &ParsedFile) -> HashMap<String, String> {
    let mut map: HashMap<String, String> = HashMap::new();
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        if !pf.is_ident(i, "Tracked") {
            continue;
        }
        // `Tracked :: new (  "name"`
        if !(pf.is_punct(i + 1, ':')
            && pf.is_punct(i + 2, ':')
            && pf.is_ident(i + 3, "new")
            && pf.is_punct(i + 4, '('))
        {
            continue;
        }
        let Some(name_tok) = toks.get(i + 5) else {
            continue;
        };
        if name_tok.kind != TokKind::Str {
            continue;
        }
        let name = name_tok.str_contents(&pf.src).to_string();
        if let Some(ident) = binding_target(pf, i) {
            map.insert(ident, name);
        }
    }
    // Alias propagation (two rounds, enough for let-chains the repo
    // idiom produces: `let alias = Arc::clone(&orig);`).
    for _ in 0..2 {
        let mut added: Vec<(String, String)> = Vec::new();
        for i in 0..toks.len() {
            if !pf.is_ident(i, "let") {
                continue;
            }
            let mut j = i + 1;
            if pf.is_ident(j, "mut") {
                j += 1;
            }
            if toks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
                continue;
            }
            let target = pf.text(j).to_string();
            if !pf.is_punct(j + 1, '=') {
                continue;
            }
            // Source ident: last path segment before the terminating `;`.
            let mut src_ident: Option<String> = None;
            let mut k = j + 2;
            let mut clone_like = false;
            while k < toks.len() && !pf.is_punct(k, ';') {
                if toks[k].kind == TokKind::Ident {
                    let t = pf.text(k);
                    if t == "clone" {
                        clone_like = true;
                    } else if !matches!(t, "Arc" | "Box" | "Rc") {
                        src_ident = Some(t.to_string());
                    }
                }
                k += 1;
            }
            // Plain `let a = &b;` aliases too.
            let borrow_like = pf.is_punct(j + 2, '&');
            if !(clone_like || borrow_like) {
                continue;
            }
            if let Some(srcn) = src_ident {
                if let Some(name) = map.get(&srcn) {
                    added.push((target, name.clone()));
                }
            }
        }
        // Struct-literal field inits: `S { field: <expr mentioning a
        // tracked ident> }` aliases `field` to that ident's name, so
        // `self.field.lock()` resolves like the original binding.
        for i in 2..toks.len() {
            if !pf.is_punct(i, ':')
                || pf.is_punct(i + 1, ':')
                || toks[i - 1].kind != TokKind::Ident
                || !(pf.is_punct(i - 2, '{') || pf.is_punct(i - 2, ','))
            {
                continue;
            }
            let target = pf.text(i - 1).to_string();
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < toks.len() {
                match toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokKind::Punct(',') if depth == 0 => break,
                    TokKind::Ident => {
                        let t = pf.text(k);
                        if !matches!(t, "Arc" | "Box" | "Rc" | "clone" | "new" | "mut") {
                            if let Some(name) = map.get(t) {
                                added.push((target.clone(), name.clone()));
                            }
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        for (k, v) in added {
            map.entry(k).or_insert(v);
        }
    }
    map
}

/// What a `Tracked::new` at token `t` initializes: scans backwards for
/// a `let`/`static` binding or a struct-literal field init.
fn binding_target(pf: &ParsedFile, t: usize) -> Option<String> {
    let lo = t.saturating_sub(40);
    let mut k = t;
    while k > lo {
        k -= 1;
        match pf.tokens[k].kind {
            TokKind::Punct('=') => {
                // Walk further back to the `let`/`static` keyword, then
                // take the ident after it (skipping `mut`).
                let mut b = k;
                while b > lo {
                    b -= 1;
                    if pf.is_ident(b, "let") || pf.is_ident(b, "static") {
                        let mut n = b + 1;
                        if pf.is_ident(n, "mut") {
                            n += 1;
                        }
                        if pf.tokens.get(n).map(|x| x.kind) == Some(TokKind::Ident) {
                            return Some(pf.text(n).to_string());
                        }
                        return None;
                    }
                    if matches!(pf.tokens[b].kind, TokKind::Punct(';') | TokKind::Punct('{')) {
                        return None;
                    }
                }
                return None;
            }
            TokKind::Punct(':') => {
                // `field: Arc::new(Tracked::new(…))` — but not `::`.
                if k > 0 && pf.is_punct(k - 1, ':') || pf.is_punct(k + 1, ':') {
                    continue;
                }
                if k > 1
                    && pf.tokens[k - 1].kind == TokKind::Ident
                    && (pf.is_punct(k - 2, '{') || pf.is_punct(k - 2, ','))
                {
                    return Some(pf.text(k - 1).to_string());
                }
            }
            TokKind::Punct(';') | TokKind::Punct('}') => return None,
            _ => {}
        }
    }
    None
}

/// The receiver path ending just before the `.` at token `dot`,
/// normalized: `self . matrix` → `self.matrix`, `slots [ i ]` →
/// `slots[_]`, `a :: B` → `a::B`.
fn receiver_path(pf: &ParsedFile, dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot; // token index of `.`; walk back from dot-1
    loop {
        if k == 0 {
            break;
        }
        let p = k - 1;
        match pf.tokens[p].kind {
            TokKind::Ident | TokKind::Num => {
                parts.push(pf.text(p).to_string());
                // Continue if preceded by `.` or `::`.
                if p >= 1 && pf.is_punct(p - 1, '.') {
                    parts.push(".".into());
                    k = p - 1;
                    continue;
                }
                if p >= 2 && pf.is_punct(p - 1, ':') && pf.is_punct(p - 2, ':') {
                    parts.push("::".into());
                    k = p - 2;
                    continue;
                }
                break;
            }
            TokKind::Punct(']') => {
                // Skip the index group, emit a placeholder.
                let mut depth = 0usize;
                let mut q = p;
                loop {
                    match pf.tokens[q].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if q == 0 {
                        break;
                    }
                    q -= 1;
                }
                parts.push("[_]".into());
                k = q;
                continue;
            }
            TokKind::Punct(')') => {
                // Call-result receiver: skip to the matching `(` and
                // keep walking (captures `foo().lock()` as `foo()`).
                let mut depth = 0usize;
                let mut q = p;
                loop {
                    match pf.tokens[q].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if q == 0 {
                        break;
                    }
                    q -= 1;
                }
                parts.push("()".into());
                k = q;
                continue;
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

/// The first argument's receiver path inside `wrapper( arg, … )` where
/// `open` is the `(` token: strips leading `&`/`mut`.
fn first_arg_path(pf: &ParsedFile, open: usize) -> String {
    let mut k = open + 1;
    while pf.is_punct(k, '&') || pf.is_ident(k, "mut") {
        k += 1;
    }
    // Find the end of the first argument (`,` or `)` at depth 0), then
    // reuse receiver_path by pointing at a virtual dot past it.
    let mut depth = 0i32;
    let mut end = k;
    while end < pf.tokens.len() {
        match pf.tokens[end].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(',') if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    receiver_path(pf, end)
}

/// Lock key for a receiver path: resolve the last plain segment via the
/// tracked-name map; otherwise the segment itself. Keying by the final
/// field/variable name deliberately merges `self.data`, `data`, and
/// `shared.data` into one node — without type information that is the
/// only way an interprocedural order graph coheres, and in this
/// workspace distinct locks have distinct field names.
fn lock_key(
    path: &str,
    local: &HashMap<String, String>,
    global: &HashMap<String, String>,
) -> String {
    let last = path
        .rsplit(['.'])
        .find(|s| !s.is_empty() && *s != "[_]" && *s != "()")
        .unwrap_or(path);
    let last = last.rsplit("::").next().unwrap_or(last);
    // `slots[_]` / `mk()` → the underlying binding name.
    let trimmed = last.trim_end_matches("[_]").trim_end_matches("()");
    let last = if trimmed.is_empty() { last } else { trimmed };
    // The owning file's bindings shadow other files': two files may
    // `let shared = Tracked::new(…)` under different sanitizer names.
    if let Some(n) = local.get(last) {
        return n.clone();
    }
    if let Some(n) = global.get(last) {
        return n.clone();
    }
    last.to_string()
}

/// Whether the statement containing token `t` is a `let` binding:
/// scans back to the nearest `;`/`{`/`}` and checks the first token.
fn is_let_bound(pf: &ParsedFile, t: usize, body_start: usize) -> bool {
    let mut k = t;
    while k > body_start {
        k -= 1;
        match pf.tokens[k].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => {
                return pf.is_ident(k + 1, "let");
            }
            _ => {}
        }
    }
    pf.is_ident(body_start, "let")
}

/// How long the guard from an acquisition at token `t` lives:
/// a `let`-bound guard to the end of the innermost enclosing block, a
/// temporary to the end of the statement.
fn held_until(pf: &ParsedFile, t: usize, body: &std::ops::Range<usize>) -> usize {
    if is_let_bound(pf, t, body.start) {
        // Innermost `{` enclosing `t` within the body.
        let mut stack: Vec<usize> = Vec::new();
        for i in body.clone() {
            match pf.tokens[i].kind {
                TokKind::Punct('{') => stack.push(i),
                TokKind::Punct('}') => {
                    if let Some(open) = stack.pop() {
                        if open < t && t < i {
                            return i;
                        }
                    }
                }
                _ => {}
            }
        }
        body.end
    } else {
        // End of statement: next `;` at depth 0 relative to `t`.
        let mut depth = 0i32;
        let mut i = t;
        while i < body.end {
            match pf.tokens[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        return i;
                    }
                }
                TokKind::Punct(';') if depth <= 0 => return i,
                _ => {}
            }
            i += 1;
        }
        body.end
    }
}

/// Runs the lock pass over a built call graph.
pub fn analyze_locks(graph: &CallGraph) -> LockAnalysis {
    // Tracked-name maps: one per file (bindings are file-scoped) plus a
    // global fallback for cross-file idents.
    let file_names: Vec<HashMap<String, String>> = graph.files.iter().map(tracked_names).collect();
    let mut names: HashMap<String, String> = HashMap::new();
    for m in &file_names {
        for (k, v) in m {
            names.entry(k.clone()).or_insert(v.clone());
        }
    }

    // Pass A: direct acquisitions per function; classify wrappers.
    let mut direct: Vec<Vec<Acquisition>> = vec![Vec::new(); graph.fns.len()];
    let mut wrapper_fns: BTreeSet<String> = BTreeSet::new();
    for (fi, node) in graph.fns.iter().enumerate() {
        let pf = &graph.files[node.file_idx];
        if is_sanitizer_impl(&node.item.file) {
            continue;
        }
        for t in node.item.body.clone() {
            if !matches!(pf.tokens[t].kind, TokKind::Ident) {
                continue;
            }
            let name = pf.text(t);
            let blocking = matches!(name, "lock" | "read" | "write");
            let non_blocking = name == "try_lock";
            if !blocking && !non_blocking {
                continue;
            }
            // `.name ( )` with empty parens; `try_lock()` likewise.
            if !(t >= 1
                && pf.is_punct(t - 1, '.')
                && pf.is_punct(t + 1, '(')
                && pf.is_punct(t + 2, ')'))
            {
                continue;
            }
            let path = receiver_path(pf, t - 1);
            if path.is_empty() {
                continue;
            }
            // A bare parameter receiver marks a lock-wrapper helper:
            // its acquisition is attributed to call sites instead.
            if node.item.params.iter().any(|p| p == &path) {
                wrapper_fns.insert(node.item.name.clone());
                continue;
            }
            let key = lock_key(&path, &file_names[node.file_idx], &names);
            let until = held_until(pf, t, &node.item.body);
            direct[fi].push(Acquisition {
                lock: key,
                fn_idx: fi,
                token: t,
                line: pf.tokens[t].line,
                non_blocking,
                held_until: until,
            });
        }
    }

    // Pass B: wrapper-call acquisitions (`lock_unpoisoned(&self.data)`).
    for (fi, node) in graph.fns.iter().enumerate() {
        let pf = &graph.files[node.file_idx];
        if is_sanitizer_impl(&node.item.file) {
            continue;
        }
        for site in &node.sites {
            if site.kind != SiteKind::Call || !wrapper_fns.contains(&site.name) {
                continue;
            }
            let open = site.token + 1;
            let path = first_arg_path(pf, open);
            if path.is_empty() {
                continue;
            }
            let key = lock_key(&path, &file_names[node.file_idx], &names);
            let until = held_until(pf, site.token, &node.item.body);
            direct[fi].push(Acquisition {
                lock: key,
                fn_idx: fi,
                token: site.token,
                line: site.line,
                non_blocking: false,
                held_until: until,
            });
        }
    }
    for v in &mut direct {
        v.sort_by_key(|a| a.token);
    }

    // Transitive may-acquire / may-channel-op / may-proc-read, by
    // fixpoint over the (over-approximate) call graph. Wrapper helpers
    // contribute nothing themselves — their effect lives at call sites.
    let n = graph.fns.len();
    let mut acq: Vec<BTreeSet<String>> = (0..n)
        .map(|i| direct[i].iter().map(|a| a.lock.clone()).collect())
        .collect();
    let mut chan: Vec<bool> = Vec::with_capacity(n);
    let mut proc_read: Vec<bool> = Vec::with_capacity(n);
    for node in graph.fns.iter() {
        let pf = &graph.files[node.file_idx];
        let mut c = false;
        let mut p = false;
        for t in node.item.body.clone() {
            if pf.tokens[t].kind != TokKind::Ident || !pf.is_punct(t + 1, '(') {
                continue;
            }
            if t >= 1 && pf.is_punct(t - 1, '.') {
                let name = pf.text(t);
                if matches!(name, "send" | "recv") {
                    c = true;
                }
                if PROC_READS.contains(&name) {
                    p = true;
                }
            }
        }
        chan.push(c);
        proc_read.push(p);
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            for &cal in &graph.fns[i].callees {
                if cal == i {
                    continue;
                }
                if chan[cal] && !chan[i] {
                    chan[i] = true;
                    changed = true;
                }
                if proc_read[cal] && !proc_read[i] {
                    proc_read[i] = true;
                    changed = true;
                }
                if !acq[cal].is_empty() {
                    let add: Vec<String> = acq[cal]
                        .iter()
                        .filter(|l| !acq[i].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        acq[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge + held-across extraction.
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut locks: BTreeSet<String> = BTreeSet::new();
    for (fi, node) in graph.fns.iter().enumerate() {
        let pf = &graph.files[node.file_idx];
        for a in &direct[fi] {
            locks.insert(a.lock.clone());
            let range = (a.token + 1)..a.held_until;
            // Other direct acquisitions while held.
            for b in &direct[fi] {
                if b.token > a.token && range.contains(&b.token) {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert(LockEdge {
                            from: a.lock.clone(),
                            to: b.lock.clone(),
                            site: format!("{}:{}", node.item.file, b.line),
                            via: None,
                        });
                }
            }
            // Calls while held: callee transitive effects.
            for site in &node.sites {
                if site.kind != SiteKind::Call || !range.contains(&site.token) {
                    continue;
                }
                if site.token == a.token {
                    continue; // the acquisition itself
                }
                let resolved = graph.resolve_site(node.file_idx, site);
                for &cal in &resolved {
                    for b in acq[cal].iter() {
                        edges
                            .entry((a.lock.clone(), b.clone()))
                            .or_insert(LockEdge {
                                from: a.lock.clone(),
                                to: b.clone(),
                                site: format!("{}:{}", node.item.file, site.line),
                                via: Some(site.name.clone()),
                            });
                    }
                }
                let callee_chan = resolved.iter().any(|&c| chan[c]);
                let callee_proc = resolved.iter().any(|&c| proc_read[c]);
                let direct_chan = matches!(site.name.as_str(), "send" | "recv")
                    && site.token >= 1
                    && pf.is_punct(site.token - 1, '.');
                let direct_proc = PROC_READS.contains(&site.name.as_str())
                    && site.token >= 1
                    && pf.is_punct(site.token - 1, '.');
                if direct_chan || callee_chan {
                    push_held_across(
                        &mut findings,
                        "lock-across-channel",
                        node,
                        a,
                        site.line,
                        &site.name,
                        direct_chan,
                    );
                }
                if direct_proc || callee_proc {
                    push_held_across(
                        &mut findings,
                        "lock-across-proc-read",
                        node,
                        a,
                        site.line,
                        &site.name,
                        direct_proc,
                    );
                }
            }
        }
    }

    // Cycle detection over the lock-order graph.
    let edge_list: Vec<LockEdge> = edges.into_values().collect();
    findings.extend(find_cycles(&edge_list));
    // Drop allowlisted held-across findings (cycles are never dropped).
    let findings = findings
        .into_iter()
        .filter(|f| {
            !LOCK_ALLOWLIST.iter().any(|(file, func, pass, _)| {
                f.pass != "lock-cycle"
                    && f.pass == *pass
                    && f.file.ends_with(file)
                    && f.func == *func
            })
        })
        .collect();
    LockAnalysis {
        acquisitions: direct.into_iter().flatten().collect(),
        edges: edge_list,
        locks,
        findings,
    }
}

fn push_held_across(
    findings: &mut Vec<Finding>,
    pass: &'static str,
    node: &super::callgraph::FnNode,
    a: &Acquisition,
    line: usize,
    callee: &str,
    direct: bool,
) {
    let what = if direct {
        format!("`.{callee}(`")
    } else {
        format!("call to `{callee}` (which may reach one)")
    };
    let witness = if direct {
        vec![node.item.name.clone()]
    } else {
        vec![node.item.name.clone(), callee.to_string()]
    };
    findings.push(Finding {
        pass,
        file: node.item.file.clone(),
        line,
        func: node.item.name.clone(),
        token: a.lock.clone(),
        detail: format!(
            "lock `{}` (acquired {}:{}) is held across {what}",
            a.lock, node.item.file, a.line
        ),
        witness,
    });
}

/// Cycle findings: strongly connected components of the lock graph
/// with more than one node, plus self-loops.
fn find_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut findings = Vec::new();
    // Self-loops first.
    for e in edges {
        if e.from == e.to {
            findings.push(Finding {
                pass: "lock-cycle",
                file: e.site.split(':').next().unwrap_or("").to_string(),
                line: e
                    .site
                    .rsplit(':')
                    .next()
                    .and_then(|l| l.parse().ok())
                    .unwrap_or(0),
                func: String::new(),
                token: e.from.clone(),
                detail: format!(
                    "lock `{}` may be re-acquired while already held (at {}) — \
                     std::sync::Mutex is not reentrant",
                    e.from, e.site
                ),
                witness: vec![e.from.clone(), e.from.clone()],
            });
        }
    }
    // Multi-node cycles: DFS from every node looking for a path back.
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in &nodes {
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some((cur, path)) = stack.pop() {
            for e in adj.get(cur).map(|v| v.as_slice()).unwrap_or(&[]) {
                let next = e.to.as_str();
                if next == start && path.len() > 1 {
                    // Canonical form so each cycle is reported once.
                    let mut canon: Vec<&str> = path.clone();
                    canon.sort_unstable();
                    let key = canon.join("|");
                    if reported.insert(key) {
                        findings.push(Finding {
                            pass: "lock-cycle",
                            file: e.site.split(':').next().unwrap_or("").to_string(),
                            line: e
                                .site
                                .rsplit(':')
                                .next()
                                .and_then(|l| l.parse().ok())
                                .unwrap_or(0),
                            func: String::new(),
                            token: path.join(" -> "),
                            detail: format!(
                                "lock-order cycle: {} -> {} (edge at {})",
                                path.join(" -> "),
                                start,
                                e.site
                            ),
                            witness: path.iter().map(|s| s.to_string()).collect(),
                        });
                    }
                } else if !seen.contains(next) && next != start {
                    seen.insert(next);
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::items::parse_file;

    fn run(srcs: &[(&str, &str)]) -> LockAnalysis {
        let graph = CallGraph::build(srcs.iter().map(|(p, s)| parse_file(p, s)).collect());
        analyze_locks(&graph)
    }

    #[test]
    fn nested_acquisition_makes_an_edge_and_reverse_makes_a_cycle() {
        let la = run(&[(
            "a.rs",
            "\
fn ab(x: &M, y: &M) {
    let g = x.alpha.lock();
    let h = y.beta.lock();
}
fn ba(x: &M, y: &M) {
    let h = y.beta.lock();
    let g = x.alpha.lock();
}
",
        )]);
        assert!(la.edges.iter().any(|e| e.from == "alpha" && e.to == "beta"));
        assert!(la.edges.iter().any(|e| e.from == "beta" && e.to == "alpha"));
        assert!(
            la.findings.iter().any(|f| f.pass == "lock-cycle"),
            "{:?}",
            la.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_statement_guards_do_not_edge() {
        let la = run(&[(
            "a.rs",
            "\
fn seq(x: &M, y: &M) {
    x.alpha.lock().push(1);
    y.beta.lock().push(2);
}
",
        )]);
        assert!(la.edges.is_empty(), "{:?}", la.edges);
        assert!(la.findings.is_empty());
    }

    #[test]
    fn interprocedural_edge_through_callee() {
        let la = run(&[(
            "a.rs",
            "\
fn outer(x: &M) {
    let g = x.alpha.lock();
    helper();
}
fn helper() {
    GLOBAL.beta.lock().push(1);
}
",
        )]);
        assert!(
            la.edges
                .iter()
                .any(|e| e.from == "alpha" && e.to == "beta" && e.via.is_some()),
            "{:?}",
            la.edges
        );
    }

    #[test]
    fn wrapper_helpers_resolve_to_callsite_receivers() {
        let la = run(&[(
            "a.rs",
            "\
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
fn user(s: &S) {
    let g = lock_unpoisoned(&s.gamma);
    let h = lock_unpoisoned(&s.delta);
}
",
        )]);
        assert!(la.locks.contains("gamma"), "{:?}", la.locks);
        assert!(
            la.edges
                .iter()
                .any(|e| e.from == "gamma" && e.to == "delta"),
            "{:?}",
            la.edges
        );
        // No phantom `m` lock from the wrapper's own body.
        assert!(!la.locks.contains("m"));
    }

    #[test]
    fn tracked_names_bind_static_let_and_field() {
        let la = run(&[(
            "a.rs",
            "\
static REG: Tracked<Vec<u32>> = Tracked::new(\"mod.reg\", Vec::new());
struct S { data: Arc<Tracked<u32>> }
fn build() -> S {
    let shared = Arc::new(Tracked::new(\"mod.shared\", 0));
    let alias = Arc::clone(&shared);
    alias.lock();
    S { data: shared }
}
fn use_all(s: &S) {
    let a = REG.lock();
    s.data.lock();
}
",
        )]);
        assert!(la.locks.contains("mod.reg"), "{:?}", la.locks);
        assert!(la.locks.contains("mod.shared"), "{:?}", la.locks);
        assert!(
            la.edges
                .iter()
                .any(|e| e.from == "mod.reg" && e.to == "mod.shared"),
            "{:?}",
            la.edges
        );
    }

    #[test]
    fn lock_across_channel_and_proc_read_flagged() {
        let la = run(&[(
            "a.rs",
            "\
fn bad_chan(x: &M, tx: &Sender<u32>) {
    let g = x.alpha.lock();
    tx.send(1);
}
fn bad_proc(x: &M, src: &dyn ProcSource) {
    let g = x.alpha.lock();
    let s = src.task_stat(1, 1);
}
fn fine(x: &M, tx: &Sender<u32>) {
    x.alpha.lock().push(1);
    tx.send(1);
}
",
        )]);
        assert!(la
            .findings
            .iter()
            .any(|f| f.pass == "lock-across-channel" && f.func == "bad_chan"));
        assert!(la
            .findings
            .iter()
            .any(|f| f.pass == "lock-across-proc-read" && f.func == "bad_proc"));
        assert!(!la.findings.iter().any(|f| f.func == "fine"));
    }

    #[test]
    fn try_lock_holds_but_io_write_with_args_does_not_match() {
        let la = run(&[(
            "a.rs",
            "\
fn t(x: &M, y: &M, out: &mut File) {
    let Ok(g) = x.alpha.try_lock() else { return };
    let h = y.beta.lock();
    out.write(buf);
}
",
        )]);
        assert!(la.edges.iter().any(|e| e.from == "alpha" && e.to == "beta"));
        assert!(!la.locks.contains("out"), "{:?}", la.locks);
    }
}
