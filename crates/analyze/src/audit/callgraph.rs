//! Workspace call graph over the recovered items.
//!
//! Edges are found by scanning each function body for call-shaped token
//! patterns and resolved **by bare name**: a call `foo(…)` or `.foo(…)`
//! points at every non-test workspace function named `foo`. This is a
//! deliberate over-approximation (no type information), conservative
//! for both audit passes: reachability and held-lock propagation can
//! only grow, never silently shrink. Calls that resolve to nothing
//! (std, closures, field accesses) drop out.

use super::items::{FnItem, ParsedFile};
use super::lexer::TokKind;
use std::collections::HashMap;

/// What kind of site a body scan found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `name(…)` or `.name(…)` — a call.
    Call,
    /// `name!(…)` — a macro invocation.
    Macro,
    /// `expr[…]` — an index expression (potential panic).
    Index,
}

/// One site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Call/macro name (empty for `Index`).
    pub name: String,
    /// Site kind.
    pub kind: SiteKind,
    /// Token index in the owning file's stream.
    pub token: usize,
    /// 1-based source line.
    pub line: usize,
    /// `.name(…)` — a method-shaped call. Resolves only to functions
    /// defined in `impl` blocks, which prunes the worst bare-name
    /// over-approximation (a `.run()` method call must not alias a
    /// free `run`).
    pub method: bool,
    /// Last path segment before the call, when path-qualified:
    /// `NodeSim::new(…)` → `Some("NodeSim")`, with `Self` resolved to
    /// the enclosing impl type. A type-like (capitalized) qualifier
    /// restricts resolution to that impl's functions — so `Vec::new()`
    /// resolves to nothing instead of every workspace constructor. A
    /// module-like qualifier restricts to free functions.
    pub qualifier: Option<String>,
}

/// A function in the graph: its item plus extracted sites.
pub struct FnNode {
    /// The parsed item.
    pub item: FnItem,
    /// Which [`ParsedFile`] the item lives in.
    pub file_idx: usize,
    /// All call/macro/index sites in the body, in token order.
    pub sites: Vec<Site>,
    /// Resolved callees (indices into the graph), deduplicated.
    pub callees: Vec<usize>,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every parsed file, indexable by [`FnNode::file_idx`].
    pub files: Vec<ParsedFile>,
    /// Every non-test function.
    pub fns: Vec<FnNode>,
    by_name: HashMap<String, Vec<usize>>,
    /// Every identifier appearing in each file — the mention filter
    /// for std-colliding call names.
    file_idents: Vec<std::collections::HashSet<String>>,
}

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "break", "continue", "move", "in", "as",
    "where", "else", "let", "fn", "unsafe",
];

/// Call names that collide with ubiquitous std/prelude methods
/// (`"4".parse()`, `Vec::new()`, `guard.clone()`, `drop(g)`, …). A
/// bare-name edge for one of these drowns the graph in false paths —
/// one `.parse()` in a sampling root would make every constructor in
/// the workspace "hot". For these names only, a call resolves to an
/// `impl`-block function solely when the impl's *type name is
/// mentioned in the calling file* — `dir.display()` in `linux.rs`
/// stops aliasing `FnItem::display`, while `state.clone()` in a file
/// that names the type keeps its true edge. Distinctive workspace
/// names (`list_tasks_into`, `sample`, …) are untouched, so
/// trait-object dispatch stays over-approximated in the safe
/// direction.
const STD_COLLISIONS: [&str; 27] = [
    "parse",
    "new",
    "default",
    "clone",
    "drop",
    "is_empty",
    "len",
    "get",
    "set",
    "insert",
    "remove",
    "push",
    "pop",
    "join",
    "next",
    "with_capacity",
    "display",
    "is_some",
    "is_none",
    "all",
    "any",
    "count",
    "contains",
    "find",
    "add",
    "write",
    "read",
];

/// Whether a bare-name candidate `target` is a plausible callee for
/// `site`, given the set of identifiers appearing in the caller's
/// file. Three refinements prune false edges, checked in order:
///
/// 1. **Qualifier.** A `Q::name(…)` call with a capitalized `Q`
///    (`Self` already rewritten to the enclosing impl type) resolves
///    only to functions in `impl Q` — so `Vec::new()` aliases no
///    workspace constructor. A lowercase, module-like qualifier
///    (`fs::read_dir`, `super::helper`) resolves only to free
///    functions.
/// 2. **Method shape.** `x.name(…)` resolves only to `impl`-block
///    functions.
/// 3. **[`STD_COLLISIONS`] mention filter.** For ubiquitous names, an
///    impl-block candidate survives only when its type name is
///    mentioned somewhere in the calling file.
fn site_targets(
    target: &FnNode,
    caller_idents: &std::collections::HashSet<String>,
    s: &Site,
) -> bool {
    if let Some(q) = &s.qualifier {
        let typelike = q.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        return if typelike {
            target.item.impl_type.as_deref() == Some(q.as_str())
        } else {
            target.item.impl_type.is_none()
        };
    }
    if s.method && target.item.impl_type.is_none() {
        return false;
    }
    if !STD_COLLISIONS.contains(&s.name.as_str()) {
        return true;
    }
    match &target.item.impl_type {
        Some(t) => caller_idents.contains(t),
        None => true,
    }
}

/// Extracts call/macro/index sites from one body range.
pub fn body_sites(pf: &ParsedFile, item: &FnItem) -> Vec<Site> {
    let mut out = Vec::new();
    for i in item.body.clone() {
        let tok = &pf.tokens[i];
        match tok.kind {
            TokKind::Ident => {
                let name = pf.text(i);
                if KEYWORDS.contains(&name) {
                    continue;
                }
                if pf.is_punct(i + 1, '!') {
                    out.push(Site {
                        name: name.to_string(),
                        kind: SiteKind::Macro,
                        token: i,
                        line: tok.line,
                        method: false,
                        qualifier: None,
                    });
                } else if pf.is_punct(i + 1, '(') {
                    let qualifier = if i >= 3
                        && pf.is_punct(i - 1, ':')
                        && pf.is_punct(i - 2, ':')
                        && pf.tokens[i - 3].kind == TokKind::Ident
                    {
                        let q = pf.text(i - 3);
                        let q = if q == "Self" {
                            item.impl_type.as_deref().unwrap_or(q)
                        } else {
                            q
                        };
                        Some(q.to_string())
                    } else {
                        None
                    };
                    out.push(Site {
                        name: name.to_string(),
                        kind: SiteKind::Call,
                        token: i,
                        line: tok.line,
                        method: i > 0 && pf.is_punct(i - 1, '.'),
                        qualifier,
                    });
                }
            }
            TokKind::Punct('[') => {
                // Index expression: `[` directly after a value-shaped
                // token (identifier, `)`, or `]`). Type positions are
                // preceded by punctuation like `:`, `<`, `&`, `(`.
                let prev_value = i
                    .checked_sub(1)
                    .and_then(|p| pf.tokens.get(p))
                    .map(|t| {
                        matches!(
                            t.kind,
                            TokKind::Ident | TokKind::Punct(')') | TokKind::Punct(']')
                        )
                    })
                    .unwrap_or(false);
                if prev_value {
                    out.push(Site {
                        name: String::new(),
                        kind: SiteKind::Index,
                        token: i,
                        line: tok.line,
                        method: false,
                        qualifier: None,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

impl CallGraph {
    /// Builds the graph over `files`, keeping only non-test functions.
    pub fn build(files: Vec<ParsedFile>) -> CallGraph {
        let mut fns = Vec::new();
        for (file_idx, pf) in files.iter().enumerate() {
            for item in &pf.fns {
                if item.is_test {
                    continue;
                }
                let sites = body_sites(pf, item);
                fns.push(FnNode {
                    item: item.clone(),
                    file_idx,
                    sites,
                    callees: Vec::new(),
                });
            }
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.item.name.clone()).or_default().push(i);
        }
        let file_idents: Vec<std::collections::HashSet<String>> = files
            .iter()
            .map(|pf| {
                pf.tokens
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text(&pf.src).to_string())
                    .collect()
            })
            .collect();
        let callee_sets: Vec<Vec<usize>> = fns
            .iter()
            .map(|f| {
                let mut callees: Vec<usize> = f
                    .sites
                    .iter()
                    .filter(|s| s.kind == SiteKind::Call)
                    .flat_map(|s| {
                        by_name
                            .get(&s.name)
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&i| site_targets(&fns[i], &file_idents[f.file_idx], s))
                                    .collect::<Vec<usize>>()
                            })
                            .unwrap_or_default()
                    })
                    .collect();
                callees.sort_unstable();
                callees.dedup();
                callees
            })
            .collect();
        for (f, callees) in fns.iter_mut().zip(callee_sets) {
            f.callees = callees;
        }
        CallGraph {
            files,
            fns,
            by_name,
            file_idents,
        }
    }

    /// Functions named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolves one call site from `caller_file`: bare-name lookup
    /// pruned by the qualifier, method-shape, and [`STD_COLLISIONS`]
    /// mention filters (see [`site_targets`]).
    pub fn resolve_site(&self, caller_file: usize, site: &Site) -> Vec<usize> {
        self.named(&site.name)
            .iter()
            .copied()
            .filter(|&i| site_targets(&self.fns[i], &self.file_idents[caller_file], site))
            .collect()
    }

    /// Indices of functions matching `(file_suffix, fn_name)`.
    pub fn matching(&self, file_suffix: &str, name: &str) -> Vec<usize> {
        self.named(name)
            .iter()
            .copied()
            .filter(|&i| self.fns[i].item.file.ends_with(file_suffix))
            .collect()
    }

    /// Breadth-first reachability from `roots`; returns, per function,
    /// `Some(parent)` (`usize::MAX` for a root) when reachable.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &c in &self.fns[i].callees {
                if parent[c].is_none() {
                    parent[c] = Some(i);
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// The shortest root→target call chain (function names, root first)
    /// using the parent map from [`CallGraph::reach_from`]. BFS parent
    /// maps make this a shortest path, so it is a stable *witness
    /// trace* for findings. Capped at 12 hops.
    pub fn path_chain(&self, parents: &[Option<usize>], target: usize) -> Vec<String> {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parents.get(cur) {
            if *p == usize::MAX || chain.len() > 12 {
                break;
            }
            chain.push(*p);
            cur = *p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i].item.name.clone())
            .collect()
    }

    /// A readable call path `root -> … -> target` using the parent map
    /// from [`CallGraph::reach_from`].
    pub fn path_to(&self, parents: &[Option<usize>], target: usize) -> String {
        self.path_chain(parents, target).join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::items::parse_file;

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(srcs.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    #[test]
    fn resolves_free_and_method_calls_by_name() {
        let g = graph(&[(
            "a.rs",
            "\
fn root() { helper(); obj.method_b(); }
fn helper() { leaf() }
fn leaf() {}
struct S;
impl S { fn method_b(&self) { leaf() } }
",
        )]);
        let root = g.matching("a.rs", "root")[0];
        let names: Vec<&str> = g.fns[root]
            .callees
            .iter()
            .map(|&i| g.fns[i].item.name.as_str())
            .collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"method_b"));
        let reach = g.reach_from(&[root]);
        let leaf = g.matching("a.rs", "leaf")[0];
        assert!(reach[leaf].is_some());
        assert!(g.path_to(&reach, leaf).starts_with("root -> "));
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn t() { danger() } }\nfn danger() {}\n",
        )]);
        assert!(g.named("t").is_empty());
        assert_eq!(g.named("danger").len(), 1);
    }

    #[test]
    fn macros_and_indexes_are_sites_not_calls() {
        let g = graph(&[("a.rs", "fn f(v: &[u32]) -> u32 { panic!(\"x\"); v[0] }")]);
        let f = g.matching("a.rs", "f")[0];
        let kinds: Vec<SiteKind> = g.fns[f].sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SiteKind::Macro));
        assert!(kinds.contains(&SiteKind::Index));
        // `&[u32]` in the signature is not an index site.
        assert_eq!(
            g.fns[f]
                .sites
                .iter()
                .filter(|s| s.kind == SiteKind::Index)
                .count(),
            1
        );
    }
}
