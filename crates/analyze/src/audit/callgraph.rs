//! Workspace call graph over the recovered items.
//!
//! Edges are found by scanning each function body for call-shaped token
//! patterns and resolved **by bare name**: a call `foo(…)` or `.foo(…)`
//! points at every non-test workspace function named `foo`. This is a
//! deliberate over-approximation (no type information), conservative
//! for both audit passes: reachability and held-lock propagation can
//! only grow, never silently shrink. Calls that resolve to nothing
//! (std, closures, field accesses) drop out.

use super::items::{FnItem, ParsedFile};
use super::lexer::TokKind;
use std::collections::HashMap;

/// What kind of site a body scan found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `name(…)` or `.name(…)` — a call.
    Call,
    /// `name!(…)` — a macro invocation.
    Macro,
    /// `expr[…]` — an index expression (potential panic).
    Index,
}

/// One site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Call/macro name (empty for `Index`).
    pub name: String,
    /// Site kind.
    pub kind: SiteKind,
    /// Token index in the owning file's stream.
    pub token: usize,
    /// 1-based source line.
    pub line: usize,
    /// `.name(…)` — a method-shaped call. Resolves only to functions
    /// defined in `impl` blocks, which prunes the worst bare-name
    /// over-approximation (a `.run()` method call must not alias a
    /// free `run`).
    pub method: bool,
}

/// A function in the graph: its item plus extracted sites.
pub struct FnNode {
    /// The parsed item.
    pub item: FnItem,
    /// Which [`ParsedFile`] the item lives in.
    pub file_idx: usize,
    /// All call/macro/index sites in the body, in token order.
    pub sites: Vec<Site>,
    /// Resolved callees (indices into the graph), deduplicated.
    pub callees: Vec<usize>,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every parsed file, indexable by [`FnNode::file_idx`].
    pub files: Vec<ParsedFile>,
    /// Every non-test function.
    pub fns: Vec<FnNode>,
    by_name: HashMap<String, Vec<usize>>,
}

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "break", "continue", "move", "in", "as",
    "where", "else", "let", "fn", "unsafe",
];

/// Extracts call/macro/index sites from one body range.
pub fn body_sites(pf: &ParsedFile, item: &FnItem) -> Vec<Site> {
    let mut out = Vec::new();
    for i in item.body.clone() {
        let tok = &pf.tokens[i];
        match tok.kind {
            TokKind::Ident => {
                let name = pf.text(i);
                if KEYWORDS.contains(&name) {
                    continue;
                }
                if pf.is_punct(i + 1, '!') {
                    out.push(Site {
                        name: name.to_string(),
                        kind: SiteKind::Macro,
                        token: i,
                        line: tok.line,
                        method: false,
                    });
                } else if pf.is_punct(i + 1, '(') {
                    out.push(Site {
                        name: name.to_string(),
                        kind: SiteKind::Call,
                        token: i,
                        line: tok.line,
                        method: i > 0 && pf.is_punct(i - 1, '.'),
                    });
                }
            }
            TokKind::Punct('[') => {
                // Index expression: `[` directly after a value-shaped
                // token (identifier, `)`, or `]`). Type positions are
                // preceded by punctuation like `:`, `<`, `&`, `(`.
                let prev_value = i
                    .checked_sub(1)
                    .and_then(|p| pf.tokens.get(p))
                    .map(|t| {
                        matches!(
                            t.kind,
                            TokKind::Ident | TokKind::Punct(')') | TokKind::Punct(']')
                        )
                    })
                    .unwrap_or(false);
                if prev_value {
                    out.push(Site {
                        name: String::new(),
                        kind: SiteKind::Index,
                        token: i,
                        line: tok.line,
                        method: false,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

impl CallGraph {
    /// Builds the graph over `files`, keeping only non-test functions.
    pub fn build(files: Vec<ParsedFile>) -> CallGraph {
        let mut fns = Vec::new();
        for (file_idx, pf) in files.iter().enumerate() {
            for item in &pf.fns {
                if item.is_test {
                    continue;
                }
                let sites = body_sites(pf, item);
                fns.push(FnNode {
                    item: item.clone(),
                    file_idx,
                    sites,
                    callees: Vec::new(),
                });
            }
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.item.name.clone()).or_default().push(i);
        }
        let resolve = |s: &Site| -> Vec<usize> {
            by_name
                .get(&s.name)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&i| !s.method || fns[i].item.impl_type.is_some())
                        .collect()
                })
                .unwrap_or_default()
        };
        let callee_sets: Vec<Vec<usize>> = fns
            .iter()
            .map(|f| {
                let mut callees: Vec<usize> = f
                    .sites
                    .iter()
                    .filter(|s| s.kind == SiteKind::Call)
                    .flat_map(&resolve)
                    .collect();
                callees.sort_unstable();
                callees.dedup();
                callees
            })
            .collect();
        for (f, callees) in fns.iter_mut().zip(callee_sets) {
            f.callees = callees;
        }
        CallGraph {
            files,
            fns,
            by_name,
        }
    }

    /// Functions named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolves one call site: bare-name lookup, restricted to
    /// `impl`-block functions when the call is method-shaped.
    pub fn resolve_site(&self, site: &Site) -> Vec<usize> {
        self.named(&site.name)
            .iter()
            .copied()
            .filter(|&i| !site.method || self.fns[i].item.impl_type.is_some())
            .collect()
    }

    /// Indices of functions matching `(file_suffix, fn_name)`.
    pub fn matching(&self, file_suffix: &str, name: &str) -> Vec<usize> {
        self.named(name)
            .iter()
            .copied()
            .filter(|&i| self.fns[i].item.file.ends_with(file_suffix))
            .collect()
    }

    /// Breadth-first reachability from `roots`; returns, per function,
    /// `Some(parent)` (`usize::MAX` for a root) when reachable.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &c in &self.fns[i].callees {
                if parent[c].is_none() {
                    parent[c] = Some(i);
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// A readable call path `root -> … -> target` using the parent map
    /// from [`CallGraph::reach_from`].
    pub fn path_to(&self, parents: &[Option<usize>], target: usize) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parents.get(cur) {
            if *p == usize::MAX || chain.len() > 12 {
                break;
            }
            chain.push(*p);
            cur = *p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i].item.name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::items::parse_file;

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(srcs.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    #[test]
    fn resolves_free_and_method_calls_by_name() {
        let g = graph(&[(
            "a.rs",
            "\
fn root() { helper(); obj.method_b(); }
fn helper() { leaf() }
fn leaf() {}
struct S;
impl S { fn method_b(&self) { leaf() } }
",
        )]);
        let root = g.matching("a.rs", "root")[0];
        let names: Vec<&str> = g.fns[root]
            .callees
            .iter()
            .map(|&i| g.fns[i].item.name.as_str())
            .collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"method_b"));
        let reach = g.reach_from(&[root]);
        let leaf = g.matching("a.rs", "leaf")[0];
        assert!(reach[leaf].is_some());
        assert!(g.path_to(&reach, leaf).starts_with("root -> "));
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn t() { danger() } }\nfn danger() {}\n",
        )]);
        assert!(g.named("t").is_empty());
        assert_eq!(g.named("danger").len(), 1);
    }

    #[test]
    fn macros_and_indexes_are_sites_not_calls() {
        let g = graph(&[("a.rs", "fn f(v: &[u32]) -> u32 { panic!(\"x\"); v[0] }")]);
        let f = g.matching("a.rs", "f")[0];
        let kinds: Vec<SiteKind> = g.fns[f].sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SiteKind::Macro));
        assert!(kinds.contains(&SiteKind::Index));
        // `&[u32]` in the signature is not an index site.
        assert_eq!(
            g.fns[f]
                .sites
                .iter()
                .filter(|s| s.kind == SiteKind::Index)
                .count(),
            1
        );
    }
}
