//! `zsaudit` — interprocedural concurrency audit.
//!
//! A source-level static-analysis engine shared by `zerosum audit` and
//! the lint rules: a comment/string-correct lexer ([`lexer`]), a
//! lightweight item parser recovering function bodies ([`items`]), a
//! workspace call graph ([`callgraph`]), and the interprocedural
//! passes — lock-order analysis ([`locks`]), panic-reachability
//! ([`panics`]), and the effect passes ([`effects`]: hot-path
//! allocation, determinism, blocking). See DESIGN.md §10–§11 for the
//! analysis model and its deliberate over-approximations.
//!
//! Every finding carries a witness trace (shortest root→site call
//! chain), surfaced by `zerosum audit --explain` and in `--json`.
//!
//! Findings diff against a committed baseline (`AUDIT_baseline.json`)
//! keyed *without* line numbers so unrelated edits don't churn it.
//! Lock-order cycles are never baselineable: a cycle fails the audit
//! outright.

pub mod callgraph;
pub mod drill;
pub mod effects;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod panics;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One audit finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass identifier: `lock-cycle`, `lock-across-channel`,
    /// `lock-across-proc-read`, `panic-reachable`, `hot-path-alloc`,
    /// `nondeterminism`, `blocking`, `stale-allowlist`.
    pub pass: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line (0 when not tied to a line).
    pub line: usize,
    /// Enclosing function (empty for graph-level findings).
    pub func: String,
    /// The offending token/lock/kind — part of the stable key.
    pub token: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Witness trace: the shortest root→site call chain (function
    /// names, root first). Empty for findings with no call path
    /// (stale allowlist entries). Shown by `zerosum audit --explain`
    /// and in `--json`; not part of the baseline key.
    pub witness: Vec<String>,
}

impl Finding {
    /// Stable baseline key. Deliberately excludes the line number so a
    /// baseline survives unrelated edits to the same file.
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.pass, self.file, self.func, self.token)
    }
}

/// Aggregate statistics for the report header.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditStats {
    /// Files scanned.
    pub files: usize,
    /// Non-test functions in the call graph.
    pub fns: usize,
    /// Static lock acquisitions.
    pub acquisitions: usize,
    /// Distinct lock nodes.
    pub locks: usize,
    /// Lock-order edges.
    pub edges: usize,
    /// Potential panic sites scanned.
    pub panic_sites: usize,
    /// Functions reachable from the no-panic roots.
    pub reachable_fns: usize,
    /// Direct effect sites extracted (alloc/clock/ambient/blocking).
    pub effect_sites: usize,
    /// Functions reachable from the hot (`_into`) roots.
    pub hot_reachable: usize,
    /// Functions reachable from the determinism roots.
    pub det_reachable: usize,
}

/// The full audit result.
pub struct AuditReport {
    /// All findings, sorted by (pass, file, line, token).
    pub findings: Vec<Finding>,
    /// The static lock-order edges (consumed by the sanitizer drill).
    pub edges: Vec<locks::LockEdge>,
    /// Distinct lock node keys.
    pub locks: BTreeSet<String>,
    /// Header statistics.
    pub stats: AuditStats,
}

impl AuditReport {
    /// Whether the report is clean (no findings at all).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Lock-cycle findings — never maskable by a baseline.
    pub fn cycles(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.pass == "lock-cycle")
            .collect()
    }

    /// Findings not covered by `baseline` keys. Cycles are always
    /// returned, baselined or not.
    pub fn beyond_baseline<'a>(&'a self, baseline: &BTreeSet<String>) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| f.pass == "lock-cycle" || !baseline.contains(&f.key()))
            .collect()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        self.render_with(false)
    }

    /// Human-readable report; with `explain`, each finding is followed
    /// by its witness trace.
    pub fn render_with(&self, explain: bool) -> String {
        let s = &self.stats;
        let mut out = String::new();
        writeln!(
            out,
            "zsaudit: {} files, {} fns | {} locks, {} acquisitions, {} edges | \
             {} panic sites, {} fns reachable from no-panic roots | \
             {} effect sites, {} hot-reachable, {} det-reachable fns",
            s.files,
            s.fns,
            s.locks,
            s.acquisitions,
            s.edges,
            s.panic_sites,
            s.reachable_fns,
            s.effect_sites,
            s.hot_reachable,
            s.det_reachable
        )
        .unwrap();
        if self.findings.is_empty() {
            writeln!(out, "OK: no findings").unwrap();
            return out;
        }
        let mut last_pass = "";
        for f in &self.findings {
            if f.pass != last_pass {
                writeln!(out, "\n[{}]", f.pass).unwrap();
                last_pass = f.pass;
            }
            if f.line > 0 {
                writeln!(out, "  {}:{}: {}", f.file, f.line, f.detail).unwrap();
            } else {
                writeln!(out, "  {}: {}", f.file, f.detail).unwrap();
            }
            if explain && !f.witness.is_empty() {
                writeln!(out, "    trace: {}", f.witness.join(" -> ")).unwrap();
            }
        }
        writeln!(out, "\n{} finding(s)", self.findings.len()).unwrap();
        out
    }

    /// Machine-readable report (the shape `scripts/ci.sh` diffs).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::from("{\n  \"schema\": 1,\n");
        writeln!(
            out,
            "  \"stats\": {{\"files\": {}, \"fns\": {}, \"acquisitions\": {}, \"locks\": {}, \
             \"edges\": {}, \"panic_sites\": {}, \"reachable_fns\": {}, \"effect_sites\": {}, \
             \"hot_reachable\": {}, \"det_reachable\": {}}},",
            s.files,
            s.fns,
            s.acquisitions,
            s.locks,
            s.edges,
            s.panic_sites,
            s.reachable_fns,
            s.effect_sites,
            s.hot_reachable,
            s.det_reachable
        )
        .unwrap();
        out.push_str("  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            writeln!(
                out,
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"site\": \"{}\"}}{}",
                esc(&e.from),
                esc(&e.to),
                esc(&e.site),
                if i + 1 < self.edges.len() { "," } else { "" }
            )
            .unwrap();
        }
        out.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let witness = f
                .witness
                .iter()
                .map(|w| format!("\"{}\"", esc(w)))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                out,
                "    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"func\": \"{}\", \
                 \"token\": \"{}\", \"detail\": \"{}\", \"witness\": [{}]}}{}",
                esc(f.pass),
                esc(&f.file),
                f.line,
                esc(&f.func),
                esc(&f.token),
                esc(&f.detail),
                witness,
                if i + 1 < self.findings.len() { "," } else { "" }
            )
            .unwrap();
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The committed-baseline form: just the stable keys.
    pub fn baseline_json(&self) -> String {
        let keys: BTreeSet<String> = self
            .findings
            .iter()
            .filter(|f| f.pass != "lock-cycle")
            .map(Finding::key)
            .collect();
        let mut out = String::from("{\n  \"schema\": 1,\n  \"findings\": [\n");
        let n = keys.len();
        for (i, k) in keys.iter().enumerate() {
            writeln!(
                out,
                "    \"{}\"{}",
                esc(k),
                if i + 1 < n { "," } else { "" }
            )
            .unwrap();
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string escaping for the hand-rolled writers above.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a baseline written by [`AuditReport::baseline_json`]: the set
/// of string literals inside the `findings` array. Defensive about
/// truncation and hand edits — errors, never panics.
pub fn baseline_from_json(text: &str) -> Result<BTreeSet<String>, String> {
    let start = text
        .find("\"findings\"")
        .ok_or_else(|| "baseline: no \"findings\" array".to_string())?;
    let rest = &text[start + "\"findings\"".len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| "baseline: findings is not an array".to_string())?;
    let mut keys = BTreeSet::new();
    let mut cur = String::new();
    let (mut in_str, mut esc_next) = (false, false);
    for c in rest[open + 1..].chars() {
        if in_str {
            if esc_next {
                match c {
                    'n' => cur.push('\n'),
                    't' => cur.push('\t'),
                    other => cur.push(other),
                }
                esc_next = false;
            } else if c == '\\' {
                esc_next = true;
            } else if c == '"' {
                keys.insert(std::mem::take(&mut cur));
                in_str = false;
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ']' {
            return Ok(keys);
        }
    }
    Err("baseline: truncated findings array".to_string())
}

/// Full audit configuration: panic roots/allowlist plus the effect
/// pass configuration.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig<'a> {
    /// Panic-reachability roots: `(file_suffix, fn_name, why)`.
    pub panic_roots: &'a [(&'a str, &'a str, &'a str)],
    /// Panic-site allowlist: `(file_suffix, fn_name, kind, why)`.
    pub panic_allowlist: &'a [(&'a str, &'a str, &'a str, &'a str)],
    /// Effect-pass roots and allowlists.
    pub effects: effects::EffectConfig<'a>,
}

impl AuditConfig<'static> {
    /// The repo's standard configuration.
    pub const fn default_repo() -> AuditConfig<'static> {
        AuditConfig {
            panic_roots: &panics::PANIC_ROOTS,
            panic_allowlist: &panics::PANIC_ALLOWLIST,
            effects: effects::DEFAULT_EFFECTS,
        }
    }
}

/// Runs every pass over in-memory sources with an explicit
/// configuration — the most general entry point.
pub fn audit_sources_cfg(sources: &[(String, String)], cfg: &AuditConfig) -> AuditReport {
    let parsed: Vec<items::ParsedFile> = sources
        .iter()
        .map(|(p, s)| items::parse_file(p, s))
        .collect();
    let graph = callgraph::CallGraph::build(parsed);
    let la = locks::analyze_locks(&graph);
    let pa = panics::analyze_panics(&graph, cfg.panic_roots, cfg.panic_allowlist);
    let ea = effects::analyze_effects(&graph, &la, &cfg.effects);
    let stats = AuditStats {
        files: graph.files.len(),
        fns: graph.fns.len(),
        acquisitions: la.acquisitions.len(),
        locks: la.locks.len(),
        edges: la.edges.len(),
        panic_sites: pa.sites,
        reachable_fns: pa.reachable_fns,
        effect_sites: ea.sites,
        hot_reachable: ea.hot_reachable,
        det_reachable: ea.det_reachable,
    };
    let mut findings: Vec<Finding> = la
        .findings
        .into_iter()
        .chain(pa.findings)
        .chain(ea.findings)
        .collect();
    findings.sort_by(|a, b| {
        (a.pass, &a.file, a.line, &a.token).cmp(&(b.pass, &b.file, b.line, &b.token))
    });
    findings.dedup_by(|a, b| a.key() == b.key() && a.line == b.line);
    AuditReport {
        findings,
        edges: la.edges,
        locks: la.locks,
        stats,
    }
}

/// Runs the passes over in-memory sources with explicit panic roots and
/// allowlist and the empty effect configuration (no named effect roots,
/// no effect allowlists — but the `_into` suffix rule still applies) —
/// the fixture-test entry point.
pub fn audit_sources_with(
    sources: &[(String, String)],
    roots: &[(&str, &str, &str)],
    allowlist: &[(&str, &str, &str, &str)],
) -> AuditReport {
    let cfg = AuditConfig {
        panic_roots: roots,
        panic_allowlist: allowlist,
        effects: effects::EffectConfig::empty(),
    };
    audit_sources_cfg(sources, &cfg)
}

/// Runs the audit over in-memory sources with the repo's standard roots
/// and allowlists.
pub fn audit_sources(sources: &[(String, String)]) -> AuditReport {
    audit_sources_cfg(sources, &AuditConfig::default_repo())
}

/// Collects workspace `.rs` sources under `root/crates`, skipping
/// `target`, VCS, and fixture directories. Paths come back
/// repo-relative with `/` separators.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    walk(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let src = std::fs::read_to_string(&f).map_err(|e| format!("read {}: {e}", f.display()))?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the audit over the workspace rooted at `root`.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let sources = collect_sources(root)?;
    Ok(audit_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn report_renders_and_serializes() {
        let sources = src(&[(
            "crates/x/src/a.rs",
            "\
fn root(x: &M, y: &M, v: Option<u32>) {
    let g = x.alpha.lock();
    let h = y.beta.lock();
    v.unwrap();
}
fn rev(x: &M, y: &M) {
    let h = y.beta.lock();
    let g = x.alpha.lock();
}
",
        )]);
        let r = audit_sources_with(&sources, &[("a.rs", "root", "test")], &[]);
        assert!(!r.clean());
        assert!(!r.cycles().is_empty());
        let text = r.render();
        assert!(text.contains("[lock-cycle]"), "{text}");
        assert!(text.contains("[panic-reachable]"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"pass\": \"lock-cycle\""), "{json}");
    }

    #[test]
    fn baseline_round_trips_and_masks_old_findings_but_not_cycles() {
        let sources = src(&[(
            "crates/x/src/a.rs",
            "fn root(v: Option<u32>) -> u32 { v.unwrap() }",
        )]);
        let r = audit_sources_with(&sources, &[("a.rs", "root", "test")], &[]);
        assert_eq!(r.findings.len(), 1);
        let base = baseline_from_json(&r.baseline_json()).unwrap();
        assert_eq!(base.len(), 1);
        assert!(r.beyond_baseline(&base).is_empty());
        // A cycle is reported even when its key is in the baseline.
        let cyc = src(&[(
            "crates/x/src/a.rs",
            "\
fn ab(x: &M, y: &M) { let g = x.alpha.lock(); let h = y.beta.lock(); }
fn ba(x: &M, y: &M) { let h = y.beta.lock(); let g = x.alpha.lock(); }
",
        )]);
        let r2 = audit_sources_with(&cyc, &[], &[]);
        let all: BTreeSet<String> = r2.findings.iter().map(Finding::key).collect();
        assert!(!r2.beyond_baseline(&all).is_empty());
    }

    #[test]
    fn baseline_parser_survives_truncation_and_escapes() {
        assert!(baseline_from_json("").is_err());
        assert!(baseline_from_json("{\"findings\": [").is_err());
        let keys = baseline_from_json("{\"schema\":1,\"findings\":[\"a|b\\\"c|d|e\"]}").unwrap();
        assert!(keys.contains("a|b\"c|d|e"));
        let empty = baseline_from_json("{\"findings\": []}").unwrap();
        assert!(empty.is_empty());
    }
}
