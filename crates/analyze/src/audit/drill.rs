//! Sanitizer drill: dynamic lock-order edges vs. the static graph.
//!
//! Debug builds record every `held -> acquired` pair of
//! [`zerosum_core::sync::Tracked`] locks. The drill clears that
//! registry, drives real workloads (the abnormal-exit chaos drill and
//! the parallel experiment engine) plus a canary pair guaranteed to
//! nest, then asserts every dynamically observed edge also appears in
//! the static lock-order graph. A dynamic edge the static pass missed
//! means the analysis under-approximates — exactly the failure mode a
//! static tool must be audited for.
//!
//! In release builds the sanitizer compiles away; the drill reports a
//! no-op rather than a vacuous pass.

use super::AuditReport;
use std::collections::BTreeSet;
use std::sync::PoisonError;
use zerosum_core::sync::{clear_observed_lock_edges, observed_lock_edges, Tracked};

/// Canary locks: acquired nested below so the drill can never pass
/// vacuously — if the sanitizer records nothing, something is off.
static CANARY_OUTER: Tracked<u32> = Tracked::new("audit.drill.canary_outer", 0);
static CANARY_INNER: Tracked<u32> = Tracked::new("audit.drill.canary_inner", 0);

/// The drill outcome.
#[derive(Debug)]
pub struct DrillReport {
    /// Dynamically observed `held -> acquired` pairs.
    pub observed: Vec<(String, String)>,
    /// Observed edges absent from the static graph (must be empty).
    pub missing: Vec<(String, String)>,
    /// Failures (missing edges, vacuous run, workload errors).
    pub problems: Vec<String>,
    /// True when built without `debug_assertions` — the sanitizer is
    /// compiled out and the drill cannot observe anything.
    pub release_noop: bool,
}

impl DrillReport {
    /// Whether the drill passed.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        if self.release_noop {
            return "drill: sanitizer compiled out (release build) — no-op\n".to_string();
        }
        let mut out = format!(
            "drill: {} observed lock-order edge(s), {} missing from the static graph\n",
            self.observed.len(),
            self.missing.len()
        );
        for (a, b) in &self.observed {
            let mark = if self.missing.contains(&(a.clone(), b.clone())) {
                "MISSING"
            } else {
                "ok"
            };
            out.push_str(&format!("  {a} -> {b} [{mark}]\n"));
        }
        for p in &self.problems {
            out.push_str(&format!("  FAIL: {p}\n"));
        }
        out
    }
}

/// Nested canary acquisition — deliberately non-test code so the
/// static pass extracts the same edge the sanitizer records.
fn exercise_canaries() {
    let mut outer = CANARY_OUTER.lock().unwrap_or_else(PoisonError::into_inner);
    let mut inner = CANARY_INNER.lock().unwrap_or_else(PoisonError::into_inner);
    *outer += 1;
    *inner += 1;
}

/// Runs real monitored workloads to generate tracked-lock traffic.
fn exercise_workloads(problems: &mut Vec<String>) {
    // Parallel experiment engine: per-slot job/result locks.
    let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
        .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
        .collect();
    let results = zerosum_experiments::parallel::run_jobs(jobs, 2);
    if results.iter().sum::<u64>() != 14 {
        problems.push("parallel workload returned wrong results".to_string());
    }
    // Abnormal-exit drill: crash-flush registry plus the flush
    // monitor's tracked lock, under a scratch directory.
    let dir = std::env::temp_dir().join(format!("zsaudit-drill-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        problems.push(format!("scratch dir {}: {e}", dir.display()));
        return;
    }
    for p in crate::chaos::abnormal_exit_drill(&dir) {
        problems.push(format!("abnormal-exit drill: {p}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs the drill against a computed static report.
pub fn run_drill(report: &AuditReport) -> DrillReport {
    if !cfg!(debug_assertions) {
        return DrillReport {
            observed: Vec::new(),
            missing: Vec::new(),
            problems: Vec::new(),
            release_noop: true,
        };
    }
    clear_observed_lock_edges();
    exercise_canaries();
    let mut problems = Vec::new();
    exercise_workloads(&mut problems);
    let observed: Vec<(String, String)> = observed_lock_edges()
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let static_pairs: BTreeSet<(&str, &str)> = report
        .edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    let missing: Vec<(String, String)> = observed
        .iter()
        .filter(|(a, b)| !static_pairs.contains(&(a.as_str(), b.as_str())))
        .cloned()
        .collect();
    if observed.is_empty() {
        problems.push(
            "sanitizer observed no edges — drill is vacuous (canaries should always record)"
                .to_string(),
        );
    }
    for (a, b) in &missing {
        problems.push(format!(
            "dynamic edge `{a} -> {b}` is absent from the static lock-order graph"
        ));
    }
    DrillReport {
        observed,
        missing,
        problems,
        release_noop: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canary_edge_is_in_the_static_graph_of_this_file() {
        // Audit just this file: the canary edge the sanitizer records
        // must be exactly what the static pass extracts here.
        let src = std::fs::read_to_string(file!()).ok().or_else(|| {
            let root = crate::lint::find_workspace_root(&std::env::current_dir().ok()?)?;
            std::fs::read_to_string(root.join("crates/analyze/src/audit/drill.rs")).ok()
        });
        let Some(src) = src else {
            panic!("cannot locate drill.rs source for self-audit")
        };
        let report =
            super::super::audit_sources(&[("crates/analyze/src/audit/drill.rs".to_string(), src)]);
        assert!(
            report.edges.iter().any(|e| e.from == "audit.drill.canary_outer"
                && e.to == "audit.drill.canary_inner"),
            "{:?}",
            report
                .edges
                .iter()
                .map(|e| (&e.from, &e.to))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn canaries_record_dynamically_in_debug() {
        exercise_canaries();
        if cfg!(debug_assertions) {
            let edges = observed_lock_edges();
            assert!(
                edges.contains(&("audit.drill.canary_outer", "audit.drill.canary_inner")),
                "{edges:?}"
            );
        }
    }
}
