//! Interprocedural panic-reachability analysis.
//!
//! The monitor's contract (§3.1) is that nothing reachable from the
//! sampling supervisor's `catch_unwind` boundary or from the
//! signal/crash-flush exit path should panic: a panic under the
//! supervisor costs a sample round, and a panic on the crash path turns
//! an orderly abnormal-exit report into an abort. This pass computes
//! the functions reachable from those roots over the workspace call
//! graph and reports every `unwrap`/`expect`/`panic!`-family
//! macro/slice-index site not covered by the reviewed allowlist.
//!
//! `unwrap`/`expect` chained directly onto a `write!`/`writeln!` macro
//! are auto-allowed: `fmt::Write` into a `String` is infallible, and
//! the repo's report renderers use that idiom throughout.
//!
//! This replaces the old 4-file `no-panic-hot-path` whitelist with a
//! reachability frontier: any *new* function the supervisor can reach
//! is audited automatically, whether or not someone remembered to add
//! its file to a list.

use super::callgraph::{CallGraph, SiteKind};
use super::lexer::TokKind;
use super::Finding;

/// Reachability roots: `(file_suffix, fn_name, why)`.
///
/// * `sample_inner` — everything under the sampling supervisor's
///   `catch_unwind` in `Monitor::sample`.
/// * `run_crash_flushes`, `report_abnormal_exit`, `crash_report` — the
///   abnormal-exit path; a panic here aborts before logs are flushed.
/// * `write_partial_logs`, `render_process_report` — registered as
///   crash flushes by the export path and the chaos drill; they run on
///   the exit path through a `dyn Fn` the call graph cannot see.
/// * `decode_frame`, `pump_frames` — the collector daemon's
///   hostile-input boundary: frames arrive truncated, corrupted, and
///   version-skewed off the wire, and a panic here kills supervision
///   for the whole allocation.
pub const PANIC_ROOTS: [(&str, &str, &str); 8] = [
    (
        "crates/core/src/monitor.rs",
        "sample_inner",
        "sampling supervisor",
    ),
    (
        "crates/core/src/signal.rs",
        "run_crash_flushes",
        "abnormal-exit path",
    ),
    (
        "crates/core/src/signal.rs",
        "report_abnormal_exit",
        "abnormal-exit path",
    ),
    (
        "crates/core/src/signal.rs",
        "crash_report",
        "abnormal-exit path",
    ),
    (
        "crates/core/src/export.rs",
        "write_partial_logs",
        "registered crash flush",
    ),
    (
        "crates/core/src/report.rs",
        "render_process_report",
        "registered crash flush",
    ),
    (
        "crates/net/src/frame.rs",
        "decode_frame",
        "wire hostile-input boundary",
    ),
    (
        "crates/net/src/collector.rs",
        "pump_frames",
        "collector daemon loop",
    ),
];

/// Reviewed panic-site allowlist: `(file_suffix, fn_name, kind, why)`.
/// An entry that stops matching any site fails the audit as stale
/// (allowlists must not rot).
pub const PANIC_ALLOWLIST: [(&str, &str, &str, &str); 2] = [
    (
        "crates/procfs/src/fault.rs",
        "run",
        "panic-macro",
        "deliberate chaos injection (Decision::Panic) — the supervisor's catch_unwind \
         is exactly the system under test",
    ),
    (
        "crates/procfs/src/fault.rs",
        "run_into",
        "panic-macro",
        "deliberate chaos injection (Decision::Panic), _into twin of `run`",
    ),
];

/// Panic-site kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect(…)`
    Expect,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!`
    PanicMacro,
    /// `expr[…]`
    Index,
}

impl PanicKind {
    /// Stable identifier used in findings and the allowlist.
    pub fn id(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic-macro",
            PanicKind::Index => "index",
        }
    }
}

/// One potential panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Owning function index.
    pub fn_idx: usize,
    /// Kind of site.
    pub kind: PanicKind,
    /// 1-based line.
    pub line: usize,
}

/// The result of the panic pass.
pub struct PanicAnalysis {
    /// Reachable-and-unallowed sites as findings, plus stale-allowlist
    /// entries.
    pub findings: Vec<Finding>,
    /// Total sites scanned (reachable or not).
    pub sites: usize,
    /// Functions reachable from the roots.
    pub reachable_fns: usize,
}

/// Whether the `.unwrap()`/`.expect(` at ident token `t` is chained
/// directly onto a `write!`/`writeln!` macro invocation.
fn is_write_chained(pf: &super::items::ParsedFile, t: usize) -> bool {
    // Pattern: `write!`/`writeln!` `(` … `)` `.` unwrap/expect — the
    // token before the `.` is the `)` closing the macro's paren group.
    if t < 2 || !pf.is_punct(t - 1, '.') {
        return false;
    }
    if !pf.is_punct(t - 2, ')') {
        return false;
    }
    // Find the matching `(` going backwards.
    let mut depth = 0i32;
    let mut q = t - 2;
    loop {
        match pf.tokens[q].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if q == 0 {
            return false;
        }
        q -= 1;
    }
    q >= 2
        && pf.is_punct(q - 1, '!')
        && (pf.is_ident(q - 2, "write") || pf.is_ident(q - 2, "writeln"))
}

/// Extracts every potential panic site in non-test functions.
pub fn panic_sites(graph: &CallGraph) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for (fi, node) in graph.fns.iter().enumerate() {
        let pf = &graph.files[node.file_idx];
        for site in &node.sites {
            match site.kind {
                SiteKind::Call => {
                    let kind = match site.name.as_str() {
                        "unwrap" => PanicKind::Unwrap,
                        "expect" => PanicKind::Expect,
                        _ => continue,
                    };
                    // Method position only.
                    if site.token == 0 || !pf.is_punct(site.token - 1, '.') {
                        continue;
                    }
                    if is_write_chained(pf, site.token) {
                        continue;
                    }
                    out.push(PanicSite {
                        fn_idx: fi,
                        kind,
                        line: site.line,
                    });
                }
                SiteKind::Macro => {
                    if matches!(
                        site.name.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) {
                        out.push(PanicSite {
                            fn_idx: fi,
                            kind: PanicKind::PanicMacro,
                            line: site.line,
                        });
                    }
                }
                SiteKind::Index => {
                    out.push(PanicSite {
                        fn_idx: fi,
                        kind: PanicKind::Index,
                        line: site.line,
                    });
                }
            }
        }
    }
    out
}

/// Runs the panic pass with the given roots and allowlist.
pub fn analyze_panics(
    graph: &CallGraph,
    roots: &[(&str, &str, &str)],
    allowlist: &[(&str, &str, &str, &str)],
) -> PanicAnalysis {
    let mut root_idx: Vec<usize> = Vec::new();
    for (file, name, _) in roots {
        root_idx.extend(graph.matching(file, name));
    }
    let parents = graph.reach_from(&root_idx);
    let sites = panic_sites(graph);
    let mut findings = Vec::new();
    let mut allow_hits = vec![0usize; allowlist.len()];
    let mut reachable_fns = 0usize;
    for p in &parents {
        if p.is_some() {
            reachable_fns += 1;
        }
    }
    for s in &sites {
        if parents[s.fn_idx].is_none() {
            continue;
        }
        let node = &graph.fns[s.fn_idx];
        let allowed = allowlist
            .iter()
            .enumerate()
            .any(|(ai, (file, func, kind, _))| {
                let hit = node.item.file.ends_with(file)
                    && node.item.name == *func
                    && s.kind.id() == *kind;
                if hit {
                    allow_hits[ai] += 1;
                }
                hit
            });
        if allowed {
            continue;
        }
        let witness = graph.path_chain(&parents, s.fn_idx);
        findings.push(Finding {
            pass: "panic-reachable",
            file: node.item.file.clone(),
            line: s.line,
            func: node.item.name.clone(),
            token: s.kind.id().to_string(),
            detail: format!(
                "`{}` in `{}` is reachable from a no-panic root via {}",
                s.kind.id(),
                node.item.name,
                witness.join(" -> ")
            ),
            witness,
        });
    }
    // Stale allowlist entries.
    for (ai, (file, func, kind, _)) in allowlist.iter().enumerate() {
        if allow_hits[ai] == 0 {
            findings.push(Finding {
                pass: "stale-allowlist",
                file: file.to_string(),
                line: 0,
                func: func.to_string(),
                token: kind.to_string(),
                detail: format!(
                    "panic allowlist entry ({file}, {func}, {kind}) matches no current site"
                ),
                witness: Vec::new(),
            });
        }
    }
    PanicAnalysis {
        findings,
        sites: sites.len(),
        reachable_fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::items::parse_file;

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(srcs.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    const ROOT: [(&str, &str, &str); 1] = [("a.rs", "root", "test root")];

    #[test]
    fn reachable_unwrap_is_flagged_unreachable_is_not() {
        let g = graph(&[(
            "a.rs",
            "\
fn root(x: Option<u32>) { step(x); }
fn step(x: Option<u32>) -> u32 { x.unwrap() }
fn island(x: Option<u32>) -> u32 { x.unwrap() }
",
        )]);
        let pa = analyze_panics(&g, &ROOT, &[]);
        assert_eq!(pa.findings.len(), 1, "{:?}", pa.findings);
        assert_eq!(pa.findings[0].func, "step");
        assert!(pa.findings[0].detail.contains("root -> step"));
    }

    #[test]
    fn write_chained_unwrap_is_auto_allowed() {
        let g = graph(&[(
            "a.rs",
            "\
fn root(out: &mut String) {
    writeln!(out, \"header {}\", 1).unwrap();
    write!(out, \"x\").unwrap();
    std::fs::read(\"f\").unwrap();
}
",
        )]);
        let pa = analyze_panics(&g, &ROOT, &[]);
        assert_eq!(pa.findings.len(), 1, "{:?}", pa.findings);
        assert_eq!(pa.findings[0].line, 4);
    }

    #[test]
    fn panic_macros_and_indexes_count() {
        let g = graph(&[(
            "a.rs",
            "fn root(v: &[u32]) -> u32 { if v.is_empty() { panic!(\"empty\") } v[0] }",
        )]);
        let pa = analyze_panics(&g, &ROOT, &[]);
        let kinds: Vec<&str> = pa.findings.iter().map(|f| f.token.as_str()).collect();
        assert!(kinds.contains(&"panic-macro"));
        assert!(kinds.contains(&"index"));
    }

    #[test]
    fn allowlist_suppresses_and_stale_entries_fail() {
        let g = graph(&[("a.rs", "fn root(x: Option<u32>) -> u32 { x.unwrap() }")]);
        let allow = [
            ("a.rs", "root", "unwrap", "covered by caller check"),
            ("a.rs", "gone_fn", "unwrap", "this entry is stale"),
        ];
        let pa = analyze_panics(&g, &ROOT, &allow);
        assert_eq!(pa.findings.len(), 1, "{:?}", pa.findings);
        assert_eq!(pa.findings[0].pass, "stale-allowlist");
        assert_eq!(pa.findings[0].func, "gone_fn");
    }
}
