//! End-to-end checks: the paper's scenarios run traced and come out
//! clean, and deliberately corrupted traces are flagged with precise,
//! event-level diagnostics.

use zerosum_analyze::{check_invariants, check_trace, detect_races, InvariantKind};
use zerosum_experiments::figures::{fig67_traced, fig8_traced_run};
use zerosum_experiments::tables::{run_table_traced, TableConfig};
use zerosum_sched::TraceEvent;

#[test]
fn table1_trace_is_clean() {
    let (_, trace, audit) = run_table_traced(TableConfig::Table1, 100, 41);
    let rep = check_trace("table1", &trace, &audit);
    assert!(
        trace.len() > 1000,
        "suspiciously small trace: {}",
        trace.len()
    );
    assert!(rep.clean(), "{}", rep.render());
}

#[test]
fn table2_trace_is_clean() {
    let (_, trace, audit) = run_table_traced(TableConfig::Table2, 100, 42);
    let rep = check_trace("table2", &trace, &audit);
    assert!(rep.clean(), "{}", rep.render());
}

#[test]
fn table3_trace_is_clean() {
    let (_, trace, audit) = run_table_traced(TableConfig::Table3, 100, 43);
    let rep = check_trace("table3", &trace, &audit);
    assert!(rep.clean(), "{}", rep.render());
}

#[test]
fn fig67_trace_is_clean() {
    let (_, trace, audit) = fig67_traced(150, 44);
    let rep = check_trace("fig67", &trace, &audit);
    assert!(rep.clean(), "{}", rep.render());
}

#[test]
fn fig8_traces_are_clean() {
    for (name, smt2) in [("fig8-smt1", false), ("fig8-smt2", true)] {
        let (_, trace, audit) = fig8_traced_run(smt2, 60, 45);
        let rep = check_trace(name, &trace, &audit);
        assert!(rep.clean(), "{}", rep.render());
    }
}

/// Injected bug 1: the scheduler "forgets" to charge one jiffy. The
/// invariant engine must localize the damage: the per-CPU account no
/// longer matches the replayed charges, and the victim task's utime or
/// stime counter disagrees with the trace.
#[test]
fn skipped_jiffy_charge_is_flagged_with_diagnostics() {
    let (_, mut trace, audit) = run_table_traced(TableConfig::Table2, 100, 46);
    let idx = trace
        .iter()
        .position(|r| matches!(r.ev, TraceEvent::JiffyCharge { .. }))
        .expect("a charge exists");
    let removed = trace.remove(idx);
    let (tid, cpu) = match removed.ev {
        TraceEvent::JiffyCharge { tid, cpu, .. } => (tid, cpu),
        _ => unreachable!(),
    };
    let v = check_invariants(&trace, &audit);
    // Conservation breaks on exactly the CPU that lost the charge…
    assert!(
        v.iter()
            .any(|x| x.kind == InvariantKind::Conservation
                && x.message.contains(&format!("cpu{cpu}"))),
        "no conservation diagnostic for cpu{cpu}: {v:#?}"
    );
    // …and the victim task's time counter no longer reconciles.
    assert!(
        v.iter().any(|x| x.kind == InvariantKind::CounterMismatch
            && x.message.contains(&format!("task {tid}"))
            && (x.message.contains("utime_us") || x.message.contains("stime_us"))),
        "no counter diagnostic for task {tid}: {v:#?}"
    );
}

/// Injected bug 2: a task is dispatched onto a second CPU in the same
/// tick without ever leaving the first — the classic lost-update / race
/// shape. Both checkers must fire: the race detector (no happens-before
/// edge between the two dispatches) and the invariant engine (single
/// residency), each naming the exact event.
#[test]
fn double_dispatch_is_flagged_by_both_checkers() {
    let (_, mut trace, audit) = run_table_traced(TableConfig::Table2, 100, 47);
    // Find a dispatch and re-issue it on a different CPU immediately.
    let (idx, tid, cpu) = trace
        .iter()
        .enumerate()
        .find_map(|(i, r)| match r.ev {
            TraceEvent::Dispatch { tid, cpu } => Some((i, tid, cpu)),
            _ => None,
        })
        .expect("a dispatch exists");
    let other_cpu = audit
        .cpus
        .iter()
        .map(|&(c, ..)| c)
        .find(|&c| c != cpu)
        .expect("a second cpu exists");
    let mut dup = trace[idx].clone();
    dup.ev = TraceEvent::Dispatch {
        tid,
        cpu: other_cpu,
    };
    trace.insert(idx + 1, dup);

    let races = detect_races(&trace);
    assert!(
        races.iter().any(|r| r.tid == tid && r.index == idx + 1),
        "race detector missed the double dispatch at trace[{}]: {races:#?}",
        idx + 1
    );

    let v = check_invariants(&trace, &audit);
    assert!(
        v.iter().any(|x| x.kind == InvariantKind::SingleResidency
            && x.index == Some(idx + 1)
            && x.message.contains(&format!("task {tid}"))),
        "invariant engine missed the double dispatch at trace[{}]: {v:#?}",
        idx + 1
    );
}
