//! Golden fixtures for the lint rules and the audit passes.
//!
//! Every rule has a `*.bad.rs` fixture (under `tests/fixtures/lint/` at
//! the workspace root) that must fire at exactly the expected lines,
//! and a `*.clean.rs` near-miss twin — the closest legal code — that
//! must stay silent. The pairs pin both the detection and the
//! false-positive boundary of each rule; fixture directories are
//! excluded from the real lint/audit walks.

use std::path::{Path, PathBuf};
use zerosum_analyze::audit::effects::EffectConfig;
use zerosum_analyze::audit::{audit_sources_cfg, audit_sources_with, AuditConfig};
use zerosum_analyze::lint::{find_workspace_root, lint_source};
use zerosum_analyze::AuditReport;

fn fixture_dir() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root")
        .join("tests/fixtures/lint")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(fixture stem, lint-as path, rule id, expected bad-fixture lines)`.
///
/// The former `wall_clock_sched` and `clone_hot_path` cases moved to
/// the audit fixtures below when their lint rules were folded into the
/// interprocedural nondeterminism and hot-path-alloc passes.
const LINT_CASES: [(&str, &str, &str, &[usize]); 6] = [
    (
        "panic_hot_path",
        "crates/core/src/monitor.rs",
        "no-panic-hot-path",
        &[4, 8],
    ),
    (
        "print_in_lib",
        "crates/core/src/export.rs",
        "no-print-in-lib",
        &[3, 4],
    ),
    (
        "source_error_bubble",
        "crates/core/src/monitor.rs",
        "no-source-error-bubble",
        &[4, 5],
    ),
    (
        "growth_monitor",
        "crates/core/src/cluster.rs",
        "no-unbounded-growth-in-monitor",
        &[4, 7],
    ),
    // Regression for the legacy brace-miscount: the raw string's
    // interior quote must not swallow the test mod or the violation
    // after it.
    (
        "raw_string_test_mod",
        "crates/core/src/lwp.rs",
        "no-panic-hot-path",
        &[7],
    ),
    // Lexer-hardening regression: byte strings, raw byte strings, and
    // a nested block comment all carry panic-family text that must be
    // blanked; only the unwrap at line 14 is code.
    (
        "byte_string_nested_comment",
        "crates/core/src/lwp.rs",
        "no-panic-hot-path",
        &[14],
    ),
];

#[test]
fn bad_lint_fixtures_fire_exactly_where_expected() {
    for (stem, as_path, rule, lines) in LINT_CASES {
        let src = read(&format!("{stem}.bad.rs"));
        let got: Vec<(&str, usize)> = lint_source(Path::new(as_path), &src)
            .iter()
            .map(|v| (v.rule.id(), v.line))
            .collect();
        let want: Vec<(&str, usize)> = lines.iter().map(|&l| (rule, l)).collect();
        assert_eq!(got, want, "{stem}.bad.rs as {as_path}");
    }
}

#[test]
fn clean_lint_fixtures_stay_silent() {
    for (stem, as_path, _, _) in LINT_CASES {
        let src = read(&format!("{stem}.clean.rs"));
        let v = lint_source(Path::new(as_path), &src);
        assert!(v.is_empty(), "{stem}.clean.rs as {as_path}: {v:?}");
    }
}

fn audit_one(name: &str, roots: &[(&str, &str, &str)]) -> AuditReport {
    audit_sources_with(&[(name.to_string(), read(name))], roots, &[])
}

#[test]
fn lock_cycle_fixture_pair() {
    let bad = audit_one("lock_cycle.bad.rs", &[]);
    assert!(
        !bad.cycles().is_empty(),
        "AB/BA fixture must report a lock-order cycle: {:?}",
        bad.findings
    );
    let clean = audit_one("lock_cycle.clean.rs", &[]);
    assert!(clean.cycles().is_empty(), "{:?}", clean.findings);
    assert!(
        clean
            .edges
            .iter()
            .any(|e| e.from == "alpha" && e.to == "beta"),
        "consistent ordering still contributes an edge: {:?}",
        clean.edges
    );
}

/// Audits one fixture with no panic roots and the given effect
/// configuration — the entry point for the effect-pass pairs.
fn audit_effects(name: &str, effects: EffectConfig) -> AuditReport {
    audit_sources_cfg(
        &[(name.to_string(), read(name))],
        &AuditConfig {
            panic_roots: &[],
            panic_allowlist: &[],
            effects,
        },
    )
}

#[test]
fn hot_path_alloc_fixture_pair() {
    let bad = audit_effects("hot_path_alloc.bad.rs", EffectConfig::empty());
    let hot: Vec<_> = bad
        .findings
        .iter()
        .filter(|f| f.pass == "hot-path-alloc")
        .collect();
    assert_eq!(hot.len(), 1, "{:?}", bad.findings);
    assert_eq!(hot[0].func, "leaf");
    assert_eq!(hot[0].token, "clone");
    assert_eq!(hot[0].witness, vec!["task_stat_into", "helper", "leaf"]);
    let clean = audit_effects("hot_path_alloc.clean.rs", EffectConfig::empty());
    assert!(clean.clean(), "{:?}", clean.findings);
}

#[test]
fn determinism_fixture_pair() {
    let bad = audit_effects(
        "determinism.bad.rs",
        EffectConfig {
            det_roots: &[("determinism.bad.rs", "run_sim")],
            ..EffectConfig::empty()
        },
    );
    let det: Vec<_> = bad
        .findings
        .iter()
        .filter(|f| f.pass == "nondeterminism")
        .collect();
    assert!(
        det.iter()
            .any(|f| f.func == "stamp" && f.token == "Instant::now"),
        "{:?}",
        bad.findings
    );
    assert!(
        det.iter()
            .any(|f| f.func == "run_sim" && f.token == "tasks.iter"),
        "{:?}",
        bad.findings
    );
    let clean = audit_effects(
        "determinism.clean.rs",
        EffectConfig {
            det_roots: &[("determinism.clean.rs", "run_sim")],
            ..EffectConfig::empty()
        },
    );
    assert!(clean.clean(), "{:?}", clean.findings);
}

#[test]
fn blocking_fixture_pair() {
    let bad = audit_effects("blocking.bad.rs", EffectConfig::empty());
    let blocking: Vec<_> = bad
        .findings
        .iter()
        .filter(|f| f.pass == "blocking")
        .collect();
    assert!(
        blocking
            .iter()
            .any(|f| f.func == "drain" && f.token == "alpha:thread::sleep"),
        "{:?}",
        bad.findings
    );
    let via = blocking
        .iter()
        .find(|f| f.token == "alpha:fs::read_to_string")
        .expect("callee-carried blocking finding");
    assert_eq!(via.witness, vec!["drain", "flush"]);
    let clean = audit_effects("blocking.clean.rs", EffectConfig::empty());
    assert!(clean.clean(), "{:?}", clean.findings);
}

#[test]
fn witness_traces_are_stable_across_runs() {
    // The snapshot contract for `--explain`: two independent audits of
    // the same source render byte-identical reports, including the
    // exact shortest-path trace lines.
    let a = audit_effects("hot_path_alloc.bad.rs", EffectConfig::empty()).render_with(true);
    let b = audit_effects("hot_path_alloc.bad.rs", EffectConfig::empty()).render_with(true);
    assert_eq!(a, b, "audit output must be deterministic");
    assert!(
        a.contains("    trace: task_stat_into -> helper -> leaf"),
        "missing witness trace:\n{a}"
    );
}

#[test]
fn panic_reach_fixture_pair() {
    let bad = audit_one(
        "panic_reach.bad.rs",
        &[("panic_reach.bad.rs", "entry", "fixture root")],
    );
    assert!(
        bad.findings
            .iter()
            .any(|f| f.pass == "panic-reachable" && f.func == "inner"),
        "{:?}",
        bad.findings
    );
    let clean = audit_one(
        "panic_reach.clean.rs",
        &[("panic_reach.clean.rs", "entry", "fixture root")],
    );
    assert!(clean.clean(), "{:?}", clean.findings);
}
