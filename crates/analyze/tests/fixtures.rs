//! Golden fixtures for the lint rules and the audit passes.
//!
//! Every rule has a `*.bad.rs` fixture (under `tests/fixtures/lint/` at
//! the workspace root) that must fire at exactly the expected lines,
//! and a `*.clean.rs` near-miss twin — the closest legal code — that
//! must stay silent. The pairs pin both the detection and the
//! false-positive boundary of each rule; fixture directories are
//! excluded from the real lint/audit walks.

use std::path::{Path, PathBuf};
use zerosum_analyze::audit::audit_sources_with;
use zerosum_analyze::lint::{find_workspace_root, lint_source};
use zerosum_analyze::AuditReport;

fn fixture_dir() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root")
        .join("tests/fixtures/lint")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(fixture stem, lint-as path, rule id, expected bad-fixture lines)`.
const LINT_CASES: [(&str, &str, &str, &[usize]); 7] = [
    (
        "panic_hot_path",
        "crates/core/src/monitor.rs",
        "no-panic-hot-path",
        &[4, 8],
    ),
    (
        "wall_clock_sched",
        "crates/sched/src/virtual_clock.rs",
        "no-wall-clock-in-sched",
        &[6, 10],
    ),
    (
        "print_in_lib",
        "crates/core/src/export.rs",
        "no-print-in-lib",
        &[3, 4],
    ),
    (
        "source_error_bubble",
        "crates/core/src/monitor.rs",
        "no-source-error-bubble",
        &[4, 5],
    ),
    (
        "clone_hot_path",
        "crates/core/src/hwt.rs",
        "no-clone-in-hot-path",
        &[4, 5],
    ),
    (
        "growth_monitor",
        "crates/core/src/cluster.rs",
        "no-unbounded-growth-in-monitor",
        &[4, 7],
    ),
    // Regression for the legacy brace-miscount: the raw string's
    // interior quote must not swallow the test mod or the violation
    // after it.
    (
        "raw_string_test_mod",
        "crates/core/src/lwp.rs",
        "no-panic-hot-path",
        &[7],
    ),
];

#[test]
fn bad_lint_fixtures_fire_exactly_where_expected() {
    for (stem, as_path, rule, lines) in LINT_CASES {
        let src = read(&format!("{stem}.bad.rs"));
        let got: Vec<(&str, usize)> = lint_source(Path::new(as_path), &src)
            .iter()
            .map(|v| (v.rule.id(), v.line))
            .collect();
        let want: Vec<(&str, usize)> = lines.iter().map(|&l| (rule, l)).collect();
        assert_eq!(got, want, "{stem}.bad.rs as {as_path}");
    }
}

#[test]
fn clean_lint_fixtures_stay_silent() {
    for (stem, as_path, _, _) in LINT_CASES {
        let src = read(&format!("{stem}.clean.rs"));
        let v = lint_source(Path::new(as_path), &src);
        assert!(v.is_empty(), "{stem}.clean.rs as {as_path}: {v:?}");
    }
}

fn audit_one(name: &str, roots: &[(&str, &str, &str)]) -> AuditReport {
    audit_sources_with(&[(name.to_string(), read(name))], roots, &[])
}

#[test]
fn lock_cycle_fixture_pair() {
    let bad = audit_one("lock_cycle.bad.rs", &[]);
    assert!(
        !bad.cycles().is_empty(),
        "AB/BA fixture must report a lock-order cycle: {:?}",
        bad.findings
    );
    let clean = audit_one("lock_cycle.clean.rs", &[]);
    assert!(clean.cycles().is_empty(), "{:?}", clean.findings);
    assert!(
        clean
            .edges
            .iter()
            .any(|e| e.from == "alpha" && e.to == "beta"),
        "consistent ordering still contributes an edge: {:?}",
        clean.edges
    );
}

#[test]
fn panic_reach_fixture_pair() {
    let bad = audit_one(
        "panic_reach.bad.rs",
        &[("panic_reach.bad.rs", "entry", "fixture root")],
    );
    assert!(
        bad.findings
            .iter()
            .any(|f| f.pass == "panic-reachable" && f.func == "inner"),
        "{:?}",
        bad.findings
    );
    let clean = audit_one(
        "panic_reach.clean.rs",
        &[("panic_reach.clean.rs", "entry", "fixture root")],
    );
    assert!(clean.clean(), "{:?}", clean.findings);
}
