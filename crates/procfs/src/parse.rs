//! Parsers for the `/proc` text formats.
//!
//! These accept the exact formats the Linux kernel emits (`man 5 proc`),
//! including the awkward parenthesized-`comm` field of `stat` — a thread
//! name may itself contain spaces and parentheses, so the parser scans for
//! the *last* closing parenthesis, as every robust procfs consumer must.

use crate::types::{CpuTimes, MemInfo, SystemStat, TaskStat, TaskState, TaskStatus};
use std::fmt;

/// Error produced when a `/proc` record cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Which file/record kind failed.
    pub what: &'static str,
    /// Description of the failure.
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to parse {}: {}", self.what, self.detail)
    }
}

impl std::error::Error for ParseError {}

fn err(what: &'static str, detail: impl Into<String>) -> ParseError {
    ParseError {
        what,
        detail: detail.into(),
    }
}

/// Parses the full text of `/proc/stat`.
pub fn parse_system_stat(text: &str) -> Result<SystemStat, ParseError> {
    let mut out = SystemStat::default();
    parse_system_stat_into(text, &mut out)?;
    Ok(out)
}

/// Parses `/proc/stat` into an existing record, reusing its per-CPU
/// vector (the sampling hot path re-reads this every period; on a
/// many-core node the row vector is the dominant allocation). On error
/// the contents of `out` are unspecified.
pub fn parse_system_stat_into(text: &str, out: &mut SystemStat) -> Result<(), ParseError> {
    out.cpus.clear();
    out.total = CpuTimes::default();
    out.ctxt = 0;
    out.processes = 0;
    let mut saw_total = false;
    for line in text.lines() {
        let mut it = line.split_ascii_whitespace();
        let Some(key) = it.next() else { continue };
        if key == "cpu" {
            out.total = parse_cpu_times(&mut it)?;
            saw_total = true;
        } else if let Some(idx) = key.strip_prefix("cpu") {
            let idx: u32 = idx
                .parse()
                .map_err(|_| err("/proc/stat", format!("bad cpu row {key:?}")))?;
            out.cpus.push((idx, parse_cpu_times(&mut it)?));
        } else if key == "ctxt" {
            out.ctxt = next_u64(&mut it, "/proc/stat ctxt")?;
        } else if key == "processes" {
            out.processes = next_u64(&mut it, "/proc/stat processes")?;
        }
    }
    if !saw_total {
        return Err(err("/proc/stat", "missing aggregate cpu row"));
    }
    out.cpus.sort_by_key(|(i, _)| *i);
    Ok(())
}

fn next_u64<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    what: &'static str,
) -> Result<u64, ParseError> {
    it.next()
        .ok_or_else(|| err(what, "missing field"))?
        .parse()
        .map_err(|_| err(what, "non-numeric field"))
}

fn parse_cpu_times<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<CpuTimes, ParseError> {
    let mut vals = [0u64; 8];
    for (i, v) in vals.iter_mut().enumerate() {
        // Kernels may omit trailing fields (steal etc.); treat as zero.
        match it.next() {
            Some(tok) => {
                *v = tok
                    .parse()
                    .map_err(|_| err("/proc/stat", format!("bad jiffy field {i}")))?
            }
            None if i >= 4 => break,
            None => return Err(err("/proc/stat", "cpu row too short")),
        }
    }
    Ok(CpuTimes {
        user: vals[0],
        nice: vals[1],
        system: vals[2],
        idle: vals[3],
        iowait: vals[4],
        irq: vals[5],
        softirq: vals[6],
        steal: vals[7],
    })
}

/// Parses `/proc/meminfo`.
pub fn parse_meminfo(text: &str) -> Result<MemInfo, ParseError> {
    let mut m = MemInfo::default();
    let mut saw_total = false;
    for line in text.lines() {
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        let value: u64 = rest
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .unwrap_or(0);
        match key.trim() {
            "MemTotal" => {
                m.mem_total_kib = value;
                saw_total = true;
            }
            "MemFree" => m.mem_free_kib = value,
            "MemAvailable" => m.mem_available_kib = value,
            "Buffers" => m.buffers_kib = value,
            "Cached" => m.cached_kib = value,
            "SwapTotal" => m.swap_total_kib = value,
            "SwapFree" => m.swap_free_kib = value,
            _ => {}
        }
    }
    if !saw_total {
        return Err(err("/proc/meminfo", "missing MemTotal"));
    }
    Ok(m)
}

/// A borrowed view of one `/proc/<pid>/task/<tid>/stat` line: the same
/// fields as [`TaskStat`], with `comm` borrowing from the input text.
///
/// Produced by [`parse_task_stat_view`], this is the zero-allocation
/// form the sampling hot path uses; [`TaskStatView::to_owned`] and
/// [`TaskStatView::assign_to`] convert to the owning record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskStatView<'a> {
    /// Thread id.
    pub tid: u32,
    /// Executable / thread name, borrowed from the line.
    pub comm: &'a str,
    /// Scheduler state.
    pub state: TaskState,
    /// Minor page faults.
    pub minflt: u64,
    /// Major page faults.
    pub majflt: u64,
    /// User-mode jiffies.
    pub utime: u64,
    /// Kernel-mode jiffies.
    pub stime: u64,
    /// Nice value.
    pub nice: i32,
    /// Threads in the owning process.
    pub num_threads: u32,
    /// CPU last executed on (field 39).
    pub processor: u32,
    /// Pages swapped (field 36).
    pub nswap: u64,
    /// Start time after boot in clock ticks (field 22) — the PID-reuse
    /// discriminator.
    pub starttime: u64,
}

impl TaskStatView<'_> {
    /// Copies the view into a fresh owning [`TaskStat`].
    pub fn to_owned(&self) -> TaskStat {
        let mut out = TaskStat::default();
        self.assign_to(&mut out);
        out
    }

    /// Copies the view into an existing [`TaskStat`], reusing its `comm`
    /// buffer.
    pub fn assign_to(&self, out: &mut TaskStat) {
        out.tid = self.tid;
        out.comm.clear();
        out.comm.push_str(self.comm);
        out.state = self.state;
        out.minflt = self.minflt;
        out.majflt = self.majflt;
        out.utime = self.utime;
        out.stime = self.stime;
        out.nice = self.nice;
        out.num_threads = self.num_threads;
        out.processor = self.processor;
        out.nswap = self.nswap;
        out.starttime = self.starttime;
    }
}

/// Parses one `/proc/<pid>/task/<tid>/stat` line without allocating: the
/// returned view borrows `comm` from the input. Single pass over the
/// post-comm fields — no token vector is collected.
pub fn parse_task_stat_view(line: &str) -> Result<TaskStatView<'_>, ParseError> {
    // Format: "tid (comm) S field4 field5 ..." where comm may contain
    // anything including ')' — find the *last* ')'.
    let open = line
        .find('(')
        .ok_or_else(|| err("task stat", "missing '('"))?;
    let close = line
        .rfind(')')
        .ok_or_else(|| err("task stat", "missing ')'"))?;
    if close < open {
        return Err(err("task stat", "mismatched parentheses"));
    }
    let tid: u32 = line[..open]
        .trim()
        .parse()
        .map_err(|_| err("task stat", "bad tid"))?;
    let comm = &line[open + 1..close];
    // Walk fields 3.. once, picking out the ones ZeroSum samples
    // (numbering per man 5 proc; the last one needed is 39).
    let mut state = None;
    let mut nice: i32 = 0;
    let mut picked = [0u64; 9];
    const FIELDS: [usize; 9] = [10, 12, 14, 15, 19, 20, 22, 36, 39];
    let mut it = line[close + 1..].split_ascii_whitespace();
    let mut field = 2usize;
    while field < 39 {
        field += 1;
        let tok = match it.next() {
            Some(t) => t,
            // Report the first *sampled* field that is missing, like the
            // indexed accessor this replaces.
            None => {
                let missing = if field <= 3 {
                    3
                } else {
                    *FIELDS.iter().find(|&&f| f >= field).unwrap_or(&39)
                };
                return Err(err("task stat", format!("missing field {missing}")));
            }
        };
        if field == 3 {
            let state_ch = tok
                .chars()
                .next()
                .ok_or_else(|| err("task stat", "empty state"))?;
            state = Some(
                TaskState::from_code(state_ch)
                    .ok_or_else(|| err("task stat", format!("unknown state {state_ch:?}")))?,
            );
        } else if field == 19 {
            // nice is the one signed field.
            nice = tok.parse().map_err(|_| err("task stat", "bad nice"))?;
        } else if let Some(slot) = FIELDS.iter().position(|&f| f == field) {
            picked[slot] = tok
                .parse()
                .map_err(|_| err("task stat", format!("bad numeric field {field}")))?;
        }
    }
    Ok(TaskStatView {
        tid,
        comm,
        state: state.expect("field 3 visited"),
        minflt: picked[0],
        majflt: picked[1],
        utime: picked[2],
        stime: picked[3],
        nice,
        num_threads: picked[5] as u32,
        starttime: picked[6],
        processor: picked[8] as u32,
        nswap: picked[7],
    })
}

/// Parses one `/proc/<pid>/task/<tid>/stat` line.
pub fn parse_task_stat(line: &str) -> Result<TaskStat, ParseError> {
    parse_task_stat_view(line).map(|v| v.to_owned())
}

/// Parses a `stat` line into an existing record, reusing its `comm`
/// buffer. On error the contents of `out` are unspecified.
pub fn parse_task_stat_into(line: &str, out: &mut TaskStat) -> Result<(), ParseError> {
    let view = parse_task_stat_view(line)?;
    view.assign_to(out);
    Ok(())
}

/// Parses `/proc/<pid>/task/<tid>/schedstat` (three space-separated
/// integers).
pub fn parse_schedstat(text: &str) -> Result<crate::types::SchedStat, ParseError> {
    let mut it = text.split_ascii_whitespace();
    let mut next = |what: &'static str| -> Result<u64, ParseError> {
        it.next()
            .ok_or_else(|| err("schedstat", format!("missing {what}")))?
            .parse()
            .map_err(|_| err("schedstat", format!("bad {what}")))
    };
    Ok(crate::types::SchedStat {
        run_ns: next("run_ns")?,
        wait_ns: next("wait_ns")?,
        timeslices: next("timeslices")?,
    })
}

/// Parses `/proc/<pid>/task/<tid>/status`.
pub fn parse_task_status(text: &str) -> Result<TaskStatus, ParseError> {
    let mut out = TaskStatus::default();
    parse_task_status_into(text, &mut out)?;
    Ok(out)
}

/// Parses a `status` record into an existing one, reusing its name
/// buffer and affinity-mask allocation. On error the contents of `out`
/// are unspecified.
pub fn parse_task_status_into(text: &str, out: &mut TaskStatus) -> Result<(), ParseError> {
    out.name.clear();
    out.state = TaskState::Sleeping;
    out.vm_rss_kib = 0;
    out.vm_size_kib = 0;
    out.vm_hwm_kib = 0;
    out.cpus_allowed.clear_all();
    out.voluntary_ctxt_switches = 0;
    out.nonvoluntary_ctxt_switches = 0;
    let mut tid = None;
    let mut tgid = None;
    for line in text.lines() {
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        let rest = rest.trim();
        match key.trim() {
            "Name" => {
                out.name.clear();
                out.name.push_str(rest);
            }
            "Pid" => tid = rest.parse().ok(),
            "Tgid" => tgid = rest.parse().ok(),
            "State" => {
                if let Some(c) = rest.chars().next() {
                    out.state = TaskState::from_code(c)
                        .ok_or_else(|| err("task status", format!("unknown state {c:?}")))?;
                }
            }
            "VmRSS" => out.vm_rss_kib = kib_value(rest),
            "VmSize" => out.vm_size_kib = kib_value(rest),
            "VmHWM" => out.vm_hwm_kib = kib_value(rest),
            "Cpus_allowed_list" => {
                out.cpus_allowed
                    .parse_list_into(rest)
                    .map_err(|e| err("task status", format!("bad cpu list: {e}")))?;
            }
            "voluntary_ctxt_switches" => out.voluntary_ctxt_switches = rest.parse().unwrap_or(0),
            "nonvoluntary_ctxt_switches" => {
                out.nonvoluntary_ctxt_switches = rest.parse().unwrap_or(0)
            }
            _ => {}
        }
    }
    out.tid = tid.ok_or_else(|| err("task status", "missing Pid"))?;
    out.tgid = tgid.ok_or_else(|| err("task status", "missing Tgid"))?;
    Ok(())
}

fn kib_value(rest: &str) -> u64 {
    rest.trim_end_matches("kB").trim().parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAT: &str = "\
cpu  100 2 50 840 5 1 2 0 0 0
cpu0 60 1 30 400 3 1 1 0 0 0
cpu1 40 1 20 440 2 0 1 0 0 0
intr 12345 0 0
ctxt 987654
btime 1700000000
processes 4242
procs_running 2
procs_blocked 0
";

    #[test]
    fn system_stat_parses() {
        let s = parse_system_stat(STAT).unwrap();
        assert_eq!(s.total.user, 100);
        assert_eq!(s.cpus.len(), 2);
        assert_eq!(s.cpus[1].0, 1);
        assert_eq!(s.cpus[1].1.idle, 440);
        assert_eq!(s.ctxt, 987654);
        assert_eq!(s.processes, 4242);
    }

    #[test]
    fn system_stat_requires_total_row() {
        assert!(parse_system_stat("cpu0 1 2 3 4\n").is_err());
    }

    #[test]
    fn system_stat_short_rows_ok() {
        // Ancient kernels emit only 4 fields.
        let s = parse_system_stat("cpu 1 2 3 4\ncpu0 1 2 3 4\n").unwrap();
        assert_eq!(s.total.idle, 4);
        assert_eq!(s.total.iowait, 0);
    }

    #[test]
    fn meminfo_parses() {
        let text = "\
MemTotal:       527942792 kB
MemFree:        480000000 kB
MemAvailable:   500000000 kB
Buffers:          100000 kB
Cached:          5000000 kB
SwapCached:            0 kB
SwapTotal:             0 kB
SwapFree:              0 kB
";
        let m = parse_meminfo(text).unwrap();
        assert_eq!(m.mem_total_kib, 527942792);
        assert_eq!(m.mem_available_kib, 500000000);
        assert_eq!(m.used_kib(), 27942792);
    }

    #[test]
    fn meminfo_requires_total() {
        assert!(parse_meminfo("MemFree: 5 kB\n").is_err());
    }

    #[test]
    fn task_stat_parses_basic() {
        let line = "51334 (miniqmc) R 51000 51334 51334 0 -1 4194304 \
            1234 0 5 0 6394 1248 0 0 20 0 9 0 100 123456789 4321 \
            18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 1 0 0 0 0 0 0 0 0 0 0 0 0 0";
        let t = parse_task_stat(line).unwrap();
        assert_eq!(t.tid, 51334);
        assert_eq!(t.comm, "miniqmc");
        assert_eq!(t.state, TaskState::Running);
        assert_eq!(t.minflt, 1234);
        assert_eq!(t.majflt, 5);
        assert_eq!(t.utime, 6394);
        assert_eq!(t.stime, 1248);
        assert_eq!(t.nice, 0);
        assert_eq!(t.num_threads, 9);
        assert_eq!(t.starttime, 100);
        assert_eq!(t.processor, 1);
    }

    #[test]
    fn task_stat_handles_evil_comm() {
        // comm containing spaces and a ')' — the classic procfs trap.
        let line = "7 (evil) name)) S 1 7 7 0 -1 0 \
            0 0 0 0 1 2 0 0 20 0 1 0 0 0 0 \
            18446744073709551615 0 0 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0 0 0 0 0 0 0 0 0";
        let t = parse_task_stat(line).unwrap();
        assert_eq!(t.comm, "evil) name)");
        assert_eq!(t.state, TaskState::Sleeping);
        assert_eq!(t.processor, 3);
    }

    #[test]
    fn task_stat_rejects_garbage() {
        assert!(parse_task_stat("no parens here").is_err());
        assert!(parse_task_stat("1 (x) R 1").is_err()); // too short
    }

    #[test]
    fn view_and_owning_parsers_agree_on_all_fixtures() {
        // Differential check over the golden lines, the evil-comm trap,
        // garbage, and every byte-truncation of the golden lines (torn
        // procfs reads): the borrowed-view parser, the owning parser,
        // and the buffer-reusing `_into` form must accept exactly the
        // same inputs and produce identical records.
        let basic = "51334 (miniqmc) R 51000 51334 51334 0 -1 4194304 \
            1234 0 5 0 6394 1248 0 0 20 0 9 0 100 123456789 4321 \
            18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 1 0 0 0 0 0 0 0 0 0 0 0 0 0";
        let evil = "7 (evil) name)) S 1 7 7 0 -1 0 \
            0 0 0 0 1 2 0 0 20 0 1 0 0 0 0 \
            18446744073709551615 0 0 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0 0 0 0 0 0 0 0 0";
        let mut fixtures: Vec<String> = vec![
            basic.to_string(),
            evil.to_string(),
            "no parens here".into(),
            "1 (x) R 1".into(),
            String::new(),
        ];
        for line in [basic, evil] {
            for i in 0..line.len() {
                fixtures.push(line[..i].to_string());
            }
        }
        let soiled = || TaskStat {
            comm: "stale-garbage".into(),
            utime: u64::MAX,
            nice: -7,
            ..Default::default()
        };
        for fx in &fixtures {
            match (parse_task_stat(fx), parse_task_stat_view(fx)) {
                (Ok(owned), Ok(view)) => {
                    assert_eq!(view.to_owned(), owned, "to_owned on {fx:?}");
                    let mut assigned = soiled();
                    view.assign_to(&mut assigned);
                    assert_eq!(assigned, owned, "assign_to on {fx:?}");
                    let mut reused = soiled();
                    parse_task_stat_into(fx, &mut reused).unwrap();
                    assert_eq!(reused, owned, "parse_task_stat_into on {fx:?}");
                }
                (Err(_), Err(_)) => {
                    assert!(
                        parse_task_stat_into(fx, &mut soiled()).is_err(),
                        "`_into` accepted what the owning parser rejected: {fx:?}"
                    );
                }
                (owned, view) => {
                    panic!("parsers disagree on {fx:?}: owned {owned:?}, view {view:?}")
                }
            }
        }
    }

    #[test]
    fn schedstat_parses() {
        let ss = parse_schedstat("123456789 42000 77\n").unwrap();
        assert_eq!(ss.run_ns, 123456789);
        assert_eq!(ss.wait_ns, 42000);
        assert_eq!(ss.timeslices, 77);
        assert!(parse_schedstat("1 2").is_err());
        assert!(parse_schedstat("a b c").is_err());
    }

    #[test]
    fn task_status_parses() {
        let text = "\
Name:\tminiqmc
State:\tR (running)
Tgid:\t51334
Pid:\t51384
VmSize:\t  900000 kB
VmHWM:\t  123456 kB
VmRSS:\t  120000 kB
Cpus_allowed:\tfe
Cpus_allowed_list:\t1-7
voluntary_ctxt_switches:\t365742
nonvoluntary_ctxt_switches:\t3
";
        let s = parse_task_status(text).unwrap();
        assert_eq!(s.name, "miniqmc");
        assert_eq!(s.tid, 51384);
        assert_eq!(s.tgid, 51334);
        assert_eq!(s.state, TaskState::Running);
        assert_eq!(s.vm_rss_kib, 120000);
        assert_eq!(s.cpus_allowed.to_list_string(), "1-7");
        assert_eq!(s.voluntary_ctxt_switches, 365742);
        assert_eq!(s.nonvoluntary_ctxt_switches, 3);
    }

    #[test]
    fn task_status_missing_pid_is_error() {
        assert!(parse_task_status("Name: x\n").is_err());
    }
}
