//! Deterministic fault injection at the `/proc` boundary.
//!
//! §3.1.1 of the paper argues a user-space monitor must survive a
//! hostile observation surface: tasks vanish between the task-list read
//! and the per-task read, records come back truncated, reads stall, and
//! the kernel occasionally refuses access outright. [`FaultInjector`]
//! makes that surface reproducible: it wraps any [`ProcSource`] in a
//! [`FaultyProc`] that injects a *seeded, deterministic* fault schedule —
//! transient and permanent I/O errors, `NotFound` races, malformed
//! records, permission denials, stale (repeated) reads, and per-call
//! latency — configurable per operation and per pid.
//!
//! Every fault delivered, and every error passed through from the inner
//! source, is appended to a fault log. The chaos harness reconciles that
//! log *exactly* against the monitor's `HealthLedger`: an error the
//! ledger did not account for is a bug, which is precisely the property
//! graceful degradation must prove.

use crate::source::{ProcSource, SourceError, SourceErrorKind, SourceResult};
use crate::types::{MemInfo, Pid, SchedStat, SystemStat, TaskStat, TaskStatus, Tid};
use std::cell::RefCell;
use std::collections::HashMap;

/// The `ProcSource` operations faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `system_stat` (`/proc/stat`).
    SystemStat,
    /// `meminfo` (`/proc/meminfo`).
    MemInfo,
    /// `list_tasks` (`/proc/<pid>/task`).
    ListTasks,
    /// `task_stat` (`/proc/<pid>/task/<tid>/stat`).
    TaskStat,
    /// `task_status` (`/proc/<pid>/task/<tid>/status`).
    TaskStatus,
    /// `task_schedstat` (`/proc/<pid>/task/<tid>/schedstat`).
    SchedStat,
}

impl Op {
    /// All operations, in stable order.
    pub const ALL: [Op; 6] = [
        Op::SystemStat,
        Op::MemInfo,
        Op::ListTasks,
        Op::TaskStat,
        Op::TaskStatus,
        Op::SchedStat,
    ];
}

/// Per-operation (or per-pid) fault probabilities and latency.
///
/// All probabilities are per call, evaluated in the order: latency
/// (additive), permanent I/O, permission denial (permanent), transient
/// I/O, `NotFound`, malformed, stale. Zero everywhere (the default)
/// injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability of a one-shot `Io` error.
    pub io_transient: f64,
    /// Probability this call marks the `(op, pid, tid)` key as
    /// *permanently* failing with `Io` — every later call on the key
    /// fails too.
    pub io_permanent: f64,
    /// Probability of a `NotFound` (the racing-task-exit injection).
    pub not_found: f64,
    /// Probability of a `Malformed` (truncated-record) error.
    pub malformed: f64,
    /// Probability this call marks the key as permanently `Denied`
    /// (EPERM-style: the record exists but will never be readable).
    pub denied: f64,
    /// Probability the call returns the *previous* successful value for
    /// the key instead of a fresh read (a stale record).
    pub stale: f64,
    /// Probability a call is charged [`FaultRates::latency_us`] of extra
    /// monitor cost.
    pub latency_prob: f64,
    /// Latency charged when the latency roll hits, µs.
    pub latency_us: u64,
}

/// One scripted fault: fires on the injector's `call`-th source call
/// (1-based, counted across all operations), overriding the rate rolls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedFault {
    /// The global call index the fault fires on.
    pub call: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// The kinds of injected fault, as recorded in the log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One-shot `Io` error.
    IoTransient,
    /// The key became permanently `Io`-failing (logged on every failing
    /// return).
    IoPermanent,
    /// Injected `NotFound`.
    NotFound,
    /// Injected `Malformed`.
    Malformed,
    /// The key became permanently `Denied`.
    Denied,
    /// A cached previous value was served instead of a fresh read.
    Stale,
    /// Extra latency charged to the monitor, µs.
    Latency(u64),
    /// The call panicked (scripted only — exercises the monitor's
    /// supervisor).
    Panic,
    /// The inner source itself returned an error; passed through
    /// unchanged and logged for reconciliation.
    Passthrough(SourceErrorKind),
}

impl FaultKind {
    /// The error kind this fault surfaces as to the caller, if it
    /// surfaces as an error at all.
    pub fn error_kind(self) -> Option<SourceErrorKind> {
        match self {
            FaultKind::IoTransient | FaultKind::IoPermanent => Some(SourceErrorKind::Io),
            FaultKind::NotFound => Some(SourceErrorKind::NotFound),
            FaultKind::Malformed => Some(SourceErrorKind::Malformed),
            FaultKind::Denied => Some(SourceErrorKind::Denied),
            FaultKind::Passthrough(k) => Some(k),
            FaultKind::Stale | FaultKind::Latency(_) | FaultKind::Panic => None,
        }
    }
}

/// One entry of the fault log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Global call index (1-based).
    pub call: u64,
    /// The operation the fault landed on.
    pub op: Op,
    /// Target pid (0 for node-level operations).
    pub pid: Pid,
    /// Target tid (0 when not applicable).
    pub tid: Tid,
    /// What happened.
    pub kind: FaultKind,
}

/// The full fault schedule configuration.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// RNG seed; the same plan + seed always produces the same schedule
    /// for the same call sequence.
    pub seed: u64,
    /// Rates applied when no per-op / per-pid override matches.
    pub default_rates: FaultRates,
    /// Per-operation overrides (checked after per-pid).
    pub per_op: Vec<(Op, FaultRates)>,
    /// Per-pid overrides (highest precedence).
    pub per_pid: Vec<(Pid, FaultRates)>,
    /// Exact-call scripted faults (override the rate rolls entirely).
    pub scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A plan injecting nothing (useful as a baseline).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The rates in effect for a call on `(op, pid)`.
    fn rates_for(&self, op: Op, pid: Pid) -> FaultRates {
        if let Some((_, r)) = self.per_pid.iter().find(|(p, _)| *p == pid) {
            return *r;
        }
        if let Some((_, r)) = self.per_op.iter().find(|(o, _)| *o == op) {
            return *r;
        }
        self.default_rates
    }
}

/// A cached last-good value per `(op, pid, tid)` key, used to serve
/// stale reads.
#[derive(Debug, Clone)]
enum CachedOk {
    System(SystemStat),
    Mem(MemInfo),
    Tasks(Vec<Tid>),
    Stat(TaskStat),
    Status(TaskStatus),
    Sched(SchedStat),
}

#[derive(Debug, Default)]
struct InjState {
    rng: u64,
    calls: u64,
    permanent: HashMap<(Op, Pid, Tid), SourceErrorKind>,
    cache: HashMap<(Op, Pid, Tid), CachedOk>,
    pending_latency_us: u64,
    log: Vec<FaultEvent>,
}

/// What the injector decided for one call, before touching the inner
/// source.
enum Decision {
    Pass,
    Fail(SourceError),
    Stale,
    Panic,
}

/// The stateful, seeded fault injector. Create once per run; wrap each
/// (possibly short-lived) inner source with [`FaultInjector::wrap`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Whether this plan can ever serve a stale read. Precomputed so the
    /// pass-through path skips last-good caching entirely when the answer
    /// is no — the common case for latency/error-only plans, where caching
    /// every successful read would clone every record the monitor samples.
    can_stale: bool,
    state: RefCell<InjState>,
}

/// splitmix64 — tiny, seedable, and plenty for fault scheduling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(rng: &mut u64) -> f64 {
    (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    /// Creates an injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        let state = InjState {
            rng: plan.seed ^ 0xD6E8_FEB8_6659_FD93,
            ..Default::default()
        };
        let can_stale = plan.default_rates.stale > 0.0
            || plan.per_op.iter().any(|(_, r)| r.stale > 0.0)
            || plan.per_pid.iter().any(|(_, r)| r.stale > 0.0)
            || plan
                .scripted
                .iter()
                .any(|s| matches!(s.kind, FaultKind::Stale));
        FaultInjector {
            plan,
            can_stale,
            state: RefCell::new(state),
        }
    }

    /// Wraps an inner source; the returned view shares this injector's
    /// schedule position, caches, and log.
    pub fn wrap<'a>(&'a self, inner: &'a dyn ProcSource) -> FaultyProc<'a> {
        FaultyProc { inj: self, inner }
    }

    /// Total source calls observed so far.
    pub fn total_calls(&self) -> u64 {
        self.state.borrow().calls
    }

    /// A copy of the fault log.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.state.borrow().log.clone()
    }

    /// Drains the latency accumulated since the last drain, µs. The
    /// driver charges this to the monitor's cost (e.g. by advancing the
    /// simulation clock), so slow procfs reads perturb the run the way
    /// they do on a real node.
    pub fn drain_latency_us(&self) -> u64 {
        std::mem::take(&mut self.state.borrow_mut().pending_latency_us)
    }

    /// Errors *returned to the caller* (injected and passed-through),
    /// counted by kind, excluding the listed operations. Indexed per
    /// [`SourceErrorKind::index`].
    pub fn error_counts_excluding(&self, exclude: &[Op]) -> [u64; 4] {
        let mut out = [0u64; 4];
        for ev in self.state.borrow().log.iter() {
            if exclude.contains(&ev.op) {
                continue;
            }
            if let Some(k) = ev.kind.error_kind() {
                out[k.index()] += 1;
            }
        }
        out
    }

    /// Number of stale serves so far.
    pub fn stale_count(&self) -> u64 {
        self.count(|k| matches!(k, FaultKind::Stale))
    }

    /// Total latency injected so far, µs (drained or not).
    pub fn injected_latency_us(&self) -> u64 {
        self.state
            .borrow()
            .log
            .iter()
            .map(|ev| match ev.kind {
                FaultKind::Latency(us) => us,
                _ => 0,
            })
            .sum()
    }

    /// Number of log events matching a predicate on the kind.
    pub fn count(&self, pred: impl Fn(FaultKind) -> bool) -> u64 {
        self.state
            .borrow()
            .log
            .iter()
            .filter(|ev| pred(ev.kind))
            .count() as u64
    }

    fn push(state: &mut InjState, call: u64, op: Op, pid: Pid, tid: Tid, kind: FaultKind) {
        state.log.push(FaultEvent {
            call,
            op,
            pid,
            tid,
            kind,
        });
    }

    /// Rolls the schedule for one call and returns the decision. Any
    /// injected latency is charged and logged here regardless of the
    /// decision.
    fn decide(&self, op: Op, pid: Pid, tid: Tid) -> Decision {
        let mut st = self.state.borrow_mut();
        st.calls += 1;
        let call = st.calls;
        let key = (op, pid, tid);
        // Scripted faults take absolute precedence.
        if let Some(s) = self.plan.scripted.iter().find(|s| s.call == call) {
            match s.kind {
                FaultKind::IoTransient => {
                    Self::push(&mut st, call, op, pid, tid, FaultKind::IoTransient);
                    return Decision::Fail(SourceError::Io("injected: transient".into()));
                }
                FaultKind::IoPermanent => {
                    st.permanent.insert(key, SourceErrorKind::Io);
                    Self::push(&mut st, call, op, pid, tid, FaultKind::IoPermanent);
                    return Decision::Fail(SourceError::Io("injected: permanent".into()));
                }
                FaultKind::NotFound => {
                    Self::push(&mut st, call, op, pid, tid, FaultKind::NotFound);
                    return Decision::Fail(SourceError::NotFound);
                }
                FaultKind::Malformed => {
                    Self::push(&mut st, call, op, pid, tid, FaultKind::Malformed);
                    return Decision::Fail(SourceError::Malformed(
                        "injected: truncated record".into(),
                    ));
                }
                FaultKind::Denied => {
                    st.permanent.insert(key, SourceErrorKind::Denied);
                    Self::push(&mut st, call, op, pid, tid, FaultKind::Denied);
                    return Decision::Fail(SourceError::Denied("injected: EPERM".into()));
                }
                FaultKind::Stale => {
                    if st.cache.contains_key(&key) {
                        Self::push(&mut st, call, op, pid, tid, FaultKind::Stale);
                        return Decision::Stale;
                    }
                    return Decision::Pass;
                }
                FaultKind::Latency(us) => {
                    st.pending_latency_us += us;
                    Self::push(&mut st, call, op, pid, tid, FaultKind::Latency(us));
                    return Decision::Pass;
                }
                FaultKind::Panic => {
                    Self::push(&mut st, call, op, pid, tid, FaultKind::Panic);
                    return Decision::Panic;
                }
                FaultKind::Passthrough(_) => return Decision::Pass,
            }
        }
        // Keys that already failed permanently stay failed.
        if let Some(&kind) = st.permanent.get(&key) {
            let (fk, err) = match kind {
                SourceErrorKind::Denied => (
                    FaultKind::Denied,
                    SourceError::Denied("injected: EPERM".into()),
                ),
                _ => (
                    FaultKind::IoPermanent,
                    SourceError::Io("injected: permanent".into()),
                ),
            };
            Self::push(&mut st, call, op, pid, tid, fk);
            return Decision::Fail(err);
        }
        let rates = self.plan.rates_for(op, pid);
        // Latency is additive: it can accompany any outcome.
        if rates.latency_prob > 0.0 && unit(&mut st.rng) < rates.latency_prob {
            st.pending_latency_us += rates.latency_us;
            Self::push(
                &mut st,
                call,
                op,
                pid,
                tid,
                FaultKind::Latency(rates.latency_us),
            );
        }
        if rates.io_permanent > 0.0 && unit(&mut st.rng) < rates.io_permanent {
            st.permanent.insert(key, SourceErrorKind::Io);
            Self::push(&mut st, call, op, pid, tid, FaultKind::IoPermanent);
            return Decision::Fail(SourceError::Io("injected: permanent".into()));
        }
        if rates.denied > 0.0 && unit(&mut st.rng) < rates.denied {
            st.permanent.insert(key, SourceErrorKind::Denied);
            Self::push(&mut st, call, op, pid, tid, FaultKind::Denied);
            return Decision::Fail(SourceError::Denied("injected: EPERM".into()));
        }
        if rates.io_transient > 0.0 && unit(&mut st.rng) < rates.io_transient {
            Self::push(&mut st, call, op, pid, tid, FaultKind::IoTransient);
            return Decision::Fail(SourceError::Io("injected: transient".into()));
        }
        if rates.not_found > 0.0 && unit(&mut st.rng) < rates.not_found {
            Self::push(&mut st, call, op, pid, tid, FaultKind::NotFound);
            return Decision::Fail(SourceError::NotFound);
        }
        if rates.malformed > 0.0 && unit(&mut st.rng) < rates.malformed {
            Self::push(&mut st, call, op, pid, tid, FaultKind::Malformed);
            return Decision::Fail(SourceError::Malformed("injected: truncated record".into()));
        }
        if rates.stale > 0.0 && unit(&mut st.rng) < rates.stale && st.cache.contains_key(&key) {
            Self::push(&mut st, call, op, pid, tid, FaultKind::Stale);
            return Decision::Stale;
        }
        Decision::Pass
    }

    /// Logs an error the inner source produced on its own.
    fn log_passthrough(&self, op: Op, pid: Pid, tid: Tid, e: &SourceError) {
        let mut st = self.state.borrow_mut();
        let call = st.calls;
        Self::push(
            &mut st,
            call,
            op,
            pid,
            tid,
            FaultKind::Passthrough(e.kind()),
        );
    }

    fn cache_ok(&self, op: Op, pid: Pid, tid: Tid, v: CachedOk) {
        self.state.borrow_mut().cache.insert((op, pid, tid), v);
    }

    fn cached(&self, op: Op, pid: Pid, tid: Tid) -> Option<CachedOk> {
        self.state.borrow().cache.get(&(op, pid, tid)).cloned()
    }
}

/// A [`ProcSource`] view that injects the wrapped injector's schedule
/// into every call before (maybe) consulting the inner source.
pub struct FaultyProc<'a> {
    inj: &'a FaultInjector,
    inner: &'a dyn ProcSource,
}

impl FaultyProc<'_> {
    fn run<T: Clone>(
        &self,
        op: Op,
        pid: Pid,
        tid: Tid,
        call: impl FnOnce() -> SourceResult<T>,
        to_cache: impl Fn(&T) -> CachedOk,
        from_cache: impl Fn(CachedOk) -> Option<T>,
    ) -> SourceResult<T> {
        match self.inj.decide(op, pid, tid) {
            Decision::Fail(e) => Err(e),
            Decision::Stale => match self.inj.cached(op, pid, tid).and_then(from_cache) {
                Some(v) => Ok(v),
                // Cache said present at decision time; if the variant
                // mismatched somehow, fall back to a real read.
                None => call(),
            },
            Decision::Panic => panic!("FaultyProc: injected panic on {op:?}"),
            Decision::Pass => match call() {
                Ok(v) => {
                    if self.inj.can_stale {
                        self.inj.cache_ok(op, pid, tid, to_cache(&v));
                    }
                    Ok(v)
                }
                Err(e) => {
                    self.inj.log_passthrough(op, pid, tid, &e);
                    Err(e)
                }
            },
        }
    }

    /// The `_into` twin of [`Self::run`]: `out` is threaded through the
    /// callbacks as an argument (never captured), so the borrow checker
    /// accepts one mutable record shared by the read and the stale-serve
    /// paths. The argument count mirrors [`Self::run`] plus the output
    /// slot and its cache adapters; splitting it would hide the symmetry.
    #[allow(clippy::too_many_arguments)]
    fn run_into<T>(
        &self,
        op: Op,
        pid: Pid,
        tid: Tid,
        out: &mut T,
        call: impl Fn(&dyn ProcSource, &mut T) -> SourceResult<()>,
        to_cache: impl Fn(&T) -> CachedOk,
        from_cache: impl Fn(&CachedOk, &mut T) -> bool,
    ) -> SourceResult<()> {
        match self.inj.decide(op, pid, tid) {
            Decision::Fail(e) => Err(e),
            Decision::Panic => panic!("FaultyProc: injected panic on {op:?}"),
            Decision::Stale => {
                let hit = {
                    let st = self.inj.state.borrow();
                    match st.cache.get(&(op, pid, tid)) {
                        Some(c) => from_cache(c, out),
                        None => false,
                    }
                };
                if hit {
                    Ok(())
                } else {
                    // Cache said present at decision time; if the variant
                    // mismatched somehow, fall back to a real read.
                    call(self.inner, out)
                }
            }
            Decision::Pass => match call(self.inner, out) {
                Ok(()) => {
                    if self.inj.can_stale {
                        self.inj.cache_ok(op, pid, tid, to_cache(out));
                    }
                    Ok(())
                }
                Err(e) => {
                    self.inj.log_passthrough(op, pid, tid, &e);
                    Err(e)
                }
            },
        }
    }
}

impl ProcSource for FaultyProc<'_> {
    fn system_stat(&self) -> SourceResult<SystemStat> {
        self.run(
            Op::SystemStat,
            0,
            0,
            || self.inner.system_stat(),
            |v| CachedOk::System(v.clone()),
            |c| match c {
                CachedOk::System(v) => Some(v),
                _ => None,
            },
        )
    }

    fn meminfo(&self) -> SourceResult<MemInfo> {
        self.run(
            Op::MemInfo,
            0,
            0,
            || self.inner.meminfo(),
            |v| CachedOk::Mem(*v),
            |c| match c {
                CachedOk::Mem(v) => Some(v),
                _ => None,
            },
        )
    }

    fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>> {
        self.run(
            Op::ListTasks,
            pid,
            0,
            || self.inner.list_tasks(pid),
            |v| CachedOk::Tasks(v.clone()),
            |c| match c {
                CachedOk::Tasks(v) => Some(v),
                _ => None,
            },
        )
    }

    fn task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStat> {
        self.run(
            Op::TaskStat,
            pid,
            tid,
            || self.inner.task_stat(pid, tid),
            |v| CachedOk::Stat(v.clone()),
            |c| match c {
                CachedOk::Stat(v) => Some(v),
                _ => None,
            },
        )
    }

    fn task_status(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStatus> {
        self.run(
            Op::TaskStatus,
            pid,
            tid,
            || self.inner.task_status(pid, tid),
            |v| CachedOk::Status(v.clone()),
            |c| match c {
                CachedOk::Status(v) => Some(v),
                _ => None,
            },
        )
    }

    fn task_schedstat(&self, pid: Pid, tid: Tid) -> SourceResult<SchedStat> {
        self.run(
            Op::SchedStat,
            pid,
            tid,
            || self.inner.task_schedstat(pid, tid),
            |v| CachedOk::Sched(*v),
            |c| match c {
                CachedOk::Sched(v) => Some(v),
                _ => None,
            },
        )
    }

    // The `_into` overrides keep the wrapper allocation-free on the
    // pass-through path: the inner source's buffer-reusing reads land
    // directly in the caller's record, and the injector's decision logic
    // runs identically (same call numbering, same log).

    fn system_stat_into(&self, out: &mut SystemStat) -> SourceResult<()> {
        self.run_into(
            Op::SystemStat,
            0,
            0,
            out,
            |inner, out| inner.system_stat_into(out),
            |v| CachedOk::System(v.clone()),
            |c, out| match c {
                CachedOk::System(v) => {
                    out.clone_from(v);
                    true
                }
                _ => false,
            },
        )
    }

    fn list_tasks_into(&self, pid: Pid, out: &mut Vec<Tid>) -> SourceResult<()> {
        self.run_into(
            Op::ListTasks,
            pid,
            0,
            out,
            |inner, out| inner.list_tasks_into(pid, out),
            |v| CachedOk::Tasks(v.clone()),
            |c, out| match c {
                CachedOk::Tasks(v) => {
                    out.clone_from(v);
                    true
                }
                _ => false,
            },
        )
    }

    fn task_stat_into(&self, pid: Pid, tid: Tid, out: &mut TaskStat) -> SourceResult<()> {
        self.run_into(
            Op::TaskStat,
            pid,
            tid,
            out,
            |inner, out| inner.task_stat_into(pid, tid, out),
            |v| CachedOk::Stat(v.clone()),
            |c, out| match c {
                CachedOk::Stat(v) => {
                    out.clone_from(v);
                    true
                }
                _ => false,
            },
        )
    }

    fn task_status_into(&self, pid: Pid, tid: Tid, out: &mut TaskStatus) -> SourceResult<()> {
        self.run_into(
            Op::TaskStatus,
            pid,
            tid,
            out,
            |inner, out| inner.task_status_into(pid, tid, out),
            |v| CachedOk::Status(v.clone()),
            |c, out| match c {
                CachedOk::Status(v) => {
                    out.clone_from(v);
                    true
                }
                _ => false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CpuTimes, TaskState};

    /// A minimal always-healthy source whose counters advance per call.
    struct TickSource {
        ticks: std::cell::Cell<u64>,
    }

    impl TickSource {
        fn new() -> Self {
            TickSource {
                ticks: std::cell::Cell::new(0),
            }
        }

        fn tick(&self) -> u64 {
            let t = self.ticks.get() + 1;
            self.ticks.set(t);
            t
        }
    }

    impl ProcSource for TickSource {
        fn system_stat(&self) -> SourceResult<SystemStat> {
            let t = self.tick();
            Ok(SystemStat {
                total: CpuTimes {
                    user: t,
                    ..Default::default()
                },
                cpus: vec![(
                    0,
                    CpuTimes {
                        user: t,
                        ..Default::default()
                    },
                )],
                ctxt: t,
                processes: 1,
            })
        }

        fn meminfo(&self) -> SourceResult<MemInfo> {
            Ok(MemInfo {
                mem_total_kib: 100,
                mem_available_kib: 100 - self.tick().min(50),
                ..Default::default()
            })
        }

        fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>> {
            if pid == 42 {
                Ok(vec![42, 43])
            } else {
                Err(SourceError::NotFound)
            }
        }

        fn task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStat> {
            if pid != 42 {
                return Err(SourceError::NotFound);
            }
            Ok(TaskStat {
                tid,
                comm: "tick".into(),
                state: TaskState::Running,
                minflt: 0,
                majflt: 0,
                utime: self.tick(),
                stime: 0,
                nice: 0,
                num_threads: 2,
                processor: 0,
                nswap: 0,
                starttime: 0,
            })
        }

        fn task_status(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStatus> {
            if pid != 42 {
                return Err(SourceError::NotFound);
            }
            Ok(TaskStatus {
                name: "tick".into(),
                tid,
                tgid: pid,
                state: TaskState::Running,
                vm_rss_kib: 10,
                vm_size_kib: 20,
                vm_hwm_kib: 10,
                cpus_allowed: Default::default(),
                voluntary_ctxt_switches: 0,
                nonvoluntary_ctxt_switches: 0,
            })
        }
    }

    fn rates(f: impl FnOnce(&mut FaultRates)) -> FaultRates {
        let mut r = FaultRates::default();
        f(&mut r);
        r
    }

    #[test]
    fn quiet_plan_passes_everything_and_logs_only_passthroughs() {
        let src = TickSource::new();
        let inj = FaultInjector::new(FaultPlan::quiet(7));
        let f = inj.wrap(&src);
        assert!(f.system_stat().is_ok());
        assert!(f.task_stat(42, 42).is_ok());
        assert!(matches!(f.task_stat(7, 7), Err(SourceError::NotFound)));
        let log = inj.log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0].kind,
            FaultKind::Passthrough(SourceErrorKind::NotFound)
        );
        assert_eq!(inj.total_calls(), 3);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let src = TickSource::new();
            let plan = FaultPlan {
                seed,
                default_rates: rates(|r| {
                    r.io_transient = 0.3;
                    r.malformed = 0.2;
                    r.not_found = 0.1;
                }),
                ..Default::default()
            };
            let inj = FaultInjector::new(plan);
            let f = inj.wrap(&src);
            for _ in 0..200 {
                let _ = f.task_stat(42, 42);
            }
            inj.log()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn scripted_faults_fire_at_exact_calls() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            scripted: vec![
                ScriptedFault {
                    call: 2,
                    kind: FaultKind::IoTransient,
                },
                ScriptedFault {
                    call: 3,
                    kind: FaultKind::Malformed,
                },
            ],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        assert!(f.task_stat(42, 42).is_ok());
        assert!(matches!(f.task_stat(42, 42), Err(SourceError::Io(_))));
        assert!(matches!(
            f.task_stat(42, 42),
            Err(SourceError::Malformed(_))
        ));
        assert!(f.task_stat(42, 42).is_ok());
        assert_eq!(inj.error_counts_excluding(&[]), [0, 1, 1, 0]);
    }

    #[test]
    fn permanent_faults_stick_per_key() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            scripted: vec![ScriptedFault {
                call: 1,
                kind: FaultKind::Denied,
            }],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        assert!(matches!(f.task_stat(42, 42), Err(SourceError::Denied(_))));
        // Same key stays denied; a different tid is untouched.
        assert!(matches!(f.task_stat(42, 42), Err(SourceError::Denied(_))));
        assert!(f.task_stat(42, 43).is_ok());
        assert_eq!(inj.count(|k| matches!(k, FaultKind::Denied)), 2);
    }

    #[test]
    fn stale_serves_previous_value() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            scripted: vec![ScriptedFault {
                call: 2,
                kind: FaultKind::Stale,
            }],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        let first = f.task_stat(42, 42).unwrap();
        let second = f.task_stat(42, 42).unwrap();
        assert_eq!(first.utime, second.utime, "stale read repeats the value");
        let third = f.task_stat(42, 42).unwrap();
        assert!(third.utime > second.utime, "fresh reads advance again");
        assert_eq!(inj.stale_count(), 1);
    }

    #[test]
    fn stale_without_cache_falls_through() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            scripted: vec![ScriptedFault {
                call: 1,
                kind: FaultKind::Stale,
            }],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        assert!(f.task_stat(42, 42).is_ok());
        assert_eq!(inj.stale_count(), 0);
    }

    #[test]
    fn latency_accumulates_and_drains() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            default_rates: rates(|r| {
                r.latency_prob = 1.0;
                r.latency_us = 250;
            }),
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        let _ = f.system_stat();
        let _ = f.meminfo();
        assert_eq!(inj.drain_latency_us(), 500);
        assert_eq!(inj.drain_latency_us(), 0);
        let _ = f.system_stat();
        assert_eq!(inj.drain_latency_us(), 250);
        assert_eq!(inj.injected_latency_us(), 750);
    }

    #[test]
    fn per_pid_rates_override_per_op_and_default() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            default_rates: FaultRates::default(),
            per_op: vec![(Op::TaskStat, rates(|r| r.io_transient = 1.0))],
            per_pid: vec![(42, FaultRates::default())],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        // pid 42 is overridden back to quiet despite the per-op rule.
        assert!(f.task_stat(42, 42).is_ok());
        // Node ops (pid 0) see the per-op rule only for TaskStat — quiet.
        assert!(f.system_stat().is_ok());
    }

    #[test]
    fn injected_panic_panics() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            scripted: vec![ScriptedFault {
                call: 1,
                kind: FaultKind::Panic,
            }],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let f = inj.wrap(&src);
            let _ = f.task_stat(42, 42);
        }));
        assert!(result.is_err());
        assert_eq!(inj.count(|k| matches!(k, FaultKind::Panic)), 1);
    }

    #[test]
    fn stale_free_plan_never_populates_the_cache() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 3,
            default_rates: rates(|r| {
                r.io_transient = 0.2;
                r.latency_prob = 0.5;
                r.latency_us = 10;
            }),
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        assert!(!inj.can_stale);
        let f = inj.wrap(&src);
        for _ in 0..50 {
            let _ = f.task_stat(42, 42);
            let mut out = TaskStat::default();
            let _ = f.task_stat_into(42, 42, &mut out);
        }
        assert!(
            inj.state.borrow().cache.is_empty(),
            "no stale in the plan => pass-through must not clone into the cache"
        );
    }

    #[test]
    fn into_forms_follow_the_same_schedule() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            scripted: vec![
                ScriptedFault {
                    call: 2,
                    kind: FaultKind::IoTransient,
                },
                ScriptedFault {
                    call: 3,
                    kind: FaultKind::Stale,
                },
            ],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        assert!(inj.can_stale);
        let f = inj.wrap(&src);
        let mut out = TaskStat::default();
        f.task_stat_into(42, 42, &mut out).unwrap();
        let first_utime = out.utime;
        assert!(matches!(
            f.task_stat_into(42, 42, &mut out),
            Err(SourceError::Io(_))
        ));
        // Call 3 serves the cached call-1 value into the same record.
        f.task_stat_into(42, 42, &mut out).unwrap();
        assert_eq!(out.utime, first_utime);
        assert_eq!(inj.stale_count(), 1);
        f.task_stat_into(42, 42, &mut out).unwrap();
        assert!(out.utime > first_utime, "fresh reads advance again");
        assert_eq!(inj.total_calls(), 4);
    }

    #[test]
    fn error_counts_exclude_requested_ops() {
        let src = TickSource::new();
        let plan = FaultPlan {
            seed: 1,
            per_op: vec![(Op::SchedStat, rates(|r| r.io_transient = 1.0))],
            ..Default::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.wrap(&src);
        let _ = f.task_schedstat(42, 42);
        assert_eq!(inj.error_counts_excluding(&[Op::SchedStat]), [0, 0, 0, 0]);
        assert_eq!(inj.error_counts_excluding(&[]), [0, 1, 0, 0]);
    }
}
