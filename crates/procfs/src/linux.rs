//! The live-Linux [`ProcSource`] backend.
//!
//! Reads a real `/proc` mount using only `std::fs` — no libc, no root, no
//! daemons; exactly the user-space access model the paper argues for. The
//! root directory is configurable so tests can point it at a fixture tree.

use crate::parse;
use crate::source::{ProcSource, SourceError, SourceResult};
use crate::types::{MemInfo, Pid, SchedStat, SystemStat, TaskStat, TaskStatus, Tid};
use std::cell::{Cell, RefCell};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// Maps a filesystem error on a procfs read to the source taxonomy:
/// vanished records are [`SourceError::NotFound`], permission failures
/// are [`SourceError::Denied`] (so callers can skip-with-count instead
/// of aborting a scan), everything else is [`SourceError::Io`].
fn classify_read_error(kind: ErrorKind, context: impl std::fmt::Display) -> SourceError {
    match kind {
        ErrorKind::NotFound => SourceError::NotFound,
        ErrorKind::PermissionDenied => SourceError::Denied(context.to_string()),
        _ => SourceError::Io(context.to_string()),
    }
}

/// A [`ProcSource`] reading a (real or fixture) procfs directory tree.
#[derive(Debug, Clone)]
pub struct LinuxProc {
    root: PathBuf,
    /// Directory entries skipped during [`ProcSource::list_tasks`] scans
    /// because the entry itself could not be stat'ed (racing exits,
    /// permission churn). A count, not an error: the rest of the scan
    /// proceeds.
    scan_skips: Cell<u64>,
    /// Read buffer shared by the `_into` reads: one `/proc` record is in
    /// flight at a time, so the text lands in the same allocation every
    /// period instead of a fresh `read_to_string` String per read.
    buf: RefCell<String>,
    /// Scratch path reused across reads (`/proc/<pid>/task/<tid>/stat`
    /// path assembly otherwise allocates three times per read).
    path_buf: RefCell<String>,
}

impl Default for LinuxProc {
    fn default() -> Self {
        Self::new()
    }
}

impl LinuxProc {
    /// Uses the system `/proc`.
    pub fn new() -> Self {
        Self::with_root("/proc")
    }

    /// Uses an alternate root (for tests / containers).
    pub fn with_root(root: impl Into<PathBuf>) -> Self {
        LinuxProc {
            root: root.into(),
            scan_skips: Cell::new(0),
            buf: RefCell::new(String::new()),
            path_buf: RefCell::new(String::new()),
        }
    }

    /// Total task-list entries skipped (rather than aborting the scan)
    /// since this source was created.
    pub fn scan_skips(&self) -> u64 {
        self.scan_skips.get()
    }

    /// The pid of the calling process, read from `/proc/self/status`
    /// without libc.
    pub fn self_pid(&self) -> SourceResult<Pid> {
        let text = self.read(self.root.join("self/status"))?;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("Pid:") {
                return rest
                    .trim()
                    .parse()
                    .map_err(|_| SourceError::Malformed("bad Pid in /proc/self/status".into()));
            }
        }
        Err(SourceError::Malformed("no Pid line".into()))
    }

    fn read(&self, path: PathBuf) -> SourceResult<String> {
        std::fs::read_to_string(&path)
            .map_err(|e| classify_read_error(e.kind(), format_args!("{}: {e}", path.display())))
    }

    /// Reads `path` into `buf` (cleared first), reusing its allocation.
    fn read_into_buf(&self, path: &str, buf: &mut String) -> SourceResult<()> {
        buf.clear();
        let mut f = std::fs::File::open(path)
            .map_err(|e| classify_read_error(e.kind(), format_args!("{path}: {e}")))?;
        std::io::Read::read_to_string(&mut f, buf)
            .map_err(|e| classify_read_error(e.kind(), format_args!("{path}: {e}")))?;
        Ok(())
    }

    /// Assembles `<root>/<pid>/task/<tid>/<leaf>` in the reusable path
    /// scratch.
    fn task_path(&self, pid: Pid, tid: Tid, leaf: &str) -> std::cell::RefMut<'_, String> {
        use std::fmt::Write as _;
        let mut s = self.path_buf.borrow_mut();
        s.clear();
        let _ = write!(s, "{}/{pid}/task/{tid}/{leaf}", self.root.display());
        s
    }

    /// Assembles `<root>/<leaf>` in the reusable path scratch.
    fn task_root_path(&self, leaf: &str) -> std::cell::RefMut<'_, String> {
        use std::fmt::Write as _;
        let mut s = self.path_buf.borrow_mut();
        s.clear();
        let _ = write!(s, "{}/{leaf}", self.root.display());
        s
    }

    /// Assembles `<root>/<pid>/task` in the reusable path scratch.
    fn task_dir(&self, pid: Pid) -> std::cell::RefMut<'_, String> {
        use std::fmt::Write as _;
        let mut s = self.path_buf.borrow_mut();
        s.clear();
        let _ = write!(s, "{}/{pid}/task", self.root.display());
        s
    }

    /// The root this source reads from.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

fn malformed(e: impl std::fmt::Display) -> SourceError {
    SourceError::Malformed(e.to_string())
}

impl ProcSource for LinuxProc {
    fn system_stat(&self) -> SourceResult<SystemStat> {
        let mut out = SystemStat::default();
        self.system_stat_into(&mut out)?;
        Ok(out)
    }

    fn system_stat_into(&self, out: &mut SystemStat) -> SourceResult<()> {
        let path = self.task_root_path("stat");
        let mut buf = self.buf.borrow_mut();
        self.read_into_buf(&path, &mut buf)?;
        drop(path);
        parse::parse_system_stat_into(&buf, out).map_err(malformed)
    }

    fn meminfo(&self) -> SourceResult<MemInfo> {
        let path = self.task_root_path("meminfo");
        let mut buf = self.buf.borrow_mut();
        self.read_into_buf(&path, &mut buf)?;
        drop(path);
        parse::parse_meminfo(&buf).map_err(malformed)
    }

    fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>> {
        let mut tids = Vec::new();
        self.list_tasks_into(pid, &mut tids)?;
        Ok(tids)
    }

    fn task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStat> {
        let mut out = TaskStat::default();
        self.task_stat_into(pid, tid, &mut out)?;
        Ok(out)
    }

    fn task_stat_into(&self, pid: Pid, tid: Tid, out: &mut TaskStat) -> SourceResult<()> {
        let path = self.task_path(pid, tid, "stat");
        let mut buf = self.buf.borrow_mut();
        self.read_into_buf(&path, &mut buf)?;
        drop(path);
        parse::parse_task_stat_into(buf.trim_end(), out).map_err(malformed)
    }

    fn task_status(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStatus> {
        let mut out = TaskStatus::default();
        self.task_status_into(pid, tid, &mut out)?;
        Ok(out)
    }

    fn task_status_into(&self, pid: Pid, tid: Tid, out: &mut TaskStatus) -> SourceResult<()> {
        let path = self.task_path(pid, tid, "status");
        let mut buf = self.buf.borrow_mut();
        self.read_into_buf(&path, &mut buf)?;
        drop(path);
        parse::parse_task_status_into(&buf, out).map_err(malformed)
    }

    fn task_schedstat(&self, pid: Pid, tid: Tid) -> SourceResult<SchedStat> {
        let path = self.task_path(pid, tid, "schedstat");
        let mut buf = self.buf.borrow_mut();
        self.read_into_buf(&path, &mut buf)?;
        drop(path);
        parse::parse_schedstat(&buf).map_err(malformed)
    }

    fn list_tasks_into(&self, pid: Pid, out: &mut Vec<Tid>) -> SourceResult<()> {
        out.clear();
        let dir = self.task_dir(pid);
        let entries = std::fs::read_dir(&*dir)
            .map_err(|e| classify_read_error(e.kind(), format_args!("{dir}: {e}")))?;
        drop(dir);
        for entry in entries {
            // A single unreadable entry (a task racing to exit, or a
            // permission-restricted sibling) must not abort the whole
            // scan — skip it and count, mirroring the NotFound tolerance
            // of the per-task reads.
            let entry = match entry {
                Ok(e) => e,
                Err(_) => {
                    self.scan_skips.set(self.scan_skips.get() + 1);
                    continue;
                }
            };
            if let Some(tid) = entry.file_name().to_str().and_then(|s| s.parse().ok()) {
                out.push(tid);
            }
        }
        out.sort_unstable();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run against the real /proc of the build machine — the
    // same records ZeroSum reads on an HPC login/compute node.

    #[test]
    fn reads_real_system_stat() {
        let src = LinuxProc::new();
        let s = src.system_stat().expect("read /proc/stat");
        assert!(!s.cpus.is_empty());
        assert!(s.total.total() > 0);
    }

    #[test]
    fn reads_real_meminfo() {
        let src = LinuxProc::new();
        let m = src.meminfo().expect("read /proc/meminfo");
        assert!(m.mem_total_kib > 0);
        assert!(m.mem_available_kib <= m.mem_total_kib);
    }

    #[test]
    fn lists_and_reads_own_tasks() {
        let src = LinuxProc::new();
        let pid = src.self_pid().expect("self pid");
        let tids = src.list_tasks(pid).expect("task list");
        assert!(tids.contains(&pid), "main thread tid == pid");
        let stat = src.task_stat(pid, pid).expect("task stat");
        assert_eq!(stat.tid, pid);
        let status = src.task_status(pid, pid).expect("task status");
        assert_eq!(status.tgid, pid);
        assert!(!status.cpus_allowed.is_empty());
    }

    #[test]
    fn own_process_status_matches_main_task() {
        let src = LinuxProc::new();
        let pid = src.self_pid().unwrap();
        let st = src.process_status(pid).unwrap();
        assert_eq!(st.tid, pid);
        assert!(st.vm_rss_kib > 0);
    }

    #[test]
    fn schedstat_reads_when_kernel_exposes_it() {
        let src = LinuxProc::new();
        let pid = src.self_pid().unwrap();
        match src.task_schedstat(pid, pid) {
            Ok(ss) => assert!(ss.run_ns > 0, "self has run"),
            // CONFIG_SCHED_INFO may be off; NotFound is acceptable.
            Err(SourceError::NotFound) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_errors_classify_by_kind() {
        assert_eq!(
            classify_read_error(ErrorKind::NotFound, "x"),
            SourceError::NotFound
        );
        match classify_read_error(ErrorKind::PermissionDenied, "/proc/1/task/1/stat: EPERM") {
            SourceError::Denied(msg) => assert!(msg.contains("EPERM")),
            other => panic!("expected Denied, got {other:?}"),
        }
        match classify_read_error(ErrorKind::TimedOut, "slow") {
            SourceError::Io(msg) => assert!(msg.contains("slow")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn scan_skip_counter_starts_at_zero_and_survives_scans() {
        let src = LinuxProc::new();
        let pid = src.self_pid().unwrap();
        src.list_tasks(pid).unwrap();
        // A healthy scan of our own task dir skips nothing.
        assert_eq!(src.scan_skips(), 0);
    }

    #[test]
    fn missing_pid_is_not_found() {
        let src = LinuxProc::new();
        // pid 4294967 is vanishingly unlikely to exist (beyond pid_max).
        match src.list_tasks(4_294_967) {
            Err(SourceError::NotFound) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn fixture_root_works() {
        let dir = std::env::temp_dir().join(format!("zs-procfix-{}", std::process::id()));
        let task = dir.join("42/task/42");
        std::fs::create_dir_all(&task).unwrap();
        std::fs::write(
            dir.join("stat"),
            "cpu 1 0 1 7 0 0 0 0 0 0\ncpu0 1 0 1 7 0 0 0 0 0 0\nctxt 5\nprocesses 1\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("meminfo"),
            "MemTotal: 100 kB\nMemFree: 50 kB\nMemAvailable: 60 kB\n",
        )
        .unwrap();
        std::fs::write(task.join("stat"), "42 (fix) S 1 42 42 0 -1 0 0 0 0 0 1 2 0 0 20 0 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3 0 0 0 0 0 0 0 0 0 0 0 0 0").unwrap();
        std::fs::write(task.join("status"), "Name: fix\nTgid: 42\nPid: 42\nState: S (sleeping)\nCpus_allowed_list: 0\nvoluntary_ctxt_switches: 1\nnonvoluntary_ctxt_switches: 0\n").unwrap();
        let src = LinuxProc::with_root(&dir);
        assert_eq!(src.system_stat().unwrap().ctxt, 5);
        assert_eq!(src.meminfo().unwrap().mem_total_kib, 100);
        assert_eq!(src.list_tasks(42).unwrap(), vec![42]);
        assert_eq!(src.task_stat(42, 42).unwrap().comm, "fix");
        assert_eq!(src.task_status(42, 42).unwrap().tgid, 42);
        std::fs::remove_dir_all(&dir).ok();
    }
}
