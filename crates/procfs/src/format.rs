//! Generators of `/proc`-style text from the typed records.
//!
//! The simulated node (in `zerosum-sched`) emits *text* in the kernel's
//! formats, and the monitor re-parses it with [`crate::parse`]. Feeding the
//! real parsers keeps the simulation honest: the monitor exercises exactly
//! the code path it uses against a live `/proc`.

use crate::types::{CpuTimes, MemInfo, SystemStat, TaskStat, TaskStatus};
use std::fmt::Write;

/// Renders a [`SystemStat`] in `/proc/stat` format.
pub fn format_system_stat(s: &SystemStat) -> String {
    let mut out = String::new();
    let row = |out: &mut String, name: &str, t: &CpuTimes| {
        writeln!(
            out,
            "{name} {} {} {} {} {} {} {} {} 0 0",
            t.user, t.nice, t.system, t.idle, t.iowait, t.irq, t.softirq, t.steal
        )
        .unwrap();
    };
    row(&mut out, "cpu", &s.total);
    for (idx, t) in &s.cpus {
        row(&mut out, &format!("cpu{idx}"), t);
    }
    writeln!(out, "ctxt {}", s.ctxt).unwrap();
    writeln!(out, "btime 1700000000").unwrap();
    writeln!(out, "processes {}", s.processes).unwrap();
    out
}

/// Renders a [`MemInfo`] in `/proc/meminfo` format.
pub fn format_meminfo(m: &MemInfo) -> String {
    let mut out = String::new();
    let row = |out: &mut String, k: &str, v: u64| {
        writeln!(out, "{k}:{:>12} kB", v).unwrap();
    };
    row(&mut out, "MemTotal", m.mem_total_kib);
    row(&mut out, "MemFree", m.mem_free_kib);
    row(&mut out, "MemAvailable", m.mem_available_kib);
    row(&mut out, "Buffers", m.buffers_kib);
    row(&mut out, "Cached", m.cached_kib);
    row(&mut out, "SwapTotal", m.swap_total_kib);
    row(&mut out, "SwapFree", m.swap_free_kib);
    out
}

/// Renders a [`TaskStat`] as one `/proc/<pid>/task/<tid>/stat` line.
///
/// Fields ZeroSum does not consume are emitted as zeros, at the correct
/// positions, so any conformant parser can read the line.
pub fn format_task_stat(t: &TaskStat) -> String {
    // 52 fields per modern kernels; we fill the ones we model.
    let mut fields: Vec<String> = vec!["0".to_string(); 52];
    fields[0] = t.tid.to_string();
    fields[1] = format!("({})", t.comm);
    fields[2] = t.state.code().to_string();
    fields[9] = t.minflt.to_string(); // field 10
    fields[11] = t.majflt.to_string(); // field 12
    fields[13] = t.utime.to_string(); // field 14
    fields[14] = t.stime.to_string(); // field 15
    fields[17] = "20".to_string(); // priority
    fields[18] = t.nice.to_string(); // field 19
    fields[19] = t.num_threads.to_string(); // field 20
    fields[35] = t.nswap.to_string(); // field 36
    fields[38] = t.processor.to_string(); // field 39
    fields.join(" ")
}

/// Renders a [`crate::types::SchedStat`] in schedstat format.
pub fn format_schedstat(s: &crate::types::SchedStat) -> String {
    format!("{} {} {}\n", s.run_ns, s.wait_ns, s.timeslices)
}

/// Renders a [`TaskStatus`] in `/proc/<pid>/task/<tid>/status` format.
pub fn format_task_status(s: &TaskStatus) -> String {
    let mut out = String::new();
    writeln!(out, "Name:\t{}", s.name).unwrap();
    writeln!(out, "State:\t{} ({})", s.state.code(), s.state.long_name()).unwrap();
    writeln!(out, "Tgid:\t{}", s.tgid).unwrap();
    writeln!(out, "Pid:\t{}", s.tid).unwrap();
    writeln!(out, "VmSize:\t{:>8} kB", s.vm_size_kib).unwrap();
    writeln!(out, "VmHWM:\t{:>8} kB", s.vm_hwm_kib).unwrap();
    writeln!(out, "VmRSS:\t{:>8} kB", s.vm_rss_kib).unwrap();
    writeln!(
        out,
        "Cpus_allowed_list:\t{}",
        s.cpus_allowed.to_list_string()
    )
    .unwrap();
    writeln!(
        out,
        "voluntary_ctxt_switches:\t{}",
        s.voluntary_ctxt_switches
    )
    .unwrap();
    writeln!(
        out,
        "nonvoluntary_ctxt_switches:\t{}",
        s.nonvoluntary_ctxt_switches
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::types::TaskState;
    use zerosum_topology::CpuSet;

    #[test]
    fn system_stat_roundtrip() {
        let s = SystemStat {
            total: CpuTimes {
                user: 100,
                system: 50,
                idle: 850,
                ..Default::default()
            },
            cpus: vec![
                (
                    0,
                    CpuTimes {
                        user: 60,
                        idle: 440,
                        ..Default::default()
                    },
                ),
                (
                    1,
                    CpuTimes {
                        user: 40,
                        idle: 410,
                        ..Default::default()
                    },
                ),
            ],
            ctxt: 12345,
            processes: 42,
        };
        let text = format_system_stat(&s);
        let back = parse::parse_system_stat(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn meminfo_roundtrip() {
        let m = MemInfo {
            mem_total_kib: 527942792,
            mem_free_kib: 4000,
            mem_available_kib: 5000,
            buffers_kib: 10,
            cached_kib: 20,
            swap_total_kib: 0,
            swap_free_kib: 0,
        };
        let back = parse::parse_meminfo(&format_meminfo(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn task_stat_roundtrip() {
        let t = TaskStat {
            tid: 18385,
            comm: "ZeroSum async".into(),
            state: TaskState::Running,
            minflt: 11,
            majflt: 2,
            utime: 264,
            stime: 79,
            nice: 0,
            num_threads: 9,
            processor: 7,
            nswap: 0,
        };
        let back = parse::parse_task_stat(&format_task_stat(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn task_status_roundtrip() {
        let s = TaskStatus {
            name: "miniqmc".into(),
            tid: 18592,
            tgid: 18552,
            state: TaskState::Running,
            vm_rss_kib: 120000,
            vm_size_kib: 900000,
            vm_hwm_kib: 130000,
            cpus_allowed: CpuSet::parse_list("1-7").unwrap(),
            voluntary_ctxt_switches: 766,
            nonvoluntary_ctxt_switches: 14,
        };
        let back = parse::parse_task_status(&format_task_status(&s)).unwrap();
        assert_eq!(back, s);
    }
}
