//! Generators of `/proc`-style text from the typed records.
//!
//! The simulated node (in `zerosum-sched`) emits *text* in the kernel's
//! formats, and the monitor re-parses it with [`crate::parse`]. Feeding the
//! real parsers keeps the simulation honest: the monitor exercises exactly
//! the code path it uses against a live `/proc`.
//!
//! Every record has two entry points: `format_*` returns a fresh
//! `String`, and `write_*` appends to a caller-owned buffer. The
//! sampling hot path renders thousands of records per second, so the
//! simulator reuses one buffer across reads via the `write_*` forms.

use crate::types::{CpuTimes, MemInfo, SystemStat, TaskStat, TaskStatus};
use std::fmt::Write;

/// Appends one `cpu` row of `/proc/stat`. `idx` of `None` renders the
/// aggregate `cpu` row; `Some(n)` renders `cpuN`.
pub fn write_cpu_row(out: &mut String, idx: Option<u32>, t: &CpuTimes) {
    match idx {
        None => out.push_str("cpu"),
        Some(n) => {
            let _ = write!(out, "cpu{n}");
        }
    }
    let _ = writeln!(
        out,
        " {} {} {} {} {} {} {} {} 0 0",
        t.user, t.nice, t.system, t.idle, t.iowait, t.irq, t.softirq, t.steal
    );
}

/// Appends a [`SystemStat`] in `/proc/stat` format.
pub fn write_system_stat(s: &SystemStat, out: &mut String) {
    write_cpu_row(out, None, &s.total);
    for (idx, t) in &s.cpus {
        write_cpu_row(out, Some(*idx), t);
    }
    let _ = writeln!(out, "ctxt {}", s.ctxt);
    let _ = writeln!(out, "btime 1700000000");
    let _ = writeln!(out, "processes {}", s.processes);
}

/// Renders a [`SystemStat`] in `/proc/stat` format.
pub fn format_system_stat(s: &SystemStat) -> String {
    let mut out = String::new();
    write_system_stat(s, &mut out);
    out
}

/// Appends a [`MemInfo`] in `/proc/meminfo` format.
pub fn write_meminfo(m: &MemInfo, out: &mut String) {
    let row = |out: &mut String, k: &str, v: u64| {
        let _ = writeln!(out, "{k}:{:>12} kB", v);
    };
    row(out, "MemTotal", m.mem_total_kib);
    row(out, "MemFree", m.mem_free_kib);
    row(out, "MemAvailable", m.mem_available_kib);
    row(out, "Buffers", m.buffers_kib);
    row(out, "Cached", m.cached_kib);
    row(out, "SwapTotal", m.swap_total_kib);
    row(out, "SwapFree", m.swap_free_kib);
}

/// Renders a [`MemInfo`] in `/proc/meminfo` format.
pub fn format_meminfo(m: &MemInfo) -> String {
    let mut out = String::new();
    write_meminfo(m, &mut out);
    out
}

/// Appends a [`TaskStat`] as one `/proc/<pid>/task/<tid>/stat` line.
///
/// Fields ZeroSum does not consume are emitted as zeros, at the correct
/// positions, so any conformant parser can read the line. 52 fields per
/// modern kernels; modeled fields are placed by 1-based field number.
pub fn write_task_stat(t: &TaskStat, out: &mut String) {
    let _ = write!(out, "{} ({}) {}", t.tid, t.comm, t.state.code());
    for field in 4..=52u32 {
        match field {
            10 => {
                let _ = write!(out, " {}", t.minflt);
            }
            12 => {
                let _ = write!(out, " {}", t.majflt);
            }
            14 => {
                let _ = write!(out, " {}", t.utime);
            }
            15 => {
                let _ = write!(out, " {}", t.stime);
            }
            18 => out.push_str(" 20"), // priority
            19 => {
                let _ = write!(out, " {}", t.nice);
            }
            20 => {
                let _ = write!(out, " {}", t.num_threads);
            }
            22 => {
                let _ = write!(out, " {}", t.starttime);
            }
            36 => {
                let _ = write!(out, " {}", t.nswap);
            }
            39 => {
                let _ = write!(out, " {}", t.processor);
            }
            _ => out.push_str(" 0"),
        }
    }
}

/// Renders a [`TaskStat`] as one `/proc/<pid>/task/<tid>/stat` line.
pub fn format_task_stat(t: &TaskStat) -> String {
    let mut out = String::new();
    write_task_stat(t, &mut out);
    out
}

/// Appends a [`crate::types::SchedStat`] in schedstat format.
pub fn write_schedstat(s: &crate::types::SchedStat, out: &mut String) {
    let _ = writeln!(out, "{} {} {}", s.run_ns, s.wait_ns, s.timeslices);
}

/// Renders a [`crate::types::SchedStat`] in schedstat format.
pub fn format_schedstat(s: &crate::types::SchedStat) -> String {
    let mut out = String::new();
    write_schedstat(s, &mut out);
    out
}

/// Appends a [`TaskStatus`] in `/proc/<pid>/task/<tid>/status` format.
pub fn write_task_status(s: &TaskStatus, out: &mut String) {
    let _ = writeln!(out, "Name:\t{}", s.name);
    let _ = writeln!(out, "State:\t{} ({})", s.state.code(), s.state.long_name());
    let _ = writeln!(out, "Tgid:\t{}", s.tgid);
    let _ = writeln!(out, "Pid:\t{}", s.tid);
    let _ = writeln!(out, "VmSize:\t{:>8} kB", s.vm_size_kib);
    let _ = writeln!(out, "VmHWM:\t{:>8} kB", s.vm_hwm_kib);
    let _ = writeln!(out, "VmRSS:\t{:>8} kB", s.vm_rss_kib);
    // CpuSet::write_list streams the mask without the intermediate
    // to_list_string allocation.
    out.push_str("Cpus_allowed_list:\t");
    let _ = s.cpus_allowed.write_list(out);
    out.push('\n');
    let _ = writeln!(
        out,
        "voluntary_ctxt_switches:\t{}",
        s.voluntary_ctxt_switches
    );
    let _ = writeln!(
        out,
        "nonvoluntary_ctxt_switches:\t{}",
        s.nonvoluntary_ctxt_switches
    );
}

/// Renders a [`TaskStatus`] in `/proc/<pid>/task/<tid>/status` format.
pub fn format_task_status(s: &TaskStatus) -> String {
    let mut out = String::new();
    write_task_status(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::types::TaskState;
    use zerosum_topology::CpuSet;

    #[test]
    fn system_stat_roundtrip() {
        let s = SystemStat {
            total: CpuTimes {
                user: 100,
                system: 50,
                idle: 850,
                ..Default::default()
            },
            cpus: vec![
                (
                    0,
                    CpuTimes {
                        user: 60,
                        idle: 440,
                        ..Default::default()
                    },
                ),
                (
                    1,
                    CpuTimes {
                        user: 40,
                        idle: 410,
                        ..Default::default()
                    },
                ),
            ],
            ctxt: 12345,
            processes: 42,
        };
        let text = format_system_stat(&s);
        let back = parse::parse_system_stat(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn meminfo_roundtrip() {
        let m = MemInfo {
            mem_total_kib: 527942792,
            mem_free_kib: 4000,
            mem_available_kib: 5000,
            buffers_kib: 10,
            cached_kib: 20,
            swap_total_kib: 0,
            swap_free_kib: 0,
        };
        let back = parse::parse_meminfo(&format_meminfo(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn task_stat_roundtrip() {
        let t = TaskStat {
            tid: 18385,
            comm: "ZeroSum async".into(),
            state: TaskState::Running,
            minflt: 11,
            majflt: 2,
            utime: 264,
            stime: 79,
            nice: 0,
            num_threads: 9,
            processor: 7,
            nswap: 0,
            starttime: 170_043,
        };
        let back = parse::parse_task_stat(&format_task_stat(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn task_stat_line_has_52_fields_and_priority() {
        let t = TaskStat {
            tid: 1,
            comm: "x".into(),
            state: TaskState::Sleeping,
            minflt: 0,
            majflt: 0,
            utime: 0,
            stime: 0,
            nice: -5,
            num_threads: 1,
            processor: 0,
            nswap: 0,
            starttime: 0,
        };
        let line = format_task_stat(&t);
        let fields: Vec<&str> = line.split(' ').collect();
        assert_eq!(fields.len(), 52);
        assert_eq!(fields[17], "20", "static priority at field 18");
        assert_eq!(fields[18], "-5", "nice at field 19");
    }

    #[test]
    fn write_forms_append_to_existing_buffers() {
        let mut buf = String::from("prefix\n");
        let ss = crate::types::SchedStat {
            run_ns: 1,
            wait_ns: 2,
            timeslices: 3,
        };
        write_schedstat(&ss, &mut buf);
        assert_eq!(buf, "prefix\n1 2 3\n");
    }

    #[test]
    fn task_status_roundtrip() {
        let s = TaskStatus {
            name: "miniqmc".into(),
            tid: 18592,
            tgid: 18552,
            state: TaskState::Running,
            vm_rss_kib: 120000,
            vm_size_kib: 900000,
            vm_hwm_kib: 130000,
            cpus_allowed: CpuSet::parse_list("1-7").unwrap(),
            voluntary_ctxt_switches: 766,
            nonvoluntary_ctxt_switches: 14,
        };
        let back = parse::parse_task_status(&format_task_status(&s)).unwrap();
        assert_eq!(back, s);
    }
}
