//! Typed records of the `/proc` data ZeroSum consumes.
//!
//! The monitor reads five kinds of records, mirroring §3.1 of the paper:
//! the system-wide CPU jiffy counters (`/proc/stat`), the memory subsystem
//! (`/proc/meminfo`), the task list (`/proc/<pid>/task`), per-task
//! scheduling counters (`/proc/<pid>/task/<tid>/stat`), and per-task status
//! including affinity and context-switch counts
//! (`/proc/<pid>/task/<tid>/status`).

use zerosum_topology::CpuSet;

/// A process identifier.
pub type Pid = u32;
/// A lightweight-process (thread) identifier.
pub type Tid = u32;
/// CPU time in jiffies (USER_HZ ticks, 100 Hz like stock Linux).
pub type Jiffies = u64;

/// Jiffies per second in this model (Linux `USER_HZ`).
pub const USER_HZ: u64 = 100;

/// Scheduler state of a task, as reported in the `state` field of
/// `/proc/<pid>/stat` and the `State:` line of `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// `R` — running or runnable.
    Running,
    /// `S` — interruptible sleep.
    Sleeping,
    /// `D` — uninterruptible (disk) sleep.
    DiskSleep,
    /// `Z` — zombie.
    Zombie,
    /// `T` — stopped.
    Stopped,
    /// `I` — idle kernel thread.
    Idle,
    /// `X` — dead.
    Dead,
}

impl Default for TaskState {
    /// `S` — the state an otherwise-uninitialized record slot reports;
    /// sleeping is what most threads are at any instant.
    fn default() -> Self {
        TaskState::Sleeping
    }
}

impl TaskState {
    /// The single-character code used in `/proc/<pid>/stat`.
    pub fn code(self) -> char {
        match self {
            TaskState::Running => 'R',
            TaskState::Sleeping => 'S',
            TaskState::DiskSleep => 'D',
            TaskState::Zombie => 'Z',
            TaskState::Stopped => 'T',
            TaskState::Idle => 'I',
            TaskState::Dead => 'X',
        }
    }

    /// Parses the single-character code.
    pub fn from_code(c: char) -> Option<TaskState> {
        Some(match c {
            'R' => TaskState::Running,
            'S' => TaskState::Sleeping,
            'D' => TaskState::DiskSleep,
            'Z' => TaskState::Zombie,
            'T' | 't' => TaskState::Stopped,
            'I' => TaskState::Idle,
            'X' | 'x' => TaskState::Dead,
            _ => return None,
        })
    }

    /// The long name used in the `State:` line of `status`
    /// (e.g. `R (running)`).
    pub fn long_name(self) -> &'static str {
        match self {
            TaskState::Running => "running",
            TaskState::Sleeping => "sleeping",
            TaskState::DiskSleep => "disk sleep",
            TaskState::Zombie => "zombie",
            TaskState::Stopped => "stopped",
            TaskState::Idle => "idle",
            TaskState::Dead => "dead",
        }
    }
}

/// Fields of `/proc/<pid>/task/<tid>/stat` that ZeroSum samples.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TaskStat {
    /// Thread id.
    pub tid: Tid,
    /// Executable / thread name (`comm`), without parentheses.
    pub comm: String,
    /// Scheduler state.
    pub state: TaskState,
    /// Minor page faults (no disk I/O required).
    pub minflt: u64,
    /// Major page faults (required loading a page from disk).
    pub majflt: u64,
    /// Time spent in user mode, jiffies.
    pub utime: Jiffies,
    /// Time spent in kernel mode, jiffies.
    pub stime: Jiffies,
    /// Nice value.
    pub nice: i32,
    /// Number of threads in the owning process.
    pub num_threads: u32,
    /// CPU (hardware thread OS index) this task last executed on —
    /// field 39 of `stat`, the source of the paper's migration tracking.
    pub processor: u32,
    /// Pages swapped (cumulative; zero on modern kernels but reported by
    /// ZeroSum's CSV export).
    pub nswap: u64,
    /// Time the task started after boot, in clock ticks — field 22 of
    /// `stat`. A tid whose `starttime` changes between samples is a
    /// *recycled* id belonging to a brand-new task, not a continuation
    /// of the old series.
    pub starttime: u64,
}

impl Clone for TaskStat {
    fn clone(&self) -> Self {
        TaskStat {
            comm: self.comm.clone(),
            ..*self
        }
    }

    fn clone_from(&mut self, src: &Self) {
        // Reuses the `comm` buffer — the monitor refreshes last-good
        // records every sample, so the derived `clone` would allocate
        // once per thread per period.
        self.comm.clone_from(&src.comm);
        let TaskStat {
            tid,
            comm: _,
            state,
            minflt,
            majflt,
            utime,
            stime,
            nice,
            num_threads,
            processor,
            nswap,
            starttime,
        } = *src;
        self.tid = tid;
        self.state = state;
        self.minflt = minflt;
        self.majflt = majflt;
        self.utime = utime;
        self.stime = stime;
        self.nice = nice;
        self.num_threads = num_threads;
        self.processor = processor;
        self.nswap = nswap;
        self.starttime = starttime;
    }
}

/// Fields of `/proc/<pid>/task/<tid>/status` that ZeroSum samples.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TaskStatus {
    /// Thread name (`Name:`).
    pub name: String,
    /// Thread id (`Pid:` line of a task's status).
    pub tid: Tid,
    /// Thread group id — the process pid (`Tgid:`).
    pub tgid: Pid,
    /// Scheduler state (`State:`).
    pub state: TaskState,
    /// Resident set size in KiB (`VmRSS:`, process-wide).
    pub vm_rss_kib: u64,
    /// Virtual memory size in KiB (`VmSize:`).
    pub vm_size_kib: u64,
    /// Peak RSS in KiB (`VmHWM:`).
    pub vm_hwm_kib: u64,
    /// Allowed CPU list (`Cpus_allowed_list:`).
    pub cpus_allowed: CpuSet,
    /// Voluntary context switches (`voluntary_ctxt_switches:`).
    pub voluntary_ctxt_switches: u64,
    /// Non-voluntary context switches (`nonvoluntary_ctxt_switches:`) —
    /// the paper's primary contention signal.
    pub nonvoluntary_ctxt_switches: u64,
}

impl Clone for TaskStatus {
    fn clone(&self) -> Self {
        TaskStatus {
            name: self.name.clone(),
            tid: self.tid,
            tgid: self.tgid,
            state: self.state,
            vm_rss_kib: self.vm_rss_kib,
            vm_size_kib: self.vm_size_kib,
            vm_hwm_kib: self.vm_hwm_kib,
            cpus_allowed: self.cpus_allowed.clone(),
            voluntary_ctxt_switches: self.voluntary_ctxt_switches,
            nonvoluntary_ctxt_switches: self.nonvoluntary_ctxt_switches,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        // Reuses the name buffer and the affinity mask's word vector.
        self.name.clone_from(&src.name);
        self.cpus_allowed.clone_from(&src.cpus_allowed);
        self.tid = src.tid;
        self.tgid = src.tgid;
        self.state = src.state;
        self.vm_rss_kib = src.vm_rss_kib;
        self.vm_size_kib = src.vm_size_kib;
        self.vm_hwm_kib = src.vm_hwm_kib;
        self.voluntary_ctxt_switches = src.voluntary_ctxt_switches;
        self.nonvoluntary_ctxt_switches = src.nonvoluntary_ctxt_switches;
    }
}

/// The scheduler statistics from `/proc/<pid>/task/<tid>/schedstat`:
/// three numbers — time on CPU, time runnable-but-waiting, and the number
/// of timeslices run. The wait time is the most direct contention signal
/// the kernel offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStat {
    /// Time spent on the CPU, nanoseconds.
    pub run_ns: u64,
    /// Time spent runnable on a runqueue, nanoseconds.
    pub wait_ns: u64,
    /// Number of timeslices run on this CPU.
    pub timeslices: u64,
}

/// The memory-subsystem snapshot from `/proc/meminfo` (values in KiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemInfo {
    /// `MemTotal:` — total usable RAM.
    pub mem_total_kib: u64,
    /// `MemFree:` — unused RAM.
    pub mem_free_kib: u64,
    /// `MemAvailable:` — estimate of RAM available for new workloads.
    pub mem_available_kib: u64,
    /// `Buffers:`.
    pub buffers_kib: u64,
    /// `Cached:`.
    pub cached_kib: u64,
    /// `SwapTotal:`.
    pub swap_total_kib: u64,
    /// `SwapFree:`.
    pub swap_free_kib: u64,
}

impl MemInfo {
    /// Memory in use (total − available), KiB.
    pub fn used_kib(&self) -> u64 {
        self.mem_total_kib.saturating_sub(self.mem_available_kib)
    }
}

/// Per-CPU jiffy counters from one `cpuN` row of `/proc/stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTimes {
    /// Normal user-mode time.
    pub user: Jiffies,
    /// Niced user-mode time.
    pub nice: Jiffies,
    /// Kernel-mode time.
    pub system: Jiffies,
    /// Idle time.
    pub idle: Jiffies,
    /// I/O-wait time.
    pub iowait: Jiffies,
    /// Hard-interrupt time.
    pub irq: Jiffies,
    /// Soft-interrupt time.
    pub softirq: Jiffies,
    /// Involuntary wait (virtualized) time.
    pub steal: Jiffies,
}

impl CpuTimes {
    /// Sum of all accounted jiffies.
    pub fn total(&self) -> Jiffies {
        self.user
            + self.nice
            + self.system
            + self.idle
            + self.iowait
            + self.irq
            + self.softirq
            + self.steal
    }

    /// Element-wise sum.
    pub fn add(&self, other: &CpuTimes) -> CpuTimes {
        CpuTimes {
            user: self.user + other.user,
            nice: self.nice + other.nice,
            system: self.system + other.system,
            idle: self.idle + other.idle,
            iowait: self.iowait + other.iowait,
            irq: self.irq + other.irq,
            softirq: self.softirq + other.softirq,
            steal: self.steal + other.steal,
        }
    }

    /// Element-wise saturating difference (`self − earlier`), used to turn
    /// two samples into a per-interval delta.
    pub fn delta(&self, earlier: &CpuTimes) -> CpuTimes {
        CpuTimes {
            user: self.user.saturating_sub(earlier.user),
            nice: self.nice.saturating_sub(earlier.nice),
            system: self.system.saturating_sub(earlier.system),
            idle: self.idle.saturating_sub(earlier.idle),
            iowait: self.iowait.saturating_sub(earlier.iowait),
            irq: self.irq.saturating_sub(earlier.irq),
            softirq: self.softirq.saturating_sub(earlier.softirq),
            steal: self.steal.saturating_sub(earlier.steal),
        }
    }
}

/// The system-wide snapshot from `/proc/stat`.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct SystemStat {
    /// The aggregate `cpu` row.
    pub total: CpuTimes,
    /// Per-CPU rows as `(os_index, times)`, ascending by index.
    pub cpus: Vec<(u32, CpuTimes)>,
    /// Total context switches (`ctxt`).
    pub ctxt: u64,
    /// Processes/threads created since boot (`processes`).
    pub processes: u64,
}

impl Clone for SystemStat {
    fn clone(&self) -> Self {
        SystemStat {
            total: self.total,
            cpus: self.cpus.clone(),
            ctxt: self.ctxt,
            processes: self.processes,
        }
    }

    /// Reuses the per-CPU vector — the monitor keeps a previous snapshot
    /// per sample, and a node has up to hundreds of rows.
    fn clone_from(&mut self, src: &Self) {
        self.total = src.total;
        self.cpus.clone_from(&src.cpus);
        self.ctxt = src.ctxt;
        self.processes = src.processes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codes_roundtrip() {
        for s in [
            TaskState::Running,
            TaskState::Sleeping,
            TaskState::DiskSleep,
            TaskState::Zombie,
            TaskState::Stopped,
            TaskState::Idle,
            TaskState::Dead,
        ] {
            assert_eq!(TaskState::from_code(s.code()), Some(s));
        }
        assert_eq!(TaskState::from_code('?'), None);
    }

    #[test]
    fn cputimes_total_and_delta() {
        let a = CpuTimes {
            user: 10,
            system: 5,
            idle: 85,
            ..Default::default()
        };
        let b = CpuTimes {
            user: 30,
            system: 10,
            idle: 160,
            ..Default::default()
        };
        assert_eq!(a.total(), 100);
        let d = b.delta(&a);
        assert_eq!((d.user, d.system, d.idle), (20, 5, 75));
        // Delta saturates rather than underflowing on counter resets.
        let d2 = a.delta(&b);
        assert_eq!((d2.user, d2.system, d2.idle), (0, 0, 0));
    }

    #[test]
    fn meminfo_used() {
        let m = MemInfo {
            mem_total_kib: 1000,
            mem_available_kib: 400,
            ..Default::default()
        };
        assert_eq!(m.used_kib(), 600);
    }
}
