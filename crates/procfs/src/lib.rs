//! # zerosum-proc
//!
//! The `/proc` virtual-filesystem substrate for ZeroSum-rs.
//!
//! §3.1 of the paper bases all of ZeroSum's configuration detection and
//! periodic sampling on the Linux `/proc` pseudo-filesystem: task discovery
//! via `/proc/<pid>/task`, per-LWP timing and state via `stat`/`status`,
//! system CPU counters via `/proc/stat`, and the memory subsystem via
//! `/proc/meminfo`. This crate provides:
//!
//! * [`types`] — typed records for those files (jiffies, task states,
//!   affinity lists, context-switch counters, …).
//! * [`parse`] — parsers for the kernel's text formats, including the
//!   parenthesized-`comm` hazard of `stat`.
//! * [`mod@format`] — the inverse generators, used by the simulated backend so
//!   the monitor always exercises the real parsers.
//! * [`source::ProcSource`] — the trait boundary the monitor observes
//!   through; [`linux::LinuxProc`] is the live-system implementation.
//! * [`fault`] — a deterministic, seeded fault injector wrapping any
//!   source, used by the chaos harness to prove graceful degradation.

#![warn(missing_docs)]

pub mod fault;
pub mod format;
pub mod linux;
pub mod parse;
pub mod source;
pub mod types;

pub use fault::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRates, FaultyProc, Op, ScriptedFault,
};
pub use linux::LinuxProc;
pub use parse::TaskStatView;
pub use source::{ProcSource, SourceError, SourceErrorKind, SourceResult};
pub use types::{
    CpuTimes, Jiffies, MemInfo, Pid, SchedStat, SystemStat, TaskStat, TaskState, TaskStatus, Tid,
    USER_HZ,
};

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::types::*;
    use crate::{format, parse};
    use proptest::prelude::*;
    use zerosum_topology::CpuSet;

    fn arb_state() -> impl Strategy<Value = TaskState> {
        prop_oneof![
            Just(TaskState::Running),
            Just(TaskState::Sleeping),
            Just(TaskState::DiskSleep),
            Just(TaskState::Zombie),
            Just(TaskState::Stopped),
            Just(TaskState::Idle),
            Just(TaskState::Dead),
        ]
    }

    proptest! {
        #[test]
        fn task_stat_roundtrips(
            tid in 1u32..1_000_000,
            comm in "[a-zA-Z0-9 _()-]{1,15}",
            state in arb_state(),
            minflt in 0u64..u32::MAX as u64,
            majflt in 0u64..1_000_000,
            utime in 0u64..u32::MAX as u64,
            stime in 0u64..u32::MAX as u64,
            nice in -20i32..20,
            num_threads in 1u32..10_000,
            processor in 0u32..256,
        ) {
            let t = TaskStat {
                tid, comm, state, minflt, majflt, utime, stime, nice,
                num_threads, processor, nswap: 0, starttime: 0,
            };
            let back = parse::parse_task_stat(&format::format_task_stat(&t)).unwrap();
            prop_assert_eq!(back, t);
        }

        #[test]
        fn task_status_roundtrips(
            tid in 1u32..1_000_000,
            tgid in 1u32..1_000_000,
            name in "[a-zA-Z0-9_-]{1,15}",
            state in arb_state(),
            rss in 0u64..u32::MAX as u64,
            cpus in proptest::collection::btree_set(0u32..256, 0..32),
            vol in 0u64..u32::MAX as u64,
            nonvol in 0u64..u32::MAX as u64,
        ) {
            let s = TaskStatus {
                name, tid, tgid, state,
                vm_rss_kib: rss, vm_size_kib: rss * 2, vm_hwm_kib: rss,
                cpus_allowed: CpuSet::from_indices(cpus),
                voluntary_ctxt_switches: vol,
                nonvoluntary_ctxt_switches: nonvol,
            };
            let back = parse::parse_task_status(&format::format_task_status(&s)).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn system_stat_roundtrips(
            ncpu in 1usize..64,
            seed in 0u64..1_000_000,
        ) {
            let mk = |i: u64| CpuTimes {
                user: seed.wrapping_mul(i + 1) % 100_000,
                nice: i % 7,
                system: (seed + i) % 50_000,
                idle: (seed ^ i) % 1_000_000,
                iowait: i % 13,
                irq: i % 3,
                softirq: i % 5,
                steal: 0,
            };
            let cpus: Vec<(u32, CpuTimes)> =
                (0..ncpu).map(|i| (i as u32, mk(i as u64))).collect();
            let total = cpus.iter().fold(CpuTimes::default(), |acc, (_, t)| acc.add(t));
            let s = SystemStat { total, cpus, ctxt: seed, processes: seed % 100_000 };
            let back = parse::parse_system_stat(&format::format_system_stat(&s)).unwrap();
            prop_assert_eq!(back, s);
        }
    }
}
