//! The `/proc`-shaped boundary between the monitor and the system.
//!
//! [`ProcSource`] is the only interface through which ZeroSum's monitor
//! observes a machine. Two implementations exist: [`crate::linux::LinuxProc`]
//! reads a live `/proc` filesystem; `zerosum-sched` provides a simulated
//! source backed by its node model. Because the trait surface matches what
//! `/proc` offers (and nothing more), the monitor cannot accidentally
//! depend on simulator internals.

use crate::types::{MemInfo, Pid, SystemStat, TaskStat, TaskStatus, Tid};
use std::fmt;

/// Errors returned by a [`ProcSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The process or task does not exist (it may have exited between the
    /// task-list read and the per-task read — a normal race the monitor
    /// must tolerate, per §3.1.1 of the paper).
    NotFound,
    /// An I/O failure reading the backing store.
    Io(String),
    /// The record existed but could not be parsed.
    Malformed(String),
    /// The record exists but the caller may not read it (`EPERM` /
    /// `EACCES`) — e.g. a setuid task inside the watched process. The
    /// monitor must skip-with-count, never abort the scan.
    Denied(String),
}

/// The kind of a [`SourceError`], with the payload stripped — used as an
/// index by fault accounting (the monitor's `HealthLedger` and the fault
/// injector's log reconcile per kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceErrorKind {
    /// [`SourceError::NotFound`].
    NotFound,
    /// [`SourceError::Io`].
    Io,
    /// [`SourceError::Malformed`].
    Malformed,
    /// [`SourceError::Denied`].
    Denied,
}

impl SourceErrorKind {
    /// All kinds, in stable order (the index order used by counters).
    pub const ALL: [SourceErrorKind; 4] = [
        SourceErrorKind::NotFound,
        SourceErrorKind::Io,
        SourceErrorKind::Malformed,
        SourceErrorKind::Denied,
    ];

    /// Stable dense index, matching [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            SourceErrorKind::NotFound => 0,
            SourceErrorKind::Io => 1,
            SourceErrorKind::Malformed => 2,
            SourceErrorKind::Denied => 3,
        }
    }

    /// Short label for reports and CSV.
    pub fn label(self) -> &'static str {
        match self {
            SourceErrorKind::NotFound => "not_found",
            SourceErrorKind::Io => "io",
            SourceErrorKind::Malformed => "malformed",
            SourceErrorKind::Denied => "denied",
        }
    }
}

impl SourceError {
    /// The payload-free kind of this error.
    pub fn kind(&self) -> SourceErrorKind {
        match self {
            SourceError::NotFound => SourceErrorKind::NotFound,
            SourceError::Io(_) => SourceErrorKind::Io,
            SourceError::Malformed(_) => SourceErrorKind::Malformed,
            SourceError::Denied(_) => SourceErrorKind::Denied,
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::NotFound => write!(f, "no such process or task"),
            SourceError::Io(e) => write!(f, "procfs I/O error: {e}"),
            SourceError::Malformed(e) => write!(f, "malformed procfs record: {e}"),
            SourceError::Denied(e) => write!(f, "procfs access denied: {e}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Result alias for source operations.
pub type SourceResult<T> = Result<T, SourceError>;

/// Read access to `/proc`-shaped system and per-task records.
pub trait ProcSource {
    /// Reads `/proc/stat` — system-wide and per-CPU jiffy counters.
    fn system_stat(&self) -> SourceResult<SystemStat>;

    /// Reads `/proc/meminfo`.
    fn meminfo(&self) -> SourceResult<MemInfo>;

    /// Lists the LWP ids under `/proc/<pid>/task`, ascending.
    ///
    /// This is the thread-discovery mechanism §3.1.1 of the paper prefers
    /// over intercepting `pthread_create`.
    fn list_tasks(&self, pid: Pid) -> SourceResult<Vec<Tid>>;

    /// Reads `/proc/<pid>/task/<tid>/stat`.
    fn task_stat(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStat>;

    /// Reads `/proc/<pid>/task/<tid>/status`.
    fn task_status(&self, pid: Pid, tid: Tid) -> SourceResult<TaskStatus>;

    /// Reads `/proc/<pid>/task/<tid>/schedstat` — on-CPU time, runqueue
    /// wait time, and timeslices. Not every kernel exposes it
    /// (`CONFIG_SCHED_INFO`); the default reports it missing, and
    /// consumers must degrade gracefully.
    fn task_schedstat(&self, _pid: Pid, _tid: Tid) -> SourceResult<crate::types::SchedStat> {
        Err(SourceError::NotFound)
    }

    /// Reads `/proc/<pid>/status` (the process-level record; equivalent to
    /// the main thread's task status).
    fn process_status(&self, pid: Pid) -> SourceResult<TaskStatus> {
        self.task_status(pid, pid)
    }

    // ---- Buffer-reusing forms -------------------------------------------
    //
    // The monitor samples every watched thread every period; the `_into`
    // forms let it reuse one record per kind instead of allocating fresh
    // strings and vectors each read. Defaults delegate to the owning
    // reads, so wrappers (fault injectors, live backends without an
    // override) stay correct automatically. On error the contents of
    // `out` are unspecified.

    /// Reads `/proc/stat` into an existing record, reusing its per-CPU
    /// vector.
    fn system_stat_into(&self, out: &mut SystemStat) -> SourceResult<()> {
        *out = self.system_stat()?;
        Ok(())
    }

    /// Reads the LWP list into an existing vector.
    fn list_tasks_into(&self, pid: Pid, out: &mut Vec<Tid>) -> SourceResult<()> {
        *out = self.list_tasks(pid)?;
        Ok(())
    }

    /// Reads a task's `stat` into an existing record, reusing its `comm`
    /// buffer.
    fn task_stat_into(&self, pid: Pid, tid: Tid, out: &mut TaskStat) -> SourceResult<()> {
        *out = self.task_stat(pid, tid)?;
        Ok(())
    }

    /// Reads a task's `status` into an existing record, reusing its name
    /// buffer and affinity mask.
    fn task_status_into(&self, pid: Pid, tid: Tid, out: &mut TaskStatus) -> SourceResult<()> {
        *out = self.task_status(pid, tid)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(SourceError::NotFound.to_string(), "no such process or task");
        assert!(SourceError::Io("x".into()).to_string().contains("x"));
        assert!(SourceError::Malformed("y".into()).to_string().contains("y"));
        assert!(SourceError::Denied("z".into())
            .to_string()
            .contains("denied"));
    }

    #[test]
    fn kinds_are_stable() {
        for (i, k) in SourceErrorKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(SourceError::NotFound.kind(), SourceErrorKind::NotFound);
        assert_eq!(SourceError::Io("x".into()).kind(), SourceErrorKind::Io);
        assert_eq!(
            SourceError::Malformed("y".into()).kind(),
            SourceErrorKind::Malformed
        );
        assert_eq!(
            SourceError::Denied("z".into()).kind(),
            SourceErrorKind::Denied
        );
        assert_eq!(SourceErrorKind::Io.label(), "io");
    }
}
