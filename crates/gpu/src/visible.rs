//! Visible-device remapping (`ROCR_VISIBLE_DEVICES` /
//! `CUDA_VISIBLE_DEVICES` / `HIP_VISIBLE_DEVICES`).
//!
//! §3.4 of the paper: *"The 'visible' HIP index (0) of the GCD/GPU is
//! shown, even though the true GCD/GPU index (4) may be different."* On
//! Frontier, `--gpu-bind=closest` gives the rank on NUMA 0 the physical
//! GCD 4, which the application sees as device 0. This module implements
//! that translation layer and the helpers ZeroSum's report uses to print
//! both indices.

use std::fmt;

/// A visible→physical device mapping for one process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VisibleDevices {
    physical: Vec<u32>,
}

impl VisibleDevices {
    /// All `n` physical devices visible, identity-mapped.
    pub fn all(n: u32) -> Self {
        VisibleDevices {
            physical: (0..n).collect(),
        }
    }

    /// A mapping from an explicit physical-index list: visible index `i`
    /// is `physical[i]`.
    pub fn from_physical(physical: Vec<u32>) -> Self {
        VisibleDevices { physical }
    }

    /// Parses the environment-variable format, e.g. `"4"` or `"4,5"`.
    /// An empty string means no devices are visible.
    pub fn parse(s: &str) -> Result<Self, VisibleParseError> {
        let t = s.trim();
        if t.is_empty() {
            return Ok(VisibleDevices::default());
        }
        let mut physical = Vec::new();
        for tok in t.split(',') {
            let v = tok
                .trim()
                .parse()
                .map_err(|_| VisibleParseError(tok.trim().to_string()))?;
            if physical.contains(&v) {
                return Err(VisibleParseError(format!("duplicate device {v}")));
            }
            physical.push(v);
        }
        Ok(VisibleDevices { physical })
    }

    /// Number of visible devices.
    pub fn len(&self) -> usize {
        self.physical.len()
    }

    /// True if no devices are visible.
    pub fn is_empty(&self) -> bool {
        self.physical.is_empty()
    }

    /// The physical index behind visible index `v`.
    pub fn physical_of(&self, v: u32) -> Option<u32> {
        self.physical.get(v as usize).copied()
    }

    /// The visible index of physical device `p`, if it is visible.
    pub fn visible_of(&self, p: u32) -> Option<u32> {
        self.physical.iter().position(|&x| x == p).map(|i| i as u32)
    }

    /// The environment-variable encoding.
    pub fn to_env_string(&self) -> String {
        self.physical
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Error parsing a visible-devices list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisibleParseError(pub String);

impl fmt::Display for VisibleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid visible-devices entry: {:?}", self.0)
    }
}

impl std::error::Error for VisibleParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_closest_binding_case() {
        // Rank on NUMA 0 gets physical GCD 4, visible as 0 — the exact
        // situation called out under Listing 2.
        let v = VisibleDevices::parse("4").unwrap();
        assert_eq!(v.physical_of(0), Some(4));
        assert_eq!(v.visible_of(4), Some(0));
        assert_eq!(v.visible_of(0), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn multi_device_mapping() {
        let v = VisibleDevices::parse("4,5,2").unwrap();
        assert_eq!(v.physical_of(2), Some(2));
        assert_eq!(v.visible_of(5), Some(1));
        assert_eq!(v.to_env_string(), "4,5,2");
    }

    #[test]
    fn identity_mapping() {
        let v = VisibleDevices::all(8);
        for i in 0..8 {
            assert_eq!(v.physical_of(i), Some(i));
            assert_eq!(v.visible_of(i), Some(i));
        }
    }

    #[test]
    fn parse_errors_and_empty() {
        assert!(VisibleDevices::parse("x").is_err());
        assert!(VisibleDevices::parse("1,1").is_err());
        let v = VisibleDevices::parse("").unwrap();
        assert!(v.is_empty());
        assert_eq!(v.physical_of(0), None);
    }
}
