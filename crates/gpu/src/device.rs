//! The vendor-library abstraction and the per-device metric monitor.
//!
//! §3.4 of the paper: "the data shown … is collected using the ROCm SMI
//! API. For other architectures (CUDA, SYCL), ZeroSum is integrated with
//! the NVIDIA NVML library and Intel DPC++/SYCL API to query similar
//! statistics. In the summary view the minimum, mean, and maximum
//! observed values are shown." [`GpuBackend`] is that API boundary;
//! [`GpuMonitor`] does the periodic sampling and min/avg/max reduction.

use crate::metrics::{GpuMetricKind, GpuSample};
use zerosum_stats::Summary;

/// A vendor management library (ROCm SMI / NVML / Level Zero) as ZeroSum
/// sees it.
pub trait GpuBackend: Send {
    /// Library name for the report header, e.g. `"ROCm SMI"`.
    fn library_name(&self) -> &str;

    /// Number of visible devices.
    fn num_devices(&self) -> usize;

    /// Device model string.
    fn device_model(&self, device: u32) -> String;

    /// Samples all metrics of `device` over the window since the last
    /// sample (`dt_s` seconds).
    fn sample(&mut self, device: u32, dt_s: f64) -> GpuSample;
}

/// Accumulated min/mean/max statistics for every metric of every device.
#[derive(Debug, Default)]
pub struct GpuMonitor {
    /// `stats[device][metric_index]`.
    stats: Vec<[Summary; 16]>,
    samples: u64,
}

impl GpuMonitor {
    /// A monitor for `n` devices.
    pub fn new(n: usize) -> Self {
        GpuMonitor {
            stats: (0..n)
                .map(|_| std::array::from_fn(|_| Summary::new()))
                .collect(),
            samples: 0,
        }
    }

    /// Number of devices tracked.
    pub fn num_devices(&self) -> usize {
        self.stats.len()
    }

    /// Number of sampling rounds folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples every device of `backend` once and folds the values in.
    pub fn poll(&mut self, backend: &mut dyn GpuBackend, dt_s: f64) {
        self.samples += 1;
        for d in 0..self.stats.len().min(backend.num_devices()) {
            let sample = backend.sample(d as u32, dt_s);
            for (i, &kind) in GpuMetricKind::ALL.iter().enumerate() {
                self.stats[d][i].push(sample.get(kind));
            }
        }
    }

    /// The `(min, mean, max)` triplet for one metric of one device.
    pub fn summary(&self, device: u32, kind: GpuMetricKind) -> (f64, f64, f64) {
        let idx = GpuMetricKind::ALL.iter().position(|&k| k == kind).unwrap();
        let s = &self.stats[device as usize][idx];
        (s.min(), s.mean(), s.max())
    }

    /// Renders the per-device block of the utilization report in the
    /// Listing 2 format (`GPU <n> - (metric: min avg max)` + rows).
    pub fn render_report(&self, device: u32, visible_index: u32) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "GPU {visible_index} - (metric:  min  avg  max)").unwrap();
        for kind in GpuMetricKind::ALL {
            let (min, avg, max) = self.summary(device, kind);
            writeln!(
                out,
                "    {:<32} {:>18.6} {:>18.6} {:>18.6}",
                kind.report_name(),
                min,
                avg,
                max
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{synthesize, DeviceSpec, SynthState, SyntheticFeed};

    /// A minimal backend over the synthetic feed for tests.
    struct TestBackend {
        spec: DeviceSpec,
        feed: SyntheticFeed,
        state: Vec<SynthState>,
    }

    impl GpuBackend for TestBackend {
        fn library_name(&self) -> &str {
            "Test SMI"
        }
        fn num_devices(&self) -> usize {
            self.state.len()
        }
        fn device_model(&self, _device: u32) -> String {
            self.spec.model.clone()
        }
        fn sample(&mut self, device: u32, dt_s: f64) -> GpuSample {
            use crate::activity::ActivityFeed;
            let busy = self.feed.busy_fraction(device);
            let mem = self.feed.mem_used_bytes(device);
            synthesize(
                &self.spec,
                &mut self.state[device as usize],
                busy,
                mem,
                dt_s,
            )
        }
    }

    fn backend(n: usize) -> TestBackend {
        TestBackend {
            spec: DeviceSpec::mi250x_gcd(),
            feed: SyntheticFeed::uniform(n, 0.5, 4 << 30),
            state: vec![SynthState::default(); n],
        }
    }

    #[test]
    fn monitor_folds_min_mean_max() {
        let mut b = backend(2);
        let mut mon = GpuMonitor::new(2);
        for _ in 0..50 {
            mon.poll(&mut b, 1.0);
        }
        assert_eq!(mon.samples(), 50);
        let (min, avg, max) = mon.summary(0, GpuMetricKind::DeviceBusyPct);
        assert!(min <= avg && avg <= max);
        assert!(max > min, "duty-cycled device must vary");
        assert!((0.0..=100.0).contains(&min) && max <= 100.0);
    }

    #[test]
    fn report_contains_all_rows_in_listing2_format() {
        let mut b = backend(1);
        let mut mon = GpuMonitor::new(1);
        for _ in 0..10 {
            mon.poll(&mut b, 1.0);
        }
        let rep = mon.render_report(0, 0);
        assert!(rep.starts_with("GPU 0 - (metric:  min  avg  max)"));
        assert_eq!(rep.lines().count(), 17); // header + 16 metrics
        assert!(rep.contains("Clock Frequency, GLX (MHz)"));
        assert!(rep.contains("Used Visible VRAM Bytes"));
        assert!(rep.contains("Voltage (mV)"));
    }

    #[test]
    fn monitor_handles_more_devices_than_backend() {
        let mut b = backend(1);
        let mut mon = GpuMonitor::new(3);
        mon.poll(&mut b, 1.0);
        // Devices beyond the backend stay empty but don't panic.
        let (min, avg, max) = mon.summary(2, GpuMetricKind::PowerAverage);
        assert_eq!((min, avg, max), (0.0, 0.0, 0.0));
    }
}
