//! # zerosum-gpu
//!
//! The GPU-monitoring substrate for ZeroSum-rs.
//!
//! §3.4–3.5 of the paper: ZeroSum periodically queries ROCm SMI (AMD),
//! NVML (NVIDIA), or the Intel DPC++/SYCL API for device utilization,
//! clocks, power, temperature and memory, reporting min/mean/max in the
//! utilization report and watching GPU memory for exhaustion in the
//! contention report. This crate provides:
//!
//! * [`metrics`] — the Listing 2 metric set with the paper's row labels.
//! * [`device`] — the [`device::GpuBackend`] vendor abstraction and the
//!   min/mean/max [`device::GpuMonitor`].
//! * [`activity`] — the busy-fraction → metric-values physical model and
//!   the [`activity::ActivityFeed`] ground-truth source trait.
//! * [`backends`] — simulated ROCm SMI / NVML / Level Zero instances over
//!   MI250X / A100 / V100 / PVC device models.
//! * [`visible`] — `*_VISIBLE_DEVICES` visible↔physical index mapping
//!   (the Frontier GCD-4-shown-as-0 trap).

#![warn(missing_docs)]

pub mod activity;
pub mod backends;
pub mod device;
pub mod metrics;
pub mod visible;

pub use activity::{ActivityFeed, DeviceSpec, SyntheticFeed};
pub use backends::SmiSim;
pub use device::{GpuBackend, GpuMonitor};
pub use metrics::{GpuMetricKind, GpuSample};
pub use visible::VisibleDevices;

// Property tests need the crates.io `proptest` crate; the container
// builds fully offline, so they are opt-in behind the no-op `proptests`
// feature (add `proptest` back to [dev-dependencies] to enable).
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use crate::activity::{synthesize, DeviceSpec, SynthState};
    use crate::metrics::GpuMetricKind;
    use proptest::prelude::*;

    proptest! {
        /// Synthesized metrics stay within the device's physical envelope
        /// for any busy fraction and memory footprint.
        #[test]
        fn synthesis_respects_physical_envelope(
            busy in 0.0f64..1.0,
            mem in 0u64..(64u64 << 30),
            dt in 0.1f64..5.0,
        ) {
            let spec = DeviceSpec::mi250x_gcd();
            let mut st = SynthState::default();
            let s = synthesize(&spec, &mut st, busy, mem, dt);
            let clock = s.get(GpuMetricKind::ClockFrequencyGfx);
            prop_assert!(clock >= spec.gfx_clock_mhz.0 - 1e-9);
            prop_assert!(clock <= spec.gfx_clock_mhz.1 + 1e-9);
            let power = s.get(GpuMetricKind::PowerAverage);
            prop_assert!(power >= spec.power_w.0 - 1e-9 && power <= spec.power_w.1 + 1e-9);
            let volt = s.get(GpuMetricKind::VoltageMv);
            prop_assert!(volt >= spec.voltage_mv.0 - 1e-9 && volt <= spec.voltage_mv.1 + 1e-9);
            prop_assert!(s.get(GpuMetricKind::DeviceBusyPct) <= 100.0);
            prop_assert_eq!(s.get(GpuMetricKind::UsedVramBytes), mem as f64);
        }

        /// Visible-device roundtrip: physical_of ∘ visible_of = identity
        /// on visible devices.
        #[test]
        fn visible_mapping_roundtrips(perm in Just(()).prop_perturb(|_, mut rng| {
            use proptest::prelude::Rng as _;
            let n = rng.random_range(1usize..8);
            let mut v: Vec<u32> = (0..8u32).collect();
            for i in (1..v.len()).rev() {
                let j = rng.random_range(0..=i);
                v.swap(i, j);
            }
            v.truncate(n);
            v
        })) {
            let map = crate::visible::VisibleDevices::from_physical(perm.clone());
            for (vis, &phys) in perm.iter().enumerate() {
                prop_assert_eq!(map.physical_of(vis as u32), Some(phys));
                prop_assert_eq!(map.visible_of(phys), Some(vis as u32));
            }
        }
    }
}
