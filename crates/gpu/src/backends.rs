//! Simulated vendor management libraries: ROCm SMI, NVML, Level Zero.
//!
//! Each backend owns a set of [`DeviceSpec`]s and an [`ActivityFeed`]
//! supplying ground-truth busyness (from the scheduler simulation's
//! device queues, or synthetic). The API surface matches what ZeroSum
//! calls through the real libraries; only the transport differs.

use crate::activity::{synthesize, ActivityFeed, DeviceSpec, SynthState};
use crate::device::GpuBackend;
use crate::metrics::GpuSample;

/// A simulated SMI-style library instance.
pub struct SmiSim {
    library: &'static str,
    specs: Vec<DeviceSpec>,
    states: Vec<SynthState>,
    feed: Box<dyn ActivityFeed>,
}

impl SmiSim {
    /// Builds a backend with explicit specs and feed.
    pub fn new(library: &'static str, specs: Vec<DeviceSpec>, feed: Box<dyn ActivityFeed>) -> Self {
        let states = vec![SynthState::default(); specs.len()];
        SmiSim {
            library,
            specs,
            states,
            feed,
        }
    }

    /// The simulated ROCm System Management Interface over `n` MI250X
    /// GCDs — the Frontier configuration (§3.4, Listing 2).
    pub fn rocm_mi250x(n: usize, feed: Box<dyn ActivityFeed>) -> Self {
        Self::new("ROCm SMI", vec![DeviceSpec::mi250x_gcd(); n], feed)
    }

    /// The simulated NVML over `n` A100s (Perlmutter).
    pub fn nvml_a100(n: usize, feed: Box<dyn ActivityFeed>) -> Self {
        Self::new("NVML", vec![DeviceSpec::a100_40g(); n], feed)
    }

    /// The simulated NVML over `n` V100s (Summit).
    pub fn nvml_v100(n: usize, feed: Box<dyn ActivityFeed>) -> Self {
        Self::new("NVML", vec![DeviceSpec::v100(); n], feed)
    }

    /// The simulated Level Zero / SYCL interface over `n` PVC devices
    /// (Aurora / the paper's internal Intel Xe test system).
    pub fn levelzero_pvc(n: usize, feed: Box<dyn ActivityFeed>) -> Self {
        Self::new("Level Zero", vec![DeviceSpec::pvc_max1550(); n], feed)
    }

    /// The device spec table.
    pub fn specs(&self) -> &[DeviceSpec] {
        &self.specs
    }
}

impl GpuBackend for SmiSim {
    fn library_name(&self) -> &str {
        self.library
    }

    fn num_devices(&self) -> usize {
        self.specs.len()
    }

    fn device_model(&self, device: u32) -> String {
        self.specs
            .get(device as usize)
            .map(|s| s.model.clone())
            .unwrap_or_default()
    }

    fn sample(&mut self, device: u32, dt_s: f64) -> GpuSample {
        let busy = self.feed.busy_fraction(device);
        let mem = self.feed.mem_used_bytes(device);
        let spec = &self.specs[device as usize];
        synthesize(spec, &mut self.states[device as usize], busy, mem, dt_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::SyntheticFeed;
    use crate::metrics::GpuMetricKind;

    #[test]
    fn vendor_constructors_report_libraries() {
        let feed = || Box::new(SyntheticFeed::uniform(2, 0.3, 1 << 30));
        assert_eq!(SmiSim::rocm_mi250x(2, feed()).library_name(), "ROCm SMI");
        assert_eq!(SmiSim::nvml_a100(2, feed()).library_name(), "NVML");
        assert_eq!(SmiSim::nvml_v100(2, feed()).library_name(), "NVML");
        assert_eq!(
            SmiSim::levelzero_pvc(2, feed()).library_name(),
            "Level Zero"
        );
    }

    #[test]
    fn models_match_specs() {
        let b = SmiSim::rocm_mi250x(3, Box::new(SyntheticFeed::uniform(3, 0.1, 0)));
        assert_eq!(b.num_devices(), 3);
        assert_eq!(b.device_model(1), "AMD MI250X GCD");
        assert_eq!(b.device_model(9), ""); // out of range is empty
    }

    #[test]
    fn samples_reflect_feed() {
        let mut b = SmiSim::nvml_a100(1, Box::new(SyntheticFeed::uniform(1, 0.9, 30 << 30)));
        let s = b.sample(0, 1.0);
        assert!(s.get(GpuMetricKind::DeviceBusyPct) > 10.0);
        assert_eq!(s.get(GpuMetricKind::UsedVramBytes), (30u64 << 30) as f64);
        // A100 SoC clock from the spec table.
        assert_eq!(s.get(GpuMetricKind::ClockFrequencySoc), 1215.0);
    }
}
