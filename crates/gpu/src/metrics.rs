//! The GPU metric set of ZeroSum's utilization report.
//!
//! Listing 2 of the paper shows the metrics ZeroSum collects per GCD via
//! ROCm SMI (and equivalents via NVML / the Intel SYCL API): clocks,
//! busy percentages, energy, power, temperature, memory usage, voltage.
//! Each metric is identified by a [`GpuMetricKind`] whose display name
//! matches the paper's report rows.

/// One of the metrics sampled from a GPU each monitoring period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuMetricKind {
    /// Graphics clock frequency, MHz.
    ClockFrequencyGfx,
    /// SoC/fabric clock frequency, MHz.
    ClockFrequencySoc,
    /// Fraction of the sample window the device was executing, percent.
    DeviceBusyPct,
    /// Average energy over the window, joules.
    EnergyAverage,
    /// GFX activity counter (vendor units, cumulative-style).
    GfxActivity,
    /// GFX activity percent.
    GfxActivityPct,
    /// Memory activity counter.
    MemoryActivity,
    /// Memory busy percent.
    MemoryBusyPct,
    /// Memory-controller activity percent.
    MemoryControllerActivity,
    /// Average power draw, watts.
    PowerAverage,
    /// Edge temperature, °C.
    Temperature,
    /// Video-decode engine activity (UVD/VCN), percent.
    UvdVcnActivity,
    /// Graphics translation table bytes in use.
    UsedGttBytes,
    /// Device memory bytes in use.
    UsedVramBytes,
    /// CPU-visible device memory bytes in use.
    UsedVisibleVramBytes,
    /// Core voltage, millivolts.
    VoltageMv,
}

impl GpuMetricKind {
    /// All metrics, in the order the Listing 2 report prints them.
    pub const ALL: [GpuMetricKind; 16] = [
        GpuMetricKind::ClockFrequencyGfx,
        GpuMetricKind::ClockFrequencySoc,
        GpuMetricKind::DeviceBusyPct,
        GpuMetricKind::EnergyAverage,
        GpuMetricKind::GfxActivity,
        GpuMetricKind::GfxActivityPct,
        GpuMetricKind::MemoryActivity,
        GpuMetricKind::MemoryBusyPct,
        GpuMetricKind::MemoryControllerActivity,
        GpuMetricKind::PowerAverage,
        GpuMetricKind::Temperature,
        GpuMetricKind::UvdVcnActivity,
        GpuMetricKind::UsedGttBytes,
        GpuMetricKind::UsedVramBytes,
        GpuMetricKind::UsedVisibleVramBytes,
        GpuMetricKind::VoltageMv,
    ];

    /// The row label used in the utilization report (Listing 2 format).
    pub fn report_name(self) -> &'static str {
        match self {
            GpuMetricKind::ClockFrequencyGfx => "Clock Frequency, GLX (MHz)",
            GpuMetricKind::ClockFrequencySoc => "Clock Frequency, SOC (MHz)",
            GpuMetricKind::DeviceBusyPct => "Device Busy %",
            GpuMetricKind::EnergyAverage => "Energy Average (J)",
            GpuMetricKind::GfxActivity => "GFX Activity",
            GpuMetricKind::GfxActivityPct => "GFX Activity %",
            GpuMetricKind::MemoryActivity => "Memory Activity",
            GpuMetricKind::MemoryBusyPct => "Memory Busy %",
            GpuMetricKind::MemoryControllerActivity => "Memory Controller Activity",
            GpuMetricKind::PowerAverage => "Power Average (W)",
            GpuMetricKind::Temperature => "Temperature (C)",
            GpuMetricKind::UvdVcnActivity => "UVD|VCN Activity",
            GpuMetricKind::UsedGttBytes => "Used GTT Bytes",
            GpuMetricKind::UsedVramBytes => "Used VRAM Bytes",
            GpuMetricKind::UsedVisibleVramBytes => "Used Visible VRAM Bytes",
            GpuMetricKind::VoltageMv => "Voltage (mV)",
        }
    }
}

/// One sampling instant's values for one device: a dense array indexed in
/// [`GpuMetricKind::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSample {
    values: [f64; 16],
}

impl GpuSample {
    /// A zeroed sample.
    pub fn zero() -> Self {
        GpuSample { values: [0.0; 16] }
    }

    /// Sets a metric value (builder style).
    pub fn with(mut self, kind: GpuMetricKind, v: f64) -> Self {
        self.set(kind, v);
        self
    }

    /// Sets a metric value.
    pub fn set(&mut self, kind: GpuMetricKind, v: f64) {
        self.values[Self::index(kind)] = v;
    }

    /// Reads a metric value.
    pub fn get(&self, kind: GpuMetricKind) -> f64 {
        self.values[Self::index(kind)]
    }

    fn index(kind: GpuMetricKind) -> usize {
        GpuMetricKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL")
    }

    /// Iterates `(kind, value)` in report order.
    pub fn iter(&self) -> impl Iterator<Item = (GpuMetricKind, f64)> + '_ {
        GpuMetricKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_have_distinct_names() {
        let mut names: Vec<&str> = GpuMetricKind::ALL.iter().map(|k| k.report_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn sample_set_get_roundtrip() {
        let mut s = GpuSample::zero();
        s.set(GpuMetricKind::PowerAverage, 126.48);
        s.set(GpuMetricKind::Temperature, 37.9);
        assert_eq!(s.get(GpuMetricKind::PowerAverage), 126.48);
        assert_eq!(s.get(GpuMetricKind::Temperature), 37.9);
        assert_eq!(s.get(GpuMetricKind::VoltageMv), 0.0);
    }

    #[test]
    fn iter_is_in_report_order() {
        let s = GpuSample::zero().with(GpuMetricKind::ClockFrequencyGfx, 1700.0);
        let first = s.iter().next().unwrap();
        assert_eq!(first.0, GpuMetricKind::ClockFrequencyGfx);
        assert_eq!(first.1, 1700.0);
        assert_eq!(s.iter().count(), 16);
    }

    #[test]
    fn listing2_names_match_paper() {
        assert_eq!(GpuMetricKind::DeviceBusyPct.report_name(), "Device Busy %");
        assert_eq!(
            GpuMetricKind::UsedVisibleVramBytes.report_name(),
            "Used Visible VRAM Bytes"
        );
        assert_eq!(
            GpuMetricKind::UvdVcnActivity.report_name(),
            "UVD|VCN Activity"
        );
    }
}
