//! The physical model turning device *busyness* into SMI metric values.
//!
//! Simulated SMI backends receive a busy fraction and memory footprint
//! from an [`ActivityFeed`] (either the scheduler simulation's device
//! queues or a synthetic phase model) and synthesize the full Listing 2
//! metric set with plausible physics: clocks boost under load, power
//! follows utilization, temperature is a low-pass filter of power, and
//! energy integrates power over the sample window.

use crate::metrics::{GpuMetricKind, GpuSample};

/// Where a backend gets ground-truth activity per device.
pub trait ActivityFeed: Send {
    /// Fraction of the time since the previous call that `device` was
    /// executing kernels, in `[0,1]`.
    fn busy_fraction(&mut self, device: u32) -> f64;

    /// Device memory currently in use, bytes.
    fn mem_used_bytes(&mut self, device: u32) -> u64;
}

/// A deterministic synthetic feed: devices alternate busy phases (duty
/// cycle per device), useful for examples and tests without a scheduler.
#[derive(Debug, Clone)]
pub struct SyntheticFeed {
    /// Per-device duty cycle in `[0,1]`.
    pub duty: Vec<f64>,
    /// Per-device memory footprint, bytes.
    pub mem: Vec<u64>,
    calls: u64,
}

impl SyntheticFeed {
    /// A feed for `n` devices with the given duty cycle and footprint.
    pub fn uniform(n: usize, duty: f64, mem: u64) -> Self {
        SyntheticFeed {
            duty: vec![duty; n],
            mem: vec![mem; n],
            calls: 0,
        }
    }
}

impl ActivityFeed for SyntheticFeed {
    fn busy_fraction(&mut self, device: u32) -> f64 {
        self.calls += 1;
        let duty = self.duty.get(device as usize).copied().unwrap_or(0.0);
        // Square wave with period 8 samples: busy for duty·8 samples.
        let phase = (self.calls / self.duty.len().max(1) as u64) % 8;
        if (phase as f64) < duty * 8.0 {
            (duty * 1.5).min(1.0)
        } else {
            duty * 0.25
        }
    }

    fn mem_used_bytes(&mut self, device: u32) -> u64 {
        self.mem.get(device as usize).copied().unwrap_or(0)
    }
}

/// Static electrical/thermal parameters of a device model.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"AMD MI250X GCD"`.
    pub model: String,
    /// Idle and boost graphics clocks, MHz.
    pub gfx_clock_mhz: (f64, f64),
    /// Fixed SoC clock, MHz.
    pub soc_clock_mhz: f64,
    /// Idle and peak power, watts.
    pub power_w: (f64, f64),
    /// Idle temperature and thermal rise at peak power, °C.
    pub temp_c: (f64, f64),
    /// Idle and boost core voltage, mV.
    pub voltage_mv: (f64, f64),
    /// Total device memory, bytes.
    pub memory_bytes: u64,
}

impl DeviceSpec {
    /// The MI250X Graphics Compute Die of the paper's Frontier runs.
    pub fn mi250x_gcd() -> Self {
        DeviceSpec {
            model: "AMD MI250X GCD".into(),
            gfx_clock_mhz: (800.0, 1700.0),
            soc_clock_mhz: 1090.0,
            power_w: (90.0, 500.0),
            temp_c: (35.0, 55.0),
            voltage_mv: (806.0, 906.0),
            memory_bytes: 64 << 30,
        }
    }

    /// The A100-SXM4-40GB of Perlmutter.
    pub fn a100_40g() -> Self {
        DeviceSpec {
            model: "NVIDIA A100-SXM4-40GB".into(),
            gfx_clock_mhz: (210.0, 1410.0),
            soc_clock_mhz: 1215.0,
            power_w: (55.0, 400.0),
            temp_c: (30.0, 50.0),
            voltage_mv: (700.0, 880.0),
            memory_bytes: 40 << 30,
        }
    }

    /// The V100 of Summit.
    pub fn v100() -> Self {
        DeviceSpec {
            model: "NVIDIA V100".into(),
            gfx_clock_mhz: (135.0, 1530.0),
            soc_clock_mhz: 877.0,
            power_w: (50.0, 300.0),
            temp_c: (30.0, 48.0),
            voltage_mv: (700.0, 850.0),
            memory_bytes: 16 << 30,
        }
    }

    /// The Data Center GPU Max 1550 (PVC) of Aurora.
    pub fn pvc_max1550() -> Self {
        DeviceSpec {
            model: "Intel Data Center GPU Max 1550".into(),
            gfx_clock_mhz: (900.0, 1600.0),
            soc_clock_mhz: 1000.0,
            power_w: (120.0, 600.0),
            temp_c: (32.0, 52.0),
            voltage_mv: (750.0, 900.0),
            memory_bytes: 128 << 30,
        }
    }
}

/// Mutable synthesis state per device (thermal inertia, activity
/// accumulators).
#[derive(Debug, Clone, Default)]
pub struct SynthState {
    temp_c: f64,
    gfx_activity: f64,
    mem_activity: f64,
}

/// Synthesizes a full metric sample from a busy fraction.
///
/// `dt_s` is the sample window in seconds. The state carries thermal
/// inertia between calls.
pub fn synthesize(
    spec: &DeviceSpec,
    state: &mut SynthState,
    busy: f64,
    mem_used: u64,
    dt_s: f64,
) -> GpuSample {
    let busy = busy.clamp(0.0, 1.0);
    // Clocks: race-to-idle — any meaningful load boosts near max.
    let gfx_clock = if busy < 0.01 {
        spec.gfx_clock_mhz.0
    } else {
        spec.gfx_clock_mhz.0 + (spec.gfx_clock_mhz.1 - spec.gfx_clock_mhz.0) * (0.55 + 0.45 * busy)
    };
    let power = spec.power_w.0 + (spec.power_w.1 - spec.power_w.0) * busy;
    // Temperature: first-order low-pass toward the steady-state for this
    // power level (time constant ~20 s).
    let target_t = spec.temp_c.0
        + spec.temp_c.1 * (power - spec.power_w.0) / (spec.power_w.1 - spec.power_w.0);
    if state.temp_c == 0.0 {
        state.temp_c = spec.temp_c.0;
    }
    let alpha = (dt_s / 20.0).clamp(0.0, 1.0);
    state.temp_c += (target_t - state.temp_c) * alpha;
    let voltage = spec.voltage_mv.0
        + (spec.voltage_mv.1 - spec.voltage_mv.0)
            * ((gfx_clock - spec.gfx_clock_mhz.0) / (spec.gfx_clock_mhz.1 - spec.gfx_clock_mhz.0))
                .clamp(0.0, 1.0);
    // Activity counters: scaled accumulations of busyness.
    state.gfx_activity += busy * 38_443.0 * dt_s.min(10.0);
    state.mem_activity += busy * 1_536.0 * dt_s.min(10.0) * 0.4;
    let mem_busy_pct = busy * 3.0; // compute-bound kernels touch memory lightly
    GpuSample::zero()
        .with(GpuMetricKind::ClockFrequencyGfx, gfx_clock)
        .with(GpuMetricKind::ClockFrequencySoc, spec.soc_clock_mhz)
        .with(GpuMetricKind::DeviceBusyPct, busy * 100.0)
        .with(GpuMetricKind::EnergyAverage, power * dt_s / 15.0)
        .with(GpuMetricKind::GfxActivity, state.gfx_activity)
        .with(GpuMetricKind::GfxActivityPct, busy * 100.0 * 0.94)
        .with(GpuMetricKind::MemoryActivity, state.mem_activity)
        .with(GpuMetricKind::MemoryBusyPct, mem_busy_pct)
        .with(GpuMetricKind::MemoryControllerActivity, mem_busy_pct * 0.85)
        .with(GpuMetricKind::PowerAverage, power)
        .with(GpuMetricKind::Temperature, state.temp_c)
        .with(GpuMetricKind::UvdVcnActivity, 0.0)
        .with(GpuMetricKind::UsedGttBytes, 11_624_448.0)
        .with(GpuMetricKind::UsedVramBytes, mem_used as f64)
        .with(GpuMetricKind::UsedVisibleVramBytes, mem_used as f64 + 232.0)
        .with(GpuMetricKind::VoltageMv, voltage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_device_reports_floor_values() {
        let spec = DeviceSpec::mi250x_gcd();
        let mut st = SynthState::default();
        let s = synthesize(&spec, &mut st, 0.0, 15_044_608, 1.0);
        assert_eq!(s.get(GpuMetricKind::ClockFrequencyGfx), 800.0);
        assert_eq!(s.get(GpuMetricKind::PowerAverage), 90.0);
        assert_eq!(s.get(GpuMetricKind::DeviceBusyPct), 0.0);
        assert_eq!(s.get(GpuMetricKind::UsedVramBytes), 15_044_608.0);
        assert_eq!(s.get(GpuMetricKind::ClockFrequencySoc), 1090.0);
    }

    #[test]
    fn busy_device_boosts_clock_and_power() {
        let spec = DeviceSpec::mi250x_gcd();
        let mut st = SynthState::default();
        let s = synthesize(&spec, &mut st, 0.5, 4 << 30, 1.0);
        let clock = s.get(GpuMetricKind::ClockFrequencyGfx);
        assert!(clock > 1400.0 && clock <= 1700.0, "clock {clock}");
        let power = s.get(GpuMetricKind::PowerAverage);
        assert!((power - 295.0).abs() < 1.0, "power {power}");
        assert_eq!(s.get(GpuMetricKind::DeviceBusyPct), 50.0);
    }

    #[test]
    fn temperature_has_inertia() {
        let spec = DeviceSpec::mi250x_gcd();
        let mut st = SynthState::default();
        let t0 = synthesize(&spec, &mut st, 1.0, 0, 1.0).get(GpuMetricKind::Temperature);
        let mut last = t0;
        for _ in 0..100 {
            last = synthesize(&spec, &mut st, 1.0, 0, 1.0).get(GpuMetricKind::Temperature);
        }
        assert!(t0 < last, "temperature should rise: {t0} → {last}");
        assert!(last <= spec.temp_c.0 + spec.temp_c.1 + 1e-9);
    }

    #[test]
    fn activity_counters_accumulate() {
        let spec = DeviceSpec::a100_40g();
        let mut st = SynthState::default();
        let a1 = synthesize(&spec, &mut st, 0.8, 0, 1.0).get(GpuMetricKind::GfxActivity);
        let a2 = synthesize(&spec, &mut st, 0.8, 0, 1.0).get(GpuMetricKind::GfxActivity);
        assert!(a2 > a1);
    }

    #[test]
    fn synthetic_feed_is_deterministic_and_bounded() {
        let mut f1 = SyntheticFeed::uniform(2, 0.4, 1 << 20);
        let mut f2 = SyntheticFeed::uniform(2, 0.4, 1 << 20);
        for dev in [0u32, 1, 0, 1, 0] {
            let (a, b) = (f1.busy_fraction(dev), f2.busy_fraction(dev));
            assert_eq!(a, b);
            assert!((0.0..=1.0).contains(&a));
        }
        assert_eq!(f1.mem_used_bytes(1), 1 << 20);
        assert_eq!(f1.mem_used_bytes(9), 0);
    }

    #[test]
    fn all_specs_have_sane_ranges() {
        for spec in [
            DeviceSpec::mi250x_gcd(),
            DeviceSpec::a100_40g(),
            DeviceSpec::v100(),
            DeviceSpec::pvc_max1550(),
        ] {
            assert!(
                spec.gfx_clock_mhz.0 < spec.gfx_clock_mhz.1,
                "{}",
                spec.model
            );
            assert!(spec.power_w.0 < spec.power_w.1);
            assert!(spec.voltage_mv.0 < spec.voltage_mv.1);
            assert!(spec.memory_bytes > 0);
        }
    }
}
