//! Runs every paper artifact in sequence and prints a compact
//! paper-vs-measured comparison (the EXPERIMENTS.md data source).

use zerosum_apps::PicConfig;
use zerosum_experiments::figures::{fig5, fig67, fig8};
use zerosum_experiments::listings;
use zerosum_experiments::tables::{run_table, TableConfig};
use zerosum_stats::Summary;

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    println!("ZeroSum-rs: full evaluation sweep (scale {scale}, seed {seed})\n");

    println!("--- Listing 1 ---");
    print!("{}", listings::listing1());

    println!("\n--- Tables 1-3 ---");
    // The three table runs are independent simulations; the parallel
    // engine runs them on worker threads and returns them in order.
    let mut tables = zerosum_experiments::parallel::run_jobs(
        [
            TableConfig::Table1,
            TableConfig::Table2,
            TableConfig::Table3,
        ]
        .into_iter()
        .map(|c| move || run_table(c, scale, seed))
        .collect(),
        0,
    )
    .into_iter();
    let (t1, t2, t3) = (
        tables.next().unwrap(),
        tables.next().unwrap(),
        tables.next().unwrap(),
    );
    let nv = |r: &zerosum_experiments::tables::TableRun| -> u64 {
        r.rows
            .iter()
            .filter(|x| x.label.contains("OpenMP"))
            .map(|x| x.nvctx)
            .sum()
    };
    println!(
        "runtime:    T1 {:.2}s  T2 {:.2}s  T3 {:.2}s   (paper: 63.67 / 27.33 / 27.40)",
        t1.duration_s, t2.duration_s, t3.duration_s
    );
    println!(
        "team nvctx: T1 {}  T2 {}  T3 {}   (paper: ~2e6 total / ~50 / ~210)",
        nv(&t1),
        nv(&t2),
        nv(&t3)
    );
    println!(
        "migrations: T2 {}  T3 {}   (paper: all threads ≥1 / none)",
        t2.team_migrations, t3.team_migrations
    );

    println!("\n--- Listing 2 ---");
    let l2 = listings::listing2(scale, seed);
    println!(
        "duration {:.2}s, GCD busy avg {:.1}% (paper: 14.6%), VRAM peak {:.3e} B (paper: 4.84e9)",
        l2.duration_s, l2.gpu_busy_avg, l2.vram_peak
    );

    println!("\n--- Figure 5 ---");
    let mut pic = PicConfig::figure5();
    pic.steps = (pic.steps / scale as usize).max(10);
    let f5 = fig5(&pic);
    println!(
        "{} ranks, diagonal fraction {:.4}, peak pair {:.3e} B (paper: diagonal band, ~1.75e10)",
        f5.matrix.size(),
        f5.diagonal_fraction,
        f5.max_pair_bytes as f64
    );

    println!("\n--- Figures 6/7 ---");
    let f67 = fig67(scale, seed);
    println!(
        "exported {} samples; LWP rows {}, HWT rows {}",
        f67.samples,
        f67.lwp_csv.lines().count() - 1,
        f67.hwt_csv.lines().count() - 1
    );

    println!("\n--- Figure 8 ---");
    for (name, two) in [("1 thread/core", false), ("2 threads/core", true)] {
        let run = fig8(two, 10, scale, seed);
        let b = Summary::from_slice(&run.baseline);
        let z = Summary::from_slice(&run.with_zerosum);
        let p = run.ttest.map(|t| t.p_value).unwrap_or(f64::NAN);
        println!(
            "{name}: baseline {:.3}±{:.3}s, zerosum {:.3}±{:.3}s, p={:.4}, overhead {:+.3}%",
            b.mean(),
            b.stddev(),
            z.mean(),
            z.stddev(),
            p,
            run.overhead_frac * 100.0
        );
    }
    println!("\n(paper: 1tpc p=0.998 no diff; 2tpc p=0.0006, +0.5% ≈ 0.275s)");

    println!("\n--- Extension: configuration sweep (srun -c N) ---");
    let pts = zerosum_experiments::sweep::sweep_cpus_per_task(&[1, 2, 4, 7], scale, seed);
    print!("{}", zerosum_experiments::sweep::render_sweep(&pts));

    println!("\n--- Extension: cross-platform sweep ---");
    let blocks = (200 / scale).max(4);
    print!(
        "{}",
        zerosum_experiments::platforms::run_all_platforms(blocks, seed)
    );

    println!("\n--- Extension: allocation summary (one node misconfigured) ---");
    let cluster = zerosum_experiments::cluster_demo::run_allocation(scale.max(10), seed);
    print!("{}", cluster.render_summary());
}
