//! Regenerates Table 1: the default `srun -n8` misconfiguration.

use zerosum_experiments::tables::{render_rows, run_table, TableConfig};

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let run = run_table(TableConfig::Table1, scale, seed);
    print!("{}", render_rows(&run));
    println!();
    print!("{}", zerosum_core::render_findings(&run.findings));
}
