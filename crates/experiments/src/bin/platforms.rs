//! Cross-platform sweep: the §4 "collection of machines" — run the same
//! monitored GPU-offload workload on the Frontier, Summit, Perlmutter
//! and Aurora node models.

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let blocks = (200 / scale).max(4);
    print!(
        "{}",
        zerosum_experiments::platforms::run_all_platforms(blocks, seed)
    );
}
