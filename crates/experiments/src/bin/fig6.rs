//! Regenerates Figure 6: per-LWP user/system time series of the Table 3
//! run (CSV output; the paper's chart is a stacked rendering of this).

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let run = zerosum_experiments::figures::fig67(scale, seed);
    let path = zerosum_experiments::results_dir().join("fig6_lwp_series.csv");
    std::fs::write(&path, &run.lwp_csv).expect("write csv");
    println!("Figure 6: {} samples of rank-0 LWP counters", run.samples);
    println!("{}", run.lwp_bundle.render_stacked_ascii(72, 12));
    eprintln!("[fig6] wrote {}", path.display());
}
