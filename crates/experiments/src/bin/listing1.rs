//! Regenerates Listing 1: the lstopo-style topology of the i7-1165G7
//! test node.

fn main() {
    print!("{}", zerosum_experiments::listings::listing1());
}
