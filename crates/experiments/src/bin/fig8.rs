//! Regenerates Figure 8: the ZeroSum overhead study — 10 runs with and
//! without the monitor, at one and two OpenMP threads per core.

use zerosum_experiments::figures::fig8;
use zerosum_stats::{quartiles, Summary};

fn print_case(name: &str, run: &zerosum_experiments::figures::Fig8Run) {
    let b = Summary::from_slice(&run.baseline);
    let z = Summary::from_slice(&run.with_zerosum);
    println!("== {name} ==");
    println!(
        "  baseline     : {:.4} ± {:.4} s   {:?}",
        b.mean(),
        b.stddev(),
        quartiles(&run.baseline).unwrap()
    );
    println!(
        "  with ZeroSum : {:.4} ± {:.4} s   {:?}",
        z.mean(),
        z.stddev(),
        quartiles(&run.with_zerosum).unwrap()
    );
    match &run.ttest {
        Some(t) => println!(
            "  Welch t-test : t={:.3}, df={:.1}, p={:.4}  ({})",
            t.t,
            t.df,
            t.p_value,
            if t.significant(0.05) {
                "SIGNIFICANT"
            } else {
                "not significant"
            }
        ),
        None => println!("  Welch t-test : insufficient samples"),
    }
    println!(
        "  overhead     : {:+.4} s = {:+.3}%",
        run.mean_overhead_s,
        run.overhead_frac * 100.0
    );
}

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let one = fig8(false, 10, scale, seed);
    print_case("one OpenMP thread per core", &one);
    let two = fig8(true, 10, scale, seed + 1);
    print_case("two OpenMP threads per core", &two);
    let dir = zerosum_experiments::results_dir();
    let mut csv = String::from("case,run,baseline_s,with_zerosum_s\n");
    for (i, (b, z)) in one.baseline.iter().zip(&one.with_zerosum).enumerate() {
        csv.push_str(&format!("1tpc,{i},{b},{z}\n"));
    }
    for (i, (b, z)) in two.baseline.iter().zip(&two.with_zerosum).enumerate() {
        csv.push_str(&format!("2tpc,{i},{b},{z}\n"));
    }
    let path = dir.join("fig8_overhead.csv");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("[fig8] wrote {}", path.display());
}
