//! Regenerates Figure 7: per-hardware-thread utilization time series of
//! the Table 3 run.

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let run = zerosum_experiments::figures::fig67(scale, seed);
    let path = zerosum_experiments::results_dir().join("fig7_hwt_series.csv");
    std::fs::write(&path, &run.hwt_csv).expect("write csv");
    println!("Figure 7: core 1 utilization over {} samples", run.samples);
    println!("{}", run.hwt_bundle.render_stacked_ascii(72, 12));
    eprintln!("[fig7] wrote {}", path.display());
}
