//! Regenerates Table 2: `srun -n8 -c7` with unbound OpenMP threads.

use zerosum_experiments::tables::{render_rows, run_table, TableConfig};

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let run = run_table(TableConfig::Table2, scale, seed);
    print!("{}", render_rows(&run));
    println!("team migrations observed: {}", run.team_migrations);
    println!();
    print!("{}", zerosum_core::render_findings(&run.findings));
}
