//! Node diagrams in the spirit of the paper's Figures 1–3, for every
//! built-in platform — including the GPU↔NUMA associations the official
//! diagrams omit.

use zerosum_topology::{presets, render_node_diagram};

fn main() {
    for name in ["frontier", "summit", "perlmutter", "aurora", "laptop"] {
        let topo = presets::by_name(name).unwrap();
        println!("{}", render_node_diagram(&topo));
    }
}
