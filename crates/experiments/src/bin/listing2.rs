//! Regenerates Listing 2: the full ZeroSum utilization report for the
//! miniQMC GPU-offload run on the simulated Frontier node.

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let run = zerosum_experiments::listings::listing2(scale, seed);
    print!("{}", run.report);
    eprintln!(
        "\n[listing2] duration {:.3}s, rank-0 GCD busy avg {:.2}%, VRAM peak {:.3e} B",
        run.duration_s, run.gpu_busy_avg, run.vram_peak
    );
}
