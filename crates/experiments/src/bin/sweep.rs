//! The configuration-optimization sweep: runtime and contention vs
//! `srun -c N` (the Tables 1→2 curve).

use zerosum_experiments::sweep::{render_sweep, sweep_cpus_per_task};

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(10);
    let pts = sweep_cpus_per_task(&[1, 2, 3, 4, 5, 6, 7], scale, seed);
    print!("{}", render_sweep(&pts));
}
