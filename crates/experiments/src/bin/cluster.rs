//! The allocation-wide view: 4 Frontier nodes, one misconfigured — the
//! "htop for all nodes in the allocation" the paper's §2 asks for.

fn main() {
    let (scale, seed) = zerosum_experiments::cli_scale_seed(20);
    let cluster = zerosum_experiments::cluster_demo::run_allocation(scale, seed);
    print!("{}", cluster.render_summary());
    if let Some(s) = cluster.straggler() {
        println!(
            "\nstraggler: {} (mean user {:.1}%)",
            s.hostname, s.mean_user_pct
        );
    }
}
