//! Regenerates Figure 5: the MPI point-to-point heatmap of the 512-rank
//! PIC proxy.

use zerosum_apps::PicConfig;
use zerosum_experiments::figures::{fig5, fig5_ascii};
use zerosum_mpi::heatmap;

fn main() {
    let (scale, _) = zerosum_experiments::cli_scale_seed(1);
    let mut cfg = PicConfig::figure5();
    cfg.steps = (cfg.steps / scale as usize).max(10);
    let run = fig5(&cfg);
    println!(
        "Figure 5: {} ranks, diagonal fraction {:.4}, peak pair bytes {:.3e}",
        run.matrix.size(),
        run.diagonal_fraction,
        run.max_pair_bytes as f64
    );
    println!("{}", fig5_ascii(&run, 48));
    let path = zerosum_experiments::results_dir().join("fig5_heatmap.csv");
    std::fs::write(&path, heatmap::to_csv(&run.matrix)).expect("write csv");
    eprintln!("[fig5] wrote {}", path.display());
}
