//! A scoped-thread experiment engine.
//!
//! Every experiment in this crate is a pure function of `(config, scale,
//! seed)` — simulations share no state — so independent runs can execute
//! on worker threads without changing any result. The engine preserves
//! *submission order* in its output regardless of completion order:
//! callers that iterate seeds get results ordered by seed, which keeps
//! reports and CSV artifacts byte-identical to a sequential run.
//!
//! Built on `std::thread::scope` only (no dependencies): workers claim
//! job indices from an atomic counter, write results into per-slot
//! mutexes, and a panic in any job propagates to the caller at scope
//! exit — an experiment failure is never silently swallowed.

use std::sync::atomic::{AtomicUsize, Ordering};
use zerosum_core::Tracked;

/// The worker count used by [`run_jobs`] when the caller passes 0:
/// available parallelism, capped to 8 (experiment runs are memory-bound
/// beyond that on typical CI hosts).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Runs `jobs` on up to `workers` scoped threads (0 = automatic) and
/// returns the results in submission order.
///
/// Panics if any job panics (propagated at scope exit, after the other
/// workers finish their current jobs).
pub fn run_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .max(1)
    .min(n);
    if workers == 1 {
        // Sequential fast path: no threads, same ordering.
        return jobs.into_iter().map(|j| j()).collect();
    }
    let slots: Vec<Tracked<Option<F>>> = jobs
        .into_iter()
        .map(|j| Tracked::new("experiments.parallel.slot", Some(j)))
        .collect();
    let results: Vec<Tracked<Option<T>>> = (0..n)
        .map(|_| Tracked::new("experiments.parallel.result", None))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let out = job();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stored a result")
        })
        .collect()
}

/// Runs `f(seed)` for every seed on the engine and returns the results
/// ordered as the seeds were given — the deterministic fan-out used by
/// sweeps and the chaos soak.
pub fn run_seeded<T, F>(seeds: &[u64], workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let f = &f;
    run_jobs(
        seeds.iter().map(|&s| move || f(s)).collect::<Vec<_>>(),
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn empty_and_single_job_work() {
        let none: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(run_jobs(none, 4).is_empty());
        assert_eq!(run_jobs(vec![|| 7u32], 4), vec![7]);
    }

    #[test]
    fn results_preserve_submission_order() {
        // Jobs finish in shuffled order (earlier indices sleep longer);
        // the output must still be input-ordered.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) % 4));
                    i * 10
                }
            })
            .collect();
        let out = run_jobs(jobs, 4);
        assert_eq!(out, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_runs_match_sequential() {
        let seeds: Vec<u64> = (0..9).map(|i| 1000 + i * 7).collect();
        let f = |s: u64| s.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let sequential: Vec<u64> = seeds.iter().map(|&s| f(s)).collect();
        assert_eq!(run_seeded(&seeds, 3, f), sequential);
        assert_eq!(run_seeded(&seeds, 1, f), sequential);
        assert_eq!(run_seeded(&seeds, 0, f), sequential);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        static COUNT: AtomicU32 = AtomicU32::new(0);
        let jobs: Vec<_> = (0..40)
            .map(|_| || COUNT.fetch_add(1, Ordering::SeqCst))
            .collect();
        let out = run_jobs(jobs, 6);
        assert_eq!(out.len(), 40);
        assert_eq!(COUNT.load(Ordering::SeqCst), 40);
        // All 40 distinct counter values were observed.
        let mut seen = out.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn job_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_jobs(
                vec![
                    Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                    Box::new(|| panic!("boom")),
                ],
                2,
            )
        });
        assert!(result.is_err());
    }
}
