//! Allocation-scale chaos: a multi-node run driven round by round under
//! a seeded [`AllocationFaultPlan`] — node kills, straggler stalls,
//! delayed rejoins, and clock skew — while the [`ClusterMonitor`]'s
//! supervision layer keeps producing the allocation summary.
//!
//! Every node runs its own independent [`NodeSim`] (seeded from the
//! node index, *not* from the fault plan), so a faulted run's surviving
//! nodes produce byte-identical monitor data to the fault-free run —
//! the differential property the chaos suite in `zerosum-analyze`
//! checks exactly.

use zerosum_core::{ClusterMonitor, Monitor, ProcessInfo, ZeroSumConfig};
use zerosum_sched::{AllocationFaultPlan, Behavior, NodeSim, SchedParams, SimProcSource};
use zerosum_topology::{presets, CpuSet};

/// One sampling round per `PERIOD_US` of virtual time on every node.
const PERIOD_US: u64 = 100_000;

/// Result of one allocation-scale chaos run.
#[derive(Debug)]
pub struct ClusterChaosOutcome {
    /// The cluster view after the final round (per-node monitors plus
    /// supervision state).
    pub cluster: ClusterMonitor,
    /// The fault plan that was applied.
    pub plan: AllocationFaultPlan,
    /// Rounds driven.
    pub rounds: u32,
    /// The allocation summary rendered after every round — the report
    /// must keep appearing no matter what the plan does.
    pub round_summaries: Vec<String>,
    /// `(quorum, total)` after every round.
    pub round_quorums: Vec<(usize, usize)>,
}

impl ClusterChaosOutcome {
    /// Hostname of node `i`, as used throughout the run.
    pub fn hostname(i: usize) -> String {
        format!("chaos{i:04}")
    }
}

/// Runs `node_count` independent node sims for `rounds` rounds under a
/// seeded fault plan. See [`run_cluster_chaos_with_plan`].
pub fn run_cluster_chaos(node_count: usize, rounds: u32, seed: u64) -> ClusterChaosOutcome {
    let plan = AllocationFaultPlan::generate(seed, node_count, rounds);
    run_cluster_chaos_with_plan(node_count, rounds, seed, &plan)
}

/// Runs the allocation under an explicit fault plan (pass
/// [`AllocationFaultPlan::clean`] for the differential baseline).
///
/// Per round, every node's sim advances one period. A node that is down
/// (killed and not rejoined, or inside a stall window) is frozen as an
/// agent — no local sample, no heartbeat — while its node's virtual
/// time still passes, so a rejoining agent resumes on the shared clock.
/// Heartbeats carry the node's reported sample time with its clock skew
/// applied; dead nodes are only contacted on the supervision layer's
/// exponential-backoff probe schedule.
pub fn run_cluster_chaos_with_plan(
    node_count: usize,
    rounds: u32,
    seed: u64,
    plan: &AllocationFaultPlan,
) -> ClusterChaosOutcome {
    assert_eq!(plan.nodes.len(), node_count, "plan/node-count mismatch");
    let mut cluster = ClusterMonitor::new();
    let mut sims = Vec::new();
    for i in 0..node_count {
        let hostname = ClusterChaosOutcome::hostname(i);
        // Node seeds depend only on (seed, i): the same node computes the
        // same history whether or not its neighbours are faulted.
        let node_seed = seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            | 1;
        let mut sim = NodeSim::new(
            presets::laptop_i7_1165g7(),
            SchedParams {
                seed: node_seed,
                ..Default::default()
            },
        );
        sim.set_hostname(&hostname);
        let mask = CpuSet::from_indices([0u32, 1]);
        let work = Behavior::FiniteCompute {
            remaining_us: rounds as u64 * PERIOD_US,
            chunk_us: 10_000,
        };
        let pid = sim.spawn_process("rank", mask.clone(), 1_024, work.clone());
        sim.spawn_task(pid, "OpenMP", None, work, false);
        let mut mon = Monitor::new(ZeroSumConfig::scaled(10));
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(i as u32),
            hostname: hostname.clone(),
            gpus: vec![],
            cpus_allowed: mask,
        });
        cluster.add_node(hostname.clone(), mon);
        sims.push((hostname, sim, pid));
    }
    let mut round_summaries = Vec::with_capacity(rounds as usize);
    let mut round_quorums = Vec::with_capacity(rounds as usize);
    for r in 0..rounds {
        cluster.begin_round();
        let expected_t_s = (r as f64 + 1.0) * (PERIOD_US as f64 / 1e6);
        for (i, (hostname, sim, _)) in sims.iter_mut().enumerate() {
            sim.run_for(PERIOD_US);
            let fault = &plan.nodes[i];
            if fault.is_down(r) {
                // Frozen agent: no local sample, no heartbeat.
                continue;
            }
            let t_s = sim.now_us() as f64 / 1e6;
            {
                let src = SimProcSource::new(sim);
                cluster
                    .node_mut(hostname)
                    .expect("node registered")
                    .sample(t_s, &src);
            }
            if cluster.should_probe(hostname) {
                // The node's own clock stamps the heartbeat; skew shows
                // up as deviation from the allocation's expected time.
                let reported = t_s + fault.skew_us as f64 / 1e6;
                cluster.heartbeat_at(hostname, reported, expected_t_s);
            }
        }
        cluster.end_round();
        round_quorums.push(cluster.quorum());
        round_summaries.push(cluster.render_summary());
    }
    ClusterChaosOutcome {
        cluster,
        plan: plan.clone(),
        rounds,
        round_summaries,
        round_quorums,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_core::NodeState;
    use zerosum_sched::NodeFaultPlan;

    #[test]
    fn clean_plan_never_degrades_and_all_nodes_report() {
        let out = run_cluster_chaos_with_plan(3, 12, 77, &AllocationFaultPlan::clean(3));
        assert_eq!(out.round_summaries.len(), 12);
        assert!(out.round_quorums.iter().all(|&(k, n)| k == 3 && n == 3));
        assert!(out.round_summaries.iter().all(|s| !s.contains("DEGRADED")));
        let aggs = out.cluster.aggregates();
        assert_eq!(aggs.len(), 3);
        // Each node sampled every round.
        for (_, m) in out.cluster.nodes() {
            assert_eq!(m.stats.rounds, 12);
        }
    }

    #[test]
    fn permanent_kill_is_declared_dead_and_marked_degraded() {
        let plan = AllocationFaultPlan {
            nodes: vec![
                NodeFaultPlan::none(),
                NodeFaultPlan {
                    kill_at: Some(2),
                    ..Default::default()
                },
            ],
        };
        let out = run_cluster_chaos_with_plan(2, 12, 5, &plan);
        let host = ClusterChaosOutcome::hostname(1);
        assert_eq!(out.cluster.node_state(&host), NodeState::Dead);
        // Killed at round 2 (0-based), dead after 3 missed deadlines.
        assert_eq!(out.round_quorums[4], (1, 2));
        let last = out.round_summaries.last().unwrap();
        assert!(last.contains("DEGRADED (1/2 nodes)"), "{last}");
        assert!(last.contains(&format!("DEAD: node {host}")), "{last}");
        // The dead node's rank is out of the quorum table.
        assert!(last.contains("TOTAL: 1 node(s), 1 rank(s)"), "{last}");
        // Early rounds (before the kill could be detected) were clean.
        assert!(!out.round_summaries[0].contains("DEGRADED"));
    }

    #[test]
    fn delayed_rejoin_is_picked_up_on_a_probe_and_clears_degradation() {
        let plan = AllocationFaultPlan {
            nodes: vec![
                NodeFaultPlan::none(),
                NodeFaultPlan {
                    kill_at: Some(1),
                    rejoin_at: Some(6),
                    ..Default::default()
                },
            ],
        };
        let out = run_cluster_chaos_with_plan(2, 20, 5, &plan);
        let host = ClusterChaosOutcome::hostname(1);
        let s = out.cluster.supervision_of(&host).unwrap();
        assert_eq!(out.cluster.node_state(&host), NodeState::Alive);
        assert_eq!((s.deaths, s.rejoins), (1, 1));
        // Degraded while dead, clean again after the rejoin is probed.
        assert!(out.round_summaries.iter().any(|s| s.contains("DEGRADED")));
        assert!(!out.round_summaries.last().unwrap().contains("DEGRADED"));
        // The rejoined node resumed sampling (fewer rounds than a clean
        // node, but recent ones).
        let m = out.cluster.nodes().find(|(h, _)| *h == host).unwrap().1;
        assert!(
            m.stats.rounds < 20 && m.stats.rounds > 5,
            "{}",
            m.stats.rounds
        );
    }

    #[test]
    fn skewed_clock_is_flagged_without_killing_the_node() {
        let plan = AllocationFaultPlan {
            nodes: vec![
                NodeFaultPlan::none(),
                NodeFaultPlan {
                    skew_us: -1_500_000,
                    ..Default::default()
                },
            ],
        };
        let out = run_cluster_chaos_with_plan(2, 8, 5, &plan);
        let host = ClusterChaosOutcome::hostname(1);
        assert_eq!(out.cluster.node_state(&host), NodeState::Alive);
        let s = out.cluster.supervision_of(&host).unwrap();
        assert!(s.skewed);
        assert!((s.max_skew_s - 1.5).abs() < 1e-6);
        assert!(out
            .round_summaries
            .last()
            .unwrap()
            .contains(&format!("SKEWED: node {host}")));
        assert!(out.round_quorums.iter().all(|&(k, n)| k == n));
    }

    #[test]
    fn survivors_match_the_fault_free_run_exactly() {
        let seed = 99;
        let plan = AllocationFaultPlan::generate(seed, 4, 16);
        let faulted = run_cluster_chaos_with_plan(4, 16, seed, &plan);
        let clean = run_cluster_chaos_with_plan(4, 16, seed, &AllocationFaultPlan::clean(4));
        let clean_aggs = clean.cluster.aggregates();
        for i in plan.survivors(16) {
            let host = ClusterChaosOutcome::hostname(i);
            let f = faulted
                .cluster
                .aggregates()
                .into_iter()
                .find(|a| a.hostname == host)
                .unwrap();
            let c = clean_aggs.iter().find(|a| a.hostname == host).unwrap();
            assert_eq!(&f, c, "survivor {host} diverged from fault-free run");
        }
    }
}
