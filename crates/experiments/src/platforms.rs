//! Cross-platform sweep: §4 notes ZeroSum was tested on Summit
//! (POWER9 + V100), Frontier (EPYC + MI250X), Perlmutter (EPYC + A100),
//! and an internal Intel Xe system — several CPU architectures, GPU
//! vendors, and job schedulers. This harness runs the same bound
//! MPI+OpenMP workload with GPU offload on every node preset and checks
//! that the whole monitoring stack (placement, sampling, reports, GPU
//! telemetry through the right vendor library) works unmodified.

use std::fmt::Write as _;
use zerosum_core::{
    attach_monitor_threads, evaluate, render_process_report, run_monitored, GpuReportContext,
    GpuStack, Monitor, ProcessInfo, Severity, SimGpuLink, ZeroSumConfig,
};
use zerosum_omp::{OmpEnv, OmptRegistry};
use zerosum_sched::{plan_launch, NodeSim, OffloadSpec, SchedParams, SrunConfig, WorkerSpec};
use zerosum_topology::{presets, Topology};

/// One platform scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// OLCF Frontier: 8 ranks × 7 threads, MI250X GCDs via ROCm SMI.
    Frontier,
    /// OLCF Summit: 6 ranks (one per GPU), V100s via NVML.
    Summit,
    /// NERSC Perlmutter: 4 ranks (one per A100), NVML.
    Perlmutter,
    /// ANL Aurora: 6 ranks (one per PVC), Level Zero.
    Aurora,
}

impl Platform {
    /// All platforms.
    pub const ALL: [Platform; 4] = [
        Platform::Frontier,
        Platform::Summit,
        Platform::Perlmutter,
        Platform::Aurora,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Frontier => "Frontier",
            Platform::Summit => "Summit",
            Platform::Perlmutter => "Perlmutter",
            Platform::Aurora => "Aurora",
        }
    }

    fn topology(self) -> Topology {
        match self {
            Platform::Frontier => presets::frontier(),
            Platform::Summit => presets::summit(),
            Platform::Perlmutter => presets::perlmutter(),
            Platform::Aurora => presets::aurora(),
        }
    }

    fn gpu_stack(self) -> GpuStack {
        match self {
            Platform::Frontier => GpuStack::RocmMi250x,
            Platform::Summit => GpuStack::NvmlV100,
            Platform::Perlmutter => GpuStack::NvmlA100,
            Platform::Aurora => GpuStack::LevelZeroPvc,
        }
    }

    fn srun(self) -> SrunConfig {
        let (ntasks, cpus, tpc) = match self {
            Platform::Frontier => (8, 7, 1),
            Platform::Summit => (6, 7, 1),
            Platform::Perlmutter => (4, 14, 1),
            Platform::Aurora => (6, 17, 1),
        };
        SrunConfig {
            ntasks,
            cpus_per_task: Some(cpus),
            threads_per_core: tpc,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: true,
        }
    }
}

/// Result of one platform run.
#[derive(Debug)]
pub struct PlatformRun {
    /// Which platform.
    pub platform: Platform,
    /// Virtual runtime, s.
    pub duration_s: f64,
    /// Rank-0 report including the GPU block.
    pub report: String,
    /// The vendor library the GPU block was sampled through.
    pub gpu_library: &'static str,
    /// Average Device Busy % on rank 0's GPU.
    pub gpu_busy_avg: f64,
    /// Critical findings (should be empty on these clean configs).
    pub critical_findings: usize,
}

/// Runs the standard bound workload on one platform.
pub fn run_platform(platform: Platform, blocks: u32, seed: u64) -> PlatformRun {
    let topo = platform.topology();
    let mut sim = NodeSim::new(
        topo.clone(),
        SchedParams {
            seed,
            ..Default::default()
        },
    );
    let srun = platform.srun();
    let plan = plan_launch(&topo, &srun).expect("launch plan");
    let env = OmpEnv::from_pairs([
        ("OMP_NUM_THREADS", "4"),
        ("OMP_PROC_BIND", "spread"),
        ("OMP_PLACES", "cores"),
    ])
    .unwrap();
    let mut ompt = OmptRegistry::new();
    let mut monitor = Monitor::new(ZeroSumConfig::scaled(20));
    let mut rank0 = None;
    let mut rank0_gpu = None;
    let mut devices: Vec<u32> = Vec::new();
    for p in &plan {
        let gpu = p.gpu;
        let spec = move |_t: usize, is_leader: bool| WorkerSpec {
            iterations: blocks,
            work_per_iter_us: 8_000,
            noise_frac: 0.03,
            sys_per_iter_us: 400,
            leader_extra_us: 300,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader,
            barrier: Some(1),
            offload: gpu.map(|device| OffloadSpec {
                device,
                launch_us: 200,
                kernel_us: 2_000,
                sync_us: 50,
                bytes: 2 << 30,
            }),
        };
        let team = zerosum_omp::launch_team_process(
            &mut sim,
            "xapp",
            p.cpus_allowed.clone(),
            1 << 20,
            &env,
            spec,
            &mut ompt,
        );
        sim.set_rank(team.pid, p.rank);
        if p.rank == 0 {
            rank0 = Some(team.pid);
            rank0_gpu = p.gpu;
        }
        if let Some(g) = p.gpu {
            if !devices.contains(&g) {
                devices.push(g);
            }
        }
        monitor.watch_process(ProcessInfo {
            pid: team.pid,
            rank: Some(p.rank),
            hostname: sim.hostname().to_string(),
            gpus: p.gpu.iter().copied().collect(),
            cpus_allowed: p.cpus_allowed.clone(),
        });
    }
    attach_monitor_threads(&mut sim, &monitor);
    devices.sort_unstable();
    let mut gpus = SimGpuLink::new(platform.gpu_stack(), devices.clone());
    let out = run_monitored(&mut sim, &mut monitor, Some(&mut gpus), 600_000_000);
    assert!(out.completed, "{} run timed out", platform.name());
    let rank0 = rank0.expect("rank 0");
    let gpu_ctx = rank0_gpu.map(|phys| {
        let slot = devices.iter().position(|&d| d == phys).unwrap() as u32;
        GpuReportContext {
            monitor: &gpus.monitor,
            devices: vec![(slot, phys, 0)],
        }
    });
    let report = render_process_report(&monitor, rank0, out.duration_s, gpu_ctx.as_ref());
    let gpu_busy_avg = rank0_gpu
        .map(|phys| {
            let slot = devices.iter().position(|&d| d == phys).unwrap() as u32;
            gpus.monitor
                .summary(slot, zerosum_gpu::GpuMetricKind::DeviceBusyPct)
                .1
        })
        .unwrap_or(0.0);
    let critical_findings = evaluate(&monitor, &topo)
        .iter()
        .filter(|f| f.severity() == Severity::Critical)
        .count();
    let gpu_library = match platform.gpu_stack() {
        GpuStack::RocmMi250x => "ROCm SMI",
        GpuStack::NvmlA100 | GpuStack::NvmlV100 => "NVML",
        GpuStack::LevelZeroPvc => "Level Zero",
    };
    PlatformRun {
        platform,
        duration_s: out.duration_s,
        report,
        gpu_library,
        gpu_busy_avg,
        critical_findings,
    }
}

/// Runs every platform and renders a summary table.
pub fn run_all_platforms(blocks: u32, seed: u64) -> String {
    let mut out =
        String::from("Platform    runtime(s)  GPU lib     GPU busy%  critical findings\n");
    for p in Platform::ALL {
        let r = run_platform(p, blocks, seed);
        writeln!(
            out,
            "{:<11} {:>9.2}  {:<10} {:>8.1}  {}",
            r.platform.name(),
            r.duration_s,
            r.gpu_library,
            r.gpu_busy_avg,
            r.critical_findings
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_platform_clean() {
        let r = run_platform(Platform::Frontier, 8, 1);
        assert_eq!(r.critical_findings, 0, "{}", r.report);
        assert!(r.gpu_busy_avg > 1.0);
        assert!(r.report.contains("GPU 0 - (metric:  min  avg  max)"));
        assert_eq!(r.gpu_library, "ROCm SMI");
    }

    #[test]
    fn summit_platform_clean() {
        let r = run_platform(Platform::Summit, 8, 2);
        assert_eq!(r.critical_findings, 0, "{}", r.report);
        assert_eq!(r.gpu_library, "NVML");
        // SMT4 sockets: rank masks come from the Summit reservation rules.
        assert!(r.report.contains("CPUs allowed"));
    }

    #[test]
    fn perlmutter_platform_clean() {
        let r = run_platform(Platform::Perlmutter, 8, 3);
        assert_eq!(r.critical_findings, 0);
        assert_eq!(r.gpu_library, "NVML");
        assert!(r.gpu_busy_avg > 0.5);
    }

    #[test]
    fn aurora_platform_clean() {
        let r = run_platform(Platform::Aurora, 8, 4);
        assert_eq!(r.critical_findings, 0);
        assert_eq!(r.gpu_library, "Level Zero");
    }

    #[test]
    fn summary_table_covers_all() {
        let table = run_all_platforms(4, 9);
        for p in Platform::ALL {
            assert!(table.contains(p.name()), "{table}");
        }
    }
}
