//! Listings 1 and 2: topology output and the full utilization report.

use std::sync::{Arc, Mutex};
use zerosum_apps::{launch_miniqmc, MiniQmcConfig};
use zerosum_core::{
    attach_monitor_threads, render_process_report, run_monitored, GpuReportContext, GpuStack,
    Monitor, ProcessInfo, SimGpuLink, ZeroSumConfig,
};
use zerosum_omp::OmptRegistry;
use zerosum_sched::{NodeSim, SchedParams};
use zerosum_topology::{presets, render, RenderOptions};

/// Listing 1: the `lstopo`-style topology dump for the i7-1165G7 test
/// node, byte-for-byte in the paper's format.
pub fn listing1() -> String {
    let topo = presets::laptop_i7_1165g7();
    render(&topo, &RenderOptions::listing1())
}

/// Result of the Listing 2 run.
#[derive(Debug)]
pub struct Listing2Run {
    /// The rank-0 report with the GPU block.
    pub report: String,
    /// Application duration, virtual seconds.
    pub duration_s: f64,
    /// Rank 0's average GPU busy percentage.
    pub gpu_busy_avg: f64,
    /// Rank 0's peak VRAM bytes.
    pub vram_peak: f64,
}

/// Listing 2: miniQMC with OpenMP target offload on the simulated
/// Frontier node (8 ranks × 4 threads, spread/cores, one GCD per rank via
/// `--gpu-bind=closest`), monitored by ZeroSum with GPU sampling through
/// the simulated ROCm SMI.
pub fn listing2(scale: u32, seed: u64) -> Listing2Run {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(
        topo.clone(),
        SchedParams {
            seed,
            ..SchedParams::default()
        },
    );
    let qmc = MiniQmcConfig::frontier_offload().scaled_down(scale);
    let omp_tids: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ompt = OmptRegistry::new();
    {
        let omp_tids = Arc::clone(&omp_tids);
        ompt.on_thread_begin(move |ev| omp_tids.lock().unwrap().push(ev.tid));
    }
    let job = launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
    let mut monitor = Monitor::new(ZeroSumConfig::scaled(scale));
    for (team, gpu) in job.teams.iter().zip(&job.gpus) {
        let rank = sim.process(team.pid).and_then(|p| p.rank);
        monitor.watch_process(ProcessInfo {
            pid: team.pid,
            rank,
            hostname: sim.hostname().to_string(),
            gpus: gpu.iter().copied().collect(),
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
    }
    for &tid in omp_tids.lock().unwrap().iter() {
        if let Some(task) = sim.task_by_tid(tid) {
            let pid = task.pid;
            monitor.register_omp_thread(pid, tid);
        }
    }
    attach_monitor_threads(&mut sim, &monitor);
    // Monitor all 8 GCDs through the simulated ROCm SMI.
    let devices: Vec<u32> = (0..8).collect();
    let mut gpu_link = SimGpuLink::new(GpuStack::RocmMi250x, devices);
    let out = run_monitored(&mut sim, &mut monitor, Some(&mut gpu_link), 3_600_000_000);
    assert!(out.completed, "listing2 run timed out");
    // Rank 0's GCD (physical 4 per Figure 2, visible index 0 to the app).
    let rank0 = job.teams[0].pid;
    let rank0_gpu = job.gpus[0].unwrap_or(0);
    let slot = gpu_link
        .devices()
        .iter()
        .position(|&d| d == rank0_gpu)
        .unwrap() as u32;
    let ctx = GpuReportContext {
        monitor: &gpu_link.monitor,
        devices: vec![(slot, rank0_gpu, 0)],
    };
    let report = render_process_report(&monitor, rank0, out.duration_s, Some(&ctx));
    let (_, busy_avg, _) = gpu_link
        .monitor
        .summary(slot, zerosum_gpu::GpuMetricKind::DeviceBusyPct);
    let (_, _, vram_peak) = gpu_link
        .monitor
        .summary(slot, zerosum_gpu::GpuMetricKind::UsedVramBytes);
    Listing2Run {
        report,
        duration_s: out.duration_s,
        gpu_busy_avg: busy_avg,
        vram_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_matches_paper_exactly() {
        let text = listing1();
        assert!(text
            .starts_with("HWLOC Node topology:\nMachine L#0\n  Package L#0\n    L3Cache L#0 12MB"));
        assert!(text.contains("PU L#1 P#4")); // the logical/OS skew
                                              // header + Machine + Package + L3 + 4 cores × (L2+L1+Core+2 PUs).
        assert_eq!(text.lines().count(), 24);
    }

    #[test]
    fn listing2_report_structure_and_gpu_block() {
        let run = listing2(60, 7);
        assert!(run.report.contains("Duration of execution:"));
        assert!(run.report.contains("MPI 000"));
        // The LWP table shows the spread/cores binding of 4 OpenMP
        // threads plus the ZeroSum and helper threads.
        assert!(run.report.contains("Main, OpenMP"));
        assert!(run.report.contains("ZeroSum"));
        assert!(run.report.contains("Other"));
        // The GPU block in Listing 2 format, visible index 0.
        assert!(run.report.contains("GPU 0 - (metric:  min  avg  max)"));
        assert!(run.report.contains("Device Busy %"));
        assert!(run.report.contains("Used VRAM Bytes"));
        // GPU was genuinely exercised.
        assert!(run.gpu_busy_avg > 1.0, "busy {}", run.gpu_busy_avg);
        assert!(run.vram_peak > 1e9, "vram {}", run.vram_peak);
    }

    #[test]
    fn listing2_shares_match_shape() {
        // Listing 2's per-core shape: user ≈ 64%, system ≈ 12.5%, idle ≈
        // 23%. Accept generous bands — the shape criterion is
        // "substantial idle from GPU waits, system time from launches".
        let run = listing2(60, 8);
        let cpu_line = run
            .report
            .lines()
            .find(|l| l.starts_with("CPU 001"))
            .expect("CPU 001 row");
        let grab = |key: &str| -> f64 {
            cpu_line
                .split(key)
                .nth(1)
                .unwrap()
                .trim_start_matches(':')
                .trim()
                .split(',')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let idle = grab("idle");
        let system = grab("system");
        let user = grab("user");
        assert!(user > 35.0, "user {user}");
        assert!(system > 3.0, "system {system}");
        assert!(idle > 5.0, "idle {idle}");
        assert!((idle + system + user - 100.0).abs() < 2.0);
    }
}
