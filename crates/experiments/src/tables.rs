//! Tables 1–3: the three Frontier launch configurations of §4.
//!
//! All three run the same CPU-only miniQMC-sim (8 ranks, 7 OpenMP
//! threads); they differ only in the `srun` arguments and OpenMP binding
//! environment, exactly as in the paper:
//!
//! * **Table 1** — `srun -n8` (default: one core per process; every
//!   thread lands on the rank's single core).
//! * **Table 2** — `srun -n8 -c7` (7 cores per rank, threads unbound).
//! * **Table 3** — `srun -n8 -c7` + `OMP_PROC_BIND=spread
//!   OMP_PLACES=cores` (one thread pinned per core).

use std::sync::{Arc, Mutex};
use zerosum_apps::{launch_miniqmc, MiniQmcConfig, MiniQmcJob};
use zerosum_core::{
    attach_monitor_threads, evaluate, render_process_report, run_monitored, run_monitored_faulty,
    Finding, HealthLedger, Monitor, ProcessInfo, ZeroSumConfig,
};
use zerosum_omp::{OmpEnv, OmptRegistry};
use zerosum_proc::fault::{FaultInjector, FaultPlan, Op};
use zerosum_sched::{NodeSim, SchedParams, SimAudit, SrunConfig, TraceRecord};
use zerosum_topology::presets;

/// Which table's configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableConfig {
    /// Default `srun -n8`.
    Table1,
    /// `srun -n8 -c7`, unbound threads.
    Table2,
    /// `srun -n8 -c7`, `spread`/`cores`.
    Table3,
}

impl TableConfig {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            TableConfig::Table1 => "Table 1: srun -n8 (default, 1 core/process)",
            TableConfig::Table2 => "Table 2: srun -n8 -c7 (unbound threads)",
            TableConfig::Table3 => "Table 3: srun -n8 -c7 + OMP_PROC_BIND=spread OMP_PLACES=cores",
        }
    }
}

/// One row of the paper's LWP table.
#[derive(Debug, Clone, PartialEq)]
pub struct LwpRow {
    /// Thread id.
    pub tid: u32,
    /// Type label (`Main, OpenMP`, `ZeroSum`, `OpenMP`, `Other`).
    pub label: String,
    /// Average system jiffies per period.
    pub stime: f64,
    /// Average user jiffies per period.
    pub utime: f64,
    /// Non-voluntary context switches.
    pub nvctx: u64,
    /// Voluntary context switches.
    pub ctx: u64,
    /// Affinity list.
    pub cpus: String,
    /// Migrations observed through the `processor` field.
    pub migrations: usize,
}

/// The result of one table run.
#[derive(Debug)]
pub struct TableRun {
    /// Which configuration ran.
    pub config: TableConfig,
    /// Application duration, virtual seconds.
    pub duration_s: f64,
    /// Rank 0's LWP rows, tid-ascending.
    pub rows: Vec<LwpRow>,
    /// The full rank-0 report (Listing 2 format).
    pub report: String,
    /// Configuration-evaluator findings.
    pub findings: Vec<Finding>,
    /// Total migrations across rank 0's OpenMP team.
    pub team_migrations: usize,
}

fn miniqmc_for(config: TableConfig, scale: u32) -> MiniQmcConfig {
    let mut cfg = MiniQmcConfig::frontier_cpu().scaled_down(scale);
    match config {
        TableConfig::Table1 => {
            cfg.srun = SrunConfig {
                ntasks: 8,
                cpus_per_task: None,
                threads_per_core: 1,
                reserve_first_core_per_l3: true,
                gpu_bind_closest: false,
            };
            cfg.omp = OmpEnv::from_pairs([("OMP_NUM_THREADS", "7")]).unwrap();
        }
        TableConfig::Table2 => {
            cfg.omp = OmpEnv::from_pairs([("OMP_NUM_THREADS", "7")]).unwrap();
        }
        TableConfig::Table3 => {
            cfg.omp = OmpEnv::from_pairs([
                ("OMP_NUM_THREADS", "7"),
                ("OMP_PROC_BIND", "spread"),
                ("OMP_PLACES", "cores"),
            ])
            .unwrap();
        }
    }
    cfg
}

/// Runs one table configuration. `scale` divides the block count
/// (1 = the full paper-calibrated workload; tests use 50–100).
pub fn run_table(config: TableConfig, scale: u32, seed: u64) -> TableRun {
    run_table_impl(config, scale, seed, false, ZeroSumConfig::scaled(scale)).0
}

/// Like [`run_table`] but with an explicit monitor configuration —
/// used by the differential suites (e.g. delta sampling on vs off must
/// produce identical tables).
pub fn run_table_configured(
    config: TableConfig,
    scale: u32,
    seed: u64,
    zs: ZeroSumConfig,
) -> TableRun {
    run_table_impl(config, scale, seed, false, zs).0
}

/// Like [`run_table`] but with scheduler event tracing enabled: also
/// returns the full decision trace and the final-counter audit that
/// `zerosum-analyze` replays it against.
pub fn run_table_traced(
    config: TableConfig,
    scale: u32,
    seed: u64,
) -> (TableRun, Vec<TraceRecord>, SimAudit) {
    let (run, traced) = run_table_impl(config, scale, seed, true, ZeroSumConfig::scaled(scale));
    let (trace, audit) = traced.expect("tracing was enabled");
    (run, trace, audit)
}

/// A launched-and-watched table scenario, ready to drive: the simulated
/// node with miniQMC running on it, and a monitor already watching every
/// rank with its monitor threads attached.
struct PreparedTable {
    topo: zerosum_topology::Topology,
    sim: NodeSim,
    job: MiniQmcJob,
    monitor: Monitor,
}

/// Builds the simulation, launches miniQMC per the table's `srun`/OMP
/// configuration, wires OMPT discovery into a fresh monitor, and attaches
/// the monitor threads — everything up to (but excluding) the run itself,
/// shared by the plain, traced, and chaos drivers.
fn prepare_table(
    config: TableConfig,
    scale: u32,
    seed: u64,
    trace: bool,
    zs: ZeroSumConfig,
) -> PreparedTable {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(
        topo.clone(),
        SchedParams {
            seed,
            ..SchedParams::default()
        },
    );
    sim.set_tracing(trace);
    let qmc = miniqmc_for(config, scale);
    // OMPT: collect thread-begin events the way the real tool does.
    let omp_tids: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ompt = OmptRegistry::new();
    {
        let omp_tids = Arc::clone(&omp_tids);
        ompt.on_thread_begin(move |ev| omp_tids.lock().unwrap().push(ev.tid));
    }
    let job = launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
    let mut monitor = Monitor::new(zs);
    for team in &job.teams {
        let rank = sim.process(team.pid).and_then(|p| p.rank);
        monitor.watch_process(ProcessInfo {
            pid: team.pid,
            rank,
            hostname: sim.hostname().to_string(),
            gpus: vec![],
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
    }
    // Feed the OMPT-discovered tids to the monitor.
    for &tid in omp_tids.lock().unwrap().iter() {
        if let Some(task) = sim.task_by_tid(tid) {
            let pid = task.pid;
            monitor.register_omp_thread(pid, tid);
        }
    }
    attach_monitor_threads(&mut sim, &monitor);
    PreparedTable {
        topo,
        sim,
        job,
        monitor,
    }
}

/// Digests a finished run into the paper-table rows and findings.
fn finish_table(config: TableConfig, duration_s: f64, prep: &PreparedTable) -> TableRun {
    let monitor = &prep.monitor;
    let rank0 = prep.job.teams[0].pid;
    let report = render_process_report(monitor, rank0, duration_s, None);
    let findings = evaluate(monitor, &prep.topo);
    let watch = monitor.process(rank0).expect("rank 0 watched");
    let mut rows: Vec<LwpRow> = watch
        .lwps
        .tracks()
        .map(|t| LwpRow {
            tid: t.tid,
            label: t.kind.label(t.is_openmp),
            stime: t.avg_stime_per_period(),
            utime: t.avg_utime_per_period(),
            nvctx: t.total_nvcsw(),
            ctx: t.total_vcsw(),
            cpus: t.affinity.to_list_string(),
            migrations: t.observed_migrations(),
        })
        .collect();
    rows.sort_by_key(|r| r.tid);
    let team_migrations = watch
        .lwps
        .tracks()
        .filter(|t| t.is_openmp || t.kind == zerosum_core::LwpKind::Main)
        .map(|t| t.observed_migrations())
        .sum();
    TableRun {
        config,
        duration_s,
        rows,
        report,
        findings,
        team_migrations,
    }
}

fn run_table_impl(
    config: TableConfig,
    scale: u32,
    seed: u64,
    trace: bool,
    zs: ZeroSumConfig,
) -> (TableRun, Option<(Vec<TraceRecord>, SimAudit)>) {
    let mut prep = prepare_table(config, scale, seed, trace, zs);
    let out = run_monitored(&mut prep.sim, &mut prep.monitor, None, 3_600_000_000);
    assert!(out.completed, "table run timed out");
    let traced = trace.then(|| {
        let audit = prep.sim.audit();
        (prep.sim.take_trace(), audit)
    });
    (finish_table(config, out.duration_s, &prep), traced)
}

/// The chaos harness's view of one faulted table run: the monitor's
/// health accounting side-by-side with the injector's ground truth.
#[derive(Debug)]
pub struct ChaosAudit {
    /// The node ledger merged with every process ledger.
    pub ledger: HealthLedger,
    /// Errors the monitor accounted for, by `SourceErrorKind` index.
    pub ledger_errors: [u64; 4],
    /// Errors the injector delivered (injected + passed through),
    /// excluding `schedstat` reads — the monitor treats a missing
    /// schedstat as an absent kernel feature, not an error.
    pub injected_errors: [u64; 4],
    /// Sampling-loop panics caught by the supervisor.
    pub supervisor_restarts: u64,
    /// Tids still quarantined at run end, across all ranks.
    pub quarantined: usize,
    /// Stale (cached) reads the injector served.
    pub stale_serves: u64,
    /// Read latency injected, µs.
    pub injected_latency_us: u64,
    /// Total fault-log entries.
    pub fault_events: usize,
    /// Whether the application ran to completion under fault load.
    pub completed: bool,
}

impl ChaosAudit {
    /// Exact reconciliation: every error the injector delivered is
    /// accounted for in the ledgers, and nothing more.
    pub fn reconciles(&self) -> bool {
        self.ledger_errors == self.injected_errors
    }
}

/// Runs one table configuration with every `/proc` read routed through a
/// seeded fault injector, and audits the monitor's health accounting
/// against the injected fault log.
pub fn run_table_chaos(
    config: TableConfig,
    scale: u32,
    seed: u64,
    plan: FaultPlan,
) -> (TableRun, ChaosAudit) {
    let mut prep = prepare_table(config, scale, seed, false, ZeroSumConfig::scaled(scale));
    let injector = FaultInjector::new(plan);
    let out = run_monitored_faulty(
        &mut prep.sim,
        &mut prep.monitor,
        None,
        3_600_000_000,
        &injector,
    );
    let ledger = prep.monitor.health_total();
    let audit = ChaosAudit {
        ledger_errors: ledger.errors_by_kind,
        injected_errors: injector.error_counts_excluding(&[Op::SchedStat]),
        supervisor_restarts: prep.monitor.supervisor.restarts,
        quarantined: prep
            .monitor
            .processes()
            .iter()
            .map(|w| w.health.quarantined_now())
            .sum(),
        stale_serves: injector.stale_count(),
        injected_latency_us: injector.injected_latency_us(),
        fault_events: injector.log().len(),
        completed: out.completed,
        ledger,
    };
    (finish_table(config, out.duration_s, &prep), audit)
}

/// Formats the rows like the paper's tables.
pub fn render_rows(run: &TableRun) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{}", run.config.label()).unwrap();
    writeln!(out, "Application runtime: {:.2} s", run.duration_s).unwrap();
    writeln!(
        out,
        "{:>6}  {:<12} {:>7} {:>7} {:>9} {:>7}  CPUs",
        "LWP", "Type", "stime", "utime", "nvctx", "ctx"
    )
    .unwrap();
    for r in &run.rows {
        writeln!(
            out,
            "{:>6}  {:<12} {:>7.2} {:>7.2} {:>9} {:>7}  {}",
            r.tid, r.label, r.stime, r.utime, r.nvctx, r.ctx, r.cpus
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn openmp_rows(run: &TableRun) -> Vec<&LwpRow> {
        run.rows
            .iter()
            .filter(|r| r.label.contains("OpenMP"))
            .collect()
    }

    #[test]
    fn table1_oversubscribes_single_core() {
        let run = run_table(TableConfig::Table1, 100, 1);
        // Every team thread bound to core 1 (the paper's observation).
        for r in openmp_rows(&run) {
            assert_eq!(r.cpus, "1", "row {r:?}");
        }
        // Massive involuntary churn, little voluntary.
        let nv: u64 = openmp_rows(&run).iter().map(|r| r.nvctx).sum();
        let v: u64 = openmp_rows(&run).iter().map(|r| r.ctx).sum();
        assert!(nv > 500, "nvctx total {nv}");
        assert!(v < nv / 5, "ctx {v} vs nvctx {nv}");
        // Evaluator screams.
        assert!(run
            .findings
            .iter()
            .any(|f| matches!(f, Finding::OversubscribedHwts { .. })));
    }

    #[test]
    fn table2_spreads_and_migrates() {
        let run = run_table(TableConfig::Table2, 100, 2);
        for r in openmp_rows(&run) {
            assert_eq!(r.cpus, "1-7", "unbound mask, row {r:?}");
        }
        let nv: u64 = openmp_rows(&run).iter().map(|r| r.nvctx).sum();
        assert!(nv < 200, "nvctx total {nv}");
        // Unbound threads flagged as an Info finding.
        assert!(run
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UnboundThreads { .. })));
    }

    #[test]
    fn table3_binds_and_eliminates_migrations() {
        let run = run_table(TableConfig::Table3, 100, 3);
        let rows = openmp_rows(&run);
        // One thread per core: single-CPU masks.
        for r in &rows {
            assert_eq!(r.cpus.split(',').count(), 1);
            assert!(!r.cpus.contains('-'), "row {r:?}");
        }
        assert_eq!(run.team_migrations, 0, "bound threads never migrate");
    }

    #[test]
    fn delta_sampling_is_table_equivalent_over_twenty_seeds() {
        // Delta sampling replays a thread's last good records when its
        // schedstat is unchanged; those records are identical to what a
        // fresh read would return, so the published tables must match
        // the delta-off run bit for bit. Twenty seeds across all three
        // configurations, fanned out on the experiment engine.
        let seeds: Vec<u64> = (0..20u64).map(|i| 101 + i * 37).collect();
        let scale = 300;
        let runs = crate::parallel::run_seeded(&seeds, 0, |seed| {
            let config = match seed % 3 {
                0 => TableConfig::Table1,
                1 => TableConfig::Table2,
                _ => TableConfig::Table3,
            };
            let on = run_table_configured(config, scale, seed, ZeroSumConfig::scaled(scale));
            let off = run_table_configured(
                config,
                scale,
                seed,
                ZeroSumConfig::scaled(scale).with_delta_sampling(false),
            );
            (seed, on, off)
        });
        for (seed, on, off) in runs {
            assert_eq!(on.rows, off.rows, "rows diverged at seed {seed}");
            assert_eq!(
                on.duration_s, off.duration_s,
                "virtual runtime diverged at seed {seed}"
            );
            assert_eq!(
                on.team_migrations, off.team_migrations,
                "migrations diverged at seed {seed}"
            );
            // The health ledger counts fresh reads, and delta hits
            // replace fresh reads by design — compare everything above
            // the Sampling Health section (the published report body).
            let body = |r: &str| r.split("\nSampling Health:").next().unwrap().to_string();
            assert_eq!(
                body(&on.report),
                body(&off.report),
                "report body diverged at seed {seed}"
            );
        }
    }

    #[test]
    fn runtime_ordering_matches_paper() {
        let t1 = run_table(TableConfig::Table1, 100, 4);
        let t2 = run_table(TableConfig::Table2, 100, 4);
        let t3 = run_table(TableConfig::Table3, 100, 4);
        assert!(
            t1.duration_s > 2.0 * t2.duration_s,
            "oversubscribed run must be much slower: t1 {} vs t2 {}",
            t1.duration_s,
            t2.duration_s
        );
        let ratio = t3.duration_s / t2.duration_s;
        assert!(
            (0.8..1.25).contains(&ratio),
            "t2 {} and t3 {} should be comparable",
            t2.duration_s,
            t3.duration_s
        );
    }

    #[test]
    fn reports_render_in_paper_format() {
        let run = run_table(TableConfig::Table3, 200, 5);
        assert!(run.report.contains("Duration of execution:"));
        assert!(run.report.contains("MPI 000"));
        assert!(run.report.contains("CPUs allowed: [1-7]"));
        let rows = render_rows(&run);
        assert!(rows.contains("Table 3"));
        assert!(rows.contains("ZeroSum"));
    }
}
