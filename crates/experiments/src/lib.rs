//! # zerosum-experiments
//!
//! Regeneration harnesses for every table and figure in the paper's
//! evaluation (§4), plus the two listings:
//!
//! | Artifact | Module / binary |
//! |---|---|
//! | Listing 1 (lstopo output) | [`listings::listing1`], `bin/listing1` |
//! | Listing 2 (utilization report) | [`listings::listing2`], `bin/listing2` |
//! | Table 1 (default srun) | [`tables::run_table`], `bin/table1` |
//! | Table 2 (`-c7`) | [`tables::run_table`], `bin/table2` |
//! | Table 3 (`-c7` + spread/cores) | [`tables::run_table`], `bin/table3` |
//! | Figure 5 (p2p heatmap) | [`figures::fig5`], `bin/fig5` |
//! | Figure 6 (LWP series) | [`figures::fig67`], `bin/fig6` |
//! | Figure 7 (HWT series) | [`figures::fig67`], `bin/fig7` |
//! | Figure 8 (overhead) | [`figures::fig8`], `bin/fig8` |
//!
//! Binaries accept `--scale N` (divide the workload for quick runs) and
//! write CSV artifacts under `results/`.

#![warn(missing_docs)]

pub mod cluster_chaos;
pub mod cluster_demo;
pub mod figures;
pub mod listings;
pub mod parallel;
pub mod platforms;
pub mod sweep;
pub mod tables;
pub mod transport_chaos;

use std::path::PathBuf;

/// Parses `--scale N` and `--seed N` from argv, with defaults.
pub fn cli_scale_seed(default_scale: u32) -> (u32, u64) {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = default_scale;
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    scale = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            _ => {}
        }
    }
    (scale.max(1), seed)
}

/// The `results/` output directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_is_creatable() {
        let d = super::results_dir();
        assert!(d.exists());
    }
}
