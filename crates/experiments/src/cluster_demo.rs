//! The allocation-wide demo: a 4-node job where one node was launched
//! with the Table 1 misconfiguration. The cluster summary — the paper's
//! "htop for all nodes in the allocation" vision — pinpoints it.

use std::sync::{Arc, Mutex};
use zerosum_apps::{launch_miniqmc, MiniQmcConfig};
use zerosum_core::{
    attach_monitor_threads, run_monitored, ClusterMonitor, Monitor, ProcessInfo, ZeroSumConfig,
};
use zerosum_omp::{OmpEnv, OmptRegistry};
use zerosum_sched::{NodeSim, SchedParams, SrunConfig};
use zerosum_topology::presets;

/// Runs miniQMC-sim on one node; `misconfigured` selects the Table 1
/// launch. Returns the node's monitor (as if shipped from its agent).
pub fn run_node(hostname: &str, misconfigured: bool, scale: u32, seed: u64) -> Monitor {
    let topo = presets::frontier();
    let mut sim = NodeSim::new(
        topo.clone(),
        SchedParams {
            seed,
            ..Default::default()
        },
    );
    sim.set_hostname(hostname);
    let mut qmc = MiniQmcConfig::frontier_cpu().scaled_down(scale);
    if misconfigured {
        qmc.srun = SrunConfig {
            ntasks: 8,
            cpus_per_task: None, // the Table 1 default
            threads_per_core: 1,
            reserve_first_core_per_l3: true,
            gpu_bind_closest: false,
        };
    }
    qmc.omp = OmpEnv::from_pairs([
        ("OMP_NUM_THREADS", "7"),
        ("OMP_PROC_BIND", "spread"),
        ("OMP_PLACES", "cores"),
    ])
    .unwrap();
    let omp_tids: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ompt = OmptRegistry::new();
    {
        let omp_tids = Arc::clone(&omp_tids);
        ompt.on_thread_begin(move |ev| omp_tids.lock().unwrap().push(ev.tid));
    }
    let job = launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
    let mut monitor = Monitor::new(ZeroSumConfig::scaled(scale));
    for team in &job.teams {
        monitor.watch_process(ProcessInfo {
            pid: team.pid,
            rank: sim.process(team.pid).and_then(|p| p.rank),
            hostname: hostname.into(),
            gpus: vec![],
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
    }
    for &tid in omp_tids.lock().unwrap().iter() {
        if let Some(task) = sim.task_by_tid(tid) {
            let pid = task.pid;
            monitor.register_omp_thread(pid, tid);
        }
    }
    attach_monitor_threads(&mut sim, &monitor);
    // Cap the run: the misconfigured node is far slower, and real
    // allocations end when the job does — here we observe a fixed window.
    run_monitored(&mut sim, &mut monitor, None, 3_600_000_000);
    monitor
}

/// Runs the 4-node allocation (node 3 misconfigured) and returns the
/// cluster view.
pub fn run_allocation(scale: u32, seed: u64) -> ClusterMonitor {
    let mut cluster = ClusterMonitor::new();
    for i in 0..4u64 {
        let hostname = format!("frontier{:05}", 9000 + i);
        let mis = i == 2;
        let mon = run_node(&hostname, mis, scale, seed + i);
        cluster.add_node(hostname, mon);
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_summary_pinpoints_the_misconfigured_node() {
        let cluster = run_allocation(175, 11);
        assert_eq!(cluster.len(), 4);
        let text = cluster.render_summary();
        assert!(text.contains("TOTAL: 4 node(s), 32 rank(s)"), "{text}");
        // Only the misconfigured node is flagged hot.
        assert!(text.contains("HOT: node frontier09002"), "{text}");
        assert!(!text.contains("HOT: node frontier09000"));
        assert!(!text.contains("HOT: node frontier09001"));
        assert!(!text.contains("HOT: node frontier09003"));
        // And it piles up the context switches.
        let aggs = cluster.aggregates();
        let bad = &aggs[2];
        let good = &aggs[0];
        assert!(
            bad.total_nvcsw > 10 * good.total_nvcsw.max(1),
            "bad {} vs good {}",
            bad.total_nvcsw,
            good.total_nvcsw
        );
    }
}
