//! Cluster chaos replayed over lossy *transports*: the same
//! independent per-node sims as [`crate::cluster_chaos`], but the
//! collector now sees nodes only through the wire — agents stream
//! Hello/heartbeat/detail/aggregate frames over per-node links while a
//! seeded [`TransportFaultPlan`] drops, corrupts, truncates, delays,
//! reorders, disconnects, partitions, and kills.
//!
//! The differential property sharpens accordingly: node sims are
//! seeded off the node index alone, so every node computes the same
//! local aggregate whether or not its link is chaotic — and a
//! surviving (never-killed) node's aggregate as *delivered over the
//! lossy wire* must be bit-identical to its locally computed one (and
//! hence to the fault-free run's). Killed links must surface as
//! honest DEAD/DEGRADED markers, and no corrupt frame may ever panic
//! the collector.
//!
//! Everything is tick-driven ([`TICKS_PER_ROUND`] agent ticks per
//! sampling round) with no wall clocks, so a run is a pure function of
//! `(node_count, rounds, seed, plan)` — this driver is a registered
//! nondeterminism-audit root.

use zerosum_core::{Monitor, NodeAggregate, ProcessInfo, ZeroSumConfig};
use zerosum_net::{
    in_proc_pair, AgentStats, Collector, FaultyLink, InProcLink, LinkFaultStats, NodeAgent,
    TransportFaultPlan,
};
use zerosum_sched::{Behavior, NodeSim, SchedParams, SimProcSource};
use zerosum_topology::{presets, CpuSet};

/// One sampling round per `PERIOD_US` of virtual time on every node.
const PERIOD_US: u64 = 100_000;

/// Agent/link ticks per sampling round — the granularity of fault
/// delays, reconnect backoff, and aggregate retransmission.
pub const TICKS_PER_ROUND: u64 = 4;

/// Ticks of end-of-run drain: aggregates retransmit until acked, so
/// this bounds how long a lossy or freshly-reconnected link has to
/// deliver. 96 ticks ≈ 48 retransmissions at the default cadence.
pub const DRAIN_TICKS: u32 = 96;

/// Send-window bound per link, frames. One round's heartbeat plus a
/// couple of details fit; the rest of the detail stream sheds — the
/// overload discipline the suite asserts on.
pub const SEND_WINDOW: usize = 4;

/// Per-LWP detail frames each agent offers per round (deliberately one
/// more than the window leaves room for, so shedding is exercised).
const DETAILS_PER_ROUND: u32 = 3;

/// Result of one transport-chaos run.
pub struct TransportChaosOutcome {
    /// The collector after the drain: supervision state, wire-delivered
    /// aggregates, and counters.
    pub collector: Collector,
    /// The plan that was applied.
    pub plan: TransportFaultPlan,
    /// Rounds driven.
    pub rounds: u32,
    /// The wire-side allocation summary after every round.
    pub round_summaries: Vec<String>,
    /// `(quorum, total)` after every round.
    pub round_quorums: Vec<(usize, usize)>,
    /// Ground truth: each node's locally computed aggregate.
    pub local_aggregates: Vec<NodeAggregate>,
    /// Per-node agent counters (sheds, reconnects, retransmissions).
    pub agent_stats: Vec<AgentStats>,
    /// Per-link fault counters (what the chaos actually did).
    pub fault_stats: Vec<LinkFaultStats>,
}

impl TransportChaosOutcome {
    /// Hostname of node `i`, as used throughout the run.
    pub fn hostname(i: usize) -> String {
        format!("wire{i:04}")
    }
}

/// Runs `node_count` nodes for `rounds` rounds over in-process links
/// under a seeded transport fault plan.
pub fn run_transport_chaos(node_count: usize, rounds: u32, seed: u64) -> TransportChaosOutcome {
    let plan = TransportFaultPlan::generate(seed, node_count, rounds, TICKS_PER_ROUND);
    run_transport_chaos_with_plan(node_count, rounds, seed, &plan)
}

/// Runs the allocation over the wire under an explicit fault plan
/// (pass [`TransportFaultPlan::clean`] for the differential baseline).
pub fn run_transport_chaos_with_plan(
    node_count: usize,
    rounds: u32,
    seed: u64,
    plan: &TransportFaultPlan,
) -> TransportChaosOutcome {
    assert_eq!(plan.links.len(), node_count, "plan/node-count mismatch");
    let mut collector = Collector::new();
    let mut agents: Vec<NodeAgent<FaultyLink<InProcLink>>> = Vec::new();
    let mut sims = Vec::new();
    for (i, link_plan) in plan.links.iter().enumerate() {
        let hostname = TransportChaosOutcome::hostname(i);
        collector.expect_node(&hostname);
        let (agent_end, collector_end) = in_proc_pair(SEND_WINDOW);
        collector.add_link(Box::new(collector_end));
        agents.push(NodeAgent::new(
            FaultyLink::new(agent_end, link_plan.clone()),
            hostname.clone(),
        ));
        // Node seeds depend only on (seed, i): the same node computes
        // the same history whether or not its link is chaotic.
        let node_seed = seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            | 1;
        let mut sim = NodeSim::new(
            presets::laptop_i7_1165g7(),
            SchedParams {
                seed: node_seed,
                ..Default::default()
            },
        );
        sim.set_hostname(&hostname);
        let mask = CpuSet::from_indices([0u32, 1]);
        let work = Behavior::FiniteCompute {
            remaining_us: u64::from(rounds) * PERIOD_US,
            chunk_us: 10_000,
        };
        let pid = sim.spawn_process("rank", mask.clone(), 1_024, work.clone());
        sim.spawn_task(pid, "OpenMP", None, work, false);
        let mut mon = Monitor::new(ZeroSumConfig::scaled(10));
        mon.watch_process(ProcessInfo {
            pid,
            rank: Some(i as u32),
            hostname: hostname.clone(),
            gpus: vec![],
            cpus_allowed: mask,
        });
        sims.push((hostname, sim, mon));
    }
    let mut round_summaries = Vec::with_capacity(rounds as usize);
    let mut round_quorums = Vec::with_capacity(rounds as usize);
    for r in 0..rounds {
        let round = u64::from(r) + 1;
        for (i, (_hostname, sim, mon)) in sims.iter_mut().enumerate() {
            sim.run_for(PERIOD_US);
            let t_s = sim.now_us() as f64 / 1e6;
            {
                let src = SimProcSource::new(sim);
                mon.sample(t_s, &src);
            }
            let agent = &mut agents[i];
            agent.begin_round(round, t_s);
            for d in 0..DETAILS_PER_ROUND {
                // Deterministic synthetic per-LWP detail; the suite
                // only asserts counts and shedding, not content.
                agent.send_detail(round, 100 + d, (d as f64) * 10.0 + r as f64);
            }
        }
        for _ in 0..TICKS_PER_ROUND {
            for agent in &mut agents {
                agent.tick();
            }
        }
        collector.run_round();
        round_quorums.push(collector.quorum());
        round_summaries.push(collector.render_summary());
    }
    // End of run: every node aggregates locally (ground truth) and
    // streams the result until acked or the drain window closes.
    let mut local_aggregates = Vec::with_capacity(node_count);
    for (i, (hostname, _sim, mon)) in sims.iter().enumerate() {
        let agg = NodeAggregate::from_monitor(hostname, mon);
        agents[i].finish(u64::from(rounds), agg.clone());
        local_aggregates.push(agg);
    }
    for _ in 0..DRAIN_TICKS {
        for agent in &mut agents {
            agent.tick();
        }
        collector.pump_frames();
        if agents.iter().all(|a| a.done()) {
            break;
        }
    }
    let agent_stats = agents.iter().map(|a| a.stats).collect();
    let fault_stats = agents.iter().map(|a| a.link().stats).collect();
    TransportChaosOutcome {
        collector,
        plan: plan.clone(),
        rounds,
        round_summaries,
        round_quorums,
        local_aggregates,
        agent_stats,
        fault_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_core::NodeState;
    use zerosum_net::LinkFaultPlan;

    #[test]
    fn clean_plan_delivers_every_aggregate_bit_identically() {
        let out = run_transport_chaos_with_plan(3, 12, 77, &TransportFaultPlan::clean(3));
        assert_eq!(out.round_summaries.len(), 12);
        assert!(out.round_quorums.iter().all(|&(k, n)| k == 3 && n == 3));
        assert!(out.round_summaries.iter().all(|s| !s.contains("DEGRADED")));
        assert_eq!(out.collector.stats.decode_errors, 0);
        let wire = out.collector.wire_aggregates();
        assert_eq!(wire, out.local_aggregates, "wire == local, bit for bit");
        // Exactly one heartbeat per node per round arrived.
        assert_eq!(out.collector.stats.heartbeats_rx, 3 * 12);
        // The window forced detail shedding in round 1 (hello + heartbeat
        // + details exceed it) — backpressure is exercised even clean.
        assert!(out.agent_stats.iter().all(|s| s.details_shed > 0));
    }

    #[test]
    fn killed_link_surfaces_as_dead_and_degraded() {
        let mut plan = TransportFaultPlan::clean(3);
        plan.links[2] = LinkFaultPlan {
            seed: 11,
            kill_at: Some(2 * TICKS_PER_ROUND),
            ..Default::default()
        };
        let out = run_transport_chaos_with_plan(3, 14, 5, &plan);
        let host = TransportChaosOutcome::hostname(2);
        assert_eq!(out.collector.cluster().node_state(&host), NodeState::Dead);
        let last = out.round_summaries.last().unwrap();
        assert!(last.contains("DEGRADED (2/3 nodes)"), "{last}");
        assert!(last.contains(&format!("DEAD: node {host}")), "{last}");
        // The dead node's aggregate never made it; the others' did.
        let wire = out.collector.wire_aggregates();
        assert_eq!(wire.len(), 2);
        assert!(wire.iter().all(|a| a.hostname != host));
    }

    #[test]
    fn partition_goes_dead_then_rejoins_and_still_delivers() {
        let mut plan = TransportFaultPlan::clean(2);
        plan.links[1] = LinkFaultPlan {
            seed: 7,
            partition: Some((2 * TICKS_PER_ROUND, 8 * TICKS_PER_ROUND)),
            ..Default::default()
        };
        let out = run_transport_chaos_with_plan(2, 16, 9, &plan);
        let host = TransportChaosOutcome::hostname(1);
        let sup = out.collector.cluster().supervision_of(&host).unwrap();
        assert_eq!(sup.state, NodeState::Alive, "healed partition rejoins");
        assert!(sup.deaths >= 1, "partition crossed the dead deadline");
        assert!(sup.rejoins >= 1);
        assert!(
            out.round_summaries.iter().any(|s| s.contains("DEGRADED")),
            "mid-partition summaries are honest"
        );
        assert!(!out.round_summaries.last().unwrap().contains("DEGRADED"));
        // Both aggregates delivered bit-identically after the heal.
        assert_eq!(out.collector.wire_aggregates(), out.local_aggregates);
    }

    #[test]
    fn survivors_match_the_fault_free_run_exactly_over_lossy_links() {
        let seed = 99;
        let plan = TransportFaultPlan::generate(seed, 4, 16, TICKS_PER_ROUND);
        let faulted = run_transport_chaos_with_plan(4, 16, seed, &plan);
        let clean = run_transport_chaos_with_plan(4, 16, seed, &TransportFaultPlan::clean(4));
        assert_eq!(clean.collector.wire_aggregates(), clean.local_aggregates);
        let clean_wire = clean.collector.wire_aggregates();
        for i in plan.survivors() {
            let host = TransportChaosOutcome::hostname(i);
            let f = faulted
                .collector
                .wire_aggregates()
                .into_iter()
                .find(|a| a.hostname == host)
                .unwrap_or_else(|| panic!("survivor {host} delivered no aggregate"));
            let c = clean_wire.iter().find(|a| a.hostname == host).unwrap();
            assert_eq!(&f, c, "survivor {host} diverged over the lossy wire");
        }
    }

    #[test]
    fn runs_are_pure_functions_of_their_inputs() {
        let a = run_transport_chaos(3, 10, 1234);
        let b = run_transport_chaos(3, 10, 1234);
        assert_eq!(a.round_summaries, b.round_summaries);
        assert_eq!(a.round_quorums, b.round_quorums);
        assert_eq!(a.collector.wire_aggregates(), b.collector.wire_aggregates());
        assert_eq!(a.collector.stats, b.collector.stats);
        assert_eq!(a.agent_stats, b.agent_stats);
        assert_eq!(a.fault_stats, b.fault_stats);
    }
}
