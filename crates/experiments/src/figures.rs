//! Figures 5–8: heatmap, time series, and the overhead study.

use crate::tables::{run_table, TableConfig};
use zerosum_apps::{run_pic, PicConfig};
use zerosum_mpi::{heatmap, CommMatrix};
use zerosum_sched::{SimAudit, TraceRecord};
use zerosum_stats::{welch_t_test, Summary, TTest};

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// Result of the Figure 5 reproduction.
#[derive(Debug)]
pub struct Fig5Run {
    /// The accumulated point-to-point matrix.
    pub matrix: CommMatrix,
    /// Fraction of traffic within 2 ranks of the diagonal.
    pub diagonal_fraction: f64,
    /// Peak pair bytes (the paper's color scale tops at ~1.75e10).
    pub max_pair_bytes: u64,
}

/// Runs the PIC communication proxy and summarizes the heatmap.
pub fn fig5(cfg: &PicConfig) -> Fig5Run {
    let matrix = run_pic(cfg);
    Fig5Run {
        diagonal_fraction: matrix.diagonal_fraction(cfg.halo_width),
        max_pair_bytes: matrix.max_bytes(),
        matrix,
    }
}

/// ASCII rendering of the Figure 5 heatmap.
pub fn fig5_ascii(run: &Fig5Run, cells: usize) -> String {
    heatmap::render_ascii(&run.matrix, cells)
}

// ---------------------------------------------------------------------
// Figures 6 & 7
// ---------------------------------------------------------------------

/// Result of the Figures 6/7 time-series reproduction: the Table 3 run's
/// per-LWP and per-HWT CSV series, plus render-ready stacked bundles.
#[derive(Debug)]
pub struct Fig67Run {
    /// Per-LWP cumulative-counter CSV (Figure 6's source data).
    pub lwp_csv: String,
    /// Per-HWT utilization CSV (Figure 7's data).
    pub hwt_csv: String,
    /// Number of samples taken.
    pub samples: usize,
    /// Figure 6: per-interval user-jiffy series of rank 0's team threads.
    pub lwp_bundle: zerosum_stats::SeriesBundle,
    /// Figure 7: idle/system/user series of rank 0's core 1.
    pub hwt_bundle: zerosum_stats::SeriesBundle,
}

/// Runs the Table 3 configuration and exports the periodic series.
pub fn fig67(scale: u32, seed: u64) -> Fig67Run {
    fig67_impl(scale, seed, false).0
}

/// Like [`fig67`] but with scheduler event tracing enabled.
pub fn fig67_traced(scale: u32, seed: u64) -> (Fig67Run, Vec<TraceRecord>, SimAudit) {
    let (run, traced) = fig67_impl(scale, seed, true);
    let (trace, audit) = traced.expect("tracing was enabled");
    (run, trace, audit)
}

fn fig67_impl(
    scale: u32,
    seed: u64,
    trace: bool,
) -> (Fig67Run, Option<(Vec<TraceRecord>, SimAudit)>) {
    // Reuse the table harness but keep the monitor's data.
    let topo = zerosum_topology::presets::frontier();
    let mut sim = zerosum_sched::NodeSim::new(
        topo.clone(),
        zerosum_sched::SchedParams {
            seed,
            ..Default::default()
        },
    );
    sim.set_tracing(trace);
    let mut qmc = zerosum_apps::MiniQmcConfig::frontier_cpu().scaled_down(scale);
    qmc.omp = zerosum_omp::OmpEnv::from_pairs([
        ("OMP_NUM_THREADS", "7"),
        ("OMP_PROC_BIND", "spread"),
        ("OMP_PLACES", "cores"),
    ])
    .unwrap();
    let mut ompt = zerosum_omp::OmptRegistry::new();
    let job = zerosum_apps::launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
    let mut monitor = zerosum_core::Monitor::new(zerosum_core::ZeroSumConfig::scaled(scale));
    for team in &job.teams {
        let rank = sim.process(team.pid).and_then(|p| p.rank);
        monitor.watch_process(zerosum_core::ProcessInfo {
            pid: team.pid,
            rank,
            hostname: sim.hostname().to_string(),
            gpus: vec![],
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
    }
    zerosum_core::attach_monitor_threads(&mut sim, &monitor);
    let out = zerosum_core::run_monitored(&mut sim, &mut monitor, None, 3_600_000_000);
    assert!(out.completed);
    let traced = trace.then(|| {
        let audit = sim.audit();
        (sim.take_trace(), audit)
    });
    let watch = monitor.process(job.teams[0].pid).unwrap();
    // Figure 6 bundle: user-jiffy deltas per team LWP.
    let mut lwp_bundle = zerosum_stats::SeriesBundle::new();
    for t in watch.lwps.tracks() {
        if !(t.is_openmp || t.kind == zerosum_core::LwpKind::Main) {
            continue;
        }
        let mut cum = zerosum_stats::TimeSeries::new(&format!("LWP {}", t.tid));
        for s in &t.samples {
            cum.push(s.t_s, s.utime as f64);
        }
        lwp_bundle.push(cum.deltas());
    }
    // Figure 7 bundle: core 1's utilization components.
    let mut hwt_bundle = zerosum_stats::SeriesBundle::new();
    if let Some(samples) = monitor.hwt.samples(1) {
        for (name, get) in [("user%", 0usize), ("system%", 1), ("idle%", 2)] {
            let mut series = zerosum_stats::TimeSeries::new(name);
            for s in samples {
                let v = match get {
                    0 => s.user_pct,
                    1 => s.system_pct,
                    _ => s.idle_pct,
                };
                series.push(s.t_s, v);
            }
            hwt_bundle.push(series);
        }
    }
    (
        Fig67Run {
            lwp_csv: zerosum_core::export::lwp_csv(watch),
            hwt_csv: zerosum_core::export::hwt_csv(&monitor),
            samples: out.samples as usize,
            lwp_bundle,
            hwt_bundle,
        },
        traced,
    )
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// Result of the §4.1 overhead study for one threads-per-core setting.
#[derive(Debug)]
pub struct Fig8Run {
    /// Self-reported runtimes of the 10 baseline executions, seconds.
    pub baseline: Vec<f64>,
    /// Runtimes with ZeroSum attached, seconds.
    pub with_zerosum: Vec<f64>,
    /// Welch's t-test over the two distributions.
    pub ttest: Option<TTest>,
    /// Mean overhead, seconds (may be negative in the noise).
    pub mean_overhead_s: f64,
    /// Mean overhead as a fraction of the baseline mean.
    pub overhead_frac: f64,
}

/// Runs the overhead experiment: `runs` baseline + `runs` monitored
/// executions of the best configuration, with one or two OpenMP threads
/// per core.
pub fn fig8(two_threads_per_core: bool, runs: usize, scale: u32, seed: u64) -> Fig8Run {
    use zerosum_omp::OmptRegistry;
    let topo = zerosum_topology::presets::frontier();
    let mk_cfg = || fig8_qmc_config(two_threads_per_core, scale);
    let mut baseline = Vec::with_capacity(runs);
    let mut with_zerosum = Vec::with_capacity(runs);
    for i in 0..runs as u64 {
        // Baseline.
        let mut sim = zerosum_sched::NodeSim::new(
            topo.clone(),
            zerosum_sched::SchedParams {
                seed: seed + 1000 + i,
                ..Default::default()
            },
        );
        let mut ompt = OmptRegistry::new();
        zerosum_apps::launch_miniqmc(&mut sim, &topo, &mk_cfg(), &mut ompt).expect("launch");
        baseline
            .push(zerosum_core::run_baseline(&mut sim, 3_600_000_000).expect("baseline finishes"));
        // With ZeroSum.
        let (duration_s, _) = fig8_monitored_run(&topo, &mk_cfg(), scale, seed + 2000 + i, false);
        with_zerosum.push(duration_s);
    }
    let b = Summary::from_slice(&baseline);
    let z = Summary::from_slice(&with_zerosum);
    let mean_overhead_s = z.mean() - b.mean();
    Fig8Run {
        ttest: welch_t_test(&baseline, &with_zerosum),
        mean_overhead_s,
        overhead_frac: mean_overhead_s / b.mean(),
        baseline,
        with_zerosum,
    }
}

/// The miniQMC configuration of the §4.1 overhead study.
fn fig8_qmc_config(two_threads_per_core: bool, scale: u32) -> zerosum_apps::MiniQmcConfig {
    let mut qmc = zerosum_apps::MiniQmcConfig::frontier_cpu().scaled_down(scale);
    // Both HWTs of each core are schedulable; binding is per-core.
    qmc.srun.threads_per_core = 2;
    // Walker noise averages out over the full 700-block run; a
    // scaled-down run must shrink per-block noise by √scale to keep
    // the same relative runtime variance as the paper's executions.
    qmc.noise_frac = 0.04 / (scale as f64).sqrt();
    // Symmetric work: fold the leader's serial section into every
    // thread's block so the critical path is a worker, not the
    // leader — overhead (a worker-displacement effect) is otherwise
    // masked by leader slack.
    qmc.walker_work_us += qmc.leader_serial_us;
    qmc.leader_serial_us = 0;
    let threads = if two_threads_per_core { "14" } else { "7" };
    // Per-hardware-thread pinning: with OMP_PLACES=threads, spread
    // puts the 7-thread case on one HWT per core (the monitor's
    // sibling HWT stays idle) and the 14-thread case on every HWT
    // (the monitor displaces a pinned worker) — the two regimes of
    // Figure 8.
    qmc.omp = zerosum_omp::OmpEnv::from_pairs([
        ("OMP_NUM_THREADS", threads),
        ("OMP_PROC_BIND", "spread"),
        ("OMP_PLACES", "threads"),
    ])
    .unwrap();
    qmc
}

/// One monitored execution of the Figure 8 workload.
fn fig8_monitored_run(
    topo: &zerosum_topology::Topology,
    qmc: &zerosum_apps::MiniQmcConfig,
    scale: u32,
    seed: u64,
    trace: bool,
) -> (f64, Option<(Vec<TraceRecord>, SimAudit)>) {
    use std::sync::{Arc, Mutex};
    let mut sim = zerosum_sched::NodeSim::new(
        topo.clone(),
        zerosum_sched::SchedParams {
            seed,
            ..Default::default()
        },
    );
    sim.set_tracing(trace);
    let omp_tids: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ompt = zerosum_omp::OmptRegistry::new();
    {
        let omp_tids = Arc::clone(&omp_tids);
        ompt.on_thread_begin(move |ev| omp_tids.lock().unwrap().push(ev.tid));
    }
    let job = zerosum_apps::launch_miniqmc(&mut sim, topo, qmc, &mut ompt).expect("launch");
    let mut monitor = zerosum_core::Monitor::new(zerosum_core::ZeroSumConfig::scaled(scale));
    for team in &job.teams {
        let rank = sim.process(team.pid).and_then(|p| p.rank);
        monitor.watch_process(zerosum_core::ProcessInfo {
            pid: team.pid,
            rank,
            hostname: sim.hostname().to_string(),
            gpus: vec![],
            cpus_allowed: sim
                .process(team.pid)
                .map(|p| p.cpus_allowed.clone())
                .unwrap_or_default(),
        });
    }
    zerosum_core::attach_monitor_threads(&mut sim, &monitor);
    let out = zerosum_core::run_monitored(&mut sim, &mut monitor, None, 3_600_000_000);
    assert!(out.completed, "monitored fig8 run timed out");
    let traced = trace.then(|| {
        let audit = sim.audit();
        (sim.take_trace(), audit)
    });
    (out.duration_s, traced)
}

/// One traced, monitored execution of the Figure 8 workload — the
/// overhead scenario `zerosum-analyze` checks.
pub fn fig8_traced_run(
    two_threads_per_core: bool,
    scale: u32,
    seed: u64,
) -> (f64, Vec<TraceRecord>, SimAudit) {
    let topo = zerosum_topology::presets::frontier();
    let qmc = fig8_qmc_config(two_threads_per_core, scale);
    let (duration_s, traced) = fig8_monitored_run(&topo, &qmc, scale, seed, true);
    let (trace, audit) = traced.expect("tracing was enabled");
    (duration_s, trace, audit)
}

/// Convenience: the runtime-ordering comparison used by several tests
/// (`Table 1 ≫ Table 2 ≈ Table 3`).
pub fn table_runtimes(scale: u32, seed: u64) -> (f64, f64, f64) {
    (
        run_table(TableConfig::Table1, scale, seed).duration_s,
        run_table(TableConfig::Table2, scale, seed).duration_s,
        run_table(TableConfig::Table3, scale, seed).duration_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_small_is_diagonal() {
        let run = fig5(&PicConfig::small());
        assert!(run.diagonal_fraction > 0.9, "{}", run.diagonal_fraction);
        assert!(run.max_pair_bytes > 0);
        let art = fig5_ascii(&run, 16);
        assert_eq!(art.lines().count(), 16);
    }

    #[test]
    fn fig67_series_exported() {
        let run = fig67(150, 11);
        assert!(run.samples >= 2);
        assert!(run.lwp_csv.lines().count() > run.samples); // rows per LWP
        assert!(run.hwt_csv.starts_with("time,cpu,idle_pct"));
        // Figure 7's shape: bound cores show high user% on average (some
        // individual intervals quantize to zero — the Figure 6
        // noisiness).
        let rows: Vec<f64> = run
            .hwt_csv
            .lines()
            .filter(|l| l.split(',').nth(1) == Some("1"))
            .map(|l| l.split(',').nth(4).unwrap().parse().unwrap())
            .collect();
        assert!(!rows.is_empty());
        let avg = rows.iter().sum::<f64>() / rows.len() as f64;
        assert!(avg > 40.0, "cpu1 mean user {avg}");
    }

    #[test]
    fn fig8_one_thread_per_core_no_significant_overhead() {
        let run = fig8(false, 6, 60, 21);
        let t = run.ttest.expect("t-test");
        // The monitor sits on an idle second hardware thread: overhead
        // hides in the noise (Figure 8 left).
        assert!(
            !t.significant(0.01),
            "unexpected significance: p={} overhead={}s",
            t.p_value,
            run.mean_overhead_s
        );
        assert!(run.overhead_frac.abs() < 0.02, "{}", run.overhead_frac);
    }

    #[test]
    fn fig8_two_threads_per_core_small_but_significant_overhead() {
        let run = fig8(true, 6, 60, 22);
        let t = run.ttest.expect("t-test");
        assert!(
            t.significant(0.05),
            "expected significance: p={} overhead={}s",
            t.p_value,
            run.mean_overhead_s
        );
        // Sub-1% overhead, positive (Figure 8 right: ≈0.5%).
        assert!(run.overhead_frac > 0.0, "{}", run.overhead_frac);
        assert!(run.overhead_frac < 0.02, "{}", run.overhead_frac);
    }
}
