//! The configuration-optimization sweep: the generalization of
//! Tables 1→2.
//!
//! §1 of the paper defines *configuration optimization* — improving
//! runtime "without modifying the software" — and Tables 1/2 show its
//! extremes (1 vs 7 cores per task). This sweep fills in the curve:
//! runtime, context switches, and the evaluator verdict as a function of
//! `srun -c N`, quantifying how much allocation each misconfiguration
//! level wastes.

use std::fmt::Write as _;
use zerosum_core::{
    attach_monitor_threads, evaluate, run_monitored, Finding, Monitor, ProcessInfo, Severity,
    ZeroSumConfig,
};
use zerosum_omp::{OmpEnv, OmptRegistry};
use zerosum_sched::{NodeSim, SchedParams, SrunConfig};
use zerosum_topology::presets;

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// `-c` value (cores per task).
    pub cpus_per_task: usize,
    /// Application runtime, virtual seconds.
    pub duration_s: f64,
    /// Total team non-voluntary context switches (rank 0).
    pub nvctx: u64,
    /// Worst evaluator severity.
    pub verdict: Option<Severity>,
}

/// Runs the Tables-1/2 workload at each `-c` value.
pub fn sweep_cpus_per_task(values: &[usize], scale: u32, seed: u64) -> Vec<SweepPoint> {
    let topo = presets::frontier();
    values
        .iter()
        .map(|&c| {
            let mut sim = NodeSim::new(
                topo.clone(),
                SchedParams {
                    seed,
                    ..Default::default()
                },
            );
            let mut qmc = zerosum_apps::MiniQmcConfig::frontier_cpu().scaled_down(scale);
            qmc.srun = SrunConfig {
                ntasks: 8,
                cpus_per_task: Some(c),
                threads_per_core: 1,
                reserve_first_core_per_l3: true,
                gpu_bind_closest: false,
            };
            qmc.omp = OmpEnv::from_pairs([("OMP_NUM_THREADS", "7")]).unwrap();
            let mut ompt = OmptRegistry::new();
            let job =
                zerosum_apps::launch_miniqmc(&mut sim, &topo, &qmc, &mut ompt).expect("launch");
            let mut monitor = Monitor::new(ZeroSumConfig::scaled(scale));
            for team in &job.teams {
                monitor.watch_process(ProcessInfo {
                    pid: team.pid,
                    rank: sim.process(team.pid).and_then(|p| p.rank),
                    hostname: sim.hostname().to_string(),
                    gpus: vec![],
                    cpus_allowed: sim
                        .process(team.pid)
                        .map(|p| p.cpus_allowed.clone())
                        .unwrap_or_default(),
                });
            }
            attach_monitor_threads(&mut sim, &monitor);
            let out = run_monitored(&mut sim, &mut monitor, None, 3_600_000_000);
            assert!(out.completed, "sweep point c={c} timed out");
            let watch = monitor.process(job.teams[0].pid).unwrap();
            let nvctx = watch
                .lwps
                .tracks()
                .filter(|t| t.is_openmp || t.kind == zerosum_core::LwpKind::Main)
                .map(|t| t.total_nvcsw())
                .sum();
            let verdict = evaluate(&monitor, &topo)
                .iter()
                .map(Finding::severity)
                .max();
            SweepPoint {
                cpus_per_task: c,
                duration_s: out.duration_s,
                nvctx,
                verdict,
            }
        })
        .collect()
}

/// Renders the sweep as a table.
pub fn render_sweep(points: &[SweepPoint]) -> String {
    let best = points
        .iter()
        .map(|p| p.duration_s)
        .fold(f64::INFINITY, f64::min);
    let mut out = String::from("-c  runtime(s)  vs-best  team-nvctx  evaluator\n");
    for p in points {
        writeln!(
            out,
            "{:>2}  {:>9.2}  {:>6.2}x  {:>10}  {}",
            p.cpus_per_task,
            p.duration_s,
            p.duration_s / best,
            p.nvctx,
            match p.verdict {
                Some(Severity::Critical) => "CRITICAL",
                Some(Severity::Warning) => "warning",
                Some(Severity::Info) => "info",
                None => "clean",
            }
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_is_monotone_in_cores() {
        let pts = sweep_cpus_per_task(&[1, 2, 4, 7], 175, 5);
        for w in pts.windows(2) {
            assert!(
                w[1].duration_s <= w[0].duration_s * 1.05,
                "more cores should not be slower: {w:?}"
            );
        }
        // The extremes differ by a large factor.
        assert!(pts[0].duration_s > 3.0 * pts[3].duration_s);
    }

    #[test]
    fn contention_and_verdict_clear_with_enough_cores() {
        let pts = sweep_cpus_per_task(&[1, 7], 175, 6);
        assert!(pts[0].nvctx > 20 * pts[1].nvctx.max(1), "{pts:?}");
        assert_eq!(pts[0].verdict, Some(Severity::Critical));
        // With 7 cores, at most informational findings remain.
        assert!(pts[1].verdict.is_none() || pts[1].verdict < Some(Severity::Critical));
    }

    #[test]
    fn render_lists_all_points() {
        let pts = sweep_cpus_per_task(&[1, 7], 350, 7);
        let table = render_sweep(&pts);
        assert!(table.contains("CRITICAL"));
        assert_eq!(table.lines().count(), 3);
    }
}
