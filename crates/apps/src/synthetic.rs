//! Synthetic workload builder for examples, ablations, and
//! failure-injection tests.
//!
//! Composes arbitrary mixes of the scheduler's behavior models into a
//! process: CPU hogs, sleepy services, deadlocked teams, memory growers —
//! the situations §2 lists as reasons users monitor their jobs.

use zerosum_proc::{Pid, Tid};
use zerosum_sched::{Behavior, NodeSim, WorkerSpec};
use zerosum_topology::CpuSet;

/// A synthetic thread role.
#[derive(Debug, Clone)]
pub enum Role {
    /// CPU-bound for `total_us` of work.
    Hog {
        /// Total user-mode work, µs.
        total_us: u64,
    },
    /// Iterative worker with a team barrier.
    Worker {
        /// Blocks (iterations).
        blocks: u32,
        /// Work per block, µs.
        work_us: u64,
    },
    /// A thread that blocks forever — never reaches the barrier, so the
    /// rest of the team eventually deadlocks behind it.
    Stuck,
    /// A service thread polling periodically.
    Poller {
        /// Sleep period, µs.
        period_us: u64,
    },
}

/// A synthetic process description.
#[derive(Debug, Clone)]
pub struct SyntheticProcess {
    /// Process name.
    pub name: String,
    /// Process affinity mask.
    pub mask: CpuSet,
    /// RSS target, KiB.
    pub rss_kib: u64,
    /// Threads beyond the main thread, each with its role and an
    /// optional explicit affinity.
    pub extra_threads: Vec<(Role, Option<CpuSet>)>,
    /// Role of the main thread.
    pub main: Role,
}

fn behavior_for(role: &Role, barrier: Option<u32>) -> Behavior {
    match role {
        Role::Hog { total_us } => Behavior::FiniteCompute {
            remaining_us: *total_us,
            chunk_us: 10_000,
        },
        Role::Worker { blocks, work_us } => Behavior::worker(WorkerSpec {
            iterations: *blocks,
            work_per_iter_us: *work_us,
            noise_frac: 0.03,
            sys_per_iter_us: work_us / 50,
            leader_extra_us: 0,
            checkpoint_every: 0,
            checkpoint_extra_us: 0,
            is_leader: false,
            barrier,
            offload: None,
        }),
        Role::Stuck => Behavior::Sleeper,
        Role::Poller { period_us } => Behavior::helper_poll(*period_us, 200),
    }
}

/// Spawns the synthetic process; returns `(pid, extra thread tids)`.
///
/// All `Worker` roles in the process share one barrier, so a `Stuck`
/// thread in a worker team produces a genuine deadlock for the §3.3
/// detector to find. (`Stuck` itself registers on the barrier by being
/// counted as a team member that never arrives — modeled by simply never
/// reaching it.)
pub fn spawn(sim: &mut NodeSim, spec: &SyntheticProcess) -> (Pid, Vec<Tid>) {
    let barrier = spec
        .extra_threads
        .iter()
        .map(|(r, _)| r)
        .chain(std::iter::once(&spec.main))
        .any(|r| matches!(r, Role::Worker { .. }))
        .then_some(42u32);
    let service_main = matches!(spec.main, Role::Poller { .. } | Role::Stuck);
    let pid = sim.spawn_process(
        &spec.name,
        spec.mask.clone(),
        spec.rss_kib,
        behavior_for(&spec.main, barrier),
    );
    if service_main {
        // Behavior spawned as app main; synthetic "service" mains are
        // acceptable for tests that never wait for completion.
    }
    let mut tids = Vec::new();
    for (role, affinity) in &spec.extra_threads {
        let service = matches!(role, Role::Poller { .. });
        let tid = sim.spawn_task(
            pid,
            match role {
                Role::Poller { .. } => "helper",
                Role::Stuck => "stuck",
                _ => "worker",
            },
            affinity.clone(),
            behavior_for(role, barrier),
            service,
        );
        tids.push(tid);
    }
    (pid, tids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosum_sched::SchedParams;
    use zerosum_topology::presets;

    #[test]
    fn hog_process_finishes() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let (pid, _) = spawn(
            &mut sim,
            &SyntheticProcess {
                name: "hog".into(),
                mask: CpuSet::single(0),
                rss_kib: 64,
                extra_threads: vec![],
                main: Role::Hog { total_us: 50_000 },
            },
        );
        assert!(sim.run_until_apps_done(10_000, 10_000_000).is_some());
        assert!(sim.task_by_tid(pid).unwrap().is_exited());
    }

    #[test]
    fn worker_team_with_poller() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let mask = CpuSet::from_indices([0u32, 1, 2]);
        let (_pid, tids) = spawn(
            &mut sim,
            &SyntheticProcess {
                name: "team".into(),
                mask: mask.clone(),
                rss_kib: 128,
                extra_threads: vec![
                    (
                        Role::Worker {
                            blocks: 3,
                            work_us: 5_000,
                        },
                        None,
                    ),
                    (Role::Poller { period_us: 100_000 }, None),
                ],
                main: Role::Worker {
                    blocks: 3,
                    work_us: 5_000,
                },
            },
        );
        assert_eq!(tids.len(), 2);
        assert!(sim.run_until_apps_done(10_000, 60_000_000).is_some());
    }

    #[test]
    fn stuck_worker_team_never_finishes() {
        let mut sim = NodeSim::new(presets::laptop_i7_1165g7(), SchedParams::default());
        let mask = CpuSet::from_indices([0u32, 1]);
        // Main is a worker; the extra thread is Stuck but counted into
        // no barrier (it is not a Worker), so the worker team is just the
        // main thread… to model a deadlock we need ≥2 workers where one
        // stalls. Use a worker + a stuck *worker-role replacement*: a
        // worker team of 2 where one member is Stuck is modeled by the
        // barrier never being released for a team registered with 2.
        let (_pid, _) = spawn(
            &mut sim,
            &SyntheticProcess {
                name: "dl".into(),
                mask,
                rss_kib: 64,
                extra_threads: vec![(
                    Role::Worker {
                        blocks: 1_000,
                        work_us: 1_000,
                    },
                    None,
                )],
                main: Role::Stuck,
            },
        );
        // The main thread sleeps forever (app task) ⇒ never done.
        assert!(sim.run_until_apps_done(100_000, 3_000_000).is_none());
    }
}
