//! Gyrokinetic particle-in-cell proxy (Figure 5's workload).
//!
//! Figure 5 of the paper shows the MPI point-to-point heatmap of a
//! gyrokinetic PIC code [Hager et al.] at 512 ranks on Frontier: a
//! strong nearest-neighbour band along the central diagonal with peak
//! pair traffic around 1.75×10¹⁰ bytes. This proxy reproduces that
//! footprint: per-step field halo exchange along the 1-D domain
//! decomposition, plus light collective and background traffic.

use zerosum_mpi::{collective, patterns, CommMatrix, CommWorld};

/// PIC proxy configuration.
#[derive(Debug, Clone)]
pub struct PicConfig {
    /// MPI ranks.
    pub ranks: usize,
    /// Simulation steps.
    pub steps: usize,
    /// Halo bytes per neighbour per step.
    pub halo_bytes: u64,
    /// Halo width (neighbour distance).
    pub halo_width: usize,
    /// Diagnostic reduce every this many steps (0 = never).
    pub reduce_every: usize,
    /// Background random messages per step.
    pub background_per_step: usize,
    /// Background message size, bytes.
    pub background_bytes: u64,
    /// RNG seed for the background traffic.
    pub seed: u64,
}

impl PicConfig {
    /// The Figure 5 scenario: 512 ranks; peak pair traffic calibrated to
    /// ≈1.75×10¹⁰ bytes over the run.
    pub fn figure5() -> Self {
        PicConfig {
            ranks: 512,
            steps: 1_000,
            halo_bytes: 17_500_000, // 1000 × 17.5 MB = 1.75e10 per pair
            halo_width: 2,
            reduce_every: 10,
            background_per_step: 16,
            background_bytes: 64 * 1024,
            seed: 0xF165,
        }
    }

    /// A scaled-down variant for tests.
    pub fn small() -> Self {
        PicConfig {
            ranks: 32,
            steps: 20,
            halo_bytes: 1_000_000,
            halo_width: 1,
            reduce_every: 5,
            background_per_step: 4,
            background_bytes: 1024,
            seed: 7,
        }
    }
}

/// Runs the communication proxy and returns the accumulated traffic
/// matrix — the data ZeroSum's wrapped p2p calls would have recorded.
pub fn run(cfg: &PicConfig) -> CommMatrix {
    let world = CommWorld::new(cfg.ranks);
    for step in 0..cfg.steps {
        patterns::halo_1d(&world, cfg.halo_width, cfg.halo_bytes);
        if cfg.background_per_step > 0 {
            patterns::random_pairs(
                &world,
                cfg.background_per_step,
                cfg.background_bytes,
                cfg.seed.wrapping_add(step as u64),
            );
        }
        if cfg.reduce_every > 0 && step % cfg.reduce_every == 0 {
            // Diagnostics reduce to rank 0 (binomial tree).
            collective::reduce_binomial(&world, 0, 8 * 1024);
        }
    }
    world.matrix()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_diagonal_dominant() {
        let m = run(&PicConfig::small());
        assert!(m.diagonal_fraction(1) > 0.95, "{}", m.diagonal_fraction(1));
        assert_eq!(m.size(), 32);
    }

    #[test]
    fn figure5_peak_traffic_calibration() {
        let mut cfg = PicConfig::figure5();
        // Shrink for test speed but keep the per-step byte calibration.
        cfg.ranks = 64;
        cfg.steps = 100;
        let m = run(&cfg);
        // Nearest-neighbour pair over 100 steps: 100 × 17.5 MB, plus at
        // most a sliver of random background traffic.
        let nn = m.bytes(10, 11);
        assert!((nn - 100 * 17_500_000) < 10_000_000, "nn = {nn}");
        // Second-neighbour traffic at half weight.
        let nn2 = m.bytes(10, 12);
        assert!((nn2 - 100 * 8_750_000) < 10_000_000, "nn2 = {nn2}");
        let frac = m.diagonal_fraction(2);
        assert!(frac > 0.99, "diagonal fraction {frac}");
    }

    #[test]
    fn reduce_traffic_present_but_minor() {
        let m = run(&PicConfig::small());
        // Rank 0 receives reduce traffic from the tree.
        let into_zero: u64 = (1..32).map(|s| m.bytes(s, 0)).sum();
        assert!(into_zero > 0);
        assert!((into_zero as f64) < 0.05 * m.total_bytes() as f64);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&PicConfig::small());
        let b = run(&PicConfig::small());
        assert_eq!(a, b);
    }
}
