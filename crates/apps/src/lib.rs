//! # zerosum-apps
//!
//! Workload proxies for ZeroSum-rs:
//!
//! * [`miniqmc`] — the MPI+OpenMP (and GPU-offload) proxy standing in for
//!   the ECP miniQMC application of the paper's evaluation (Tables 1–3,
//!   Listing 2, Figure 8).
//! * [`pic`] — the gyrokinetic particle-in-cell communication proxy
//!   behind the Figure 5 heatmap.
//! * [`synthetic`] — a freeform workload builder for examples and
//!   failure-injection tests (deadlocks, hogs, pollers).

#![warn(missing_docs)]

pub mod miniqmc;
pub mod pic;
pub mod synthetic;

pub use miniqmc::{launch as launch_miniqmc, MiniQmcConfig, MiniQmcJob, QmcOffload};
pub use pic::{run as run_pic, PicConfig};
pub use synthetic::{spawn as spawn_synthetic, Role, SyntheticProcess};
